.PHONY: all build test bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/channel_compare.exe
	dune exec examples/switchbox_ripup.exe
	dune exec examples/eco_reroute.exe
	dune exec examples/macro_region.exe
	dune exec examples/interactive.exe

clean:
	dune clean
