(** Coarse global routing: per-net region guides over a reduced grid.

    The region is tiled into square tiles and every net is routed
    Prim-style on the tile graph, paying congestion-aware costs as tile
    usage approaches capacity.  A tile's capacity is derived from its
    unblocked cell count, so obstruction-dense areas (macro footprints)
    price themselves out.  Each routed net yields a {e guide}: the cell
    rectangle spanned by its tile tree, inflated by a per-class margin —
    exactly the shape {!Router.Engine.route} accepts as a per-net search
    window (with certified fall-back to the full window, so guides can
    never change the layout).

    Net classes steer the router: each {!Netlist.Net.cls} carries a
    {!class_rule} fixing routing priority (clock first), capacity demand
    per tile (power wiring is wide), congestion cost multiplier, the
    share of a tile's capacity the class may consume, and the guide
    margin.  Everything is deterministic — same problem, same result. *)

type class_rule = {
  priority : int;  (** routing order; lower routes first *)
  demand : int;  (** capacity units consumed per tile of the net's tree *)
  cost_mult : int;  (** multiplier on the congestion cost term *)
  share_pct : int;  (** max share of a tile's capacity for the class *)
  margin : int;  (** guide inflation in cells *)
}

val rule : Netlist.Net.cls -> class_rule
(** The built-in rules: clock [{priority 0; demand 1; cost_mult 4;
    share_pct 50; margin 4}], power [{1; 2; 2; 50; 3}], signal
    [{2; 1; 1; 100; 2}]. *)

type t = {
  tile : int;  (** tile edge length in cells *)
  tiles_x : int;
  tiles_y : int;
  capacity : int array;  (** per tile, row-major *)
  usage : int array;  (** total units consumed per tile *)
  class_usage : int array array;  (** per class (signal, clock, power) *)
  guides : Geom.Rect.t option array;
      (** per net index ([net id - 1]); [None] for trivial nets *)
  overflow_tiles : int;  (** tiles with [usage > capacity] *)
}

val cls_index : Netlist.Net.cls -> int
(** Row of {!t.class_usage}: signal 0, clock 1, power 2. *)

val capacities :
  Netlist.Problem.t -> tile:int -> tiles_x:int -> tiles_y:int -> int array
(** Per-tile capacity in units: unblocked cells (all layers) per cell-row
    of the tile — the supply side of the congestion model.  Exposed so
    the pre-route predictor ({!Analyze}) prices demand against exactly
    the capacities the global router will route against. *)

val run : ?tile:int -> Netlist.Problem.t -> t
(** Globally route every non-trivial net of a (realized) problem.
    [tile] defaults to 8 and is clamped to the region, so small problems
    degenerate to a single tile (guides then equal the full region and
    the detailed router certifies them trivially). *)

val audit : t -> (unit, string) Stdlib.result
(** Check the capacity model the classes promise: every tile's total
    usage within capacity and every class within its share.  [Error]
    names the first offending tile. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: tiles, used tiles, overflow count, peak use. *)
