type class_rule = {
  priority : int;
  demand : int;
  cost_mult : int;
  share_pct : int;
  margin : int;
}

let rule = function
  | Netlist.Net.Clock ->
      { priority = 0; demand = 1; cost_mult = 4; share_pct = 50; margin = 4 }
  | Netlist.Net.Power ->
      { priority = 1; demand = 2; cost_mult = 2; share_pct = 50; margin = 3 }
  | Netlist.Net.Signal ->
      { priority = 2; demand = 1; cost_mult = 1; share_pct = 100; margin = 2 }

let cls_index = function
  | Netlist.Net.Signal -> 0
  | Netlist.Net.Clock -> 1
  | Netlist.Net.Power -> 2

type t = {
  tile : int;
  tiles_x : int;
  tiles_y : int;
  capacity : int array;
  usage : int array;
  class_usage : int array array;
  guides : Geom.Rect.t option array;
  overflow_tiles : int;
}

(* A tile's capacity in units: unblocked cells (both layers) per cell-row
   of the tile, i.e. roughly its crossing track count.  Obstruction-heavy
   tiles (macro footprints) end up near zero and repel the router. *)
let capacities problem ~tile ~tiles_x ~tiles_y =
  let w = problem.Netlist.Problem.width
  and h = problem.Netlist.Problem.height in
  let nlayers = problem.Netlist.Problem.layers in
  let blocked = Array.make (nlayers * w * h) false in
  List.iter
    (fun (o : Netlist.Problem.obstruction) ->
      let layers =
        match o.Netlist.Problem.obs_layer with
        | None -> List.init nlayers Fun.id
        | Some l -> [ l ]
      in
      Geom.Rect.iter o.Netlist.Problem.obs_rect (fun x y ->
          if x >= 0 && x < w && y >= 0 && y < h then
            List.iter
              (fun l -> blocked.((l * w * h) + (y * w) + x) <- true)
              layers))
    problem.Netlist.Problem.obstructions;
  let cap = Array.make (tiles_x * tiles_y) 0 in
  for ty = 0 to tiles_y - 1 do
    for tx = 0 to tiles_x - 1 do
      let free = ref 0 in
      for y = ty * tile to min (h - 1) (((ty + 1) * tile) - 1) do
        for x = tx * tile to min (w - 1) (((tx + 1) * tile) - 1) do
          for l = 0 to nlayers - 1 do
            if not blocked.((l * w * h) + (y * w) + x) then incr free
          done
        done
      done;
      cap.((ty * tiles_x) + tx) <- !free / tile
    done
  done;
  cap

(* Prim-style tile routing of one net: grow a tile tree from the first
   pin tile, each Dijkstra joining the nearest remaining pin tile.
   Returns every tile of the tree (each once). *)
let route_net ~tiles_x ~tiles_y ~enter_cost pin_tiles =
  let n = tiles_x * tiles_y in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let in_tree = Array.make n false in
  let q = Util.Pqueue.create () in
  match pin_tiles with
  | [] -> []
  | first :: rest ->
      in_tree.(first) <- true;
      let tree = ref [ first ] in
      let remaining = ref (List.filter (fun t -> t <> first) rest) in
      while !remaining <> [] do
        Array.fill dist 0 n max_int;
        Array.fill parent 0 n (-1);
        Util.Pqueue.clear q;
        List.iter
          (fun t ->
            dist.(t) <- 0;
            Util.Pqueue.push q 0 t)
          !tree;
        let target = Array.make n false in
        List.iter (fun t -> target.(t) <- true) !remaining;
        let reached = ref (-1) in
        while !reached < 0 && not (Util.Pqueue.is_empty q) do
          let d, t = Util.Pqueue.pop q in
          if d <= dist.(t) then begin
            if target.(t) then reached := t
            else begin
              let relax t' =
                let nd = d + enter_cost t' in
                if nd < dist.(t') then begin
                  dist.(t') <- nd;
                  parent.(t') <- t;
                  Util.Pqueue.push q nd t'
                end
              in
              let tx = t mod tiles_x and ty = t / tiles_x in
              if tx + 1 < tiles_x then relax (t + 1);
              if tx > 0 then relax (t - 1);
              if ty + 1 < tiles_y then relax (t + tiles_x);
              if ty > 0 then relax (t - tiles_x)
            end
          end
        done;
        if !reached < 0 then
          (* Disconnected tile graph cannot happen (costs are finite),
             but fail soft: connect the remaining pin tiles directly. *)
          begin
            List.iter
              (fun t ->
                if not in_tree.(t) then begin
                  in_tree.(t) <- true;
                  tree := t :: !tree
                end)
              !remaining;
            remaining := []
          end
        else begin
          let t = ref !reached in
          while !t >= 0 && not in_tree.(!t) do
            in_tree.(!t) <- true;
            tree := !t :: !tree;
            t := parent.(!t)
          done;
          remaining := List.filter (fun t -> t <> !reached) !remaining
        end
      done;
      !tree

let run ?(tile = 8) problem =
  let w = problem.Netlist.Problem.width
  and h = problem.Netlist.Problem.height in
  let tile = max 1 (min tile (max w h)) in
  let tiles_x = (w + tile - 1) / tile
  and tiles_y = (h + tile - 1) / tile in
  let capacity = capacities problem ~tile ~tiles_x ~tiles_y in
  let usage = Array.make (tiles_x * tiles_y) 0 in
  let class_usage = Array.init 3 (fun _ -> Array.make (tiles_x * tiles_y) 0) in
  let nets = problem.Netlist.Problem.nets in
  let guides = Array.make (Array.length nets) None in
  let order =
    List.sort
      (fun a b ->
        let ra = (rule (nets.(a - 1)).Netlist.Net.cls).priority
        and rb = (rule (nets.(b - 1)).Netlist.Net.cls).priority in
        if ra <> rb then compare ra rb else compare a b)
      (Netlist.Problem.nontrivial_net_ids problem)
  in
  List.iter
    (fun id ->
      let net = nets.(id - 1) in
      let r = rule net.Netlist.Net.cls in
      let ci = cls_index net.Netlist.Net.cls in
      let pin_tiles =
        List.sort_uniq compare
          (List.map
             (fun (p : Netlist.Net.pin) ->
               ((p.Netlist.Net.y / tile) * tiles_x) + (p.Netlist.Net.x / tile))
             net.Netlist.Net.pins)
      in
      let enter_cost t =
        let cap = capacity.(t) in
        let share = cap * r.share_pct / 100 in
        let over_total = max 0 (usage.(t) + r.demand - cap) in
        let over_share = max 0 (class_usage.(ci).(t) + r.demand - share) in
        1 + (r.cost_mult * 4 * (over_total + over_share))
      in
      let tree = route_net ~tiles_x ~tiles_y ~enter_cost pin_tiles in
      List.iter
        (fun t ->
          usage.(t) <- usage.(t) + r.demand;
          class_usage.(ci).(t) <- class_usage.(ci).(t) + r.demand)
        tree;
      let tx0 = ref max_int and ty0 = ref max_int in
      let tx1 = ref min_int and ty1 = ref min_int in
      List.iter
        (fun t ->
          let x = t mod tiles_x and y = t / tiles_x in
          if x < !tx0 then tx0 := x;
          if x > !tx1 then tx1 := x;
          if y < !ty0 then ty0 := y;
          if y > !ty1 then ty1 := y)
        tree;
      if !tx1 >= !tx0 then begin
        let cells =
          Geom.Rect.inflate
            (Geom.Rect.make (!tx0 * tile) (!ty0 * tile)
               (min (w - 1) (((!tx1 + 1) * tile) - 1))
               (min (h - 1) (((!ty1 + 1) * tile) - 1)))
            r.margin
        in
        guides.(id - 1) <-
          Some
            (Geom.Rect.make (max 0 cells.Geom.Rect.x0)
               (max 0 cells.Geom.Rect.y0)
               (min (w - 1) cells.Geom.Rect.x1)
               (min (h - 1) cells.Geom.Rect.y1))
      end)
    order;
  let overflow_tiles =
    let c = ref 0 in
    Array.iteri (fun i u -> if u > capacity.(i) then incr c) usage;
    !c
  in
  { tile; tiles_x; tiles_y; capacity; usage; class_usage; guides;
    overflow_tiles }

let audit t =
  let err = ref None in
  Array.iteri
    (fun i u ->
      if !err = None then begin
        if u > t.capacity.(i) then
          err :=
            Some
              (Printf.sprintf
                 "tile (%d,%d): usage %d exceeds capacity %d"
                 (i mod t.tiles_x) (i / t.tiles_x) u t.capacity.(i))
        else
          List.iter
            (fun cls ->
              let r = rule cls in
              let share = t.capacity.(i) * r.share_pct / 100 in
              let cu = t.class_usage.(cls_index cls).(i) in
              (* A class's first net may always pass (a share below one
                 net's demand would make the class unroutable). *)
              if cu > max r.demand share && !err = None then
                err :=
                  Some
                    (Printf.sprintf
                       "tile (%d,%d): class %s usage %d exceeds share %d"
                       (i mod t.tiles_x) (i / t.tiles_x)
                       (Netlist.Net.cls_to_string cls) cu share))
            [ Netlist.Net.Signal; Netlist.Net.Clock; Netlist.Net.Power ]
      end)
    t.usage;
  match !err with None -> Ok () | Some e -> Error e

let pp fmt t =
  let used = Array.fold_left (fun a u -> if u > 0 then a + 1 else a) 0 t.usage in
  let peak = Array.fold_left max 0 t.usage in
  Format.fprintf fmt "%dx%d tiles (%d cells), %d used, %d overflow, peak %d"
    t.tiles_x t.tiles_y t.tile used t.overflow_tiles peak
