let net_char net =
  let alphabet =
    "123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
  in
  alphabet.[(net - 1) mod String.length alphabet]

let cell_char g ~layer ~x ~y =
  let v = Grid.occ_at g ~layer ~x ~y in
  if v = Grid.free then '.'
  else if v = Grid.obstacle then '#'
  else net_char v

let map_of g char_at =
  let w = Grid.width g and h = Grid.height g in
  let buf = Buffer.create ((w + 1) * h) in
  for y = h - 1 downto 0 do
    for x = 0 to w - 1 do
      Buffer.add_char buf (char_at ~x ~y)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render_layer g ~layer = map_of g (fun ~x ~y -> cell_char g ~layer ~x ~y)

let side_by_side ~titles maps =
  let split m = String.split_on_char '\n' m in
  let columns = List.map split maps in
  let height = List.fold_left (fun acc c -> max acc (List.length c)) 0 columns in
  let width =
    List.map
      (fun c -> List.fold_left (fun acc l -> max acc (String.length l)) 0 c)
      columns
  in
  let line_of rows i =
    String.concat "   "
      (List.map2
         (fun c w ->
           let l = match List.nth_opt c i with Some l -> l | None -> "" in
           l ^ String.make (max 0 (w - String.length l)) ' ')
         rows width)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "   "
       (List.map2
          (fun t w -> t ^ String.make (max 0 (w - String.length t)) ' ')
          titles width));
  Buffer.add_char buf '\n';
  for i = 0 to height - 1 do
    Buffer.add_string buf (line_of columns i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render g =
  let nlayers = Grid.layers g in
  let maps = List.init nlayers (fun layer -> render_layer g ~layer) in
  let titles =
    List.init nlayers (fun layer ->
        Printf.sprintf "layer%d (%s)" layer
          (if Grid.prefers_horizontal g ~layer then "H" else "V"))
  in
  if Grid.via_count g = 0 then side_by_side ~titles maps
  else begin
    let vias =
      map_of g (fun ~x ~y -> if Grid.has_via g ~x ~y then 'x' else '.')
    in
    side_by_side ~titles:(titles @ [ "vias" ]) (maps @ [ vias ])
  end

let render_problem problem = render (Netlist.Problem.instantiate problem)

let render_heatmap problem =
  let demand = Netlist.Analysis.demand_map problem in
  let w = problem.Netlist.Problem.width
  and h = problem.Netlist.Problem.height in
  let buf = Buffer.create ((w + 1) * h) in
  for y = h - 1 downto 0 do
    for x = 0 to w - 1 do
      let d = demand.((y * w) + x) in
      let c =
        if d = infinity then '#'
        else if d < 0.1 then '.'
        else
          let bucket = min 9 (1 + int_of_float (d *. 2.0)) in
          Char.chr (Char.code '0' + bucket)
      in
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render_usage g =
  let nlayers = Grid.layers g in
  map_of g (fun ~x ~y ->
      let wired = ref 0 and obstructed = ref 0 in
      for layer = 0 to nlayers - 1 do
        let v = Grid.occ_at g ~layer ~x ~y in
        if v > 0 then incr wired
        else if v = Grid.obstacle then incr obstructed
      done;
      if !obstructed = nlayers then '#'
      else if !wired = 0 then '.'
      else Char.chr (Char.code '0' + min 9 !wired))
