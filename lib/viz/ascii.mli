(** ASCII rendering of routed grids — the quick debugging view used by the
    CLI and the examples.

    Each layer is drawn as a character map ([y] decreasing downwards so the
    picture matches the usual channel drawings): ['.'] free, ['#'] obstacle,
    ['x'] a via position, and a per-net character (digits, then lower- and
    upper-case letters, cycling) for owned cells. *)

val net_char : int -> char
(** Stable character for a net id. *)

val render_layer : Grid.t -> layer:int -> string

val render : Grid.t -> string
(** Both layers side by side, plus a via map when any via exists. *)

val render_problem : Netlist.Problem.t -> string
(** Render the unrouted problem: pins and obstacles only. *)

val render_heatmap : Netlist.Problem.t -> string
(** Pre-routing congestion heatmap from {!Netlist.Analysis.demand_map}:
    ['.'] for near-zero demand, then [1-9] buckets, ['#'] for obstructed
    cells. *)

val render_usage : Grid.t -> string
(** Post-routing usage map: how many of the two layers each planar cell
    uses (['.'], ['1'], ['2']; ['#'] when fully obstructed). *)
