(** SVG rendering of routed layouts.

    Produces a self-contained SVG document: layer 0 wiring in blue, layer 1
    in red, vias as black squares, obstacles in grey, pins as circles
    labelled with the net character.  Intended for visual inspection of
    example and benchmark output. *)

val render : ?cell:int -> Netlist.Problem.t -> Grid.t -> string
(** [cell] is the pixel size of one grid cell (default 14). *)

val save : string -> ?cell:int -> Netlist.Problem.t -> Grid.t -> unit
(** Write the SVG document to a file. *)
