let layer_color = function
  | 0 -> "#2c6fbb"
  | 1 -> "#c0392b"
  | 2 -> "#27a05a"
  | 3 -> "#8e44ad"
  | _ -> "#c98a1b"

(* Net names are client-chosen free text; anything landing in markup must
   be escaped or a net named "a<b" produces invalid XML. *)
let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Grid y grows upwards; SVG y grows downwards. *)
let render ?(cell = 14) problem g =
  let w = Grid.width g and h = Grid.height g in
  let px x = x * cell and py y = (h - 1 - y) * cell in
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n"
    (w * cell) (h * cell) (w * cell) (h * cell);
  addf "<rect width=\"100%%\" height=\"100%%\" fill=\"#fdfdf8\"/>\n";
  (* Obstacles (drawn once; all-layer obstacles dominate). *)
  let nlayers = Grid.layers g in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let blocked = ref 0 in
      for layer = 0 to nlayers - 1 do
        if Grid.occ_at g ~layer ~x ~y = Grid.obstacle then incr blocked
      done;
      if !blocked = nlayers then
        addf "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#b5b5ad\"/>\n"
          (px x) (py y) cell cell
      else if !blocked > 0 then
        addf
          "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#dcdcd2\"/>\n"
          (px x) (py y) cell cell
    done
  done;
  (* Wiring: draw each same-net adjacency as a line segment per layer. *)
  let half = cell / 2 in
  let cx x = px x + half and cy y = py y + half in
  for layer = 0 to nlayers - 1 do
    let color = layer_color layer in
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        let v = Grid.occ_at g ~layer ~x ~y in
        if v > 0 then begin
          addf
            "<circle cx=\"%d\" cy=\"%d\" r=\"%d\" fill=\"%s\" fill-opacity=\"0.85\"/>\n"
            (cx x) (cy y) (cell / 5) color;
          if x + 1 < w && Grid.occ_at g ~layer ~x:(x + 1) ~y = v then
            addf
              "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
               stroke-width=\"%d\" stroke-opacity=\"0.85\"/>\n"
              (cx x) (cy y)
              (cx (x + 1))
              (cy y) color (cell / 4);
          if y + 1 < h && Grid.occ_at g ~layer ~x ~y:(y + 1) = v then
            addf
              "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
               stroke-width=\"%d\" stroke-opacity=\"0.85\"/>\n"
              (cx x) (cy y) (cx x)
              (cy (y + 1))
              color (cell / 4)
        end
      done
    done
  done;
  (* Vias. *)
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if Grid.has_via g ~x ~y then
        addf
          "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#1b1b1b\"/>\n"
          (cx x - (cell / 5))
          (cy y - (cell / 5))
          (2 * cell / 5) (2 * cell / 5)
    done
  done;
  (* Pins with net labels; the <title> child gives the full net name as a
     hover tooltip.  Both the name and the label go through xml_escape. *)
  List.iter
    (fun (net, (pin : Netlist.Net.pin)) ->
      let name =
        xml_escape (Netlist.Problem.net problem net).Netlist.Net.name
      in
      addf
        "<circle cx=\"%d\" cy=\"%d\" r=\"%d\" fill=\"none\" stroke=\"#1b1b1b\" \
         stroke-width=\"1.5\"><title>%s</title></circle>\n"
        (cx pin.Netlist.Net.x) (cy pin.Netlist.Net.y) (cell * 2 / 5) name;
      addf
        "<text x=\"%d\" y=\"%d\" font-size=\"%d\" font-family=\"monospace\" \
         text-anchor=\"middle\">%s<title>%s</title></text>\n"
        (cx pin.Netlist.Net.x)
        (cy pin.Netlist.Net.y + (cell / 4))
        (cell * 3 / 5)
        (xml_escape (String.make 1 (Ascii.net_char net)))
        name)
    (Netlist.Problem.pin_cells problem);
  addf "</svg>\n";
  Buffer.contents buf

let save path ?cell problem g =
  let oc = open_out path in
  output_string oc (render ?cell problem g);
  close_out oc
