type stats = {
  passes : int;
  improved_nets : int;
  wirelength_before : int;
  wirelength_after : int;
  vias_before : int;
  vias_after : int;
  planned : int;
  skipped_cert : int;
  skipped_bound : int;
  cache_stale : int;
  field_builds : int;
  field_repairs : int;
}

let net_cost ~cost g ~net =
  let m = Outcome.measure_net g ~net in
  m.Outcome.wirelength + (cost.Maze.Cost.via * m.Outcome.vias)

(* Window inflation of the per-net lower-bound fields.  Purely a
   sharpness/size trade-off: the escape bound keeps any margin sound. *)
let field_margin = 4

(* The refine planner: windowed A* over the bucket queue.  Cost-exact
   versus a full-grid search (the window widens and retries on failure),
   while keeping each visit's read region — and with it the recorded
   certificate — local, so a write elsewhere does not invalidate it. *)
let plan_use_astar = true

let plan_kernel = Maze.Search.Buckets

let plan_window = 4


let refine ?(max_passes = 3) ?(cost = Maze.Cost.default) ?(incremental = true)
    ?cache problem g =
  let nets_total = Netlist.Problem.net_count problem in
  (* The cache is bound to one physical grid: a caller-supplied cache for
     a different grid (or net count) is silently replaced, never trusted. *)
  let cache =
    if not incremental then None
    else
      match cache with
      | Some c when Maze.Cache.matches c g ~nets:nets_total -> Some c
      | _ -> Some (Maze.Cache.create g ~nets:nets_total)
  in
  let counters () =
    match cache with
    | Some c ->
        ( Maze.Cache.hits c,
          Maze.Cache.stale c,
          Maze.Cache.field_builds c,
          Maze.Cache.field_repairs c )
    | None -> (0, 0, 0, 0)
  in
  let hits0, stale0, builds0, repairs0 = counters () in
  let bound0 = match cache with Some c -> Maze.Cache.bound_skips c | None -> 0 in
  let ws = Maze.Workspace.create g in
  let has_fixed_prewire net =
    List.exists
      (fun (pw : Netlist.Problem.prewire) ->
        pw.Netlist.Problem.pre_fixed && pw.Netlist.Problem.pre_net = net)
      problem.Netlist.Problem.prewires
  in
  let pin_nodes_tbl = Array.make (nets_total + 1) [] in
  List.iter
    (fun (id, pin) ->
      if id >= 1 && id <= nets_total then
        pin_nodes_tbl.(id) <- Maze.Route.pin_node g pin :: pin_nodes_tbl.(id))
    (Netlist.Problem.pin_cells problem);
  let pin_nodes net = pin_nodes_tbl.(net) in
  let candidates =
    List.filter
      (fun net -> not (has_fixed_prewire net))
      (Netlist.Problem.nontrivial_net_ids problem)
  in
  (* One O(grid) scan per call hoists the per-net cell lists that every
     verdict reads (cost, connectivity, wiring boxes).  A net's cells
     change only when the net itself commits — other nets' commits never
     touch them — so each list is refreshed from the committed plan
     instead of rescanning the grid on every visit. *)
  let gw = Grid.width g and gh = Grid.height g in
  let cells = Array.make (nets_total + 1) [] in
  for n = Grid.node_count g - 1 downto 0 do
    let v = Grid.occ g n in
    if v > 0 && v <= nets_total then cells.(v) <- n :: cells.(v)
  done;
  (* [Outcome.measure_net]'s objective over the hoisted list: same-layer
     +x/+y adjacencies within the cell set, plus the via charge (a via
     pair's two cells share one owner, so counting each pair at its lower
     cell counts each via once). *)
  let net_cost net =
    let nodes = cells.(net) in
    let tbl = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace tbl n ()) nodes;
    let wl = ref 0 and vias = ref 0 in
    List.iter
      (fun n ->
        let x = Grid.node_x g n and y = Grid.node_y g n in
        if x + 1 < gw && Hashtbl.mem tbl (n + 1) then incr wl;
        if y + 1 < gh && Hashtbl.mem tbl (n + gw) then incr wl;
        if Grid.via_above g n then incr vias)
      nodes;
    !wl + (cost.Maze.Cost.via * !vias)
  in
  (* [Drc.Check.connected_components _ = 1] over the hoisted list: flood
     along the same adjacency (same-layer planar steps, via links). *)
  let connected net =
    match cells.(net) with
    | [] -> false
    | start :: _ as nodes ->
        let tbl = Hashtbl.create 64 in
        List.iter (fun n -> Hashtbl.replace tbl n ()) nodes;
        let seen = Hashtbl.create 64 in
        Hashtbl.replace seen start ();
        let stack = ref [ start ] in
        let count = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          match !stack with
          | [] -> continue_ := false
          | n :: rest ->
              stack := rest;
              incr count;
              let push m =
                if Hashtbl.mem tbl m && not (Hashtbl.mem seen m) then begin
                  Hashtbl.replace seen m ();
                  stack := m :: !stack
                end
              in
              let x = Grid.node_x g n and y = Grid.node_y g n in
              if x + 1 < gw then push (n + 1);
              if x > 0 then push (n - 1);
              if y + 1 < gh then push (n + gw);
              if y > 0 then push (n - gw);
              if Grid.via_above g n then push (Grid.node_above g n);
              if Grid.via_below g n then push (Grid.node_below g n)
        done;
        !count = List.length nodes
  in
  let wirelength_before = Outcome.total_wirelength g problem in
  let vias_before = Outcome.total_vias g in
  let improved_nets = ref 0 in
  let passes = ref 0 in
  let planned = ref 0 in
  (* The cost the net would measure AFTER committing [segs], computed
     without touching the grid: committing releases every non-pin cell
     and occupies the planned paths, so the future cell set is exactly
     pins ∪ path nodes; wirelength is the same-layer adjacencies within
     it.  Vias afterwards are the planned layer-change positions plus
     the current vias that survive the rip — only those whose both layer
     cells are pins, since releasing either cell clears a via. *)
  let hyp_cost ~pins ~segs =
    let w = Grid.width g and h = Grid.height g in
    let tbl = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace tbl n ()) pins;
    List.iter
      (fun (path, _) -> List.iter (fun n -> Hashtbl.replace tbl n ()) path)
      segs;
    let wl = ref 0 in
    Hashtbl.iter
      (fun n () ->
        let x = Grid.node_x g n and y = Grid.node_y g n in
        if x + 1 < w && Hashtbl.mem tbl (n + 1) then incr wl;
        if y + 1 < h && Hashtbl.mem tbl (n + w) then incr wl)
      tbl;
    let vias = Hashtbl.create 16 in
    List.iter
      (fun (path, _) ->
        let rec steps = function
          | a :: (b :: _ as rest) ->
              let la = Grid.node_layer g a and lb = Grid.node_layer g b in
              if la <> lb then
                Hashtbl.replace vias (Grid.planar g a, min la lb) ();
              steps rest
          | [] | [ _ ] -> ()
        in
        steps path)
      segs;
    (* Surviving current vias: a pair whose both cells are pins (counted
       once, from its lower cell). *)
    List.iter
      (fun n ->
        if Grid.via_above g n && List.mem (Grid.node_above g n) pins then
          Hashtbl.replace vias (Grid.planar g n, Grid.node_layer g n) ())
      pins;
    !wl + (cost.Maze.Cost.via * Hashtbl.length vias)
  in
  (* Rip the old wiring (pins stay) and occupy the planned paths — the
     same grid trajectory a mutating reroute would have taken, so the
     measured result equals the hypothetical cost above. *)
  let commit ~net ~pins ~segs =
    List.iter
      (fun n -> if not (List.mem n pins) then Grid.release g n)
      cells.(net);
    List.iter
      (fun (path, _) -> ignore (Maze.Route.occupy_path g ~net path))
      segs;
    (* The committed cell set is exactly pins ∪ path nodes. *)
    let tbl = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace tbl n ()) pins;
    List.iter
      (fun (path, _) -> List.iter (fun n -> Hashtbl.replace tbl n ()) path)
      segs;
    cells.(net) <- Hashtbl.fold (fun n () acc -> n :: acc) tbl []
  in
  (* Per-layer bounding boxes of the net's current wiring.  Every skip
     verdict reads the net's own cells (through [net_cost] and the
     connectivity check), wherever they lie — possibly outside the
     planning searches' windows — so certificates must cover them too:
     an external rip of this net must always invalidate its cert. *)
  let nlayers = Grid.layers g in
  let own_boxes net =
    let b = Array.make nlayers None in
    List.iter
      (fun n ->
        let x = Grid.node_x g n and y = Grid.node_y g n in
        let l = Grid.node_layer g n in
        let r = Geom.Rect.make x y x y in
        b.(l) <-
          Some (match b.(l) with None -> r | Some b -> Geom.Rect.hull b r))
      cells.(net);
    b
  in
  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Geom.Rect.hull a b)
  in
  let improve_net net =
    let record_cert () =
      match cache with
      | Some c ->
          let rc = Maze.Cache.read_certs ws in
          let own = own_boxes net in
          Maze.Cache.record_cert c ~net
            ~certs:(Array.init nlayers (fun l -> join rc.(l) own.(l)))
            ~owned:(List.length cells.(net))
      | None -> ()
    in
    let cert_hit =
      match cache with
      | Some c ->
          Maze.Cache.cert_status c ~net ~owned:(List.length cells.(net))
          = `Hit
      | None -> false
    in
    (* A clean certificate proves the last no-commit verdict replays.
       The verdict read the planning searches' region and the net's own
       wiring; since then only blocking writes landed there (freeing
       writes invalidate, and the net's cell count is unchanged — its
       own releases land inside its recorded wiring boxes).  Blocks can
       remove candidate routes but never create a cheaper one, so "no
       plan beats the current wiring" still holds and the whole visit
       skips without touching the grid — exactly what the baseline's
       plan-and-reject would do. *)
    if cert_hit then false
    else if connected net then begin
      let old_cost = net_cost net in
      let pins = pin_nodes net in
      let netdef = Netlist.Problem.net problem net in
      let passable = Maze.Route.passable_default g ~net in
      (* Lower-bound oracle for two-pin nets under the wire=1 objective:
         if even an admissible lower bound on any reroute reaches the
         current cost, replanning provably cannot improve — skip without
         searching.  The field must bound the MEASURED cost (wirelength +
         via × vias), which has no wrong-way term, so it is built with
         [wrong_way = 0]: any path's measured cost ≥ its same-layer steps
         + via × layer changes = its cost under that relaxed model ≥ the
         field's bound.  The decision read only the field's window (plus
         the net's own wiring), so certify the window hulled with the
         net's own per-layer wiring boxes. *)
      let oracle_skip =
        match cache with
        | Some c when cost.Maze.Cost.wire = 1 && pins <> [] ->
            (* The skip decision read the pins (static) and the net's own
               wiring (through [old_cost]); a field decision additionally
               read the field's window.  Certify exactly that. *)
            let skip window =
              Maze.Cache.note_bound_skip c;
              let own = own_boxes net in
              Maze.Cache.record_cert c ~net
                ~certs:(Array.init nlayers (fun l -> join window own.(l)))
                ~owned:(List.length cells.(net));
              true
            in
            (* Tier 1 — closed-form floor, no field, any pin count: a
               connected set containing all pins crosses every planar
               column and row boundary of the pin bounding box (at least
               half-perimeter wire edges) and joins the layers with at
               least one via per layer gap the pins span.  A net already
               at that cost is at its global optimum. *)
            let x0, y0, x1, y1, lmin, lmax =
              List.fold_left
                (fun (x0, y0, x1, y1, lmin, lmax) p ->
                  let x = Grid.node_x g p and y = Grid.node_y g p in
                  let l = Grid.node_layer g p in
                  ( min x0 x,
                    min y0 y,
                    max x1 x,
                    max y1 y,
                    min lmin l,
                    max lmax l ))
                (max_int, max_int, min_int, min_int, max_int, min_int)
                pins
            in
            let hp = x1 - x0 + (y1 - y0) in
            let floor_cost =
              (cost.Maze.Cost.wire * hp)
              + (cost.Maze.Cost.via * (lmax - lmin))
            in
            if floor_cost >= old_cost then skip None
            else begin
              match netdef.Netlist.Net.pins with
              | [ a; b ] ->
                  (* Tier 2, two-pin nets — the journal-repaired distance
                     field.  The escape bound must be able to reach
                     [old_cost], so the margin adapts to the net's detour
                     excess: with wire = 1 the escape term is
                     L1 + 2(margin+1) >= old_cost at this margin. *)
                  let pa = Maze.Route.pin_node g a
                  and pb = Maze.Route.pin_node g b in
                  let margin =
                    max field_margin ((old_cost - hp) / 2)
                  in
                  let f =
                    Maze.Cache.field c ~net
                      ~cost:{ cost with Maze.Cost.wrong_way = 0 }
                      ~passable ~targets:[ pb ] ~around:[ pa; pb ] ~margin
                  in
                  if Maze.Lowerbound.bound f g ~source:pa >= old_cost then
                    skip (Some (Maze.Lowerbound.window f))
                  else false
              | _ -> false
            end
        | _ -> false
      in
      if oracle_skip then false
      else begin
        Maze.Workspace.clear_touched ws;
        incr planned;
        match
          Maze.Route.plan_net ~use_astar:plan_use_astar ~kernel:plan_kernel
            ~window:plan_window ~memo:incremental g ws ~cost ~passable netdef
        with
        | None ->
            record_cert ();
            false
        | Some segs ->
            let new_cost = hyp_cost ~pins ~segs in
            if new_cost < old_cost then begin
              commit ~net ~pins ~segs;
              record_cert ();
              true
            end
            else begin
              record_cert ();
              false
            end
      end
    end
    else false
  in
  let continue = ref true in
  while !continue && !passes < max_passes do
    incr passes;
    let improved_this_pass = ref false in
    List.iter
      (fun net ->
        if improve_net net then begin
          incr improved_nets;
          improved_this_pass := true
        end)
      candidates;
    continue := !improved_this_pass
  done;
  let hits1, stale1, builds1, repairs1 = counters () in
  let bound1 = match cache with Some c -> Maze.Cache.bound_skips c | None -> 0 in
  {
    passes = !passes;
    improved_nets = !improved_nets;
    wirelength_before;
    wirelength_after = Outcome.total_wirelength g problem;
    vias_before;
    vias_after = Outcome.total_vias g;
    planned = !planned;
    skipped_cert = hits1 - hits0;
    skipped_bound = bound1 - bound0;
    cache_stale = stale1 - stale0;
    field_builds = builds1 - builds0;
    field_repairs = repairs1 - repairs0;
  }
