type stats = {
  passes : int;
  improved_nets : int;
  wirelength_before : int;
  wirelength_after : int;
  vias_before : int;
  vias_after : int;
}

let net_cost ~cost g ~net =
  let m = Outcome.measure_net g ~net in
  m.Outcome.wirelength + (cost.Maze.Cost.via * m.Outcome.vias)

let net_vias g ~net =
  (* Via positions currently owned by the net (for exact restore). *)
  let acc = ref [] in
  Grid.iter_planar g (fun ~x ~y ->
      if Grid.has_via g ~x ~y && Grid.occ_at g ~layer:0 ~x ~y = net then
        acc := (x, y) :: !acc);
  !acc

let refine ?(max_passes = 3) ?(cost = Maze.Cost.default) problem g =
  let ws = Maze.Workspace.create g in
  let has_fixed_prewire net =
    List.exists
      (fun (pw : Netlist.Problem.prewire) ->
        pw.Netlist.Problem.pre_fixed && pw.Netlist.Problem.pre_net = net)
      problem.Netlist.Problem.prewires
  in
  let pin_nodes net =
    List.filter_map
      (fun (id, pin) ->
        if id = net then Some (Maze.Route.pin_node g pin) else None)
      (Netlist.Problem.pin_cells problem)
  in
  let candidates =
    List.filter
      (fun net -> not (has_fixed_prewire net))
      (Netlist.Problem.nontrivial_net_ids problem)
  in
  let wirelength_before = Outcome.total_wirelength g problem in
  let vias_before = Outcome.total_vias g in
  let improved_nets = ref 0 in
  let passes = ref 0 in
  let improve_net net =
    (* Only refine nets that are currently complete. *)
    if Drc.Check.connected_components g ~net = 1 then begin
      let old_cost = net_cost ~cost g ~net in
      let saved_nodes = Grid.occupied_nodes g ~net in
      let saved_vias = net_vias g ~net in
      let pins = pin_nodes net in
      let restore () =
        (* Release whatever the reroute left, then replay the old route. *)
        List.iter
          (fun n -> if not (List.mem n pins) then Grid.release g n)
          (Grid.occupied_nodes g ~net);
        List.iter (fun n -> Grid.occupy g ~net n) saved_nodes;
        List.iter (fun (x, y) -> Grid.set_via g ~x ~y) saved_vias
      in
      List.iter
        (fun n -> if not (List.mem n pins) then Grid.release g n)
        saved_nodes;
      match
        Maze.Route.route_net g ws ~cost (Netlist.Problem.net problem net)
      with
      | Error _ ->
          restore ();
          false
      | Ok _ ->
          let new_cost = net_cost ~cost g ~net in
          if new_cost < old_cost then true
          else begin
            restore ();
            false
          end
    end
    else false
  in
  let continue = ref true in
  while !continue && !passes < max_passes do
    incr passes;
    let improved_this_pass = ref false in
    List.iter
      (fun net ->
        if improve_net net then begin
          incr improved_nets;
          improved_this_pass := true
        end)
      candidates;
    continue := !improved_this_pass
  done;
  {
    passes = !passes;
    improved_nets = !improved_nets;
    wirelength_before;
    wirelength_after = Outcome.total_wirelength g problem;
    vias_before;
    vias_after = Outcome.total_vias g;
  }
