(** Net ordering for the sequential routing queue.

    Routing order strongly affects sequential routers; the default routes
    long nets first (they have the fewest detour options), which is also the
    heuristic the ablation experiment E6 evaluates. *)

val arrange :
  Config.order -> seed:int -> Netlist.Problem.t -> int list -> int list
(** Reorder the given net ids (a subset of the problem's nets) according to
    the strategy.  Deterministic for a fixed seed. *)

val rotate_for_restart : seed:int -> attempt:int -> int list -> int list
(** Derive the ordering used by restart number [attempt] (attempt 0 returns
    the list unchanged; later attempts are seeded shuffles). *)
