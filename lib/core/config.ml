type order =
  | As_given
  | Hpwl_ascending
  | Hpwl_descending
  | Pins_descending
  | Congestion_descending
  | Random

type t = {
  cost : Maze.Cost.t;
  use_astar : bool;
  order : order;
  enable_weak : bool;
  enable_strong : bool;
  max_weak_passes : int;
  ripup_penalty : int;
  rip_budget_factor : int;
  restarts : int;
  seed : int;
}

let default =
  {
    cost = Maze.Cost.default;
    use_astar = false;
    order = Hpwl_descending;
    enable_weak = true;
    enable_strong = true;
    max_weak_passes = 3;
    ripup_penalty = 30;
    rip_budget_factor = 16;
    restarts = 1;
    seed = 1;
  }

let maze_only = { default with enable_weak = false; enable_strong = false }

let weak_only = { default with enable_strong = false }

let order_name = function
  | As_given -> "as-given"
  | Hpwl_ascending -> "hpwl-asc"
  | Hpwl_descending -> "hpwl-desc"
  | Pins_descending -> "pins-desc"
  | Congestion_descending -> "congestion-desc"
  | Random -> "random"

let describe c =
  let strategy =
    match (c.enable_weak, c.enable_strong) with
    | true, true -> "weak+strong"
    | true, false -> "weak-only"
    | false, true -> "strong-only"
    | false, false -> "maze-only"
  in
  Printf.sprintf "%s, order=%s%s%s" strategy (order_name c.order)
    (if c.use_astar then ", astar" else "")
    (if c.restarts > 1 then Printf.sprintf ", restarts=%d" c.restarts else "")
