type order =
  | As_given
  | Hpwl_ascending
  | Hpwl_descending
  | Pins_descending
  | Congestion_descending
  | Random

type audit_level = Audit_off | Audit_phase | Audit_net

type t = {
  cost : Maze.Cost.t;
  use_astar : bool;
  kernel : Maze.Search.kernel;
  window_margin : int option;
  order : order;
  enable_weak : bool;
  enable_strong : bool;
  max_weak_passes : int;
  ripup_penalty : int;
  rip_budget_factor : int;
  restarts : int;
  seed : int;
  deadline : float option;
  max_expanded : int option;
  max_searches : int option;
  audit : audit_level;
  jobs : int;  (* routing domains; 0 = Parallel.default_jobs () *)
  wave_halo : int;  (* bbox inflation for wave independence *)
  cost_cache : bool;  (* dirty-region failure-replay cache *)
  incremental : bool;  (* incremental search reuse: hfield memo + improve cache *)
}

let default =
  {
    cost = Maze.Cost.default;
    use_astar = false;
    kernel = Maze.Search.Binary_heap;
    window_margin = None;
    order = Hpwl_descending;
    enable_weak = true;
    enable_strong = true;
    max_weak_passes = 3;
    ripup_penalty = 30;
    rip_budget_factor = 16;
    restarts = 1;
    seed = 1;
    deadline = None;
    max_expanded = None;
    max_searches = None;
    audit = Audit_off;
    jobs = 1;
    wave_halo = 2;
    cost_cache = true;
    incremental = true;
  }

let maze_only = { default with enable_weak = false; enable_strong = false }

let weak_only = { default with enable_strong = false }

let order_name = function
  | As_given -> "as-given"
  | Hpwl_ascending -> "hpwl-asc"
  | Hpwl_descending -> "hpwl-desc"
  | Pins_descending -> "pins-desc"
  | Congestion_descending -> "congestion-desc"
  | Random -> "random"

let audit_name = function
  | Audit_off -> "off"
  | Audit_phase -> "phase"
  | Audit_net -> "net"

let describe c =
  let strategy =
    match (c.enable_weak, c.enable_strong) with
    | true, true -> "weak+strong"
    | true, false -> "weak-only"
    | false, true -> "strong-only"
    | false, false -> "maze-only"
  in
  Printf.sprintf "%s, order=%s%s%s%s%s%s%s%s%s" strategy (order_name c.order)
    (if c.use_astar then ", astar" else "")
    (match c.kernel with
    | Maze.Search.Binary_heap -> ""
    | k -> Printf.sprintf ", kernel=%s" (Maze.Search.kernel_name k))
    (match c.window_margin with
    | None -> ""
    | Some m -> Printf.sprintf ", window=%d" m)
    (if c.restarts > 1 then Printf.sprintf ", restarts=%d" c.restarts else "")
    (match c.deadline with
    | None -> ""
    | Some s -> Printf.sprintf ", deadline=%gs" s)
    (match c.max_expanded with
    | None -> ""
    | Some m -> Printf.sprintf ", max-expanded=%d" m)
    (match c.max_searches with
    | None -> ""
    | Some m -> Printf.sprintf ", max-searches=%d" m)
    (match c.audit with
    | Audit_off -> ""
    | a -> Printf.sprintf ", audit=%s" (audit_name a))
  ^ (if c.jobs <> 1 then
       (if c.jobs = 0 then ", jobs=auto" else Printf.sprintf ", jobs=%d" c.jobs)
       ^ (if c.wave_halo <> 2 then Printf.sprintf ", halo=%d" c.wave_halo
          else "")
     else "")
  ^ (if not c.cost_cache then ", no-cost-cache" else "")
  ^ if not c.incremental then ", no-incremental" else ""
