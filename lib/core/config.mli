(** Router configuration.

    The default configuration is the full system as described by the paper:
    weighted maze search, weak modification (shoving), then strong
    modification (rip-up and reroute) with an escalating penalty and a global
    modification budget guaranteeing termination.  The ablation experiments
    switch the individual features off. *)

type order =
  | As_given  (** problem order *)
  | Hpwl_ascending  (** shortest bounding box first *)
  | Hpwl_descending  (** longest bounding box first (default) *)
  | Pins_descending  (** most pins first, HPWL descending as tie-break *)
  | Congestion_descending
      (** nets crossing the most contested area first (estimated from the
          pre-routing demand map) *)
  | Random  (** seeded shuffle *)

type audit_level =
  | Audit_off  (** no auditing (default) *)
  | Audit_phase
      (** run the {!Audit} invariant checks after every engine phase
          (maze pass, retry sweeps, end of each restart attempt) *)
  | Audit_net  (** additionally audit after every net routed — slow *)

type t = {
  cost : Maze.Cost.t;
  use_astar : bool;  (** A-star instead of plain Dijkstra (same costs) *)
  kernel : Maze.Search.kernel;
      (** frontier data structure of every maze search: the classical
          binary heap (default), or the Dial bucket queue exploiting the
          small bounded integer edge costs — equal-cost results, O(1)
          queue operations *)
  window_margin : int option;
      (** when set, restrict each search to the endpoints' bounding box
          grown by this margin, with automatic widen-and-retry on failure
          (same completeness, far fewer expansions on large regions) *)
  order : order;
  enable_weak : bool;  (** weak modification: segment shoving *)
  enable_strong : bool;  (** strong modification: rip-up and reroute *)
  max_weak_passes : int;
      (** shove-and-retry rounds per blocked connection (default 3) *)
  ripup_penalty : int;
      (** base cost of crossing a cell of a foreign net; the effective
          penalty is [ripup_penalty × (1 + rip_count net)], so repeatedly
          ripped nets become progressively more expensive to disturb *)
  rip_budget_factor : int;
      (** total rip budget = factor × (number of nets); exhausting it
          disables strong modification, forcing termination (default 16) *)
  restarts : int;
      (** orderings attempted before giving up (default 1 = no restart);
          restarts > 1 reshuffles the queue with the seed *)
  seed : int;  (** tie-breaking and restart shuffles *)
  deadline : float option;
      (** wall-clock budget in seconds for the whole route call (restarts
          included); on expiry the engine returns its best-so-far layout
          with [status = Degraded Deadline].  [None] (default) = unlimited *)
  max_expanded : int option;
      (** total node-expansion budget across every search of the run *)
  max_searches : int option;  (** total maze-search budget for the run *)
  audit : audit_level;
      (** paranoia level: run the invariant auditor during routing and
          raise {!Audit.Inconsistent} on any violation *)
  jobs : int;
      (** routing domains for speculative wave parallelism: 1 (default) =
          fully sequential, 0 = [Util.Parallel.default_jobs ()], N > 1 =
          that many domains.  Layouts and stats are identical for every
          value on unbudgeted, chaos-free runs (see DESIGN.md §8) *)
  wave_halo : int;
      (** cells added around each net's pin bounding box when predicting
          spatial independence for wave formation (default 2); purely a
          scheduling heuristic — correctness comes from commit validation *)
  cost_cache : bool;
      (** dirty-region failure-replay cache (default [true]): a net whose
          route attempt failed without side effects is skipped on retry
          until the grid region its searches explored is written again *)
  incremental : bool;
      (** incremental search reuse (default [true], DESIGN.md §11): the
          engine memoizes the A* heuristic transform across searches with
          an unchanged target set, and refinement keeps a per-net
          {!Maze.Cache} — read-region certificates plus journal-repaired
          lower-bound fields — so clean nets are skipped instead of
          replanned.  Value-exact either way: layouts and costs are
          byte-identical with the flag on or off *)
}

val default : t

val maze_only : t
(** One-shot sequential maze router: no weak, no strong modification.  The
    classical baseline the paper improves upon. *)

val weak_only : t
(** Shoving enabled, rip-up disabled. *)

val audit_name : audit_level -> string

val describe : t -> string
(** Short human-readable summary, e.g. ["weak+strong, order=hpwl-desc"].
    Budget and audit fields are mentioned only when set, so configurations
    without them render exactly as before. *)
