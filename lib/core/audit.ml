exception Inconsistent of string

let check_grid problem grid =
  let findings = ref [] in
  let add fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  let nets = Netlist.Problem.net_count problem in
  Grid.iter_nodes grid (fun n ->
      let v = Grid.occ grid n in
      if v <> Grid.obstacle && (v < Grid.free || v > nets) then
        add "node %d: occupancy %d is not a net id of the problem" n v);
  Grid.iter_via_pairs grid (fun ~layer ~x ~y ->
      let a = Grid.occ_at grid ~layer ~x ~y
      and b = Grid.occ_at grid ~layer:(layer + 1) ~x ~y in
      if a <= 0 || a <> b then
        add "orphaned via at (%d,%d) pair %d: layer owners %d/%d" x y layer a
          b);
  List.iter
    (fun (id, (p : Netlist.Net.pin)) ->
      let v = Grid.occ_at grid ~layer:p.layer ~x:p.x ~y:p.y in
      if v <> id then
        add "pin of net %d at (%d,%d,l%d) owned by %d" id p.x p.y p.layer v)
    (Netlist.Problem.pin_cells problem);
  List.iter
    (fun (o : Netlist.Problem.obstruction) ->
      Geom.Rect.iter o.obs_rect (fun x y ->
          if Grid.in_bounds grid ~x ~y then
            let layers =
              match o.obs_layer with
              | Some l -> [ l ]
              | None -> List.init (Grid.layers grid) Fun.id
            in
            List.iter
              (fun layer ->
                if Grid.occ_at grid ~layer ~x ~y <> Grid.obstacle then
                  add "obstruction cell (%d,%d,l%d) is not an obstacle" x y
                    layer)
              layers))
    problem.Netlist.Problem.obstructions;
  List.rev !findings

let check_net_connected problem grid id =
  let nodes = Grid.occupied_nodes grid ~net:id in
  match nodes with
  | [] -> [ Printf.sprintf "net %d: marked routed but owns no cells" id ]
  | seed :: _ ->
      (* Flood the net's own cells from one of them. *)
      let seen = Hashtbl.create 64 in
      let queue = Queue.create () in
      let visit n =
        if Grid.occ grid n = id && not (Hashtbl.mem seen n) then begin
          Hashtbl.replace seen n ();
          Queue.add n queue
        end
      in
      visit seed;
      let w = Grid.width grid and h = Grid.height grid in
      while not (Queue.is_empty queue) do
        let n = Queue.pop queue in
        let x = Grid.node_x grid n and y = Grid.node_y grid n in
        if x + 1 < w then visit (n + 1);
        if x > 0 then visit (n - 1);
        if y + 1 < h then visit (n + w);
        if y > 0 then visit (n - w);
        if Grid.via_above grid n then visit (Grid.node_above grid n);
        if Grid.via_below grid n then visit (Grid.node_below grid n)
      done;
      let findings = ref [] in
      List.iter
        (fun n ->
          if not (Hashtbl.mem seen n) then
            findings :=
              Printf.sprintf "net %d: cell (%d,%d,l%d) disconnected" id
                (Grid.node_x grid n) (Grid.node_y grid n)
                (Grid.node_layer grid n)
              :: !findings)
        nodes;
      List.iter
        (fun (p : Netlist.Net.pin) ->
          let n = Grid.node grid ~layer:p.layer ~x:p.x ~y:p.y in
          if not (Hashtbl.mem seen n) then
            findings :=
              Printf.sprintf "net %d: pin (%d,%d,l%d) disconnected" id p.x p.y
                p.layer
              :: !findings)
        (Netlist.Problem.net problem id).Netlist.Net.pins;
      List.rev !findings

let require ~where = function
  | [] -> ()
  | findings ->
      raise
        (Inconsistent
           (Printf.sprintf "%s: %s" where (String.concat "; " findings)))
