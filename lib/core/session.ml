type t = {
  config : Config.t;
  chaos : Chaos.t;
  mutable problem : Netlist.Problem.t;
  mutable grid : Grid.t;
  mutable frozen : (string, unit) Hashtbl.t;
      (* keyed by name: survives renumbering *)
}

(* Transactional core: every public mutation snapshots the session state
   and restores it on failure, so callers never observe a half-applied
   mutation — not even when a budget trip or an injected fault fires in
   the middle of a rebuild. *)
let snapshot st = (st.problem, Grid.copy st.grid, Hashtbl.copy st.frozen)

let restore st (problem, grid, frozen) =
  st.problem <- problem;
  st.grid <- grid;
  st.frozen <- frozen

let transactionally st f =
  let saved = snapshot st in
  match f () with
  | Ok _ as ok -> ok
  | Error _ as e ->
      restore st saved;
      e
  | exception Chaos.Injected_fault msg ->
      restore st saved;
      Error msg
  | exception exn ->
      restore st saved;
      raise exn

let problem st = st.problem

let grid st = st.grid

let net_id st name =
  Option.map
    (fun (n : Netlist.Net.t) -> n.Netlist.Net.id)
    (Netlist.Problem.find_net st.problem name)

let is_frozen_name st name = Hashtbl.mem st.frozen name

let is_frozen st ~net =
  is_frozen_name st (Netlist.Problem.net st.problem net).Netlist.Net.name

let is_routed st ~net =
  let n = Netlist.Problem.net st.problem net in
  Netlist.Net.pin_count n = 0
  || Drc.Check.connected_components st.grid ~net <= 1

(* Wiring a net owns beyond its pins, as prewire cell triples. *)
let route_cells problem g ~net =
  let pins =
    List.filter_map
      (fun (id, (p : Netlist.Net.pin)) ->
        if id = net then
          Some (p.Netlist.Net.layer, p.Netlist.Net.x, p.Netlist.Net.y)
        else None)
      (Netlist.Problem.pin_cells problem)
  in
  List.filter_map
    (fun node ->
      let cell =
        (Grid.node_layer g node, Grid.node_x g node, Grid.node_y g node)
      in
      if List.mem cell pins then None else Some cell)
    (Grid.occupied_nodes g ~net)

(* The problem description rebuilt around [new_nets], carrying over the
   wiring of every surviving net (matched by name) as pre-wiring.  Pure:
   reads the session, mutates nothing. *)
let rebuilt_problem st ?(keep_wiring = fun _ -> true) new_nets =
  let old = st.problem in
  let prewires =
    List.filter_map
      (fun (n : Netlist.Net.t) ->
        let name = n.Netlist.Net.name in
        match Netlist.Problem.find_net old name with
        | None -> None
        | Some old_net ->
            if not (keep_wiring name) then None
            else
              let cells =
                route_cells old st.grid ~net:old_net.Netlist.Net.id
              in
              if cells = [] then None
              else
                Some
                  {
                    Netlist.Problem.pre_net = n.Netlist.Net.id;
                    pre_cells = cells;
                    pre_fixed = is_frozen_name st name;
                  })
      new_nets
  in
  Netlist.Problem.make ~kind:old.Netlist.Problem.kind
    ~layers:old.Netlist.Problem.layers
    ~layer_dirs:old.Netlist.Problem.layer_dirs
    ~obstructions:old.Netlist.Problem.obstructions ~prewires
    ~insts:old.Netlist.Problem.insts ~name:old.Netlist.Problem.name
    ~width:old.Netlist.Problem.width ~height:old.Netlist.Problem.height
    new_nets

(* Rebuild problem + grid around a new net list. *)
let rebuild st ?keep_wiring new_nets =
  let problem = rebuilt_problem st ?keep_wiring new_nets in
  st.problem <- problem;
  (* Deliberately placed between the two state updates: an injected crash
     here leaves the session visibly inconsistent unless the caller's
     transaction rolls back — exactly what the chaos suite exercises. *)
  Chaos.maybe_crash st.chaos;
  st.grid <- Netlist.Problem.instantiate problem

let current_nets st = Array.to_list st.problem.Netlist.Problem.nets

let sync ?keep_wiring st = rebuild st ?keep_wiring (current_nets st)

let create ?(config = Config.default) ?(chaos = Chaos.none) problem =
  let st =
    {
      config;
      chaos;
      problem;
      grid = Netlist.Problem.instantiate problem;
      frozen = Hashtbl.create 8;
    }
  in
  (* Nets arriving with fixed pre-wiring stay untouchable for the whole
     session. *)
  List.iter
    (fun (pw : Netlist.Problem.prewire) ->
      if pw.Netlist.Problem.pre_fixed then
        Hashtbl.replace st.frozen
          (Netlist.Problem.net problem pw.Netlist.Problem.pre_net)
            .Netlist.Net.name ())
    problem.Netlist.Problem.prewires;
  st

(* Shared core of [route]/[try_route]: run the engine over the synced
   problem and either commit the resulting grid or roll the session back.
   [commit_degraded] decides the fate of budget-tripped results: the
   interactive API commits them (a consistent best-so-far layout), the
   service path rolls them back so a request that blows its SLO leaves
   the session exactly as it found it. *)
let route_core st ?budget ~commit_degraded () =
  let saved = snapshot st in
  try
    sync st;
    let result =
      Engine.route ~config:st.config ?budget ~chaos:st.chaos st.problem
    in
    match result.Engine.status with
    | Outcome.Degraded reason when not commit_degraded ->
        restore st saved;
        Error reason
    | Outcome.Complete | Outcome.Degraded _ | Outcome.Infeasible ->
        st.grid <- result.Engine.grid;
        Ok result.Engine.stats
  with exn ->
    (* An exception — injected fault, audit failure — always rolls back. *)
    restore st saved;
    raise exn

let config st = st.config

let route ?budget st =
  match route_core st ?budget ~commit_degraded:true () with
  | Ok stats -> stats
  | Error _ -> assert false (* commit_degraded:true never returns Error *)

let try_route ?budget st = route_core st ?budget ~commit_degraded:false ()

let add_net st ~name pins =
  transactionally st @@ fun () ->
  if Netlist.Problem.has_insts st.problem then
    Error "problem has an unrealized placement section; place it first \
           (netlist surgery would dangle instance-pin references)"
  else if Netlist.Problem.find_net st.problem name <> None then
    Error (Printf.sprintf "net %S already exists" name)
  else begin
    let free (p : Netlist.Net.pin) =
      Grid.in_bounds st.grid ~x:p.Netlist.Net.x ~y:p.Netlist.Net.y
      && Grid.is_free st.grid
           (Grid.node st.grid ~layer:p.Netlist.Net.layer ~x:p.Netlist.Net.x
              ~y:p.Netlist.Net.y)
    in
    match List.find_opt (fun p -> not (free p)) pins with
    | Some p ->
        Error
          (Format.asprintf "pin %a is not on a free cell" Netlist.Net.pp_pin p)
    | None ->
        let id = Netlist.Problem.net_count st.problem + 1 in
        (match Netlist.Net.make ~id ~name pins with
        | exception Invalid_argument msg -> Error msg
        | net ->
            (match rebuild st (current_nets st @ [ net ]) with
            | exception Invalid_argument msg -> Error msg
            | () -> Ok id))
  end

let renumber nets =
  List.mapi
    (fun i (n : Netlist.Net.t) ->
      Netlist.Net.make ~cls:n.Netlist.Net.cls ~id:(i + 1)
        ~name:n.Netlist.Net.name n.Netlist.Net.pins)
    nets

let remove_net st ~net =
  transactionally st @@ fun () ->
  if Netlist.Problem.has_insts st.problem then
    Error "problem has an unrealized placement section; place it first \
           (net removal renumbers ids and would dangle instance-pin \
           references)"
  else if net < 1 || net > Netlist.Problem.net_count st.problem then
    Error (Printf.sprintf "unknown net %d" net)
  else if is_frozen st ~net then Error "net is frozen; thaw it first"
  else begin
    let keep =
      List.filter
        (fun (n : Netlist.Net.t) -> n.Netlist.Net.id <> net)
        (current_nets st)
    in
    rebuild st (renumber keep);
    Ok ()
  end

let rip st ~net =
  transactionally st @@ fun () ->
  if net < 1 || net > Netlist.Problem.net_count st.problem then
    Error (Printf.sprintf "unknown net %d" net)
  else if is_frozen st ~net then Error "net is frozen; thaw it first"
  else begin
    let name = (Netlist.Problem.net st.problem net).Netlist.Net.name in
    sync ~keep_wiring:(fun n -> n <> name) st;
    Ok ()
  end

let freeze st ~net =
  if net < 1 || net > Netlist.Problem.net_count st.problem then
    Error (Printf.sprintf "unknown net %d" net)
  else if not (is_routed st ~net) then Error "net is not routed"
  else begin
    Hashtbl.replace st.frozen
      (Netlist.Problem.net st.problem net).Netlist.Net.name ();
    Ok ()
  end

let thaw st ~net =
  if net < 1 || net > Netlist.Problem.net_count st.problem then
    Error (Printf.sprintf "unknown net %d" net)
  else begin
    Hashtbl.remove st.frozen
      (Netlist.Problem.net st.problem net).Netlist.Net.name;
    Ok ()
  end

let verify st =
  let routed =
    List.filter
      (fun net -> is_routed st ~net)
      (List.init (Netlist.Problem.net_count st.problem) (fun i -> i + 1))
  in
  Drc.Check.check ~nets:routed st.problem st.grid

(* Wholesale replacement of the session's problem and grid — the commit
   step of pipeline stages (placement, full flow) that compute a new
   problem outside the session and hand the result back.  The caller
   owns nothing afterwards: the session adopts [grid] directly. *)
let install st ~problem ~grid =
  transactionally st @@ fun () ->
  if
    Grid.width grid <> problem.Netlist.Problem.width
    || Grid.height grid <> problem.Netlist.Problem.height
    || Grid.layers grid <> problem.Netlist.Problem.layers
  then Error "install: grid does not match the problem dimensions"
  else begin
    st.problem <- problem;
    Chaos.maybe_crash st.chaos;
    st.grid <- grid;
    Ok ()
  end

let refine ?max_passes st =
  let saved = snapshot st in
  try
    sync st;
    Improve.refine ?max_passes ~cost:st.config.Config.cost
      ~incremental:st.config.Config.incremental st.problem st.grid
  with exn ->
    restore st saved;
    raise exn

(* --- durable checkpoints ---

   A checkpoint is the session's state as data: the current problem with
   every net's wiring carried as pre-wiring (the FORMAT.md printer/parser
   serialises it), plus the exact via positions and the frozen-name set.

   The vias travel separately because [Problem.instantiate]'s via
   inference is lossy: it only recognises a via when {e one prewire}
   holds both cells of a pair position, so a layer change at a pin (the
   pin cell is not part of the prewire) loses its via flag.  Restoring
   from (problem, vias) reproduces the grid byte-for-byte — occupancy
   from pins + prewires, via pair flags overwritten with the recorded
   set of (pair layer, x, y) triples. *)

let checkpoint st =
  let problem = rebuilt_problem st (current_nets st) in
  let vias = ref [] in
  Grid.iter_via_pairs st.grid (fun ~layer ~x ~y ->
      vias := (layer, x, y) :: !vias);
  let frozen =
    List.sort String.compare
      (Hashtbl.fold (fun name () acc -> name :: acc) st.frozen [])
  in
  (problem, List.rev !vias, frozen)

let of_checkpoint ?(config = Config.default) ?(chaos = Chaos.none) ~vias
    ~frozen problem =
  let grid = Netlist.Problem.instantiate problem in
  Grid.iter_via_pairs grid (fun ~layer ~x ~y -> Grid.clear_via ~layer grid ~x ~y);
  List.iter (fun (layer, x, y) -> Grid.set_via ~layer grid ~x ~y) vias;
  let st = { config; chaos; problem; grid; frozen = Hashtbl.create 8 } in
  List.iter (fun name -> Hashtbl.replace st.frozen name ()) frozen;
  st
