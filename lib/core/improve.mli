(** Post-route refinement: one-net-at-a-time rip-up-and-improve.

    After a complete routing, early nets often took detours around wiring
    that has since moved or never materialised.  The classical cleanup pass
    revisits each net: replan it against the final state of everything
    else and commit the new route only if it improves the weighted cost
    (wirelength + via cost × vias).  Planning is read-only ([plan_net]'s
    free ≡ self-owned equivalence makes the searches exact replicas of a
    rip-then-reroute), so a rejected replan leaves the grid — and its
    dirty journal — completely untouched.  The pass is strictly monotone —
    total cost never increases and completeness is preserved — and it
    iterates until a pass makes no further improvement (or [max_passes]
    is reached).

    With [incremental] (the default, DESIGN.md §11) a per-net
    {!Maze.Cache} carries read-region certificates and journal-repaired
    {!Maze.Lowerbound} fields across passes (and, via [cache], across
    refine calls): a net whose certificate region is untouched by any
    dirty rectangle is skipped outright, and a two-pin net whose
    admissible lower bound already reaches its current cost is skipped
    without searching.  Both skips replay decisions that a full replan
    would provably reproduce, so layouts, costs, pass counts and improved
    counts are byte-identical with the flag on or off.

    This is the quality knob the ablation experiment E8 measures. *)

type stats = {
  passes : int;  (** passes actually executed *)
  improved_nets : int;  (** net-visits that kept a better route *)
  wirelength_before : int;
  wirelength_after : int;
  vias_before : int;
  vias_after : int;
  planned : int;  (** net-visits that actually ran planning searches *)
  skipped_cert : int;  (** visits skipped on a clean read-region certificate *)
  skipped_bound : int;  (** visits skipped by the lower-bound oracle *)
  cache_stale : int;  (** certificates invalidated by dirty rectangles *)
  field_builds : int;  (** lower-bound fields built (or ring-wrap rebuilt) *)
  field_repairs : int;  (** incremental dirty-region field repairs *)
}

val refine :
  ?max_passes:int ->
  ?cost:Maze.Cost.t ->
  ?incremental:bool ->
  ?cache:Maze.Cache.t ->
  Netlist.Problem.t ->
  Grid.t ->
  stats
(** Refine the routed grid in place.  Only nets that are currently fully
    connected are touched; fixed pre-wiring is never moved ([max_passes]
    defaults to 3, [cost] to {!Maze.Cost.default}, [incremental] to
    [true]).  [cache] persists certificates and lower-bound fields across
    refine calls on the {e same} grid value — rip-up/reroute cycles
    between calls invalidate exactly the nets whose regions were written;
    a cache created for another grid is ignored and rebuilt. *)

val net_cost : cost:Maze.Cost.t -> Grid.t -> net:int -> int
(** The objective: same-layer wire edges + [cost.via] × vias of the net. *)
