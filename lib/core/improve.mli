(** Post-route refinement: one-net-at-a-time rip-up-and-improve.

    After a complete routing, early nets often took detours around wiring
    that has since moved or never materialised.  The classical cleanup pass
    revisits each net: rip it up, re-route it against the final state of
    everything else, and keep the new route only if it improves the
    weighted cost (wirelength + via cost × vias); otherwise the original
    route is restored exactly.  The pass is strictly monotone — total cost
    never increases and completeness is preserved — and it iterates until a
    pass makes no further improvement (or [max_passes] is reached).

    This is the quality knob the ablation experiment E8 measures. *)

type stats = {
  passes : int;  (** passes actually executed *)
  improved_nets : int;  (** net-visits that kept a better route *)
  wirelength_before : int;
  wirelength_after : int;
  vias_before : int;
  vias_after : int;
}

val refine :
  ?max_passes:int ->
  ?cost:Maze.Cost.t ->
  Netlist.Problem.t ->
  Grid.t ->
  stats
(** Refine the routed grid in place.  Only nets that are currently fully
    connected are touched; fixed pre-wiring is never moved ([max_passes]
    defaults to 3, [cost] to {!Maze.Cost.default}). *)

val net_cost : cost:Maze.Cost.t -> Grid.t -> net:int -> int
(** The objective: same-layer wire edges + [cost.via] × vias of the net. *)
