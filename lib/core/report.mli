(** Human-readable routing reports.

    Renders the outcome of a routing run the way a user of the CLI wants to
    read it: a per-net table (pins, wirelength, vias, status) followed by a
    summary block comparing totals against the problem's lower bounds. *)

val per_net_table :
  Netlist.Problem.t -> Engine.t -> Util.Table.t
(** One row per net: name, pins, cells, wirelength, vias, routed/failed. *)

val summary : Netlist.Problem.t -> Engine.t -> string
(** Multi-line summary: completion, totals, wirelength vs the
    half-perimeter lower bound, modification counts and search effort. *)

val render : Netlist.Problem.t -> Engine.t -> string
(** The full report: table then summary. *)
