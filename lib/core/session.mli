(** Incremental routing sessions: interactive add / remove / freeze /
    reroute.

    A session wraps an evolving problem and its current layout.  Every
    mutation (adding a net, removing one, freezing or thawing wiring)
    rebuilds the problem description with the surviving wiring carried over
    as pre-wiring — frozen nets as fixed pre-wires the router may never
    touch, the rest as loose pre-wires it may rip — and re-instantiates the
    grid.  [route] then runs the full engine over whatever is currently
    unrouted, leaving untouched wiring in place.

    This is the ECO workflow as a first-class API: route a block, freeze
    the critical nets, keep editing the rest.

    Every mutation is {b transactional}: it either completes, or the
    session's problem, grid and frozen set are restored to the exact
    pre-call state — including when a budget trip, an {!Audit} failure or
    an injected {!Chaos} fault fires in the middle of the call.  An
    injected fault surfaces as [Error] from the result-returning
    mutations, and re-raises from {!route}/{!refine} after rollback;
    either way the session stays usable and consistent. *)

type t

val create : ?config:Config.t -> ?chaos:Chaos.t -> Netlist.Problem.t -> t
(** A session over a fresh instantiation of the problem (nothing routed
    yet beyond the problem's own pre-wiring).  [chaos] (default
    {!Chaos.none}) is the fault injector threaded into every mutation and
    into the engine — test-only. *)

val problem : t -> Netlist.Problem.t
(** The current problem description (changes as nets are added/removed). *)

val config : t -> Config.t
(** The configuration the session was created with. *)

val grid : t -> Grid.t
(** The live layout.  Owned by the session: treat as read-only. *)

val net_id : t -> string -> int option
(** Look up a net id by name in the current problem. *)

val is_routed : t -> net:int -> bool
(** Whether the net's cells currently form one connected component. *)

val is_frozen : t -> net:int -> bool

val route : ?budget:Budget.t -> t -> Engine.stats
(** Route everything currently unrouted with the session's engine
    configuration.  Already-routed nets are carried as pre-wiring (rippable
    unless frozen).  Updates the session grid.  A degraded (budget-tripped)
    result still commits — it is a consistent best-so-far layout; an
    exception rolls the session back and re-raises.  [budget] (default:
    built from the session config's budget fields) caps this one call;
    create a fresh budget per call. *)

val try_route : ?budget:Budget.t -> t -> (Engine.stats, Budget.reason) result
(** Like {!route}, but a budget trip {e rolls the session back} to its
    exact pre-call state and returns [Error reason] instead of committing
    the degraded layout.  This is the all-or-nothing contract the routing
    service builds its per-request SLOs on: a request that runs out of
    budget mid-flight leaves its session untouched.  [Complete] and
    [Infeasible] results commit as in {!route}. *)

val add_net : t -> name:string -> Netlist.Net.pin list -> (int, string) Stdlib.result
(** Add a net (unrouted).  Its pins must be in bounds, off obstructions and
    on currently free cells.  Returns the new net's id.  Existing wiring is
    preserved.  Rejected while the problem carries an unrealized
    placement section: net-list surgery renumbers ids and would dangle
    instance-pin references — place and realize first (see
    {!install}). *)

val remove_net : t -> net:int -> (unit, string) Stdlib.result
(** Delete a net entirely: its wiring and pins disappear and the remaining
    nets are renumbered to stay consecutive (use {!net_id} to re-resolve
    names afterwards).  Frozen nets must be thawed first. *)

val rip : t -> net:int -> (unit, string) Stdlib.result
(** Unroute a net, keeping its pins.  Frozen nets cannot be ripped. *)

val freeze : t -> net:int -> (unit, string) Stdlib.result
(** Mark a routed net's wiring as fixed: no future [route], rip-up or
    shove may move it.  Fails if the net is not currently routed. *)

val thaw : t -> net:int -> (unit, string) Stdlib.result

val verify : t -> Drc.Check.violation list
(** Full DRC over the routed nets of the current layout (unrouted nets are
    excluded from the connectivity check). *)

val refine : ?max_passes:int -> t -> Improve.stats
(** Run the post-route refinement pass on the current layout (frozen nets
    untouched). *)

val install :
  t -> problem:Netlist.Problem.t -> grid:Grid.t -> (unit, string) Stdlib.result
(** Transactionally replace the session's problem and grid wholesale —
    the commit step for pipeline stages (placement, full flow) computed
    outside the session.  The grid must match the problem's dimensions;
    the session takes ownership of it.  Note for problems carrying a
    placement section: {!add_net}/{!remove_net} renumber nets, which
    would dangle instance-pin net references — realize the placement
    (via the flow pipeline) before netlist surgery. *)

(** {2 Durable checkpoints}

    The bridge to the service durability layer: a checkpoint captures
    the full session state as plain data — problem with wiring as
    pre-wiring (serialisable through {!Netlist.Parse}), the exact via
    positions (pre-wire via inference alone is lossy at pins), and the
    frozen-name set.  [of_checkpoint (checkpoint st)] reproduces the
    problem's net table, the grid byte-for-byte ({!Grid.equal}) and the
    frozen set. *)

val checkpoint :
  t -> Netlist.Problem.t * (int * int * int) list * string list
(** [(problem_with_wiring, via_pairs, frozen_names)] where each via is a
    [(pair_layer, x, y)] triple ([pair_layer] joins that layer with the
    one above).  Pure: the session is not mutated, no chaos point
    fires. *)

val of_checkpoint :
  ?config:Config.t ->
  ?chaos:Chaos.t ->
  vias:(int * int * int) list ->
  frozen:string list ->
  Netlist.Problem.t ->
  t
(** Rebuild a session from a checkpoint: instantiate the problem, then
    overwrite the inferred via flags with [vias] and the frozen set with
    [frozen] (ignoring what [pre_fixed] would have seeded). *)
