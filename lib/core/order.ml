let stable_by key ids =
  List.stable_sort (fun a b -> Int.compare (key a) (key b)) ids

let congestion_key problem =
  (* Average demand under each net's bounding box, scaled to an int key:
     nets through contested area route first, while there is still room. *)
  let demand = Netlist.Analysis.demand_map problem in
  let w = problem.Netlist.Problem.width in
  fun id ->
    let n = Netlist.Problem.net problem id in
    match Netlist.Net.bounding_box n with
    | None -> 0
    | Some box ->
        let total = ref 0.0 and cells = ref 0 in
        Geom.Rect.iter box (fun x y ->
            let d = demand.((y * w) + x) in
            if d <> infinity then begin
              total := !total +. d;
              incr cells
            end);
        if !cells = 0 then 0
        else int_of_float (1000.0 *. !total /. float_of_int !cells)

let arrange strategy ~seed problem ids =
  let hpwl id = Netlist.Net.half_perimeter (Netlist.Problem.net problem id) in
  let pins id = Netlist.Net.pin_count (Netlist.Problem.net problem id) in
  match strategy with
  | Config.As_given -> ids
  | Config.Hpwl_ascending -> stable_by hpwl ids
  | Config.Hpwl_descending -> stable_by (fun id -> -hpwl id) ids
  | Config.Pins_descending ->
      stable_by (fun id -> (-pins id * 10000) - hpwl id) ids
  | Config.Congestion_descending ->
      let key = congestion_key problem in
      stable_by (fun id -> -key id) ids
  | Config.Random -> Util.Prng.shuffle_list (Util.Prng.create seed) ids

let rotate_for_restart ~seed ~attempt ids =
  if attempt = 0 then ids
  else Util.Prng.shuffle_list (Util.Prng.create (seed + (attempt * 7919))) ids
