(** Measuring routing results on the grid.

    All quality numbers reported by tests, benches and the CLI are computed
    here from final grid occupancy (never from incremental counters, which
    rips and shoves would skew). *)

type net_stats = {
  net_id : int;
  cells : int;  (** grid cells owned by the net *)
  wirelength : int;  (** same-layer adjacency edges between owned cells *)
  vias : int;  (** vias whose cells the net owns *)
}

val measure_net : Grid.t -> net:int -> net_stats

val measure : Netlist.Problem.t -> Grid.t -> net_stats list
(** Stats for every net of the problem, ascending id. *)

val total_wirelength : Grid.t -> Netlist.Problem.t -> int

val total_vias : Grid.t -> int
(** All vias on the grid. *)
