(** Measuring routing results on the grid.

    All quality numbers reported by tests, benches and the CLI are computed
    here from final grid occupancy (never from incremental counters, which
    rips and shoves would skew). *)

type net_stats = {
  net_id : int;
  cells : int;  (** grid cells owned by the net *)
  wirelength : int;  (** same-layer adjacency edges between owned cells *)
  vias : int;  (** vias whose cells the net owns *)
}

(** How a routing run ended.  A degraded result is still a valid,
    DRC-clean layout — the best one found before the budget tripped —
    with the unrouted nets listed in the stats. *)
type status =
  | Complete  (** every non-trivial net routed *)
  | Degraded of Budget.reason
      (** the budget tripped; partial best-so-far result *)
  | Infeasible
      (** the engine exhausted its strategies with no budget pressure *)

val status_name : status -> string
(** ["complete"], ["degraded"] or ["infeasible"]. *)

val pp_status : Format.formatter -> status -> unit

(** Search-effort telemetry, the one set of numbers that {e is} taken from
    the engine's counters (grid occupancy cannot recover where expansions
    were spent): total nodes settled across all searches, split by the
    escalation phase that ran the search — plain maze routing, weak
    modification (shove planning), strong modification (rip-up planning) —
    plus a per-net breakdown indexed by [net id - 1].  Rendered by
    {!Report}; the phase split is how kernel/window wins show up in CLI
    reports. *)
type effort = {
  total_expanded : int;
  maze_expanded : int;
  weak_expanded : int;
  strong_expanded : int;
  per_net_expanded : int array;
}

val no_effort : nets:int -> effort
(** All-zero effort record for [nets] nets. *)

val pp_effort : Format.formatter -> effort -> unit

(** Telemetry of the speculative parallel drain and the dirty-region
    failure cache.  All-zero on sequential cache-less runs; none of these
    numbers affect the layout (see DESIGN.md §8). *)
type par_stats = {
  waves : int;  (** parallel waves executed *)
  speculated : int;  (** nets routed speculatively on the domain pool *)
  committed : int;  (** speculative routes committed unchanged *)
  conflicts : int;
      (** speculative routes invalidated by an earlier commit and re-routed
          sequentially *)
  wasted_expanded : int;
      (** node expansions of discarded speculative plans (conflicts only;
          failed speculations don't report their effort) *)
  cache_hits : int;  (** failed route attempts skipped by the cache *)
  cache_stale : int;  (** cache entries invalidated by dirty regions *)
}

val no_par : par_stats

val pp_par : Format.formatter -> par_stats -> unit

(** Telemetry of guide-windowed routing (the flow pipeline's global-route
    guides).  A {e hit} is a standard-phase search whose guided probe was
    certified pop-order identical to the full search; a {e fallback} paid
    a wasted probe and re-ran unwindowed.  Counted per search, identically
    at every jobs value. *)
type guide_stats = {
  guided : int;  (** nets that carried a guide rectangle *)
  hits : int;
  fallbacks : int;
}

val no_guide : guide_stats

val pp_guide : Format.formatter -> guide_stats -> unit

val measure_net : Grid.t -> net:int -> net_stats

val measure : Netlist.Problem.t -> Grid.t -> net_stats list
(** Stats for every net of the problem, ascending id. *)

val total_wirelength : Grid.t -> Netlist.Problem.t -> int

val total_vias : Grid.t -> int
(** All vias on the grid. *)
