exception Injected_fault of string

exception Killed of string

(* Kill-and-restart state: a countdown over the durability layer's kill
   points (WAL appends, snapshot writes).  [countdown] < 0 means
   disarmed but still counting opportunities — a counting pass tells the
   chaos harness how many crash points a trace traverses, so it can then
   re-run armed at each one. *)
type kill = { mutable countdown : int; mutable seen : int }

type t = {
  prng : Util.Prng.t option;  (* [None] disables every injection *)
  p_search_fail : float;
  p_trip : float;
  p_crash : float;
  mutable injected : int;
  kill : kill option;  (* [None] (the shared {!none}) never kills *)
  mutable paused : bool;
}

let none =
  {
    prng = None;
    p_search_fail = 0.;
    p_trip = 0.;
    p_crash = 0.;
    injected = 0;
    kill = None;
    paused = false;
  }

let create ?(search_fail = 0.) ?(trip = 0.) ?(crash = 0.) ~seed () =
  {
    prng = Some (Util.Prng.create seed);
    p_search_fail = search_fail;
    p_trip = trip;
    p_crash = crash;
    injected = 0;
    kill = Some { countdown = -1; seen = 0 };
    paused = false;
  }

let enabled t = match t.prng with None -> false | Some _ -> true

let roll t p =
  if t.paused then false
  else
    match t.prng with
    | None -> false
    | Some g -> p > 0. && Util.Prng.chance g p

let hit t =
  t.injected <- t.injected + 1;
  true

let fail_search t = roll t t.p_search_fail && hit t

let hook t =
  match t.prng with
  | None -> None
  | Some _ when t.p_trip <= 0. -> None
  | Some _ ->
      Some
        (fun () ->
          if roll t t.p_trip && hit t then
            Some (Budget.Cancelled "chaos: injected trip")
          else None)

let maybe_crash t =
  if roll t t.p_crash && hit t then
    raise (Injected_fault "chaos: injected crash")

let injected t = t.injected

let arm_kill t ~after =
  match t.kill with
  | None -> invalid_arg "Chaos.arm_kill: the shared none injector"
  | Some k -> k.countdown <- max 0 after

let disarm_kill t = match t.kill with None -> () | Some k -> k.countdown <- -1

let kill_points t = match t.kill with None -> 0 | Some k -> k.seen

let kill_point t name =
  match t.kill with
  | None -> ()
  | Some _ when t.paused -> ()
  | Some k ->
      k.seen <- k.seen + 1;
      if k.countdown = 0 then begin
        k.countdown <- -1;
        t.injected <- t.injected + 1;
        raise (Killed name)
      end
      else if k.countdown > 0 then k.countdown <- k.countdown - 1

let with_paused t f =
  if t.paused then f ()
  else begin
    t.paused <- true;
    Fun.protect ~finally:(fun () -> t.paused <- false) f
  end
