exception Injected_fault of string

type t = {
  prng : Util.Prng.t option;  (* [None] disables every injection *)
  p_search_fail : float;
  p_trip : float;
  p_crash : float;
  mutable injected : int;
}

let none =
  { prng = None; p_search_fail = 0.; p_trip = 0.; p_crash = 0.; injected = 0 }

let create ?(search_fail = 0.) ?(trip = 0.) ?(crash = 0.) ~seed () =
  {
    prng = Some (Util.Prng.create seed);
    p_search_fail = search_fail;
    p_trip = trip;
    p_crash = crash;
    injected = 0;
  }

let enabled t = match t.prng with None -> false | Some _ -> true

let roll t p =
  match t.prng with
  | None -> false
  | Some g -> p > 0. && Util.Prng.chance g p

let hit t =
  t.injected <- t.injected + 1;
  true

let fail_search t = roll t t.p_search_fail && hit t

let hook t =
  match t.prng with
  | None -> None
  | Some _ when t.p_trip <= 0. -> None
  | Some _ ->
      Some
        (fun () ->
          if roll t t.p_trip && hit t then
            Some (Budget.Cancelled "chaos: injected trip")
          else None)

let maybe_crash t =
  if roll t t.p_crash && hit t then
    raise (Injected_fault "chaos: injected crash")

let injected t = t.injected
