(** Deterministic fault injection for robustness tests.

    A chaos injector perturbs the engine and session at PRNG-chosen points:
    forced search failures (the search "finds nothing" even though a path
    exists), spurious budget trips (the run is cancelled mid-flight), and
    hard crashes ({!Injected_fault} raised from inside a mutation).  All
    decisions come from a seeded {!Util.Prng}, so a failing sequence
    replays exactly.  Production code paths use {!none}, which never
    injects and costs a test per call site. *)

exception Injected_fault of string
(** Raised by {!maybe_crash} at an injection point.  Transactional code
    (sessions) must roll back and may re-raise; it must never leave shared
    state inconsistent. *)

type t

val none : t
(** The no-op injector: never fails, trips, or crashes. *)

val create :
  ?search_fail:float -> ?trip:float -> ?crash:float -> seed:int -> unit -> t
(** Each probability is per opportunity: [search_fail] per maze search,
    [trip] per budget poll, [crash] per {!maybe_crash} call site. *)

val enabled : t -> bool

val fail_search : t -> bool
(** Roll for a forced search failure. *)

val hook : t -> (unit -> Budget.reason option) option
(** Budget hook rolling for a spurious [Cancelled] trip; [None] when
    injection is disabled or [trip] is zero. *)

val maybe_crash : t -> unit
(** Roll for a hard fault; raises {!Injected_fault} on a hit. *)

val injected : t -> int
(** Number of faults injected so far (all kinds). *)
