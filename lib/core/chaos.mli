(** Deterministic fault injection for robustness tests.

    A chaos injector perturbs the engine and session at PRNG-chosen points:
    forced search failures (the search "finds nothing" even though a path
    exists), spurious budget trips (the run is cancelled mid-flight), and
    hard crashes ({!Injected_fault} raised from inside a mutation).  All
    decisions come from a seeded {!Util.Prng}, so a failing sequence
    replays exactly.  Production code paths use {!none}, which never
    injects and costs a test per call site. *)

exception Injected_fault of string
(** Raised by {!maybe_crash} at an injection point.  Transactional code
    (sessions) must roll back and may re-raise; it must never leave shared
    state inconsistent. *)

type t

val none : t
(** The no-op injector: never fails, trips, or crashes. *)

val create :
  ?search_fail:float -> ?trip:float -> ?crash:float -> seed:int -> unit -> t
(** Each probability is per opportunity: [search_fail] per maze search,
    [trip] per budget poll, [crash] per {!maybe_crash} call site. *)

val enabled : t -> bool

val fail_search : t -> bool
(** Roll for a forced search failure. *)

val hook : t -> (unit -> Budget.reason option) option
(** Budget hook rolling for a spurious [Cancelled] trip; [None] when
    injection is disabled or [trip] is zero. *)

val maybe_crash : t -> unit
(** Roll for a hard fault; raises {!Injected_fault} on a hit. *)

val injected : t -> int
(** Number of faults injected so far (all kinds). *)

(** {2 Kill-and-restart faults}

    Unlike {!Injected_fault} — which transactional code rolls back and
    survives — {!Killed} simulates the {e process} dying: it is raised
    from inside the durability layer's kill points (mid-WAL-append,
    mid-snapshot-write, …) and must propagate all the way out.  A
    recovery test catches it at the top, discards every in-memory
    structure, and "restarts" by re-creating the server over the same
    data directory. *)

exception Killed of string
(** Carries the name of the kill point that fired. *)

val kill_point : t -> string -> unit
(** Traverse one kill point.  Counts the opportunity and raises
    {!Killed} if {!arm_kill}'s countdown has reached it.  A no-op on
    {!none} and while {!with_paused} is active. *)

val arm_kill : t -> after:int -> unit
(** Kill at the [(after+1)]-th kill point traversed from now ([after]
    points pass unharmed).  Each armed countdown fires at most once.
    @raise Invalid_argument on {!none}. *)

val disarm_kill : t -> unit

val kill_points : t -> int
(** Kill points traversed so far (armed or not) — run a trace once
    disarmed to learn how many crash opportunities it has, then re-run
    armed at any of them. *)

val with_paused : t -> (unit -> 'a) -> 'a
(** Run [f] with every injection (probabilistic faults {e and} kill
    points) suppressed — used while replaying a WAL, where injected
    faults would corrupt the very recovery they are meant to test. *)
