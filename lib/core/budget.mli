(** Routing budgets: cooperative cancellation and bounded effort.

    A budget caps a whole [Engine.route] call — including restarts — by
    wall-clock time, total node expansions, total searches, or an arbitrary
    injected predicate.  The engine polls the budget between nets and
    phases; the maze search polls it every few dozen expansions through
    {!stop_hook}.  A budget that trips stays tripped ([check] latches), so
    every layer sees a consistent answer and the engine can unwind to its
    best-so-far snapshot without racing the clock.

    A budget is single-use: create a fresh one per [Engine.route] call.
    The default budget is {!unlimited}, which costs nothing on the hot
    path ({!stop_hook} returns [None]). *)

type reason =
  | Deadline  (** wall-clock deadline passed *)
  | Expansion_limit  (** total expanded maze nodes exceeded the cap *)
  | Search_limit  (** total maze searches exceeded the cap *)
  | Cancelled of string  (** external [should_stop] hook fired *)

type t

val unlimited : unit -> t
(** Never trips on its own; hooks may still be attached later. *)

val create :
  ?deadline:float ->
  ?max_expanded:int ->
  ?max_searches:int ->
  ?hook:(unit -> reason option) ->
  unit ->
  t
(** [deadline] is seconds from now, measured on the monotonic clock.
    [max_expanded] caps the sum of node expansions over every search of
    the run (including searches that fail or are discarded by windowed
    retries).  [max_searches] caps the number of maze searches.  [hook]
    is polled by [check]; returning [Some r] trips the budget with [r]. *)

val is_unlimited : t -> bool
(** No limit set, no hook attached, not manually tripped. *)

val add_hook : t -> (unit -> reason option) -> unit
(** Compose an extra [should_stop] predicate; existing hooks run first. *)

val note_search : t -> unit
(** Record one completed maze search. *)

val note_expanded : t -> int -> unit
(** Record node expansions of a completed search. *)

val searches : t -> int

val expanded : t -> int

val check : ?in_flight:int -> t -> reason option
(** Poll the budget: returns the tripping reason, latching it so all later
    [check]/[tripped] calls agree.  [in_flight] adds expansions of the
    search currently running to the expansion test, so a search aborts as
    it crosses the cap rather than one search late. *)

val tripped : t -> reason option
(** Latched result of past [check]/[trip] calls; never polls the clock. *)

val peek : ?in_flight:int -> t -> reason option
(** Non-latching poll: the already-latched reason, or the limit that
    would trip now, without mutating the budget and without consulting
    hooks (hooks may be stateful — fault injectors — and must only run on
    the coordinating domain).  Safe to call from worker domains while the
    coordinator is quiescent; used as the stop predicate of speculative
    searches. *)

val trip : t -> reason -> unit
(** Force the budget into the tripped state (first reason wins). *)

val stop_hook : t -> (int -> bool) option
(** Cooperative cancellation closure for the search core: [f in_flight]
    is [true] when the search must abort.  [None] when the budget is
    unlimited, so an unbudgeted run pays zero overhead per expansion. *)

val reason_to_string : reason -> string

val pp_reason : Format.formatter -> reason -> unit
