(** Invariant auditor: problem/grid consistency checks.

    The auditor cross-checks a routing grid against the problem it was
    instantiated from: occupancy values must be legal net ids, vias must
    join two same-net cells, pins must be owned by their net, declared
    obstructions must still be obstacles, and routed nets must form a
    single connected component containing every pin.  The engine runs it
    after each phase (and optionally after each net) under
    [Config.audit]; the chaos tests run it to prove injected faults never
    corrupt shared state.

    Checks are pure and return human-readable findings; {!require} turns
    findings into an exception for use as a hard assertion. *)

exception Inconsistent of string
(** Raised by {!require}; the message lists every finding. *)

val check_grid : Netlist.Problem.t -> Grid.t -> string list
(** Structural consistency of the grid against its problem: occupancy
    range, via legality, pin ownership, obstruction integrity.  Empty when
    consistent. *)

val check_net_connected : Netlist.Problem.t -> Grid.t -> int -> string list
(** The net's owned cells form one connected component (planar adjacency
    plus vias) containing all its pins.  Only meaningful for nets the
    caller believes are fully routed. *)

val require : where:string -> string list -> unit
(** @raise Inconsistent when the finding list is non-empty, prefixing the
    message with [where]. *)
