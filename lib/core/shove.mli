(** Weak modification: shoving a foreign wire segment sideways.

    When a search is blocked by an already-routed net, the router first
    tries to *push* the blocking wiring out of the way rather than destroy
    it.  The unit move displaces one cell [b] of a straight through-segment
    (… a1 – b – a2 …) to the adjacent parallel track, splicing two jogs:

    {v
        before              after
      a1 · b · a2        a1 · . · a2
                          |       |
                         d1 — t — d2
    v}

    The move requires the three cells [d1, t, d2] to be free; it preserves
    the shoved net's connectivity by construction and lengthens it by two
    cells.  Junction cells, corner cells, via cells, pins and fixed wiring
    are never shoved. *)

type move = {
  moved_net : int;
  released : int list;  (** nodes vacated (the cell [b]) *)
  added : int list;  (** nodes newly claimed ([d1; t; d2]) *)
}

val try_shove :
  Grid.t -> protected:(int -> bool) -> node:int -> move option
(** Attempt to displace the (foreign) segment covering [node], trying both
    perpendicular directions.  On success the grid has been updated and the
    vacated [node] is free.  Returns [None] when the node is free, an
    obstacle, protected, not a straight through-cell, carries a via, or no
    adjacent track has room. *)
