type stats = {
  routed_nets : int;
  failed_nets : int list;
  total_wirelength : int;
  total_vias : int;
  rips : int;
  shoves : int;
  searches : int;
  expanded : int;
  effort : Outcome.effort;
  attempts : int;
  par : Outcome.par_stats;
  guide : Outcome.guide_stats;
}

(* The escalation mode a search serves, for the effort split. *)
type phase = Maze | Weak | Strong

type t = {
  grid : Grid.t;
  completed : bool;
  status : Outcome.status;
  stats : stats;
}

(* A recorded route failure: the attempt had no side effects, and every
   grid cell its searches could have read lies inside the per-layer
   certificate rectangles.  Until one of those regions is written again
   (checked against the grid's dirty journal from [since]), re-running the
   attempt would replay the same failure — so it is skipped. *)
type cache_entry = {
  certs : Geom.Rect.t option array;  (* one rectangle per layer *)
  since : Grid.mark;
}

type state = {
  problem : Netlist.Problem.t;
  config : Config.t;
  budget : Budget.t;
  chaos : Chaos.t;
  g : Grid.t;
  ws : Maze.Workspace.t;
  protected : Bytes.t;  (* pins of all nets and fixed prewiring *)
  route_nodes : int list array;  (* per net index: rippable owned nodes *)
  rip_count : int array;
  routed : bool array;
  in_queue : bool array;
  queue : int Queue.t;
  bbox : Geom.Rect.t option array;
      (* halo-inflated pin bbox per net index; None for trivial nets *)
  hard : bool array;
      (* the net's standard-mode search failed at least once: it needs
         escalation, so speculating it would waste a domain on a search
         that runs to exhaustion inside the wave barrier *)
  cache : cache_entry option array;
  guides : Geom.Rect.t option array;
      (* per net index: global-route guide window; empty array = unguided *)
  mutable rips_left : int;
  mutable rips : int;
  mutable shoves : int;
  mutable searches : int;
  mutable expanded : int;
  mutable expanded_maze : int;
  mutable expanded_weak : int;
  mutable expanded_strong : int;
  expanded_per_net : int array;
  mutable waves : int;
  mutable speculated : int;
  mutable committed : int;
  mutable conflicts : int;
  mutable wasted_expanded : int;
  mutable cache_hits : int;
  mutable cache_stale : int;
  mutable guide_hits : int;
  mutable guide_fallbacks : int;
}

let is_protected st n = Bytes.get st.protected n <> '\000'

let make_state config problem ~budget ~chaos ~guides =
  let g = Netlist.Problem.instantiate problem in
  let nets = Netlist.Problem.net_count problem in
  let protected = Bytes.make (Grid.node_count g) '\000' in
  List.iter
    (fun (_, pin) ->
      Bytes.set protected (Maze.Route.pin_node g pin) '\001')
    (Netlist.Problem.pin_cells problem);
  let route_nodes = Array.make nets [] in
  List.iter
    (fun (pw : Netlist.Problem.prewire) ->
      let nodes =
        List.map
          (fun (layer, x, y) -> Grid.node g ~layer ~x ~y)
          pw.Netlist.Problem.pre_cells
      in
      if pw.Netlist.Problem.pre_fixed then
        List.iter (fun n -> Bytes.set protected n '\001') nodes
      else
        let i = pw.Netlist.Problem.pre_net - 1 in
        route_nodes.(i) <- nodes @ route_nodes.(i))
    problem.Netlist.Problem.prewires;
  (* Instantiation dirtied the journal; seal it so both sequential and
     parallel drains start from the same journal state (they both seal at
     every later slot boundary). *)
  Grid.seal g;
  {
    problem;
    config;
    budget;
    chaos;
    g;
    ws = Maze.Workspace.create g;
    protected;
    route_nodes;
    rip_count = Array.make nets 0;
    routed = Array.make nets false;
    in_queue = Array.make nets false;
    queue = Queue.create ();
    bbox =
      (* The halo must cover what a search actually explores beyond the
         pin box: the window margin when windowed searches are on (their
         first probe spans bbox + margin), plus the configured slack. *)
      (let halo =
         config.Config.wave_halo
         + match config.Config.window_margin with Some m -> m + 1 | None -> 0
       in
       Array.init nets (fun i ->
           let n = Netlist.Problem.net problem (i + 1) in
           match n.Netlist.Net.pins with
           | [] | [ _ ] -> None
           | _ -> Netlist.Analysis.net_bbox ~halo n));
    hard = Array.make nets false;
    cache = Array.make nets None;
    guides;
    rips_left = config.Config.rip_budget_factor * max 1 nets;
    rips = 0;
    shoves = 0;
    searches = 0;
    expanded = 0;
    expanded_maze = 0;
    expanded_weak = 0;
    expanded_strong = 0;
    expanded_per_net = Array.make nets 0;
    waves = 0;
    speculated = 0;
    committed = 0;
    conflicts = 0;
    wasted_expanded = 0;
    cache_hits = 0;
    cache_stale = 0;
    guide_hits = 0;
    guide_fallbacks = 0;
  }

let enqueue st id =
  if not st.in_queue.(id - 1) then begin
    st.in_queue.(id - 1) <- true;
    Queue.add id st.queue
  end

(* Passability for the plain search mode: free or self-owned cells only. *)
let passable_block st ~net n =
  let v = Grid.occ st.g n in
  if v = Grid.free || v = net then Some 0 else None

(* Passability for planning through foreign nets (weak planning and strong
   modification): foreign rippable cells cost an escalating penalty. *)
let passable_penalized st ~net n =
  let v = Grid.occ st.g n in
  if v = Grid.free || v = net then Some 0
  else if v = Grid.obstacle then None
  else if is_protected st n then None
  else
    Some (st.config.Config.ripup_penalty * (1 + st.rip_count.(v - 1)))

(* A search under a tripped budget is skipped outright; a live budget is
   threaded into the search core as a cooperative stop hook.  The budget's
   expansion ledger also charges failed and aborted searches (via the
   hook's high-water mark, so within one polling interval of exact),
   whereas the engine's own stats keep their historical meaning of
   "expansions of successful searches". *)
let guide_for st net =
  if Array.length st.guides = 0 then None else st.guides.(net - 1)

let run_search st ~phase ~net ?guide ~passable ~sources ~targets () =
  if Budget.check st.budget <> None then None
  else if Chaos.fail_search st.chaos then begin
    st.searches <- st.searches + 1;
    Budget.note_search st.budget;
    None
  end
  else begin
    st.searches <- st.searches + 1;
    let kernel = st.config.Config.kernel
    and window = st.config.Config.window_margin in
    let high_water = ref 0 in
    let stop =
      match Budget.stop_hook st.budget with
      | None -> None
      | Some f ->
          Some
            (fun in_flight ->
              high_water := in_flight;
              f in_flight)
    in
    let search =
      match guide with
      | Some rect ->
          (* Guided standard-phase search: certified probe or unwindowed
             fallback ([Maze.Route.guided_search]); the tally transfer
             keeps hit/fallback counters jobs-invariant because the
             speculative commit path replays the same per-connection
             tallies. *)
          fun g ws ~cost ~passable ~sources ~targets () ->
            let tally = Maze.Route.no_tally () in
            let r =
              Maze.Route.guided_search
                ~use_astar:st.config.Config.use_astar ~kernel ~guide:rect
                ?stop ~memo:st.config.Config.incremental ~tally g ws ~cost
                ~passable ~sources ~targets ()
            in
            st.guide_hits <- st.guide_hits + tally.Maze.Route.ghits;
            st.guide_fallbacks <-
              st.guide_fallbacks + tally.Maze.Route.gfallbacks;
            r
      | None ->
          if st.config.Config.use_astar then
            (* The heuristic-transform memo is value-exact, so gating it on
               [incremental] only changes speed, never results. *)
            Maze.Search.run_astar ~kernel ?window ?stop
              ~memo:st.config.Config.incremental
          else Maze.Search.run ~kernel ?window ?stop
    in
    let result =
      search st.g st.ws ~cost:st.config.Config.cost ~passable ~sources
        ~targets ()
    in
    Budget.note_search st.budget;
    (match result with
    | Some r ->
        let e = r.Maze.Search.expanded in
        st.expanded <- st.expanded + e;
        Budget.note_expanded st.budget e;
        (match phase with
        | Maze -> st.expanded_maze <- st.expanded_maze + e
        | Weak -> st.expanded_weak <- st.expanded_weak + e
        | Strong -> st.expanded_strong <- st.expanded_strong + e);
        st.expanded_per_net.(net - 1) <- st.expanded_per_net.(net - 1) + e
    | None -> Budget.note_expanded st.budget !high_water);
    result
  end

(* Rip a foreign net: clear its rippable wiring and put it back in the
   routing queue.  Pins stay on the grid, so the net can always be
   re-attempted. *)
let rip_net st id =
  let i = id - 1 in
  Maze.Route.release_nodes st.g st.route_nodes.(i);
  st.route_nodes.(i) <- [];
  st.routed.(i) <- false;
  st.rip_count.(i) <- st.rip_count.(i) + 1;
  st.rips <- st.rips + 1;
  st.rips_left <- st.rips_left - 1;
  enqueue st id

let foreign_owners st ~net path =
  List.sort_uniq Int.compare
    (List.filter_map
       (fun n ->
         let v = Grid.occ st.g n in
         if v > 0 && v <> net then Some v else None)
       path)

(* Weak modification: plan a least-blocked path, try to shove every blocking
   cell sideways, report whether anything moved. *)
let weak_pass st ~net ~sources ~targets =
  match
    run_search st ~phase:Weak ~net
      ~passable:(passable_penalized st ~net)
      ~sources ~targets ()
  with
  | None -> false
  | Some plan ->
      let moved = ref false in
      List.iter
        (fun n ->
          let v = Grid.occ st.g n in
          if v > 0 && v <> net then
            match Shove.try_shove st.g ~protected:(is_protected st) ~node:n with
            | None -> ()
            | Some m ->
                st.shoves <- st.shoves + 1;
                moved := true;
                let i = m.Shove.moved_net - 1 in
                st.route_nodes.(i) <-
                  m.Shove.added
                  @ List.filter
                      (fun x -> not (List.mem x m.Shove.released))
                      st.route_nodes.(i))
        plan.Maze.Search.path;
      !moved

(* One tree-to-pin connection with escalation.  Returns the path found, or
   None if every enabled mode is exhausted. *)
let connect st ~net ~sources ~targets =
  let standard () =
    run_search st ~phase:Maze ~net
      ?guide:(guide_for st net)
      ~passable:(passable_block st ~net)
      ~sources ~targets ()
  in
  match standard () with
  | Some r -> Some (r, [])
  | None ->
      st.hard.(net - 1) <- true;
      let rec weak_loop pass =
        if (not st.config.Config.enable_weak)
           || pass >= st.config.Config.max_weak_passes
        then None
        else if not (weak_pass st ~net ~sources ~targets) then None
        else
          match standard () with
          | Some r -> Some (r, [])
          | None -> weak_loop (pass + 1)
      in
      let weak_result = weak_loop 0 in
      (match weak_result with
      | Some _ -> weak_result
      | None ->
          if st.config.Config.enable_strong && st.rips_left > 0 then
            match
              run_search st ~phase:Strong ~net
                ~passable:(passable_penalized st ~net)
                ~sources ~targets ()
            with
            | None -> None
            | Some r ->
                let victims = foreign_owners st ~net r.Maze.Search.path in
                Some (r, victims)
          else None)

(* After a net routes, release any of its wiring not connected to the pin
   component: pre-existing loose wiring the new route did not reuse would
   otherwise linger as floating metal.  Protected cells (fixed pre-wiring)
   are never released. *)
let prune_orphans st id =
  let g = st.g in
  let cells = Grid.occupied_nodes g ~net:id in
  match cells with
  | [] -> ()
  | _ ->
      let uf = Util.Union_find.create (Grid.node_count g) in
      List.iter
        (fun n ->
          let x = Grid.node_x g n and y = Grid.node_y g n in
          let layer = Grid.node_layer g n in
          if Grid.in_bounds g ~x:(x + 1) ~y
             && Grid.occ_at g ~layer ~x:(x + 1) ~y = id
          then Util.Union_find.union uf n (n + 1);
          if Grid.in_bounds g ~x ~y:(y + 1)
             && Grid.occ_at g ~layer ~x ~y:(y + 1) = id
          then Util.Union_find.union uf n (n + Grid.width g);
          if Grid.via_above g n && Grid.occ g (Grid.node_above g n) = id
          then Util.Union_find.union uf n (Grid.node_above g n);
          if Grid.via_below g n && Grid.occ g (Grid.node_below g n) = id
          then Util.Union_find.union uf n (Grid.node_below g n))
        cells;
      let net = Netlist.Problem.net st.problem id in
      let anchor =
        match net.Netlist.Net.pins with
        | pin :: _ -> Util.Union_find.find uf (Maze.Route.pin_node g pin)
        | [] -> (match cells with n :: _ -> Util.Union_find.find uf n | [] -> 0)
      in
      let orphaned n =
        Util.Union_find.find uf n <> anchor && not (is_protected st n)
      in
      let orphans = List.filter orphaned cells in
      if orphans <> [] then begin
        List.iter (Grid.release g) orphans;
        let i = id - 1 in
        st.route_nodes.(i) <-
          List.filter (fun n -> not (List.mem n orphans)) st.route_nodes.(i)
      end

(* Route one net completely (Prim-style tree growth with escalation per
   connection).  On failure the net's partial additions are rolled back. *)
let route_net st id =
  let net = Netlist.Problem.net st.problem id in
  match net.Netlist.Net.pins with
  | [] | [ _ ] -> true
  | first :: rest ->
      let session = ref [] in
      let tree = ref [ Maze.Route.pin_node st.g first ] in
      let remaining =
        ref (List.map (fun p -> Maze.Route.pin_node st.g p) rest)
      in
      let ok = ref true in
      while !ok && !remaining <> [] do
        match connect st ~net:id ~sources:!tree ~targets:!remaining with
        | None ->
            ok := false;
            Maze.Route.release_nodes st.g !session;
            session := []
        | Some (r, victims) ->
            List.iter (rip_net st) victims;
            let added = Maze.Route.occupy_path st.g ~net:id r.Maze.Search.path in
            session := added @ !session;
            tree := r.Maze.Search.path @ !tree;
            let reached =
              match List.rev r.Maze.Search.path with
              | last :: _ -> last
              | [] -> assert false
            in
            remaining := List.filter (fun n -> n <> reached) !remaining
      done;
      if !ok then begin
        let i = id - 1 in
        st.route_nodes.(i) <- !session @ st.route_nodes.(i);
        st.routed.(i) <- true;
        prune_orphans st id
      end;
      !ok

(* The auditor: structural problem/grid consistency (via [Audit]) plus the
   engine's own bookkeeping — tracked route nodes must be owned by their
   net, rip counters must balance the rip budget, and every net marked
   routed must be one connected component spanning its pins. *)
let run_audit st ~where =
  let findings = ref (Audit.check_grid st.problem st.g) in
  let add fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  let nets = Netlist.Problem.net_count st.problem in
  for i = 0 to nets - 1 do
    List.iter
      (fun n ->
        let v = Grid.occ st.g n in
        if v <> i + 1 then add "net %d: tracked route node %d owned by %d"
            (i + 1) n v)
      st.route_nodes.(i)
  done;
  let per_net_rips = Array.fold_left ( + ) 0 st.rip_count in
  if per_net_rips <> st.rips then
    add "rip counters disagree: per-net sum %d, total %d" per_net_rips st.rips;
  let initial = st.config.Config.rip_budget_factor * max 1 nets in
  if st.rips + st.rips_left <> initial then
    add "rip budget accounting broken: %d used + %d left <> %d initial"
      st.rips st.rips_left initial;
  for i = 0 to nets - 1 do
    if st.routed.(i) then
      findings :=
        List.rev_append
          (Audit.check_net_connected st.problem st.g (i + 1))
          !findings
  done;
  Audit.require ~where (List.rev !findings)

let audit_phase st ~where =
  if st.config.Config.audit <> Config.Audit_off then run_audit st ~where

let audit_net st ~where =
  if st.config.Config.audit = Config.Audit_net then run_audit st ~where

(* ------------------------------------------------------------------ *)
(* Dirty-region certificates: shared by the failure-replay cache and   *)
(* the speculative commit check.                                       *)
(* ------------------------------------------------------------------ *)

(* Certificate construction and validation live in [Maze.Cache]: the
   refinement pass shares the exact same read-region semantics. *)
let read_certs = Maze.Cache.read_certs

let region_clean st ~since certs =
  Maze.Cache.region_clean st.g ~since certs

let cache_valid st e = region_clean st ~since:e.since e.certs

(* Latched lookup at a routing slot: a stale entry is dropped (and
   counted) exactly once, so cache statistics evolve identically at every
   jobs value. *)
let cache_lookup st id =
  let i = id - 1 in
  match st.cache.(i) with
  | None -> `Miss
  | Some e ->
      if cache_valid st e then `Hit
      else begin
        st.cache.(i) <- None;
        st.cache_stale <- st.cache_stale + 1;
        `Miss
      end

(* Route one net at its slot, recording a replayable failure when the
   attempt provably had no side effects: no rips, no shoves, no budget
   trip (an aborted search is not a proof of infeasibility), no fault
   injection (the PRNG makes replay order-dependent).  The certificate is
   everything the workspace's searches expanded during the attempt —
   windowed probes and escalation searches included. *)
let attempt_net st id =
  let rips0 = st.rips and shoves0 = st.shoves in
  let recordable =
    st.config.Config.cost_cache && not (Chaos.enabled st.chaos)
  in
  if recordable then Maze.Workspace.clear_touched st.ws;
  let ok = route_net st id in
  if
    (not ok) && recordable && st.rips = rips0 && st.shoves = shoves0
    && Budget.tripped st.budget = None
  then begin
    (* Seal first: the attempt's rolled-back temporary writes must land in
       the journal before [since], or they would self-invalidate the
       entry. *)
    Grid.seal st.g;
    let certs = read_certs st.ws in
    st.cache.(id - 1) <- Some { certs; since = Grid.mark st.g }
  end;
  ok

(* Commit a validated speculative plan: occupy the recorded paths and
   charge searches/expansions exactly as the sequential standard-mode
   route of this net would have, so counters match a [jobs = 1] run.
   The plan's guide tally is replayed for the same reason. *)
let commit_spec st id segs tally =
  let i = id - 1 in
  st.guide_hits <- st.guide_hits + tally.Maze.Route.ghits;
  st.guide_fallbacks <- st.guide_fallbacks + tally.Maze.Route.gfallbacks;
  let session = ref [] in
  List.iter
    (fun (path, e) ->
      st.searches <- st.searches + 1;
      Budget.note_search st.budget;
      st.expanded <- st.expanded + e;
      Budget.note_expanded st.budget e;
      st.expanded_maze <- st.expanded_maze + e;
      st.expanded_per_net.(i) <- st.expanded_per_net.(i) + e;
      let added = Maze.Route.occupy_path st.g ~net:id path in
      session := added @ !session)
    segs;
  st.route_nodes.(i) <- !session @ st.route_nodes.(i);
  st.routed.(i) <- true;
  prune_orphans st id;
  st.committed <- st.committed + 1

(* One routing slot, shared verbatim by the sequential and parallel
   drains: pop bookkeeping, cache lookup, optional speculative commit,
   sequential fallback, failure tracking, audit, journal seal.  [spec]
   carries a speculative plan with its read certificates and the wave's
   journal mark. *)
let process_slot st failed ~spec id =
  let i = id - 1 in
  st.in_queue.(i) <- false;
  if not st.routed.(i) then begin
    let ok =
      match cache_lookup st id with
      | `Hit ->
          st.cache_hits <- st.cache_hits + 1;
          false
      | `Miss -> (
          match spec with
          | Some (since, Some segs, certs, tally)
            when region_clean st ~since certs ->
              commit_spec st id segs tally;
              true
          | Some (_, Some segs, _, _) ->
              (* An earlier commit wrote inside this plan's read set:
                 discard it and re-route against current costs. *)
              st.conflicts <- st.conflicts + 1;
              st.wasted_expanded <-
                st.wasted_expanded
                + List.fold_left (fun a (_, e) -> a + e) 0 segs;
              attempt_net st id
          | _ -> attempt_net st id)
    in
    if ok then failed := List.filter (fun f -> f <> id) !failed
    else if not (List.mem id !failed) then failed := id :: !failed;
    audit_net st ~where:(Printf.sprintf "after net %d" id)
  end;
  Grid.seal st.g

(* ------------------------------------------------------------------ *)
(* Wave formation and speculative execution.                           *)
(* ------------------------------------------------------------------ *)

(* Prefix-scan factor: how far past [jobs] speculation candidates the
   queue prefix may extend (cheap slots between candidates ride along). *)
let wave_span = 4

(* Scan the queue prefix (without popping — ripped wave-mates must still
   see [in_queue = true], exactly as in a sequential drain) and pick the
   speculation set: unrouted multi-pin nets without a valid cached
   failure, admitted while their halo-inflated pin boxes stay disjoint —
   or unconditionally up to [jobs] members, since commit-time validation
   is what guarantees correctness and narrow waves waste domains.  The
   first rejected candidate ends the wave.  Returns the slot prefix in
   queue order and the admitted ids. *)
let form_wave st ~jobs =
  let cap = wave_span * jobs in
  let prefix = ref [] and admitted = ref [] and n_admitted = ref 0 in
  let count = ref 0 in
  let rec scan seq =
    if !count < cap then
      match seq () with
      | Seq.Nil -> ()
      | Seq.Cons (id, tl) ->
          let i = id - 1 in
          let eligible =
            (not st.routed.(i))
            && (not st.hard.(i))
            && st.bbox.(i) <> None
            && (match st.cache.(i) with
               | Some e -> not (cache_valid st e)
               | None -> true)
          in
          if not eligible then begin
            prefix := id :: !prefix;
            incr count;
            scan tl
          end
          else begin
            let r = Option.get st.bbox.(i) in
            let disjoint =
              List.for_all
                (fun r' -> not (Geom.Rect.overlap r r'))
                !admitted
            in
            if disjoint then begin
              admitted := r :: !admitted;
              incr n_admitted;
              prefix := (-id) :: !prefix;
              incr count;
              scan tl
            end
            (* An overlapping candidate ends the wave: it must route
               after the commits it would conflict with. *)
          end
  in
  scan (Queue.to_seq st.queue);
  let slots = List.rev_map (fun id -> abs id) !prefix in
  let specs = List.rev (List.filter_map (fun id -> if id < 0 then Some (-id) else None) !prefix) in
  (slots, specs)

(* Speculatively plan one net on a worker domain: read-only against the
   live grid, with a pooled per-domain workspace.  The budget is polled
   through the non-latching [Budget.peek] so domains never race on the
   latch; an abort simply yields no plan and the slot falls back to the
   sequential path (where the latching check runs). *)
let speculate st ~stop ws id =
  Maze.Workspace.reset ws;
  Maze.Workspace.clear_touched ws;
  let net = Netlist.Problem.net st.problem id in
  (* Bail out of hopeless speculations early: a standard route of an easy
     net settles within a few window areas; far past that it is almost
     certainly widening toward a full-grid failure, which would stall the
     whole wave behind one domain.  The sequential slot (which can
     escalate) is the right place for that work. *)
  let cap =
    match st.bbox.(id - 1) with
    | Some r -> 16 * Geom.Rect.area r
    | None -> max_int
  in
  let stop =
    Some
      (fun in_flight ->
        in_flight > cap
        || match stop with Some f -> f in_flight | None -> false)
  in
  let tally = Maze.Route.no_tally () in
  let plan =
    Maze.Route.plan_net ~use_astar:st.config.Config.use_astar
      ~kernel:st.config.Config.kernel ?window:st.config.Config.window_margin
      ?stop ~memo:st.config.Config.incremental
      ?guide:(guide_for st id) ~tally st.g ws
      ~cost:st.config.Config.cost
      ~passable:(passable_block st ~net:id)
      net
  in
  let certs = read_certs ws in
  (id, plan, certs, tally)

let drain_par st pool failed =
  let jobs = Util.Parallel.Pool.jobs pool in
  let stop =
    if Budget.is_unlimited st.budget then None
    else Some (fun in_flight -> Budget.peek ~in_flight st.budget <> None)
  in
  while (not (Queue.is_empty st.queue)) && Budget.check st.budget = None do
    let slots, specs = form_wave st ~jobs in
    match specs with
    | [] | [ _ ] ->
        (* No exploitable parallelism at the head: one sequential slot. *)
        let id = Queue.pop st.queue in
        process_slot st failed ~spec:None id
    | _ ->
        st.waves <- st.waves + 1;
        st.speculated <- st.speculated + List.length specs;
        let since = Grid.mark st.g in
        let results =
          Util.Parallel.Pool.map pool (fun ws id -> speculate st ~stop ws id)
            specs
        in
        let tbl = Hashtbl.create (2 * List.length specs) in
        List.iter
          (fun (id, plan, certs, tally) ->
            Hashtbl.replace tbl id (since, plan, certs, tally))
          results;
        (* Commit in queue order, re-checking the latched budget before
           every pop — the exact loop condition of a sequential drain, so
           a budget trip leaves the same nets unattempted. *)
        let continue_ = ref true in
        List.iter
          (fun id ->
            if !continue_ then
              if Budget.check st.budget <> None then continue_ := false
              else begin
                let popped = Queue.pop st.queue in
                assert (popped = id);
                process_slot st failed ~spec:(Hashtbl.find_opt tbl id) id
              end)
          slots
  done

let drain ?pool st =
  let failed = ref [] in
  (match pool with
  | Some pool -> drain_par st pool failed
  | None ->
      while (not (Queue.is_empty st.queue)) && Budget.check st.budget = None do
        let id = Queue.pop st.queue in
        process_slot st failed ~spec:None id
      done);
  !failed

(* After the queue drains, blocked nets get fresh chances: other nets may
   have been ripped or shoved since they failed.  Each sweep must make
   progress (route at least one failed net) to continue. *)
let rec retry_failed ?pool st failed =
  match failed with
  | [] -> []
  | _ when Budget.check st.budget <> None -> failed
  | _ ->
      List.iter (enqueue st) failed;
      let still_failed = drain ?pool st in
      audit_phase st ~where:"after retry sweep";
      if List.length still_failed < List.length failed then
        retry_failed ?pool st still_failed
      else still_failed

let route_once config problem order_ids ~budget ~chaos ~pool ~guides =
  let st = make_state config problem ~budget ~chaos ~guides in
  let pool = pool st.g in
  List.iter (enqueue st) order_ids;
  let failed = drain ?pool st in
  audit_phase st ~where:"after queue drain";
  let failed = retry_failed ?pool st failed in
  ignore (failed : int list);
  (* Derive the failed set from the routed flags rather than the drain
     bookkeeping: when the budget trips mid-queue, nets never attempted
     must be reported failed too.  For an uninterrupted run the two sets
     are identical. *)
  let failed =
    List.filter
      (fun id -> not st.routed.(id - 1))
      (Netlist.Problem.nontrivial_net_ids problem)
  in
  audit_phase st ~where:"end of attempt";
  let routed_nets =
    Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 st.routed
  in
  let stats =
    {
      routed_nets;
      failed_nets = failed;
      total_wirelength = Outcome.total_wirelength st.g problem;
      total_vias = Outcome.total_vias st.g;
      rips = st.rips;
      shoves = st.shoves;
      searches = st.searches;
      expanded = st.expanded;
      effort =
        {
          Outcome.total_expanded = st.expanded;
          maze_expanded = st.expanded_maze;
          weak_expanded = st.expanded_weak;
          strong_expanded = st.expanded_strong;
          per_net_expanded = Array.copy st.expanded_per_net;
        };
      attempts = 1;
      par =
        {
          Outcome.waves = st.waves;
          speculated = st.speculated;
          committed = st.committed;
          conflicts = st.conflicts;
          wasted_expanded = st.wasted_expanded;
          cache_hits = st.cache_hits;
          cache_stale = st.cache_stale;
        };
      guide =
        {
          Outcome.guided =
            Array.fold_left
              (fun acc g -> if g = None then acc else acc + 1)
              0 st.guides;
          hits = st.guide_hits;
          fallbacks = st.guide_fallbacks;
        };
    }
  in
  let status =
    if failed = [] then Outcome.Complete
    else
      match Budget.tripped budget with
      | Some reason -> Outcome.Degraded reason
      | None -> Outcome.Infeasible
  in
  { grid = st.g; completed = failed = []; status; stats }

let better a b =
  (* true when [a] beats [b]. *)
  match (a.completed, b.completed) with
  | true, false -> true
  | false, true -> false
  | true, true | false, false ->
      let fa = List.length a.stats.failed_nets
      and fb = List.length b.stats.failed_nets in
      if fa <> fb then fa < fb
      else if a.stats.total_vias <> b.stats.total_vias then
        a.stats.total_vias < b.stats.total_vias
      else a.stats.total_wirelength < b.stats.total_wirelength

(* Restarts combine two classic tricks: the nets that failed last attempt
   are routed first next time (they were the hardest to fit), and the rest
   of the queue is reshuffled with a fresh seed. *)
let restart_order ~seed ~attempt ~last_failed base_order =
  let shuffled = Order.rotate_for_restart ~seed ~attempt base_order in
  let failed_first =
    List.filter (fun id -> List.mem id last_failed) shuffled
  in
  let others = List.filter (fun id -> not (List.mem id last_failed)) shuffled in
  failed_first @ others

let route ?(config = Config.default) ?budget ?chaos ?guides problem =
  let guides =
    match guides with
    | None -> [||]
    | Some a ->
        if Array.length a <> Netlist.Problem.net_count problem then
          invalid_arg "Engine.route: guides array length <> net count";
        (* The byte-identity certificate of a guided probe relies on
           bucket-queue pop-order identity and on the guide replacing the
           window outright; reject configs that break either premise. *)
        if config.Config.kernel <> Maze.Search.Buckets then
          invalid_arg "Engine.route: guides require the buckets kernel";
        if config.Config.window_margin <> None then
          invalid_arg "Engine.route: guides are exclusive with window_margin";
        a
  in
  let budget =
    match budget with
    | Some b -> b
    | None ->
        Budget.create ?deadline:config.Config.deadline
          ?max_expanded:config.Config.max_expanded
          ?max_searches:config.Config.max_searches ()
  in
  let chaos = match chaos with Some c -> c | None -> Chaos.none in
  (match Chaos.hook chaos with
  | Some h -> Budget.add_hook budget h
  | None -> ());
  (* Speculation is disabled under fault injection: the chaos PRNG makes
     search outcomes depend on global search order, which speculative
     planning would perturb.  Sequential fallback keeps chaos runs exact. *)
  let jobs =
    if config.Config.jobs = 0 then Util.Parallel.default_jobs ()
    else max 1 config.Config.jobs
  in
  let use_par = jobs > 1 && not (Chaos.enabled chaos) in
  let pool_cell = ref None in
  let pool g =
    if not use_par then None
    else
      Some
        (match !pool_cell with
        | Some p -> p
        | None ->
            (* Per-domain workspaces are created lazily inside their
               domains; the grid only supplies dimensions, which are
               identical across restart attempts. *)
            let p =
              Util.Parallel.Pool.create ~jobs ~init:(fun _ ->
                  Maze.Workspace.create g)
            in
            pool_cell := Some p;
            p)
  in
  let ids = Netlist.Problem.nontrivial_net_ids problem in
  let base_order =
    Order.arrange config.Config.order ~seed:config.Config.seed problem ids
  in
  let max_attempts = max 1 config.Config.restarts in
  let with_attempts r n = { r with stats = { r.stats with attempts = n } } in
  (* The budget is shared across restart attempts, and the final status
     reflects the whole run: an attempt kept from before the trip is still
     Degraded, because better orderings were cut short. *)
  let finalize r =
    let status =
      if r.completed then Outcome.Complete
      else
        match Budget.tripped budget with
        | Some reason -> Outcome.Degraded reason
        | None -> Outcome.Infeasible
    in
    { r with status }
  in
  let rec attempts i best =
    if i >= max_attempts then with_attempts best max_attempts
    else if Budget.check budget <> None then with_attempts best i
    else begin
      let order =
        restart_order ~seed:config.Config.seed ~attempt:i
          ~last_failed:best.stats.failed_nets base_order
      in
      let result = route_once config problem order ~budget ~chaos ~pool ~guides in
      let best = if better result best then result else best in
      if best.completed then with_attempts best (i + 1)
      else attempts (i + 1) best
    end
  in
  Fun.protect
    ~finally:(fun () ->
      match !pool_cell with
      | Some p -> Util.Parallel.Pool.shutdown p
      | None -> ())
    (fun () ->
      let first =
        route_once config problem base_order ~budget ~chaos ~pool ~guides
      in
      finalize
        (if first.completed || max_attempts = 1 then with_attempts first 1
         else attempts 1 first))

let pp_stats fmt s =
  Format.fprintf fmt
    "routed=%d failed=[%s] wl=%d vias=%d rips=%d shoves=%d searches=%d %a"
    s.routed_nets
    (String.concat "," (List.map string_of_int s.failed_nets))
    s.total_wirelength s.total_vias s.rips s.shoves s.searches
    Outcome.pp_effort s.effort;
  (* Parallel/cache telemetry appears only when something happened, so
     sequential cache-less runs render exactly as before. *)
  if s.par <> Outcome.no_par then
    Format.fprintf fmt " %a" Outcome.pp_par s.par;
  if s.guide <> Outcome.no_guide then
    Format.fprintf fmt " %a" Outcome.pp_guide s.guide
