(** The incremental rip-up-and-reroute routing engine.

    Nets are routed sequentially in a configurable order.  Each pin-to-tree
    connection is attempted in three escalating modes:

    + {b search} — weighted maze search through free and self-owned cells;
    + {b weak modification} — if blocked, plan a least-blocked path, shove
      the blocking foreign segments sideways ({!Shove}), and retry, up to
      [max_weak_passes] rounds;
    + {b strong modification} — if still blocked, search with foreign cells
      passable at penalty [ripup_penalty × (1 + rip count)], rip up every
      foreign net the chosen path crosses (their routes are cleared and the
      nets re-queued), then claim the path.

    Pins and fixed pre-wiring are never shoved nor ripped.  A global rip
    budget ([rip_budget_factor × nets]) bounds the total number of strong
    modifications, so the algorithm terminates in finite time: once the
    budget is exhausted, nets route with search + weak modification only,
    each of which strictly consumes bounded work.  Nets that remain blocked
    are reported as failed rather than looping. *)

type stats = {
  routed_nets : int;
  failed_nets : int list;  (** net ids left unrouted, ascending *)
  total_wirelength : int;
  total_vias : int;
  rips : int;  (** strong modifications performed *)
  shoves : int;  (** weak modifications performed *)
  searches : int;  (** maze searches run *)
  expanded : int;  (** total nodes settled over all searches *)
  effort : Outcome.effort;
      (** the same total split by escalation phase and by net *)
  attempts : int;  (** restart attempts consumed (≥ 1) *)
}

type t = {
  grid : Grid.t;  (** final grid (of the best attempt) *)
  completed : bool;  (** every non-trivial net routed *)
  stats : stats;
}

val route : ?config:Config.t -> Netlist.Problem.t -> t
(** Route the whole problem on a freshly instantiated grid.  With
    [config.restarts > 1], several net orders are attempted and the best
    result (completion first, then fewest vias, then wirelength) is kept. *)

val pp_stats : Format.formatter -> stats -> unit
