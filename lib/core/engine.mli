(** The incremental rip-up-and-reroute routing engine.

    Nets are routed sequentially in a configurable order.  Each pin-to-tree
    connection is attempted in three escalating modes:

    + {b search} — weighted maze search through free and self-owned cells;
    + {b weak modification} — if blocked, plan a least-blocked path, shove
      the blocking foreign segments sideways ({!Shove}), and retry, up to
      [max_weak_passes] rounds;
    + {b strong modification} — if still blocked, search with foreign cells
      passable at penalty [ripup_penalty × (1 + rip count)], rip up every
      foreign net the chosen path crosses (their routes are cleared and the
      nets re-queued), then claim the path.

    Pins and fixed pre-wiring are never shoved nor ripped.  A global rip
    budget ([rip_budget_factor × nets]) bounds the total number of strong
    modifications, so the algorithm terminates in finite time: once the
    budget is exhausted, nets route with search + weak modification only,
    each of which strictly consumes bounded work.  Nets that remain blocked
    are reported as failed rather than looping.

    On top of the rip budget, a {!Budget.t} bounds the whole call by
    wall-clock deadline, total expansions, or search count.  The budget is
    polled between nets and phases and cooperatively inside each search;
    when it trips the engine {e never raises} — it stops starting work,
    unwinds (any half-routed net is rolled back), and returns the
    best-so-far DRC-clean layout with [status = Degraded reason] and the
    unrouted nets in [stats.failed_nets].  Without budget options the
    engine behaves exactly as an unbudgeted build. *)

type stats = {
  routed_nets : int;
  failed_nets : int list;  (** net ids left unrouted, ascending *)
  total_wirelength : int;
  total_vias : int;
  rips : int;  (** strong modifications performed *)
  shoves : int;  (** weak modifications performed *)
  searches : int;  (** maze searches run *)
  expanded : int;  (** total nodes settled over all searches *)
  effort : Outcome.effort;
      (** the same total split by escalation phase and by net *)
  attempts : int;  (** restart attempts consumed (≥ 1) *)
  par : Outcome.par_stats;
      (** speculative-wave and failure-cache telemetry of the winning
          attempt; all-zero for sequential cache-less runs *)
  guide : Outcome.guide_stats;
      (** guided-search telemetry of the winning attempt; all-zero for
          unguided runs *)
}

type t = {
  grid : Grid.t;  (** final grid (of the best attempt) *)
  completed : bool;  (** every non-trivial net routed *)
  status : Outcome.status;
      (** [Complete] iff [completed]; [Degraded] when a budget trip cut
          the run short; [Infeasible] when the engine ran out of
          strategies with no budget pressure *)
  stats : stats;
}

val route :
  ?config:Config.t -> ?budget:Budget.t -> ?chaos:Chaos.t ->
  ?guides:Geom.Rect.t option array ->
  Netlist.Problem.t -> t
(** Route the whole problem on a freshly instantiated grid.  With
    [config.restarts > 1], several net orders are attempted and the best
    result (completion first, then fewest vias, then wirelength) is kept.

    [budget] (default: built from the config's [deadline] /
    [max_expanded] / [max_searches] fields, i.e. unlimited when unset) is
    shared across all restart attempts.  [chaos] (default {!Chaos.none})
    is the fault injector used by the robustness tests; its spurious-trip
    hook is composed into the budget.  With [config.audit] above
    [Audit_off] the invariant auditor runs after each engine phase and
    raises {!Audit.Inconsistent} on any violation.

    With [config.jobs] ≠ 1 the drain routes spatially independent queue
    prefixes speculatively on a pool of domains and commits the plans in
    deterministic queue order, validating each against the grid's dirty
    journal; invalidated plans are re-routed sequentially at their slot.
    On unbudgeted, chaos-free runs the layout {e and} the stats are
    identical for every [jobs] value (see DESIGN.md §8 for the argument);
    under a budget, trip timing may differ between jobs values (each value
    still honors the budget).  Under fault injection speculation is
    disabled.  The [config.cost_cache] failure-replay cache never changes
    the layout — it only skips provably-replayed failures — and its
    statistics are jobs-invariant too.

    [guides] (per net index, [None] entries unguided) restricts each
    guided net's standard-phase searches to its guide rectangle via the
    certified probe of {!Maze.Search.run_guided}: a certified probe is
    pop-order identical to the full search, an uncertified one falls back
    to the full window — so the layout is byte-identical to the same run
    without guides, guided or not, at every jobs value.  Requires
    [config.kernel = Buckets] and [config.window_margin = None] (raises
    [Invalid_argument] otherwise); escalation searches are never guided. *)

val pp_stats : Format.formatter -> stats -> unit
