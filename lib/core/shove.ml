type move = { moved_net : int; released : int list; added : int list }

let try_shove g ~protected ~node =
  let owner = Grid.occ g node in
  if owner <= 0 || protected node then None
  else begin
    let layer = Grid.node_layer g node in
    let x = Grid.node_x g node and y = Grid.node_y g node in
    (* A cell carrying a via joins the layers; moving one layer would break
       the stack. *)
    if Grid.has_via g ~x ~y then None
    else begin
      let owns dx dy =
        Grid.in_bounds g ~x:(x + dx) ~y:(y + dy)
        && Grid.occ_at g ~layer ~x:(x + dx) ~y:(y + dy) = owner
      in
      (* The cell must be a straight through-cell: same-net neighbours on
         exactly the two opposite sides of one axis. *)
      let east = owns 1 0
      and west = owns (-1) 0
      and north = owns 0 1
      and south = owns 0 (-1) in
      let axis =
        match (east && west, north && south) with
        | true, false when not (north || south) -> Some `H
        | false, true when not (east || west) -> Some `V
        | true, true | false, false | true, false | false, true -> None
      in
      match axis with
      | None -> None
      | Some axis ->
          let a1, a2, perps =
            match axis with
            | `H -> ((x - 1, y), (x + 1, y), [ (0, 1); (0, -1) ])
            | `V -> ((x, y - 1), (x, y + 1), [ (1, 0); (-1, 0) ])
          in
          (* The anchors a1/a2 stay; they may not be shoved away later in a
             way that breaks the splice, which grid exclusivity ensures. *)
          let free_at (cx, cy) =
            Grid.in_bounds g ~x:cx ~y:cy
            && Grid.occ_at g ~layer ~x:cx ~y:cy = Grid.free
          in
          let attempt (px, py) =
            let d1 = (fst a1 + px, snd a1 + py)
            and t = (x + px, y + py)
            and d2 = (fst a2 + px, snd a2 + py) in
            if free_at d1 && free_at t && free_at d2 then begin
              let node_of (cx, cy) = Grid.node g ~layer ~x:cx ~y:cy in
              Grid.release g node;
              let added = [ node_of d1; node_of t; node_of d2 ] in
              List.iter (Grid.occupy g ~net:owner) added;
              Some { moved_net = owner; released = [ node ]; added }
            end
            else None
          in
          let rec first_success = function
            | [] -> None
            | p :: rest -> (
                match attempt p with Some m -> Some m | None -> first_success rest)
          in
          first_success perps
    end
  end
