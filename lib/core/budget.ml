type reason =
  | Deadline
  | Expansion_limit
  | Search_limit
  | Cancelled of string

type t = {
  deadline_ns : int64 option;  (* absolute, on the monotonic clock *)
  max_expanded : int option;
  max_searches : int option;
  mutable hook : (unit -> reason option) option;
  mutable searches : int;
  mutable expanded : int;
  mutable tripped : reason option;
}

let create ?deadline ?max_expanded ?max_searches ?hook () =
  let deadline_ns =
    Option.map
      (fun s ->
        Int64.add (Monotonic_clock.now ()) (Int64.of_float (s *. 1e9)))
      deadline
  in
  {
    deadline_ns;
    max_expanded;
    max_searches;
    hook;
    searches = 0;
    expanded = 0;
    tripped = None;
  }

let unlimited () = create ()

let is_unlimited b =
  b.deadline_ns = None
  && b.max_expanded = None
  && b.max_searches = None
  && (match b.hook with None -> true | Some _ -> false)
  && b.tripped = None

let add_hook b f =
  match b.hook with
  | None -> b.hook <- Some f
  | Some g ->
      b.hook <-
        Some
          (fun () -> match g () with Some _ as r -> r | None -> f ())

let note_search b = b.searches <- b.searches + 1

let note_expanded b n = b.expanded <- b.expanded + n

let searches b = b.searches

let expanded b = b.expanded

let trip b reason = if b.tripped = None then b.tripped <- Some reason

let poll ~in_flight b =
  match match b.hook with Some f -> f () | None -> None with
  | Some _ as r -> r
  | None -> (
      match b.deadline_ns with
      | Some d when Monotonic_clock.now () >= d -> Some Deadline
      | _ -> (
          match b.max_expanded with
          | Some m when b.expanded + in_flight > m -> Some Expansion_limit
          | _ -> (
              match b.max_searches with
              | Some m when b.searches > m -> Some Search_limit
              | _ -> None)))

let check ?(in_flight = 0) b =
  match b.tripped with
  | Some _ as r -> r
  | None ->
      let r = poll ~in_flight b in
      (match r with Some reason -> b.tripped <- Some reason | None -> ());
      r

let tripped b = b.tripped

(* Like [check] but without latching and without consulting the hook:
   the read-only view used by speculative searches running on worker
   domains, where latching would race and a hook (the chaos fault
   injector) may be stateful.  The authoritative, latching [check] still
   runs on the coordinating domain at every commit slot. *)
let peek ?(in_flight = 0) b =
  match b.tripped with
  | Some _ as r -> r
  | None -> (
      match b.deadline_ns with
      | Some d when Monotonic_clock.now () >= d -> Some Deadline
      | _ -> (
          match b.max_expanded with
          | Some m when b.expanded + in_flight > m -> Some Expansion_limit
          | _ -> (
              match b.max_searches with
              | Some m when b.searches > m -> Some Search_limit
              | _ -> None)))

let stop_hook b =
  if is_unlimited b then None
  else Some (fun in_flight -> check ~in_flight b <> None)

let reason_to_string = function
  | Deadline -> "deadline exceeded"
  | Expansion_limit -> "expansion budget exhausted"
  | Search_limit -> "search budget exhausted"
  | Cancelled why -> Printf.sprintf "cancelled (%s)" why

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)
