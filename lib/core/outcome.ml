type net_stats = { net_id : int; cells : int; wirelength : int; vias : int }

type status = Complete | Degraded of Budget.reason | Infeasible

let status_name = function
  | Complete -> "complete"
  | Degraded _ -> "degraded"
  | Infeasible -> "infeasible"

let pp_status fmt = function
  | Complete -> Format.pp_print_string fmt "complete"
  | Degraded r -> Format.fprintf fmt "degraded: %a" Budget.pp_reason r
  | Infeasible -> Format.pp_print_string fmt "infeasible"

type effort = {
  total_expanded : int;
  maze_expanded : int;
  weak_expanded : int;
  strong_expanded : int;
  per_net_expanded : int array;
}

let no_effort ~nets =
  {
    total_expanded = 0;
    maze_expanded = 0;
    weak_expanded = 0;
    strong_expanded = 0;
    per_net_expanded = Array.make (max 0 nets) 0;
  }

let pp_effort fmt e =
  Format.fprintf fmt "expanded=%d (maze=%d weak=%d strong=%d)" e.total_expanded
    e.maze_expanded e.weak_expanded e.strong_expanded

type par_stats = {
  waves : int;
  speculated : int;
  committed : int;
  conflicts : int;
  wasted_expanded : int;
  cache_hits : int;
  cache_stale : int;
}

let no_par =
  {
    waves = 0;
    speculated = 0;
    committed = 0;
    conflicts = 0;
    wasted_expanded = 0;
    cache_hits = 0;
    cache_stale = 0;
  }

let pp_par fmt p =
  Format.fprintf fmt
    "waves=%d speculated=%d committed=%d conflicts=%d wasted=%d cache=%d/%d"
    p.waves p.speculated p.committed p.conflicts p.wasted_expanded p.cache_hits
    (p.cache_hits + p.cache_stale)

type guide_stats = { guided : int; hits : int; fallbacks : int }

let no_guide = { guided = 0; hits = 0; fallbacks = 0 }

let pp_guide fmt g =
  Format.fprintf fmt "guides: nets=%d hits=%d fallbacks=%d" g.guided g.hits
    g.fallbacks

let measure_net g ~net =
  let w = Grid.width g and h = Grid.height g in
  let cells = ref 0 and wirelength = ref 0 and vias = ref 0 in
  for layer = 0 to Grid.layers g - 1 do
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        if Grid.occ_at g ~layer ~x ~y = net then begin
          incr cells;
          if x + 1 < w && Grid.occ_at g ~layer ~x:(x + 1) ~y = net then
            incr wirelength;
          if y + 1 < h && Grid.occ_at g ~layer ~x ~y:(y + 1) = net then
            incr wirelength
        end
      done
    done
  done;
  Grid.iter_via_pairs g (fun ~layer ~x ~y ->
      if Grid.occ_at g ~layer ~x ~y = net then incr vias);
  { net_id = net; cells = !cells; wirelength = !wirelength; vias = !vias }

let measure problem g =
  List.init (Netlist.Problem.net_count problem) (fun i ->
      measure_net g ~net:(i + 1))

let total_wirelength g problem =
  List.fold_left (fun acc s -> acc + s.wirelength) 0 (measure problem g)

let total_vias = Grid.via_count
