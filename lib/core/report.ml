let per_net_table problem (result : Engine.t) =
  let failed = result.Engine.stats.Engine.failed_nets in
  let effort = result.Engine.stats.Engine.effort in
  let table =
    Util.Table.create
      ~headers:
        [ "net"; "pins"; "cells"; "wirelength"; "vias"; "expanded"; "status" ]
  in
  List.iter
    (fun (m : Outcome.net_stats) ->
      let net = Netlist.Problem.net problem m.Outcome.net_id in
      let status =
        if List.mem m.Outcome.net_id failed then "FAILED"
        else if Netlist.Net.is_trivial net then "trivial"
        else "routed"
      in
      let expanded =
        let i = m.Outcome.net_id - 1 in
        if i >= 0 && i < Array.length effort.Outcome.per_net_expanded then
          effort.Outcome.per_net_expanded.(i)
        else 0
      in
      Util.Table.add_row table
        [
          net.Netlist.Net.name;
          Util.Table.cell_int (Netlist.Net.pin_count net);
          Util.Table.cell_int m.Outcome.cells;
          Util.Table.cell_int m.Outcome.wirelength;
          Util.Table.cell_int m.Outcome.vias;
          Util.Table.cell_int expanded;
          status;
        ])
    (Outcome.measure problem result.Engine.grid);
  table

let summary problem (result : Engine.t) =
  let s = result.Engine.stats in
  let lower = Netlist.Analysis.wirelength_lower_bound problem in
  let overhead =
    if lower = 0 then "-"
    else
      Printf.sprintf "%.1f%%"
        (100.0
        *. (float_of_int s.Engine.total_wirelength /. float_of_int lower -. 1.0))
  in
  (* The status line appears only on non-complete runs, so reports of
     complete (and pre-budget-era) runs render byte-identically. *)
  let status_line =
    match result.Engine.status with
    | Outcome.Complete -> []
    | st -> [ Format.asprintf "status:               %a" Outcome.pp_status st ]
  in
  (* Cache telemetry appears only when the caches actually fired, so
     cache-less runs render byte-identically to older reports. *)
  let cache_line =
    let p = s.Engine.par in
    if p.Outcome.cache_hits + p.Outcome.cache_stale = 0 then []
    else
      [
        Printf.sprintf "cost-cache hits:      %d (stale %d)"
          p.Outcome.cache_hits p.Outcome.cache_stale;
      ]
  in
  (* Guide telemetry appears only on guided runs (flow pipeline), so
     plain routes render byte-identically. *)
  let guide_line =
    let g = s.Engine.guide in
    if g = Outcome.no_guide then []
    else
      [
        Printf.sprintf "guide hits:           %d / %d (%d nets guided)"
          g.Outcome.hits
          (g.Outcome.hits + g.Outcome.fallbacks)
          g.Outcome.guided;
      ]
  in
  (* Per-class quality split, only when some net is not plain signal. *)
  let class_lines =
    let nets = Array.to_list problem.Netlist.Problem.nets in
    if List.for_all (fun (n : Netlist.Net.t) -> n.Netlist.Net.cls = Netlist.Net.Signal) nets
    then []
    else
      let measures = Outcome.measure problem result.Engine.grid in
      List.filter_map
        (fun cls ->
          let of_cls =
            List.filter (fun (n : Netlist.Net.t) -> n.Netlist.Net.cls = cls) nets
          in
          if of_cls = [] then None
          else
            let ids = List.map (fun (n : Netlist.Net.t) -> n.Netlist.Net.id) of_cls in
            let routed =
              List.length
                (List.filter
                   (fun id -> not (List.mem id s.Engine.failed_nets))
                   ids)
            in
            let wl, vias =
              List.fold_left
                (fun (wl, v) (m : Outcome.net_stats) ->
                  if List.mem m.Outcome.net_id ids then
                    (wl + m.Outcome.wirelength, v + m.Outcome.vias)
                  else (wl, v))
                (0, 0) measures
            in
            Some
              (Printf.sprintf "class %-7s       %d/%d routed, wl %d, vias %d"
                 (Netlist.Net.cls_to_string cls ^ ":")
                 routed (List.length ids) wl vias))
        [ Netlist.Net.Signal; Netlist.Net.Clock; Netlist.Net.Power ]
  in
  String.concat "\n"
    (Printf.sprintf "completed:            %b" result.Engine.completed
     :: status_line
    @ [
      Printf.sprintf "nets routed:          %d / %d" s.Engine.routed_nets
        (Netlist.Problem.net_count problem);
      Printf.sprintf "total wirelength:     %d (lower bound %d, +%s)"
        s.Engine.total_wirelength lower overhead;
      Printf.sprintf "total vias:           %d" s.Engine.total_vias;
      Printf.sprintf "rip-ups / shoves:     %d / %d" s.Engine.rips
        s.Engine.shoves;
      Printf.sprintf "searches / expanded:  %d / %d" s.Engine.searches
        s.Engine.expanded;
      Printf.sprintf "expanded by phase:    maze %d / shove %d / ripup %d"
        s.Engine.effort.Outcome.maze_expanded
        s.Engine.effort.Outcome.weak_expanded
        s.Engine.effort.Outcome.strong_expanded;
      Printf.sprintf "restart attempts:     %d" s.Engine.attempts;
      ]
    @ cache_line @ guide_line @ class_lines)

let render problem result =
  Util.Table.render (per_net_table problem result) ^ "\n" ^ summary problem result
