(** Reusable search scratch space.

    A search over a [w × h × layers] grid needs distance, parent and membership
    arrays of that size.  The workspace allocates them once and invalidates
    them in O(1) between searches with generation stamps, so the router can
    run thousands of searches without per-search allocation. *)

type t

val create : Grid.t -> t
(** Workspace sized for the given grid (frontier queues sized to
    [node_count / 8], minimum 1024).  It may be reused for any grid of the
    same dimensions and layer stack. *)

val node_capacity : t -> int

val layers : t -> int
(** Layer count of the grid this workspace was sized for. *)

val begin_search : t -> unit
(** Invalidate all distances, parents and marks from previous searches. *)

val reset : t -> unit
(** Same O(1) invalidation as {!begin_search}, exposed for callers that
    reuse one workspace across several grids of equal dimensions (the
    parallel harness, track-sweep adapters): call [reset] when switching
    grids so no stale state from the previous grid leaks through. *)

val dist : t -> int -> int
(** Tentative distance of a node in the current search; [max_int] when
    unvisited. *)

val set_dist : t -> int -> int -> unit

val parent : t -> int -> int
(** Predecessor node in the current search ([-1] for sources/unvisited). *)

val set_parent : t -> int -> int -> unit

val mark : t -> int -> unit
(** Add a node to the current search's target/member set. *)

val marked : t -> int -> bool

val heap : t -> Util.Pqueue.t
(** The binary-heap search frontier (cleared by {!begin_search}). *)

val buckets : t -> Util.Bucketq.t
(** The bucket-queue search frontier (cleared by {!begin_search}); used
    when the search runs with the [Buckets] kernel. *)

val hfield : t -> int array
(** Planar scratch array ([width × height]) holding the precomputed
    A* heuristic field (L1 distance to the nearest target); owned and
    rebuilt by {!Search.run_astar}. *)

val hfield_memo_hit :
  t -> wire:int -> win:int * int * int * int -> targets:int list -> bool
(** Whether the stored {!hfield} contents were computed for exactly this
    (wire, window, planar-target-list) key.  The field is a pure function
    of that key (it never reads grid occupancy, so no dirty-state check
    is needed), hence a hit means the transform can be reused verbatim —
    this is what lets repeated searches against an unchanged target set
    skip the O(window) recompute. *)

val hfield_memo_store :
  t -> wire:int -> win:int * int * int * int -> targets:int list -> unit
(** Record the key the {!hfield} contents were just computed for. *)

(** {1 Touched-region accumulator}

    {!Search.core} records the per-layer bounding box of every node it
    expands (successful, failed and aborted searches alike).  Unlike the
    generation stamps this accumulator is {e not} cleared by
    {!begin_search}: a net attempt spans several searches (windowed
    probes, one search per connection) and the engine needs the union of
    everything those searches read, so only an explicit {!clear_touched}
    resets it. *)

val clear_touched : t -> unit

val note_touched :
  t -> layer:int -> x0:int -> y0:int -> x1:int -> y1:int -> unit
(** Merge a rectangle of expanded nodes into the accumulator (called by
    the search core once per completed search loop). *)

val touched : t -> layer:int -> Geom.Rect.t option
(** Bounding box of nodes expanded on [layer] since the last
    {!clear_touched}; [None] when no node of that layer was expanded. *)
