(** Weighted maze search (Dijkstra / A-star) over the routing grid.

    The search explores the 6-neighbourhood of each node (four planar steps
    plus a via step to the other layer) and returns a cheapest path from any
    source to any target under the {!Cost.t} model plus a caller-supplied
    per-node entry penalty.

    The [passable] callback prices entering a node: [Some 0] for an
    ordinary free (or self-owned) cell, [Some k] for a cell the caller is
    willing to cross at surcharge [k] (the rip-up scheduler prices foreign
    nets this way), and [None] for an impassable cell (obstacle, foreign
    pin, fixed wiring).  Sources must themselves be passable or owned. *)

type result = {
  path : Grid.Path.t;  (** source-to-target node sequence, both inclusive *)
  total_cost : int;
  expanded : int;  (** nodes settled — the search-effort metric *)
}

val run :
  Grid.t ->
  Workspace.t ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  unit ->
  result option
(** Cheapest path from the source set to the target set; [None] when no
    target is reachable.  Uses plain Dijkstra (complete and optimal under
    non-negative costs). *)

val run_astar :
  Grid.t ->
  Workspace.t ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  unit ->
  result option
(** Same result as {!run} (the heuristic — minimum Manhattan distance to any
    target times the wire cost — is admissible) with fewer expansions when
    the target set is small.  Used by the ablation experiment. *)

val run_lee :
  Grid.t ->
  Workspace.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  unit ->
  result option
(** The original Lee (1961) wave expansion: plain breadth-first search with
    unit step costs and no cost model — every passable node costs 1 to
    enter regardless of direction, layer or the penalty returned by
    [passable] (only its [None]/[Some] blocking decision is used).  Finds a
    minimum-step path; kept as the historical baseline the weighted search
    is compared against in the micro-benchmarks. *)

val reachable :
  Grid.t ->
  Workspace.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  bool
(** Pure reachability (uniform costs) — the test oracle. *)
