(** Weighted maze search (Dijkstra / A-star) over the routing grid.

    The search explores the 6-neighbourhood of each node (four planar steps
    plus a via step to the other layer) and returns a cheapest path from any
    source to any target under the {!Cost.t} model plus a caller-supplied
    per-node entry penalty.

    The [passable] callback prices entering a node: [Some 0] for an
    ordinary free (or self-owned) cell, [Some k] for a cell the caller is
    willing to cross at surcharge [k] (the rip-up scheduler prices foreign
    nets this way), and [None] for an impassable cell (obstacle, foreign
    pin, fixed wiring).  Sources must themselves be passable or owned.

    Two orthogonal accelerations are available on the weighted searches:

    - [kernel] selects the frontier data structure: the classical binary
      heap, or a Dial bucket queue ({!Util.Bucketq}) that exploits the
      small bounded integer edge costs for O(1) queue operations.  Both
      kernels return equal-cost (though possibly different) paths.
    - [window] restricts the search to the bounding box of the endpoints
      grown by the given margin.  A failed windowed search widens the
      margin geometrically and retries, falling back to the full grid, so
      the result is exactly as complete as an unwindowed search — blocked
      detours merely cost an extra probe — while typical connections touch
      a small fraction of a large region. *)

type result = {
  path : Grid.Path.t;  (** source-to-target node sequence, both inclusive *)
  total_cost : int;
  expanded : int;
      (** nodes settled — the search-effort metric; includes the wasted
          expansions of failed windowed probes *)
}

type kernel =
  | Binary_heap  (** {!Util.Pqueue}: O(log n) per operation, any costs *)
  | Buckets
      (** {!Util.Bucketq}: O(1) per operation for the bounded integer
          costs of the routing cost model *)

val kernel_name : kernel -> string
(** ["heap"] or ["buckets"] — the CLI/bench spelling. *)

val run :
  ?kernel:kernel ->
  ?window:int ->
  ?stop:(int -> bool) ->
  Grid.t ->
  Workspace.t ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  unit ->
  result option
(** Cheapest path from the source set to the target set; [None] when no
    target is reachable.  Uses plain Dijkstra (complete and optimal under
    non-negative costs).  [kernel] defaults to [Binary_heap]; [window]
    (off by default) is the initial bbox margin of the search window.

    [stop] is a cooperative cancellation hook, polled every few dozen
    expansions with the in-flight expansion count; answering [true]
    aborts the search, which then returns [None] without widening any
    search window (an aborted probe must not trigger retries). *)

val run_astar :
  ?kernel:kernel ->
  ?window:int ->
  ?stop:(int -> bool) ->
  ?memo:bool ->
  Grid.t ->
  Workspace.t ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  unit ->
  result option
(** Same result as {!run} with fewer expansions when the target set is
    compact.  The heuristic — L1 distance to the nearest target times the
    wire cost — is admissible and consistent; it is precomputed into a flat
    planar array by a two-pass distance transform (O(window), independent
    of the target count), so the per-relax cost is one array read.

    [memo] (default [false]) reuses the workspace's stored transform when
    the (targets, window, wire) key is unchanged — the transform never
    reads grid occupancy, so the reuse is value-exact and results are
    byte-identical with the flag on or off.  Escalation loops and retry
    sweeps re-search the same target set repeatedly and profit most. *)

val run_astar_lb :
  ?kernel:kernel ->
  ?stop:(int -> bool) ->
  Grid.t ->
  Workspace.t ->
  lb:Lowerbound.t ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  unit ->
  result option
(** A* steered by a {!Lowerbound} field instead of the L1 transform: the
    heuristic is the exact (or repaired, i.e. stale-low but still
    admissible) in-window cost-to-target under the full cost model, so
    expansion concentrates on the optimal corridor.  The search is
    restricted to the field's window with no widening — the returned cost
    is the exact windowed optimum, which equals the global optimum when
    the field was built with a window covering the grid.  Nodes the field
    proves unable to reach a target within the window are pruned.
    [passable] and [cost] must match what the field was built with. *)

(** {2 Guided search}

    A guide is a planar rectangle a global router predicts the connection
    stays inside.  {!run_guided} probes only the guide window (hulled
    with the endpoints and clipped to the grid) and certifies whether the
    probe is {e pop-order identical} to the unwindowed search — same
    path, same expansion count, not merely the same cost.  It tracks the
    minimum would-be frontier key over every relaxation the window
    rejected; the probe is certified when the target popped strictly
    below that minimum, because every out-of-window entry would then sit
    in a strictly later priority bucket of the full run.  The argument
    relies on bucket content identity, so the byte-identity contract
    holds for the {!Buckets} kernel only — binary-heap tie-breaking is
    perturbed by the extra entries.  Uncertified probes (missed, or found
    but not provably first) must be discarded and re-run unwindowed by
    the caller, charging the probe's expansions as waste. *)

type guided = {
  g_result : result option;  (** the probe's find; only meaningful when
                                 [g_certified] (or the window was full) *)
  g_expanded : int;  (** probe expansions, also on failure *)
  g_aborted : bool;  (** the [stop] hook tripped — do not retry *)
  g_certified : bool;
      (** pop-order identical to the unwindowed search (always true when
          the hulled window already covers the grid) *)
}

val run_guided :
  ?kernel:kernel ->
  ?astar:bool ->
  ?stop:(int -> bool) ->
  ?memo:bool ->
  guide:Geom.Rect.t ->
  Grid.t ->
  Workspace.t ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  unit ->
  guided
(** One guided probe; never widens.  [astar] selects the exact-L1
    heuristic of {!run_astar} (the transform over any window containing
    the targets is window-independent, so in-window priorities match the
    full run's); rejected out-of-window nodes get their L1 computed
    directly.  Degenerate endpoint sets or a window covering the whole
    grid fall through to the ordinary full search, trivially certified. *)

val run_lee :
  Grid.t ->
  Workspace.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  unit ->
  result option
(** The original Lee (1961) wave expansion: plain breadth-first search with
    unit step costs and no cost model — every passable node costs 1 to
    enter regardless of direction, layer or the penalty returned by
    [passable] (only its [None]/[Some] blocking decision is used).  Finds a
    minimum-step path; kept as the historical baseline the weighted search
    is compared against in the micro-benchmarks. *)

val reachable :
  Grid.t ->
  Workspace.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  bool
(** Pure reachability (uniform costs) — the test oracle. *)
