(** Per-net backward distance fields over the actual cost model.

    A field is the exact cost-to-target function of a window-restricted
    backward Dijkstra from a net's target set: wire, via and wrong-way
    step costs plus the caller's per-node entry penalties — the same
    quantity a forward {!Search} restricted to the same window and
    passability would compute, but for {e every} window node at once.

    Once built, a field is maintained as an admissible {e lower} bound
    under grid mutation (DESIGN.md §11): blocking writes are ignored
    (true distances only grew), freeing writes are repaired by a
    decrease-only re-relaxation seeded from the dirty-journal rectangles
    accumulated since the field's mark.  The field therefore never
    over-estimates, which makes it simultaneously

    - a tighter-than-L1 admissible A* heuristic for window-restricted
      searches ({!Search.run_astar_lb}), and
    - combined with the window-escape bound, a sound global lower bound
      on any route cost ({!bound}) — the skip oracle of [Core.Improve]. *)

type t

val inf_cost : int
(** The "unreachable within the window" value; all finite field values
    are strictly below it. *)

val build :
  Grid.t ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  targets:int list ->
  around:int list ->
  margin:int ->
  t
(** Build the field by backward Dijkstra from [targets].  The window is
    the bounding box of [targets @ around] inflated by [margin] and
    clipped to the grid; [around] must include every node the caller
    will later query ({!bound} sources), so the escape-bound argument
    applies to them.  The field's journal mark is taken at build time. *)

val window : t -> Geom.Rect.t
(** The planar window the field covers. *)

val built_margin : t -> int
(** The [margin] the field was built with — the escape-bound radius.
    The escape term of {!bound} grows with it, so a caller that needs
    [bound >= c] to be provable must have built with [margin >=
    (c - L1) / 2 - 1] (otherwise the escape detour caps the bound
    below [c] no matter how tight the field is). *)

val value : t -> Grid.t -> int -> int
(** Raw field value of a node: the cost of a cheapest in-window path
    from the node to the target set at the time of the last
    build/repair, or {!inf_cost} when unreachable within the window or
    outside it.  For nodes that are currently passable, never
    over-estimates the current in-window distance (lower-bound
    invariant).  Values of impassable nodes may be stale: repairs skip
    them, because no search can expand into one and the write that
    eventually frees it is itself journaled (so it is recomputed then). *)

val bound : t -> Grid.t -> source:int -> int
(** Admissible global lower bound on the cost of any source-to-target
    path: [min(value source, wire × (L1-to-nearest-target +
    2 × (margin + 1)))] — in-window paths are bounded by the field,
    window-leaving paths by the escape detour. *)

type repair_outcome =
  | Clean  (** no journal rectangle touched the window: reused verbatim *)
  | Repaired  (** decrease-only re-relaxation of the dirtied region *)
  | Rebuilt  (** journal ring wrapped past the mark: rebuilt from scratch *)

val repair : Grid.t -> passable:(int -> int option) -> t -> repair_outcome
(** Restore the lower-bound invariant against every grid write since the
    field's mark, and advance the mark.  [passable] must be the same
    passability the field was built with (the net's own view of the
    grid). *)
