type failure = { failed_net : int; unreached : Netlist.Net.pin }

type success = {
  added : int list;
  wirelength : int;
  vias : int;
  expanded : int;
}

let passable_default g ~net n =
  let v = Grid.occ g n in
  if v = Grid.free || v = net then Some 0 else None

let pin_node g (pin : Netlist.Net.pin) =
  Grid.node g ~layer:pin.Netlist.Net.layer ~x:pin.Netlist.Net.x ~y:pin.Netlist.Net.y

let occupy_path g ~net path =
  let added = ref [] in
  List.iter
    (fun n ->
      if Grid.occ g n <> net then begin
        Grid.occupy g ~net n;
        added := n :: !added
      end)
    path;
  (* Via pairs at layer-change steps: the pair is addressed by the lower
     of the two layers it joins. *)
  let rec vias = function
    | a :: (b :: _ as rest) ->
        let la = Grid.node_layer g a and lb = Grid.node_layer g b in
        if la <> lb then
          Grid.set_via ~layer:(min la lb) g ~x:(Grid.node_x g a)
            ~y:(Grid.node_y g a);
        vias rest
    | [] | [ _ ] -> ()
  in
  vias path;
  !added

let release_nodes g nodes = List.iter (Grid.release g) nodes

type guide_tally = { mutable ghits : int; mutable gfallbacks : int }

let no_tally () = { ghits = 0; gfallbacks = 0 }

(* One guided standard-phase connection: a certified probe stands in for
   the full search (pop-order identical, so path and expansion count are
   the full run's); an uncertified probe is discarded and the search
   re-runs unwindowed, with the probe's expansions folded into the
   result as waste — exactly the accounting of a failed windowed probe.
   A certified {e failure} (the in-window frontier exhausted without one
   rejected escape) proves the full search fails identically, so it
   returns [None] without a re-run.  [tally] counts hits/fallbacks so
   the speculative engine can replay the sequential counters. *)
let guided_search ~use_astar ~kernel ~guide ?stop ~memo ~tally g ws ~cost
    ~passable ~sources ~targets () =
  let gd =
    Search.run_guided ~kernel ~astar:use_astar ?stop ~memo ~guide g ws ~cost
      ~passable ~sources ~targets ()
  in
  if gd.Search.g_aborted then None
  else if gd.Search.g_certified then begin
    tally.ghits <- tally.ghits + 1;
    gd.Search.g_result
  end
  else begin
    tally.gfallbacks <- tally.gfallbacks + 1;
    let full =
      if use_astar then
        Search.run_astar ~kernel ?stop ~memo g ws ~cost ~passable ~sources
          ~targets ()
      else Search.run ~kernel ?stop g ws ~cost ~passable ~sources ~targets ()
    in
    match full with
    | Some r ->
        Some { r with Search.expanded = r.Search.expanded + gd.Search.g_expanded }
    | None -> None
  end

(* Plan a net without touching the grid: the same Prim-style connection
   sequence as a mutating route, but found paths are only recorded.  The
   searches are exact replicas of the mutating run's: the only cells a
   mutating run would have changed are the planned path cells, which it
   makes self-owned — and under the standard passability self-owned and
   free both cost [Some 0], so every subsequent search sees identical
   passability either way.  Returns the connection paths in order with
   per-connection expansion counts (windowed-probe waste included), or
   [None] as soon as a connection fails or aborts.  With [guide], each
   connection runs the guided probe/fallback protocol of
   {!guided_search}, tallying hits and fallbacks into [tally]. *)
let plan_net ?(use_astar = false) ?(kernel = Search.Binary_heap) ?window
    ?stop ?(memo = false) ?guide ?tally g ws ~cost ~passable
    (net : Netlist.Net.t) =
  match net.Netlist.Net.pins with
  | [] | [ _ ] -> Some []
  | first :: rest ->
      let search =
        match guide with
        | Some rect ->
            let tally =
              match tally with Some t -> t | None -> no_tally ()
            in
            guided_search ~use_astar ~kernel ~guide:rect ?stop ~memo ~tally
        | None ->
            if use_astar then Search.run_astar ~kernel ?window ?stop ~memo
            else Search.run ~kernel ?window ?stop
      in
      let tree = ref [ pin_node g first ] in
      let remaining = ref (List.map (fun p -> pin_node g p) rest) in
      let acc = ref [] in
      let rec loop () =
        match !remaining with
        | [] -> Some (List.rev !acc)
        | _ -> begin
            match
              search g ws ~cost ~passable ~sources:!tree ~targets:!remaining ()
            with
            | None -> None
            | Some r ->
                acc := (r.Search.path, r.Search.expanded) :: !acc;
                tree := r.Search.path @ !tree;
                let reached =
                  match List.rev r.Search.path with
                  | last :: _ -> last
                  | [] -> assert false
                in
                remaining := List.filter (fun n -> n <> reached) !remaining;
                loop ()
          end
      in
      loop ()

(* Connect the pins Prim-style: the tree starts at the first pin's node and
   every search targets all still-unconnected pins at once, so Dijkstra
   naturally picks the nearest one. *)
let route_net ?passable ?(use_astar = false) ?(kernel = Search.Binary_heap)
    ?window ?stop ?(memo = false) g ws ~cost (net : Netlist.Net.t) =
  let net_id = net.Netlist.Net.id in
  let passable =
    match passable with Some f -> f | None -> passable_default g ~net:net_id
  in
  match net.Netlist.Net.pins with
  | [] | [ _ ] -> Ok { added = []; wirelength = 0; vias = 0; expanded = 0 }
  | first :: rest ->
      let search =
        if use_astar then Search.run_astar ~kernel ?window ?stop ~memo
        else Search.run ~kernel ?window ?stop
      in
      let tree = ref [ pin_node g first ] in
      let remaining = ref (List.map (fun p -> (pin_node g p, p)) rest) in
      let added = ref [] in
      let wirelength = ref 0 and vias = ref 0 and expanded = ref 0 in
      let fail pin =
        release_nodes g !added;
        Error { failed_net = net_id; unreached = pin }
      in
      let rec loop () =
        match !remaining with
        | [] ->
            Ok
              {
                added = !added;
                wirelength = !wirelength;
                vias = !vias;
                expanded = !expanded;
              }
        | (_, nearest_pin) :: _ -> begin
            let targets = List.map fst !remaining in
            match
              search g ws ~cost ~passable ~sources:!tree ~targets ()
            with
            | None -> fail nearest_pin
            | Some r ->
                let new_nodes = occupy_path g ~net:net_id r.Search.path in
                added := new_nodes @ !added;
                tree := r.Search.path @ !tree;
                wirelength := !wirelength + Grid.Path.wirelength g r.Search.path;
                vias := !vias + Grid.Path.via_steps g r.Search.path;
                expanded := !expanded + r.Search.expanded;
                let reached =
                  match List.rev r.Search.path with
                  | last :: _ -> last
                  | [] -> assert false
                in
                remaining :=
                  List.filter (fun (n, _) -> n <> reached) !remaining;
                loop ()
          end
      in
      loop ()
