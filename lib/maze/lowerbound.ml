(* Per-net backward distance transform over the actual cost model.

   The field stores, for every node of a planar window, the exact cost of
   a cheapest path from that node to the target set that stays inside the
   window — wire/via/wrong-way step costs plus the caller's per-node entry
   penalties, i.e. precisely what a forward search restricted to the same
   window and passability would report.  It is built once by a backward
   Dijkstra from the targets and then kept as a LOWER bound under grid
   mutation:

   - blocking a cell can only increase true distances, so doing nothing
     keeps the stored values admissible (possibly stale-low);
   - freeing a cell can decrease true distances, so [repair] re-relaxes
     outward from the dirtied cells (read from the grid's journal since
     the field's mark) with a decrease-only Dijkstra, restoring the
     invariant [field <= windowed true distance] everywhere.

   Admissibility is the whole contract: the field never over-estimates
   the in-window distance, so it serves both as an A* heuristic for a
   window-restricted search and — combined with the window-escape bound
   of [Search.with_window] — as a global lower bound on any route cost,
   which is how [Core.Improve] skips provably-unimprovable nets. *)

let inf_cost = max_int / 256

type t = {
  win : Geom.Rect.t;
  margin : int;  (* inflation the window was built with, for the escape bound *)
  cost : Cost.t;
  nl : int;  (* layer count of the grid the field was built over *)
  tgt_xy : (int * int) list;  (* target planar coords, for the escape L1 *)
  dist : int array;  (* layers × window area, layer-major *)
  is_target : Bytes.t;
  q : Util.Pqueue.t;
  mutable since : Grid.mark;
}

type repair_outcome = Clean | Repaired | Rebuilt

let window t = t.win

let built_margin t = t.margin

let ww t = t.win.Geom.Rect.x1 - t.win.Geom.Rect.x0 + 1

let wh t = t.win.Geom.Rect.y1 - t.win.Geom.Rect.y0 + 1

let area t = ww t * wh t

(* Local index of an in-window (layer, x, y); the caller checks bounds. *)
let idx t ~layer ~x ~y =
  (layer * area t) + ((y - t.win.Geom.Rect.y0) * ww t) + (x - t.win.Geom.Rect.x0)

let in_win t ~x ~y = Geom.Rect.mem t.win x y

let value t g n =
  let x = Grid.node_x g n and y = Grid.node_y g n in
  if in_win t ~x ~y then t.dist.(idx t ~layer:(Grid.node_layer g n) ~x ~y)
  else inf_cost

(* Relax all in-window nodes [m] that can step INTO the popped node [n]:
   B(m) <- min(B(m), step(m->n) + penalty(n) + B(n)).  Backward edges
   mirror the forward search exactly: four planar steps on [n]'s layer
   plus the via steps from the adjacent layers; the entry penalty of the
   stepped-into node is charged, matching [Search.core]'s relax. *)
let relax_into t g ~passable ~layer ~x ~y d =
  match passable (Grid.node g ~layer ~x ~y) with
  | None -> ()
  | Some pen ->
      let update ~layer:ml ~x:mx ~y:my step =
        if in_win t ~x:mx ~y:my then begin
          let i = idx t ~layer:ml ~x:mx ~y:my in
          let cand = d + step + pen in
          if cand < t.dist.(i) then begin
            t.dist.(i) <- cand;
            Util.Pqueue.push t.q cand i
          end
        end
      in
      let ph = Grid.prefers_horizontal g ~layer in
      let hc = Cost.step_cost t.cost ~prefers_h:ph ~horizontal:true in
      let vc = Cost.step_cost t.cost ~prefers_h:ph ~horizontal:false in
      update ~layer ~x:(x - 1) ~y hc;
      update ~layer ~x:(x + 1) ~y hc;
      update ~layer ~x ~y:(y - 1) vc;
      update ~layer ~x ~y:(y + 1) vc;
      if layer + 1 < t.nl then update ~layer:(layer + 1) ~x ~y t.cost.Cost.via;
      if layer > 0 then update ~layer:(layer - 1) ~x ~y t.cost.Cost.via

let unpack t i =
  let a = area t in
  let layer = i / a in
  let r = i mod a in
  let w = ww t in
  ( layer,
    t.win.Geom.Rect.x0 + (r mod w),
    t.win.Geom.Rect.y0 + (r / w) )

(* Decrease-only Dijkstra drain shared by build and repair. *)
let drain t g ~passable =
  let continue_ = ref true in
  while !continue_ do
    match Util.Pqueue.pop_opt t.q with
    | None -> continue_ := false
    | Some (d, i) ->
        if d <= t.dist.(i) then begin
          let layer, x, y = unpack t i in
          relax_into t g ~passable ~layer ~x ~y d
        end
  done

let seed_targets t g ~targets =
  List.iter
    (fun n ->
      let x = Grid.node_x g n and y = Grid.node_y g n in
      if in_win t ~x ~y then begin
        let i = idx t ~layer:(Grid.node_layer g n) ~x ~y in
        Bytes.set t.is_target i '\001';
        t.dist.(i) <- 0;
        Util.Pqueue.push t.q 0 i
      end)
    targets

let rebuild_in_place t g ~passable =
  Array.fill t.dist 0 (Array.length t.dist) inf_cost;
  Util.Pqueue.clear t.q;
  Bytes.iteri
    (fun i flag ->
      if flag <> '\000' then begin
        t.dist.(i) <- 0;
        Util.Pqueue.push t.q 0 i
      end)
    t.is_target;
  drain t g ~passable;
  t.since <- Grid.mark g

let build g ~cost ~passable ~targets ~around ~margin =
  let bbox nodes =
    List.fold_left
      (fun (x0, y0, x1, y1) n ->
        let x = Grid.node_x g n and y = Grid.node_y g n in
        (min x0 x, min y0 y, max x1 x, max y1 y))
      (max_int, max_int, min_int, min_int)
      nodes
  in
  let bx0, by0, bx1, by1 = bbox (List.rev_append around targets) in
  let win =
    Geom.Rect.make
      (max 0 (bx0 - margin))
      (max 0 (by0 - margin))
      (min (Grid.width g - 1) (bx1 + margin))
      (min (Grid.height g - 1) (by1 + margin))
  in
  let area = Geom.Rect.area win in
  let nl = Grid.layers g in
  let t =
    {
      win;
      margin;
      cost;
      nl;
      tgt_xy =
        List.sort_uniq compare
          (List.map (fun n -> (Grid.node_x g n, Grid.node_y g n)) targets);
      dist = Array.make (nl * area) inf_cost;
      is_target = Bytes.make (nl * area) '\000';
      q = Util.Pqueue.create ~capacity:(max 64 (area / 4)) ();
      since = Grid.mark g;
    }
  in
  seed_targets t g ~targets;
  drain t g ~passable;
  (* [mark] again: seeding read the grid but wrote nothing; taking the
     mark after the build keeps the window's history anchored here. *)
  t.since <- Grid.mark g;
  t

let bound t g ~source =
  let sx = Grid.node_x g source and sy = Grid.node_y g source in
  let min_l1 =
    List.fold_left
      (fun acc (tx, ty) -> min acc (abs (sx - tx) + abs (sy - ty)))
      max_int t.tgt_xy
  in
  if min_l1 = max_int then 0
  else begin
    (* Any source-to-target path that leaves the window strays at least
       [margin + 1] planar steps beyond the pin bounding box and back
       (the [Search.with_window] optimality argument), so it costs at
       least wire × (L1 + 2(margin+1)); a path staying inside the window
       costs at least the field value.  The min of the two is a sound
       global lower bound. *)
    let escape = t.cost.Cost.wire * (min_l1 + (2 * (t.margin + 1))) in
    let inside =
      if in_win t ~x:sx ~y:sy then
        t.dist.(idx t ~layer:(Grid.node_layer g source) ~x:sx ~y:sy)
      else inf_cost
    in
    min inside escape
  end

(* Re-seed from everything whose incoming edges may have changed: a write
   at cell [c] changes penalty(c), i.e. the cost of edges INTO [c] — so
   [c]'s in-window neighbours (same-layer rects dilated by one, plus the
   other layer's rects undilated for the via edge) must recompute their
   local best and propagate any decrease.  Penalty increases are left
   stale-low (still admissible); only decreases enter the queue. *)
let reseed_rect t g ~passable ~layer (r : Geom.Rect.t) =
  match Geom.Rect.intersection r t.win with
  | None -> ()
  | Some r ->
      Geom.Rect.iter r (fun x y ->
          let i = idx t ~layer ~x ~y in
          (* Cells that are currently impassable are skipped: no reader
             consults them (searches never expand into them, [bound]
             sources are the net's own pins, [consider] gates on the
             neighbour's passability), and the release that eventually
             frees one is itself journaled, so it is recomputed then.
             Rip-then-reroute churn thus costs almost nothing to repair
             over: the freed corridor is usually re-occupied by the time
             the field is next consulted. *)
          if
            Bytes.get t.is_target i = '\000'
            && passable (Grid.node g ~layer ~x ~y) <> None
          then begin
            (* b(n) = min over stepped-into neighbours k of
               step(n->k) + penalty(k) + B(k), from current values. *)
            let best = ref inf_cost in
            let consider ~layer:kl ~x:kx ~y:ky step =
              if in_win t ~x:kx ~y:ky then
                match passable (Grid.node g ~layer:kl ~x:kx ~y:ky) with
                | None -> ()
                | Some pen ->
                    let kv = t.dist.(idx t ~layer:kl ~x:kx ~y:ky) in
                    if kv < inf_cost then
                      let c = step + pen + kv in
                      if c < !best then best := c
            in
            let ph = Grid.prefers_horizontal g ~layer in
            let hc = Cost.step_cost t.cost ~prefers_h:ph ~horizontal:true in
            let vc = Cost.step_cost t.cost ~prefers_h:ph ~horizontal:false in
            consider ~layer ~x:(x - 1) ~y hc;
            consider ~layer ~x:(x + 1) ~y hc;
            consider ~layer ~x ~y:(y - 1) vc;
            consider ~layer ~x ~y:(y + 1) vc;
            if layer + 1 < t.nl then
              consider ~layer:(layer + 1) ~x ~y t.cost.Cost.via;
            if layer > 0 then consider ~layer:(layer - 1) ~x ~y t.cost.Cost.via;
            if !best < t.dist.(i) then begin
              t.dist.(i) <- !best;
              Util.Pqueue.push t.q !best i
            end
          end)

(* Only FREEING rectangles are reprocessed: a blocking write (occupy,
   via, obstacle) can only increase true distances, so ignoring it keeps
   the field admissible — and since the reseed is decrease-only, a
   block-only rectangle could not have changed a single value anyway. *)
let repair g ~passable t =
  let rects =
    (* One freeing-rect list per layer; any wrapped ring loses history for
       the whole field. *)
    let rec gather l acc =
      if l < 0 then Some acc
      else
        match Grid.dirtied_freeing_rects g ~since:t.since ~layer:l with
        | None -> None
        | Some rs -> gather (l - 1) (rs :: acc)
    in
    gather (t.nl - 1) []
  in
  match rects with
  | None ->
      rebuild_in_place t g ~passable;
      Rebuilt
  | Some per_layer ->
      let touches =
        List.exists (fun r -> Geom.Rect.overlap (Geom.Rect.inflate r 1) t.win)
      in
      if not (List.exists touches per_layer) then begin
        t.since <- Grid.mark g;
        Clean
      end
      else begin
        Util.Pqueue.clear t.q;
        (* A write on layer [l] changes edges into its cells: same-layer
           neighbours (rects dilated by one) and the via edges from the
           adjacent layers (undilated). *)
        List.iteri
          (fun l rs ->
            List.iter
              (fun r ->
                reseed_rect t g ~passable ~layer:l (Geom.Rect.inflate r 1);
                if l + 1 < t.nl then
                  reseed_rect t g ~passable ~layer:(l + 1) r;
                if l > 0 then reseed_rect t g ~passable ~layer:(l - 1) r)
              rs)
          per_layer;
        drain t g ~passable;
        t.since <- Grid.mark g;
        Repaired
      end
