(* Per-net incremental-search cache (DESIGN.md §11).

   Each net owns one entry with two independently-lived parts:

   - a read-region certificate: the per-layer bounding rectangles of
     everything the net's last planning searches read, plus the journal
     mark taken when they finished.  While no grid write lands inside
     the certificate, a replan is provably byte-identical to the last
     one, so the whole net visit can be skipped;
   - a [Lowerbound] distance field, kept admissible across mutations by
     journal-driven repair, used as the improvement skip oracle.

   The cache is bound to one physical grid value: [matches] compares by
   physical identity, because marks and journal history are meaningless
   across re-instantiated grids. *)

type cert = {
  certs : Geom.Rect.t option array;  (* one read region per layer *)
  since : Grid.mark;
  owned : int;  (* the net's cell count when the verdict was recorded *)
}

type entry = {
  mutable cert : cert option;
  mutable field : Lowerbound.t option;
}

type t = {
  grid : Grid.t;
  entries : entry array;  (* index net - 1 *)
  mutable hits : int;
  mutable stale : int;
  mutable bound_skips : int;
  mutable field_builds : int;
  mutable field_repairs : int;
}

let create g ~nets =
  {
    grid = g;
    entries = Array.init nets (fun _ -> { cert = None; field = None });
    hits = 0;
    stale = 0;
    bound_skips = 0;
    field_builds = 0;
    field_repairs = 0;
  }

let matches t g ~nets = t.grid == g && Array.length t.entries = nets

let entry t ~net = t.entries.(net - 1)

(* The cells a set of searches may have read, from the workspace's
   per-layer expanded bounding boxes: an expanded node's reads are its
   four planar neighbours (same layer, one step) and the same (x,y) on
   the adjacent layers (via relaxations), so layer [l]'s read set is the
   dilated layer-[l] box joined with the adjacent layers' undilated
   boxes. *)
let read_certs ws =
  let nl = Workspace.layers ws in
  let dil = Option.map (fun r -> Geom.Rect.inflate r 1) in
  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Geom.Rect.hull a b)
  in
  Array.init nl (fun l ->
      let own = dil (Workspace.touched ws ~layer:l) in
      let above =
        if l + 1 < nl then Workspace.touched ws ~layer:(l + 1) else None
      in
      let below = if l > 0 then Workspace.touched ws ~layer:(l - 1) else None in
      join (join own above) below)

let all_layers_clean ~dirty certs =
  let nl = Array.length certs in
  let rec loop l =
    l >= nl
    || (match certs.(l) with None -> true | Some r -> not (dirty ~layer:l r))
       && loop (l + 1)
  in
  loop 0

let region_clean g ~since certs =
  all_layers_clean ~dirty:(fun ~layer r -> Grid.dirtied_in g ~since ~layer r)
    certs

(* A verdict certificate survives blocking writes: occupies and vias in
   the read region can remove candidate routes but never create a
   cheaper one, so "replanning cannot improve this net" stays true; only
   a freeing write (which may open a better corridor, or ripped the
   net's own wiring — own cells release inside the recorded own-wiring
   boxes) can flip the verdict.  The [owned] count guards the one
   mutation freeing rectangles cannot see: a net whose wiring grew with
   no release at all. *)
let verdict_clean g ~since certs =
  all_layers_clean
    ~dirty:(fun ~layer r -> Grid.dirtied_in_freeing g ~since ~layer r)
    certs

(* Latched certificate lookup: a stale entry is dropped (and counted)
   exactly once.  [owned] is the net's current cell count. *)
let cert_status t ~net ~owned =
  let e = entry t ~net in
  match e.cert with
  | None -> `Miss
  | Some c ->
      if c.owned = owned && verdict_clean t.grid ~since:c.since c.certs
      then begin
        t.hits <- t.hits + 1;
        `Hit
      end
      else begin
        e.cert <- None;
        t.stale <- t.stale + 1;
        `Miss
      end

let record_cert t ~net ~certs ~owned =
  (entry t ~net).cert <- Some { certs; since = Grid.mark t.grid; owned }

(* The field, built on first demand and journal-repaired on every later
   access, so its lower-bound invariant always reflects the current
   grid.  A cached field whose escape radius is smaller than the caller
   now needs (its verdict threshold grew past what [built_margin] can
   prove) is rebuilt at the wider margin instead of repaired. *)
let field t ~net ~cost ~passable ~targets ~around ~margin =
  let e = entry t ~net in
  match e.field with
  | Some f when Lowerbound.built_margin f >= margin ->
      (match Lowerbound.repair t.grid ~passable f with
      | Lowerbound.Clean -> ()
      | Lowerbound.Repaired -> t.field_repairs <- t.field_repairs + 1
      | Lowerbound.Rebuilt -> t.field_builds <- t.field_builds + 1);
      f
  | _ ->
      let f = Lowerbound.build t.grid ~cost ~passable ~targets ~around ~margin in
      t.field_builds <- t.field_builds + 1;
      e.field <- Some f;
      f

let note_bound_skip t = t.bound_skips <- t.bound_skips + 1

let hits t = t.hits

let stale t = t.stale

let bound_skips t = t.bound_skips

let field_builds t = t.field_builds

let field_repairs t = t.field_repairs
