(* Per-net incremental-search cache (DESIGN.md §11).

   Each net owns one entry with two independently-lived parts:

   - a read-region certificate: the per-layer bounding rectangles of
     everything the net's last planning searches read, plus the journal
     mark taken when they finished.  While no grid write lands inside
     the certificate, a replan is provably byte-identical to the last
     one, so the whole net visit can be skipped;
   - a [Lowerbound] distance field, kept admissible across mutations by
     journal-driven repair, used as the improvement skip oracle.

   The cache is bound to one physical grid value: [matches] compares by
   physical identity, because marks and journal history are meaningless
   across re-instantiated grids. *)

type cert = {
  c0 : Geom.Rect.t option;
  c1 : Geom.Rect.t option;
  since : Grid.mark;
  owned : int;  (* the net's cell count when the verdict was recorded *)
}

type entry = {
  mutable cert : cert option;
  mutable field : Lowerbound.t option;
}

type t = {
  grid : Grid.t;
  entries : entry array;  (* index net - 1 *)
  mutable hits : int;
  mutable stale : int;
  mutable bound_skips : int;
  mutable field_builds : int;
  mutable field_repairs : int;
}

let create g ~nets =
  {
    grid = g;
    entries = Array.init nets (fun _ -> { cert = None; field = None });
    hits = 0;
    stale = 0;
    bound_skips = 0;
    field_builds = 0;
    field_repairs = 0;
  }

let matches t g ~nets = t.grid == g && Array.length t.entries = nets

let entry t ~net = t.entries.(net - 1)

(* The cells a set of searches may have read, from the workspace's
   per-layer expanded bounding boxes: an expanded node's reads are its
   four planar neighbours (same layer, one step) and the same (x,y) on
   the other layer, so layer [l]'s read set is the dilated layer-[l] box
   joined with the other layer's undilated box. *)
let read_certs ws =
  let t0 = Workspace.touched ws ~layer:0 in
  let t1 = Workspace.touched ws ~layer:1 in
  let dil = Option.map (fun r -> Geom.Rect.inflate r 1) in
  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Geom.Rect.hull a b)
  in
  (join (dil t0) t1, join (dil t1) t0)

let region_clean g ~since c0 c1 =
  (match c0 with
  | None -> true
  | Some r -> not (Grid.dirtied_in g ~since ~layer:0 r))
  && match c1 with
     | None -> true
     | Some r -> not (Grid.dirtied_in g ~since ~layer:1 r)

(* A verdict certificate survives blocking writes: occupies and vias in
   the read region can remove candidate routes but never create a
   cheaper one, so "replanning cannot improve this net" stays true; only
   a freeing write (which may open a better corridor, or ripped the
   net's own wiring — own cells release inside the recorded own-wiring
   boxes) can flip the verdict.  The [owned] count guards the one
   mutation freeing rectangles cannot see: a net whose wiring grew with
   no release at all. *)
let verdict_clean g ~since c0 c1 =
  (match c0 with
  | None -> true
  | Some r -> not (Grid.dirtied_in_freeing g ~since ~layer:0 r))
  && match c1 with
     | None -> true
     | Some r -> not (Grid.dirtied_in_freeing g ~since ~layer:1 r)

(* Latched certificate lookup: a stale entry is dropped (and counted)
   exactly once.  [owned] is the net's current cell count. *)
let cert_status t ~net ~owned =
  let e = entry t ~net in
  match e.cert with
  | None -> `Miss
  | Some c ->
      if c.owned = owned && verdict_clean t.grid ~since:c.since c.c0 c.c1
      then begin
        t.hits <- t.hits + 1;
        `Hit
      end
      else begin
        e.cert <- None;
        t.stale <- t.stale + 1;
        `Miss
      end

let record_cert t ~net ~cert0 ~cert1 ~owned =
  (entry t ~net).cert <-
    Some { c0 = cert0; c1 = cert1; since = Grid.mark t.grid; owned }

(* The field, built on first demand and journal-repaired on every later
   access, so its lower-bound invariant always reflects the current
   grid.  A cached field whose escape radius is smaller than the caller
   now needs (its verdict threshold grew past what [built_margin] can
   prove) is rebuilt at the wider margin instead of repaired. *)
let field t ~net ~cost ~passable ~targets ~around ~margin =
  let e = entry t ~net in
  match e.field with
  | Some f when Lowerbound.built_margin f >= margin ->
      (match Lowerbound.repair t.grid ~passable f with
      | Lowerbound.Clean -> ()
      | Lowerbound.Repaired -> t.field_repairs <- t.field_repairs + 1
      | Lowerbound.Rebuilt -> t.field_builds <- t.field_builds + 1);
      f
  | _ ->
      let f = Lowerbound.build t.grid ~cost ~passable ~targets ~around ~margin in
      t.field_builds <- t.field_builds + 1;
      e.field <- Some f;
      f

let note_bound_skip t = t.bound_skips <- t.bound_skips + 1

let hits t = t.hits

let stale t = t.stale

let bound_skips t = t.bound_skips

let field_builds t = t.field_builds

let field_repairs t = t.field_repairs
