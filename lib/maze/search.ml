type result = { path : Grid.Path.t; total_cost : int; expanded : int }

type kernel = Binary_heap | Buckets

let kernel_name = function Binary_heap -> "heap" | Buckets -> "buckets"

(* Inclusive search window in planar coordinates. *)
type win = { x0 : int; y0 : int; x1 : int; y1 : int }

let full_win g =
  { x0 = 0; y0 = 0; x1 = Grid.width g - 1; y1 = Grid.height g - 1 }

let backtrace ws target =
  let rec loop n acc =
    let p = Workspace.parent ws n in
    if p < 0 then n :: acc else loop p (n :: acc)
  in
  loop target []

(* Core loop shared by Dijkstra ([heuristic] constant 0) and A*.  The
   frontier holds [g + h] priorities; [dist] holds settled/tentative [g].
   Both kernels drive the same loop through monomorphic int closures, so
   their relative cost is purely the queue discipline: the binary heap pays
   O(log n) per operation, the bucket queue O(1) (edge costs are small
   bounded ints — the ideal Dial case; the A* heuristic is consistent, so
   popped priorities stay monotone and the bucket span stays small).
   Returns the expansion count even on failure so windowed retries can
   account for wasted effort.

   [stop] is the cooperative cancellation hook: polled every 64 expansions
   with the in-flight expansion count, and when it answers [true] the
   search aborts, reporting the abort distinctly from exhaustion so a
   windowed caller gives up instead of widening and retrying. *)
let stop_interval = 64

let core g ws ~kernel ~cost ~passable ~sources ~targets ~heuristic ~win ~stop
    () =
  Workspace.begin_search ws;
  let push, pop, has_more =
    match kernel with
    | Binary_heap ->
        let q = Workspace.heap ws in
        ( (fun p n -> Util.Pqueue.push q p n),
          (fun () -> Util.Pqueue.pop q),
          fun () -> not (Util.Pqueue.is_empty q) )
    | Buckets ->
        let q = Workspace.buckets ws in
        ( (fun p n -> Util.Bucketq.push q p n),
          (fun () -> Util.Bucketq.pop q),
          fun () -> not (Util.Bucketq.is_empty q) )
  in
  let w = Grid.width g and h = Grid.height g in
  let nl = Grid.layers g in
  let pc = Grid.planar_cells g in
  (* Per-layer step prices, hoisted out of the expansion loop. *)
  let hcost =
    Array.init nl (fun l ->
        Cost.step_cost cost
          ~prefers_h:(Grid.prefers_horizontal g ~layer:l)
          ~horizontal:true)
  and vcost =
    Array.init nl (fun l ->
        Cost.step_cost cost
          ~prefers_h:(Grid.prefers_horizontal g ~layer:l)
          ~horizontal:false)
  in
  let windowed = win.x0 > 0 || win.y0 > 0 || win.x1 < w - 1 || win.y1 < h - 1 in
  let passable =
    if not windowed then passable
    else fun n ->
      let x = Grid.node_x g n and y = Grid.node_y g n in
      if x < win.x0 || x > win.x1 || y < win.y0 || y > win.y1 then None
      else passable n
  in
  List.iter (fun t -> Workspace.mark ws t) targets;
  List.iter
    (fun s ->
      if Workspace.dist ws s > 0 then begin
        Workspace.set_dist ws s 0;
        Workspace.set_parent ws s (-1);
        push (heuristic s) s
      end)
    sources;
  let expanded = ref 0 in
  let found = ref None in
  let aborted = ref false in
  (* Per-layer bbox of expanded nodes, merged into the workspace's
     touched accumulator at loop exit (so failed and aborted searches are
     covered too).  Small per-layer arrays keep the hot loop
     allocation-free. *)
  let tx0 = Array.make nl max_int and ty0 = Array.make nl max_int in
  let tx1 = Array.make nl min_int and ty1 = Array.make nl min_int in
  let should_stop =
    match stop with
    | None -> fun _ -> false
    | Some f -> fun n -> n land (stop_interval - 1) = 0 && f n
  in
  let relax from gscore n extra =
    match passable n with
    | None -> ()
    | Some penalty ->
        let nd = gscore + extra + penalty in
        if nd < Workspace.dist ws n then begin
          Workspace.set_dist ws n nd;
          Workspace.set_parent ws n from;
          push (nd + heuristic n) n
        end
  in
  while !found = None && (not !aborted) && has_more () do
    let prio, n = pop () in
    let gscore = Workspace.dist ws n in
    (* Stale frontier entry: the node was re-pushed with a smaller key. *)
    if prio - heuristic n <= gscore then begin
      incr expanded;
      let layer = Grid.node_layer g n in
      let x = Grid.node_x g n and y = Grid.node_y g n in
      if x < tx0.(layer) then tx0.(layer) <- x;
      if x > tx1.(layer) then tx1.(layer) <- x;
      if y < ty0.(layer) then ty0.(layer) <- y;
      if y > ty1.(layer) then ty1.(layer) <- y;
      if should_stop !expanded then aborted := true
      else if Workspace.marked ws n then
        found := Some { path = backtrace ws n; total_cost = gscore; expanded = !expanded }
      else begin
        let horizontal_cost = hcost.(layer) in
        let vertical_cost = vcost.(layer) in
        if x + 1 < w then relax n gscore (n + 1) horizontal_cost;
        if x > 0 then relax n gscore (n - 1) horizontal_cost;
        if y + 1 < h then relax n gscore (n + w) vertical_cost;
        if y > 0 then relax n gscore (n - w) vertical_cost;
        (* Layer changes: one relaxation per adjacent layer — exactly one
           on a two-layer stack, preserving the historical frontier
           evolution (and with it Buckets pop-order byte-identity). *)
        if layer + 1 < nl then relax n gscore (n + pc) cost.Cost.via;
        if layer > 0 then relax n gscore (n - pc) cost.Cost.via
      end
    end
  done;
  for l = 0 to nl - 1 do
    if tx1.(l) >= tx0.(l) then
      Workspace.note_touched ws ~layer:l ~x0:tx0.(l) ~y0:ty0.(l) ~x1:tx1.(l)
        ~y1:ty1.(l)
  done;
  (!found, !expanded, !aborted)

(* Bounding box of the endpoint sets, in planar coordinates. *)
let bbox g nodes =
  List.fold_left
    (fun (x0, y0, x1, y1) n ->
      let x = Grid.node_x g n and y = Grid.node_y g n in
      (min x0 x, min y0 y, max x1 x, max y1 y))
    (max_int, max_int, min_int, min_int)
    nodes

(* Run [attempt] restricted to the endpoints' bounding box grown by
   [margin] cells, widening geometrically and retrying until the window
   covers the whole grid — the standard detailed-routing pruning: almost
   every connection fits its bbox plus a small margin, and the rare detour
   pays one cheap failed probe.

   The windowed result is kept only when it is provably globally optimal:
   any path that leaves the window must stray at least [margin + 1] planar
   steps beyond the endpoints' bounding box and come back, so it costs at
   least [wire * (min-L1 + 2 * (margin + 1))] (vias and penalties only add
   to that).  A found cost at or below the bound cannot be beaten outside
   the window; a costlier find triggers a widen-and-retry just like a
   failure.  Windowed searches therefore return exactly the unwindowed
   cost, and the expansion count of discarded probes is charged to the
   final result so effort metrics stay honest. *)
let with_window g ~window ~wire ~sources ~targets attempt =
  let full = full_win g in
  let first (r, _, _) = r in
  match window with
  | None -> first (attempt full)
  | Some margin ->
      if sources = [] || targets = [] then first (attempt full)
      else begin
        let bx0, by0, bx1, by1 = bbox g (List.rev_append sources targets) in
        let min_l1 =
          List.fold_left
            (fun acc s ->
              let sx = Grid.node_x g s and sy = Grid.node_y g s in
              List.fold_left
                (fun acc t ->
                  min acc
                    (abs (sx - Grid.node_x g t) + abs (sy - Grid.node_y g t)))
                acc targets)
            max_int sources
        in
        let clip m =
          {
            x0 = max 0 (bx0 - m);
            y0 = max 0 (by0 - m);
            x1 = min full.x1 (bx1 + m);
            y1 = min full.y1 (by1 + m);
          }
        in
        let rec loop m wasted =
          let win = clip m in
          let optimal r =
            win = full
            || r.total_cost <= wire * (min_l1 + (2 * (m + 1)))
          in
          match attempt win with
          | Some r, _, _ when optimal r ->
              Some { r with expanded = r.expanded + wasted }
          | Some r, _, _ -> loop ((2 * m) + 4) (wasted + r.expanded)
          (* Aborted probe: the budget tripped mid-search — give up
             instead of widening, the caller is unwinding anyway. *)
          | None, _, true -> None
          | None, expanded, false ->
              if win = full then None
              else loop ((2 * m) + 4) (wasted + expanded)
        in
        loop (max 0 margin) 0
      end

let run ?(kernel = Binary_heap) ?window ?stop g ws ~cost ~passable ~sources
    ~targets () =
  with_window g ~window ~wire:cost.Cost.wire ~sources ~targets (fun win ->
      core g ws ~kernel ~cost ~passable ~sources ~targets
        ~heuristic:(fun _ -> 0)
        ~win ~stop ())

(* Precompute the A* heuristic — L1 distance to the nearest target, times
   the cheapest planar step — as a flat int array over the window with a
   two-pass distance transform: O(window) total, independent of the target
   count, replacing the former per-relax fold over the target list.

   The transform is a pure function of (planar targets, window, wire): it
   never reads grid occupancy.  With [memo] the workspace's stored key is
   checked first and a matching field is reused verbatim, so the repeated
   searches of an escalation loop (shove-and-retry against the same
   target set) or a retry sweep skip the O(window) rebuild.  The key is
   always (re)stamped on compute, so memoized and unmemoized callers can
   interleave safely. *)
let build_heuristic ?(memo = false) g ws ~wire ~targets ~win =
  let w = Grid.width g in
  let hf = Workspace.hfield ws in
  let tplanar = List.map (fun t -> Grid.planar g t) targets in
  let key_win = (win.x0, win.y0, win.x1, win.y1) in
  if
    not (memo && Workspace.hfield_memo_hit ws ~wire ~win:key_win ~targets:tplanar)
  then begin
    let inf = max_int / 256 in
    for y = win.y0 to win.y1 do
      let row = y * w in
      for x = win.x0 to win.x1 do
        hf.(row + x) <- inf
      done
    done;
    List.iter (fun p -> hf.(p) <- 0) tplanar;
    for y = win.y0 to win.y1 do
      let row = y * w in
      for x = win.x0 to win.x1 do
        let i = row + x in
        if x > win.x0 && hf.(i - 1) + 1 < hf.(i) then hf.(i) <- hf.(i - 1) + 1;
        if y > win.y0 && hf.(i - w) + 1 < hf.(i) then hf.(i) <- hf.(i - w) + 1
      done
    done;
    for y = win.y1 downto win.y0 do
      let row = y * w in
      for x = win.x1 downto win.x0 do
        let i = row + x in
        if x < win.x1 && hf.(i + 1) + 1 < hf.(i) then hf.(i) <- hf.(i + 1) + 1;
        if y < win.y1 && hf.(i + w) + 1 < hf.(i) then hf.(i) <- hf.(i + w) + 1
      done
    done;
    Workspace.hfield_memo_store ws ~wire ~win:key_win ~targets:tplanar
  end;
  fun n -> wire * hf.(Grid.planar g n)

let run_astar ?(kernel = Binary_heap) ?window ?stop ?(memo = false) g ws
    ~cost ~passable ~sources ~targets () =
  let wire = cost.Cost.wire in
  with_window g ~window ~wire ~sources ~targets (fun win ->
      let heuristic = build_heuristic ~memo g ws ~wire ~targets ~win in
      core g ws ~kernel ~cost ~passable ~sources ~targets ~heuristic ~win
        ~stop ())

(* A* with a precomputed lower-bound field as the heuristic.  The field
   is admissible for searches restricted to its window (it never
   over-estimates the in-window cost-to-target), so the search runs
   window-restricted with no widening: the returned cost is the exact
   windowed optimum — equal to the global optimum whenever the window
   covers the whole grid (how the exactness tests drive it).  Nodes the
   field proves cannot reach a target inside the window are pruned
   outright.  A repaired (stale-low) field is still admissible, merely
   less sharp; the core tolerates the resulting inconsistency by
   re-expansion. *)
let run_astar_lb ?(kernel = Binary_heap) ?stop g ws ~lb ~cost ~passable
    ~sources ~targets () =
  let r = Lowerbound.window lb in
  let win =
    { x0 = r.Geom.Rect.x0; y0 = r.Geom.Rect.y0;
      x1 = r.Geom.Rect.x1; y1 = r.Geom.Rect.y1 }
  in
  let heuristic n = Lowerbound.value lb g n in
  let passable n =
    if Lowerbound.value lb g n >= Lowerbound.inf_cost then None
    else passable n
  in
  let sources =
    List.filter (fun s -> Lowerbound.value lb g s < Lowerbound.inf_cost) sources
  in
  if sources = [] then None
  else
    let found, _, _ =
      core g ws ~kernel ~cost ~passable ~sources ~targets ~heuristic ~win
        ~stop ()
    in
    found

(* --- guided search ---------------------------------------------------

   A guide is a rectangle a global router believes the net's route stays
   inside.  [run_guided] searches only the guide window (hulled with the
   endpoints, which must be coverable) and certifies whether the result
   is {e pop-order identical} to what the unwindowed search would have
   produced — not merely equal in cost, byte-identical in path.

   The certificate: every relaxation the window rejects is a frontier
   entry the full search would have considered; its key would have been
   [g + step + penalty + h].  We track the minimum such would-be key,
   [f_min_out].  If the target pops at cost [c*] with [f_min_out > c*]
   (strictly), then in the full search every out-of-window entry sits in
   a priority bucket strictly above [c*]: the full run pops the exact
   same node sequence and terminates at the same target pop, with the
   same parents — the same path, the same expansion count.  The strict
   inequality matters because the Dial bucket queue ({!Buckets}) is LIFO
   within one bucket: an out-of-window entry sharing bucket [c*] could
   pop first.  The argument relies on bucket content identity and
   therefore holds for the [Buckets] kernel only — a binary heap's
   tie-breaking depends on the shape of the whole heap, which the extra
   out-of-window entries perturb.  Callers wanting the byte-identity
   contract must route with [Buckets] (the flow pipeline forces it).

   The in-window heuristic is the same exact-L1 transform the full
   search uses (a two-pass chamfer over any rectangle containing all
   targets is exact, so the values are window-independent); rejected
   nodes fall outside the transform's window and get their L1 computed
   directly against the planar target list. *)

type guided = {
  g_result : result option;
  g_expanded : int;
  g_aborted : bool;
  g_certified : bool;
}

(* [core] with the window test moved inside the relaxation so rejected
   escapes can be priced.  [h_out] prices the heuristic of nodes outside
   the window (where the hfield was never written). *)
let core_escape g ws ~kernel ~cost ~passable ~sources ~targets ~heuristic
    ~h_out ~win ~stop () =
  Workspace.begin_search ws;
  let push, pop, has_more =
    match kernel with
    | Binary_heap ->
        let q = Workspace.heap ws in
        ( (fun p n -> Util.Pqueue.push q p n),
          (fun () -> Util.Pqueue.pop q),
          fun () -> not (Util.Pqueue.is_empty q) )
    | Buckets ->
        let q = Workspace.buckets ws in
        ( (fun p n -> Util.Bucketq.push q p n),
          (fun () -> Util.Bucketq.pop q),
          fun () -> not (Util.Bucketq.is_empty q) )
  in
  let w = Grid.width g and h = Grid.height g in
  let nl = Grid.layers g in
  let pc = Grid.planar_cells g in
  let hcost =
    Array.init nl (fun l ->
        Cost.step_cost cost
          ~prefers_h:(Grid.prefers_horizontal g ~layer:l)
          ~horizontal:true)
  and vcost =
    Array.init nl (fun l ->
        Cost.step_cost cost
          ~prefers_h:(Grid.prefers_horizontal g ~layer:l)
          ~horizontal:false)
  in
  List.iter (fun t -> Workspace.mark ws t) targets;
  List.iter
    (fun s ->
      if Workspace.dist ws s > 0 then begin
        Workspace.set_dist ws s 0;
        Workspace.set_parent ws s (-1);
        push (heuristic s) s
      end)
    sources;
  let expanded = ref 0 in
  let found = ref None in
  let aborted = ref false in
  let f_min_out = ref max_int in
  let tx0 = Array.make nl max_int and ty0 = Array.make nl max_int in
  let tx1 = Array.make nl min_int and ty1 = Array.make nl min_int in
  let should_stop =
    match stop with
    | None -> fun _ -> false
    | Some f -> fun n -> n land (stop_interval - 1) = 0 && f n
  in
  let relax from gscore n extra =
    match passable n with
    | None -> ()
    | Some penalty ->
        let x = Grid.node_x g n and y = Grid.node_y g n in
        if x < win.x0 || x > win.x1 || y < win.y0 || y > win.y1 then begin
          let key = gscore + extra + penalty + h_out n in
          if key < !f_min_out then f_min_out := key
        end
        else begin
          let nd = gscore + extra + penalty in
          if nd < Workspace.dist ws n then begin
            Workspace.set_dist ws n nd;
            Workspace.set_parent ws n from;
            push (nd + heuristic n) n
          end
        end
  in
  while !found = None && (not !aborted) && has_more () do
    let prio, n = pop () in
    let gscore = Workspace.dist ws n in
    if prio - heuristic n <= gscore then begin
      incr expanded;
      let layer = Grid.node_layer g n in
      let x = Grid.node_x g n and y = Grid.node_y g n in
      if x < tx0.(layer) then tx0.(layer) <- x;
      if x > tx1.(layer) then tx1.(layer) <- x;
      if y < ty0.(layer) then ty0.(layer) <- y;
      if y > ty1.(layer) then ty1.(layer) <- y;
      if should_stop !expanded then aborted := true
      else if Workspace.marked ws n then
        found :=
          Some { path = backtrace ws n; total_cost = gscore; expanded = !expanded }
      else begin
        let horizontal_cost = hcost.(layer) in
        let vertical_cost = vcost.(layer) in
        if x + 1 < w then relax n gscore (n + 1) horizontal_cost;
        if x > 0 then relax n gscore (n - 1) horizontal_cost;
        if y + 1 < h then relax n gscore (n + w) vertical_cost;
        if y > 0 then relax n gscore (n - w) vertical_cost;
        if layer + 1 < nl then relax n gscore (n + pc) cost.Cost.via;
        if layer > 0 then relax n gscore (n - pc) cost.Cost.via
      end
    end
  done;
  for l = 0 to nl - 1 do
    if tx1.(l) >= tx0.(l) then
      Workspace.note_touched ws ~layer:l ~x0:tx0.(l) ~y0:ty0.(l) ~x1:tx1.(l)
        ~y1:ty1.(l)
  done;
  (!found, !expanded, !aborted, !f_min_out)

let run_guided ?(kernel = Binary_heap) ?(astar = false) ?stop ?(memo = false)
    ~guide g ws ~cost ~passable ~sources ~targets () =
  let wire = cost.Cost.wire in
  let full = full_win g in
  let run_full ~certified =
    let heuristic =
      if astar then build_heuristic ~memo g ws ~wire ~targets ~win:full
      else fun _ -> 0
    in
    let found, expanded, aborted =
      core g ws ~kernel ~cost ~passable ~sources ~targets ~heuristic
        ~win:full ~stop ()
    in
    { g_result = found; g_expanded = expanded; g_aborted = aborted;
      g_certified = certified }
  in
  if sources = [] || targets = [] then run_full ~certified:true
  else begin
    let bx0, by0, bx1, by1 = bbox g (List.rev_append sources targets) in
    let win =
      {
        x0 = max 0 (min bx0 guide.Geom.Rect.x0);
        y0 = max 0 (min by0 guide.Geom.Rect.y0);
        x1 = min full.x1 (max bx1 guide.Geom.Rect.x1);
        y1 = min full.y1 (max by1 guide.Geom.Rect.y1);
      }
    in
    if win = full then run_full ~certified:true
    else begin
      let heuristic =
        if astar then build_heuristic ~memo g ws ~wire ~targets ~win
        else fun _ -> 0
      in
      let h_out =
        if not astar then fun _ -> 0
        else begin
          let tplanar =
            List.map (fun t -> (Grid.node_x g t, Grid.node_y g t)) targets
          in
          fun n ->
            let x = Grid.node_x g n and y = Grid.node_y g n in
            wire
            * List.fold_left
                (fun acc (tx, ty) -> min acc (abs (x - tx) + abs (y - ty)))
                max_int tplanar
        end
      in
      let found, expanded, aborted, f_min_out =
        core_escape g ws ~kernel ~cost ~passable ~sources ~targets ~heuristic
          ~h_out ~win ~stop ()
      in
      let certified =
        match found with
        | Some r -> f_min_out > r.total_cost
        | None ->
            (* Exhausted the window without one rejected escape: every
               reachable passable node lies in-window, so the full search
               explores the same set and fails identically. *)
            (not aborted) && f_min_out = max_int
      in
      { g_result = found; g_expanded = expanded; g_aborted = aborted;
        g_certified = certified }
    end
  end

(* Plain BFS wave expansion; dist doubles as the visited set. *)
let run_lee g ws ~passable ~sources ~targets () =
  Workspace.begin_search ws;
  List.iter (fun t -> Workspace.mark ws t) targets;
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if Workspace.dist ws s > 0 then begin
        Workspace.set_dist ws s 0;
        Workspace.set_parent ws s (-1);
        Queue.add s queue
      end)
    sources;
  let w = Grid.width g and h = Grid.height g in
  let expanded = ref 0 in
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    incr expanded;
    if Workspace.marked ws n then
      found :=
        Some
          {
            path = backtrace ws n;
            total_cost = Workspace.dist ws n;
            expanded = !expanded;
          }
    else begin
      let d = Workspace.dist ws n in
      let visit m =
        if Workspace.dist ws m = max_int && passable m <> None then begin
          Workspace.set_dist ws m (d + 1);
          Workspace.set_parent ws m n;
          Queue.add m queue
        end
      in
      let x = Grid.node_x g n and y = Grid.node_y g n in
      let layer = Grid.node_layer g n in
      if x + 1 < w then visit (n + 1);
      if x > 0 then visit (n - 1);
      if y + 1 < h then visit (n + w);
      if y > 0 then visit (n - w);
      if layer + 1 < Grid.layers g then visit (Grid.node_above g n);
      if layer > 0 then visit (Grid.node_below g n)
    end
  done;
  !found

let reachable g ws ~passable ~sources ~targets =
  match
    run g ws ~cost:Cost.uniform ~passable ~sources ~targets ()
  with
  | Some _ -> true
  | None -> false
