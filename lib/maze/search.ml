type result = { path : Grid.Path.t; total_cost : int; expanded : int }

let backtrace ws target =
  let rec loop n acc =
    let p = Workspace.parent ws n in
    if p < 0 then n :: acc else loop p (n :: acc)
  in
  loop target []

(* Core loop shared by Dijkstra ([heuristic] constant 0) and A*.  The
   heap holds [g + h] priorities; [dist] holds settled/tentative [g]. *)
let run_with g ws ~cost ~passable ~sources ~targets ~heuristic () =
  Workspace.begin_search ws;
  let heap = Workspace.heap ws in
  List.iter (fun t -> Workspace.mark ws t) targets;
  List.iter
    (fun s ->
      if Workspace.dist ws s > 0 then begin
        Workspace.set_dist ws s 0;
        Workspace.set_parent ws s (-1);
        Util.Pqueue.push heap (heuristic s) s
      end)
    sources;
  let w = Grid.width g and h = Grid.height g in
  let expanded = ref 0 in
  let found = ref None in
  let relax from gscore n extra =
    match passable n with
    | None -> ()
    | Some penalty ->
        let nd = gscore + extra + penalty in
        if nd < Workspace.dist ws n then begin
          Workspace.set_dist ws n nd;
          Workspace.set_parent ws n from;
          Util.Pqueue.push heap (nd + heuristic n) n
        end
  in
  while !found = None && not (Util.Pqueue.is_empty heap) do
    let prio, n = Util.Pqueue.pop heap in
    let gscore = Workspace.dist ws n in
    (* Stale heap entry: the node was re-pushed with a smaller key. *)
    if prio - heuristic n <= gscore then begin
      incr expanded;
      if Workspace.marked ws n then
        found := Some { path = backtrace ws n; total_cost = gscore; expanded = !expanded }
      else begin
        let layer = Grid.node_layer g n in
        let x = Grid.node_x g n and y = Grid.node_y g n in
        let horizontal_cost = Cost.step_cost cost ~layer ~horizontal:true in
        let vertical_cost = Cost.step_cost cost ~layer ~horizontal:false in
        if x + 1 < w then relax n gscore (n + 1) horizontal_cost;
        if x > 0 then relax n gscore (n - 1) horizontal_cost;
        if y + 1 < h then relax n gscore (n + w) vertical_cost;
        if y > 0 then relax n gscore (n - w) vertical_cost;
        relax n gscore (Grid.other_layer_node g n) cost.Cost.via
      end
    end
  done;
  !found

let run g ws ~cost ~passable ~sources ~targets () =
  run_with g ws ~cost ~passable ~sources ~targets ~heuristic:(fun _ -> 0) ()

let run_astar g ws ~cost ~passable ~sources ~targets () =
  let coords =
    List.map (fun t -> (Grid.node_x g t, Grid.node_y g t)) targets
  in
  let wire = cost.Cost.wire in
  let heuristic n =
    let x = Grid.node_x g n and y = Grid.node_y g n in
    let d =
      List.fold_left
        (fun acc (tx, ty) -> min acc (abs (tx - x) + abs (ty - y)))
        max_int coords
    in
    if d = max_int then 0 else wire * d
  in
  run_with g ws ~cost ~passable ~sources ~targets ~heuristic ()

(* Plain BFS wave expansion; dist doubles as the visited set. *)
let run_lee g ws ~passable ~sources ~targets () =
  Workspace.begin_search ws;
  List.iter (fun t -> Workspace.mark ws t) targets;
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if Workspace.dist ws s > 0 then begin
        Workspace.set_dist ws s 0;
        Workspace.set_parent ws s (-1);
        Queue.add s queue
      end)
    sources;
  let w = Grid.width g and h = Grid.height g in
  let expanded = ref 0 in
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    incr expanded;
    if Workspace.marked ws n then
      found :=
        Some
          {
            path = backtrace ws n;
            total_cost = Workspace.dist ws n;
            expanded = !expanded;
          }
    else begin
      let d = Workspace.dist ws n in
      let visit m =
        if Workspace.dist ws m = max_int && passable m <> None then begin
          Workspace.set_dist ws m (d + 1);
          Workspace.set_parent ws m n;
          Queue.add m queue
        end
      in
      let x = Grid.node_x g n and y = Grid.node_y g n in
      if x + 1 < w then visit (n + 1);
      if x > 0 then visit (n - 1);
      if y + 1 < h then visit (n + w);
      if y > 0 then visit (n - w);
      visit (Grid.other_layer_node g n)
    end
  done;
  !found

let reachable g ws ~passable ~sources ~targets =
  match
    run g ws ~cost:Cost.uniform ~passable ~sources ~targets ()
  with
  | Some _ -> true
  | None -> false
