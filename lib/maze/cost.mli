(** Search cost model.

    All costs are small non-negative integers; the search minimises the sum
    over the path of per-step costs plus per-node entry penalties supplied by
    the caller (used by the rip-up scheduler to price crossing foreign
    nets). *)

type t = {
  wire : int;  (** every planar unit step *)
  via : int;  (** every layer change *)
  wrong_way : int;
      (** surcharge for a planar step against the layer's preferred
          direction (see {!Grid.prefers_horizontal}; the default stack
          prefers horizontal on layer 0, vertical on layer 1) *)
}

val default : t
(** [{ wire = 1; via = 4; wrong_way = 2 }] — the classical two-layer HV
    setting: vias are expensive, off-direction wiring discouraged but
    possible. *)

val uniform : t
(** [{ wire = 1; via = 1; wrong_way = 0 }] — pure Lee-style shortest path;
    used by tests as the geometric reference. *)

val step_cost : t -> prefers_h:bool -> horizontal:bool -> int
(** Cost of one planar step in the given orientation on a layer whose
    preferred direction is [prefers_h]. *)

val pp : Format.formatter -> t -> unit
