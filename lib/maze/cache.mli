(** Per-net incremental-search cache with dirty-rectangle invalidation.

    Persists two things per net across rip-up/improve iterations
    (DESIGN.md §11):

    - a {e read-region certificate}: the per-layer rectangles everything
      the net's last improvement verdict read (planning searches, the
      net's own wiring), with the journal mark taken when it was
      reached.  While no {e freeing} write lands inside the certificate
      and the net's cell count is unchanged, revisiting the net provably
      reproduces the same no-commit verdict — blocking writes can remove
      candidate routes but never create a cheaper one — so the visit is
      skipped outright;
    - a {!Lowerbound} distance field, journal-repaired on access, used
      as an admissible skip oracle for improvement passes.

    A cache is bound to one physical grid value ({!matches} compares by
    identity): journal marks do not survive grid re-instantiation. *)

type t

val create : Grid.t -> nets:int -> t

val matches : t -> Grid.t -> nets:int -> bool
(** [true] when the cache was created for this exact grid value (physical
    equality) and net count — the precondition for reusing it. *)

val read_certs : Workspace.t -> Geom.Rect.t option array
(** Per-layer read-region certificates of everything the workspace's
    searches expanded since its last [clear_touched]: each layer's
    touched box dilated by one (planar neighbour reads) hulled with the
    adjacent layers' undilated boxes (via reads). *)

val region_clean :
  Grid.t -> since:Grid.mark -> Geom.Rect.t option array -> bool
(** No journal write at all since [since] intersects any layer's
    certificate — the {e route-replay} validity test (the engine's
    speculative cache replays committed paths, which any write can
    invalidate). *)

val verdict_clean :
  Grid.t -> since:Grid.mark -> Geom.Rect.t option array -> bool
(** No {e freeing} journal write since [since] intersects any layer's
    certificate — the {e verdict-replay} validity test ("replanning
    cannot improve this net" survives blocking writes). *)

val cert_status : t -> net:int -> owned:int -> [ `Hit | `Miss ]
(** Validate the net's certificate: {!verdict_clean} plus an unchanged
    cell count [owned] (the guard against wiring that grew without any
    release, the one mutation freeing rectangles cannot witness).
    [`Hit] counts a hit; a stale certificate is dropped and counted
    exactly once, then reported [`Miss]. *)

val record_cert :
  t -> net:int -> certs:Geom.Rect.t option array -> owned:int -> unit
(** Store a certificate with the journal mark taken now (the grid is
    sealed as a side effect of taking the mark).  [owned] is the net's
    cell count at verdict time; the certificates must cover everything
    the verdict read, including the net's own wiring. *)

val field :
  t ->
  net:int ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  targets:int list ->
  around:int list ->
  margin:int ->
  Lowerbound.t
(** The net's lower-bound field, built on first demand and
    journal-repaired on every later access, so the returned field's
    admissibility invariant holds against the current grid.  A cached
    field built with a smaller [margin] than requested is rebuilt at
    the wider one (the escape bound it can prove grows with the
    margin). *)

val note_bound_skip : t -> unit

(** {1 Effectiveness counters} *)

val hits : t -> int
(** Certificate validations that allowed skipping a net visit. *)

val stale : t -> int
(** Certificates invalidated by an intersecting dirty rectangle. *)

val bound_skips : t -> int
(** Net visits skipped because the lower bound proved no improvement. *)

val field_builds : t -> int
(** Distance fields built from scratch (including ring-wrap rebuilds). *)

val field_repairs : t -> int
(** Incremental dirty-region repairs of existing fields. *)
