(** Net-level routing: connect all pins of a net into one tree.

    [route_net] is the plain (non-destructive) sequential router used both as
    the inner step of the full rip-up router and, standalone, as the
    "one-shot maze router" baseline of the experiments.  Pins are joined
    Prim-style: each search connects the grown tree to its nearest
    still-unconnected pin, which yields reasonable Steiner trees without a
    separate topology phase. *)

type failure = {
  failed_net : int;
  unreached : Netlist.Net.pin;  (** first pin the search could not reach *)
}

type success = {
  added : int list;  (** nodes newly occupied for the net (excludes pins) *)
  wirelength : int;
  vias : int;
  expanded : int;  (** total nodes settled over all searches *)
}

val passable_default : Grid.t -> net:int -> int -> int option
(** The standard passability: free cells and cells already owned by [net]
    cost 0 extra; everything else is impassable. *)

val occupy_path : Grid.t -> net:int -> Grid.Path.t -> int list
(** Claim every node of the path for the net and place vias at layer
    changes; returns the nodes that were newly occupied (already-owned nodes
    are skipped).  The path must only visit free or self-owned cells. *)

val release_nodes : Grid.t -> int list -> unit
(** Free the given nodes (used to undo a partial routing). *)

val pin_node : Grid.t -> Netlist.Net.pin -> int

val route_net :
  ?passable:(int -> int option) ->
  ?use_astar:bool ->
  ?kernel:Search.kernel ->
  ?window:int ->
  ?stop:(int -> bool) ->
  Grid.t ->
  Workspace.t ->
  cost:Cost.t ->
  Netlist.Net.t ->
  (success, failure) Stdlib.result
(** Connect all pins of the net on the grid.  On success the grid is
    updated; on failure the grid is restored to its prior state.  Nets with
    fewer than two pins succeed trivially.  [passable] defaults to
    {!passable_default} (it must never price foreign cells if the result is
    to be committed directly).  [kernel], [window] and [stop] are forwarded
    to the underlying {!Search} runs; an aborted search counts as a failed
    connection, and the partial net is released as usual. *)
