(** Net-level routing: connect all pins of a net into one tree.

    [route_net] is the plain (non-destructive) sequential router used both as
    the inner step of the full rip-up router and, standalone, as the
    "one-shot maze router" baseline of the experiments.  Pins are joined
    Prim-style: each search connects the grown tree to its nearest
    still-unconnected pin, which yields reasonable Steiner trees without a
    separate topology phase. *)

type failure = {
  failed_net : int;
  unreached : Netlist.Net.pin;  (** first pin the search could not reach *)
}

type success = {
  added : int list;  (** nodes newly occupied for the net (excludes pins) *)
  wirelength : int;
  vias : int;
  expanded : int;  (** total nodes settled over all searches *)
}

val passable_default : Grid.t -> net:int -> int -> int option
(** The standard passability: free cells and cells already owned by [net]
    cost 0 extra; everything else is impassable. *)

val occupy_path : Grid.t -> net:int -> Grid.Path.t -> int list
(** Claim every node of the path for the net and place vias at layer
    changes; returns the nodes that were newly occupied (already-owned nodes
    are skipped).  The path must only visit free or self-owned cells. *)

val release_nodes : Grid.t -> int list -> unit
(** Free the given nodes (used to undo a partial routing). *)

val pin_node : Grid.t -> Netlist.Net.pin -> int

(** Hit/fallback counters of guided connections, accumulated by
    {!plan_net} (and the engine's sequential twin) so speculative commits
    can replay exactly the counters a sequential run would produce. *)
type guide_tally = { mutable ghits : int; mutable gfallbacks : int }

val no_tally : unit -> guide_tally

val guided_search :
  use_astar:bool ->
  kernel:Search.kernel ->
  guide:Geom.Rect.t ->
  ?stop:(int -> bool) ->
  memo:bool ->
  tally:guide_tally ->
  Grid.t ->
  Workspace.t ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  sources:int list ->
  targets:int list ->
  unit ->
  Search.result option
(** One standard-phase connection search under a guide rectangle: a
    certified probe ({!Search.run_guided}) stands in for the full search
    — pop-order identical, byte-identical path — and counts a hit; an
    uncertified probe re-runs unwindowed with the probe's expansions
    folded in as waste and counts a fallback.  A certified in-window
    exhaustion (no rejected escape) returns [None] without a re-run: the
    full search provably fails identically.  The byte-identity contract
    requires the {!Search.Buckets} kernel. *)

val plan_net :
  ?use_astar:bool ->
  ?kernel:Search.kernel ->
  ?window:int ->
  ?stop:(int -> bool) ->
  ?memo:bool ->
  ?guide:Geom.Rect.t ->
  ?tally:guide_tally ->
  Grid.t ->
  Workspace.t ->
  cost:Cost.t ->
  passable:(int -> int option) ->
  Netlist.Net.t ->
  (Grid.Path.t * int) list option
(** Read-only twin of a standard (non-escalating) net route: runs the same
    Prim-style connection searches against the current grid but never
    occupies anything.  Returns the connection paths in order, each with
    its expansion count (including discarded windowed probes), or [None]
    if some connection fails or is aborted by [stop].  Because free and
    self-owned cells are indistinguishable to the standard passability,
    the searches — and thus the paths — are exactly those a mutating run
    from the same grid state would produce.  The speculative parallel
    engine runs this on worker domains and commits the recorded paths
    later.  [guide] switches every connection to the guided
    probe/fallback protocol of {!guided_search} (ignoring [window]),
    accumulating into [tally]. *)

val route_net :
  ?passable:(int -> int option) ->
  ?use_astar:bool ->
  ?kernel:Search.kernel ->
  ?window:int ->
  ?stop:(int -> bool) ->
  ?memo:bool ->
  Grid.t ->
  Workspace.t ->
  cost:Cost.t ->
  Netlist.Net.t ->
  (success, failure) Stdlib.result
(** Connect all pins of the net on the grid.  On success the grid is
    updated; on failure the grid is restored to its prior state.  Nets with
    fewer than two pins succeed trivially.  [passable] defaults to
    {!passable_default} (it must never price foreign cells if the result is
    to be committed directly).  [kernel], [window], [stop] and [memo] are
    forwarded to the underlying {!Search} runs; an aborted search counts as
    a failed connection, and the partial net is released as usual. *)
