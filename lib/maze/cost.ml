type t = { wire : int; via : int; wrong_way : int }

let default = { wire = 1; via = 4; wrong_way = 2 }

let uniform = { wire = 1; via = 1; wrong_way = 0 }

let step_cost c ~prefers_h ~horizontal =
  if prefers_h = horizontal then c.wire else c.wire + c.wrong_way

let pp fmt c =
  Format.fprintf fmt "{wire=%d; via=%d; wrong_way=%d}" c.wire c.via c.wrong_way
