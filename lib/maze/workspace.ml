type t = {
  dist : int array;
  parent : int array;
  dist_gen : int array;
  mark_gen : int array;
  mutable gen : int;
  heap : Util.Pqueue.t;
  buckets : Util.Bucketq.t;
  hfield : int array;  (* planar heuristic field for array-based A* *)
}

let create g =
  let n = Grid.node_count g in
  {
    dist = Array.make n max_int;
    parent = Array.make n (-1);
    dist_gen = Array.make n 0;
    mark_gen = Array.make n 0;
    gen = 0;
    (* Sized to the grid: a search frontier rarely exceeds a small fraction
       of the node count, so n/8 avoids every grow on large grids without
       over-allocating on small ones. *)
    heap = Util.Pqueue.create ~capacity:(max 1024 (n / 8)) ();
    buckets = Util.Bucketq.create ();
    hfield = Array.make (Grid.planar_cells g) 0;
  }

let node_capacity ws = Array.length ws.dist

let begin_search ws =
  ws.gen <- ws.gen + 1;
  Util.Pqueue.clear ws.heap;
  Util.Bucketq.clear ws.buckets

let reset = begin_search

let dist ws n = if ws.dist_gen.(n) = ws.gen then ws.dist.(n) else max_int

let set_dist ws n d =
  ws.dist.(n) <- d;
  ws.dist_gen.(n) <- ws.gen

let parent ws n = if ws.dist_gen.(n) = ws.gen then ws.parent.(n) else -1

let set_parent ws n p =
  (* Parents are only meaningful alongside a distance of the same
     generation; [set_dist] must have stamped the node already. *)
  ws.parent.(n) <- p

let mark ws n = ws.mark_gen.(n) <- ws.gen

let marked ws n = ws.mark_gen.(n) = ws.gen

let heap ws = ws.heap

let buckets ws = ws.buckets

let hfield ws = ws.hfield
