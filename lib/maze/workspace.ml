type t = {
  dist : int array;
  parent : int array;
  dist_gen : int array;
  mark_gen : int array;
  mutable gen : int;
  heap : Util.Pqueue.t;
  buckets : Util.Bucketq.t;
  hfield : int array;  (* planar heuristic field for array-based A* *)
  (* Memo key of the hfield contents: the field is a pure function of
     (planar targets, window, wire, grid width) and independent of grid
     occupancy, so a matching key means the stored transform is exact
     and the O(window) recompute can be skipped.  wire = -1 encodes "no
     valid key". *)
  mutable hkey_wire : int;
  mutable hkey_win : int * int * int * int;
  mutable hkey_targets : int list;
  (* Per-layer bounding box of nodes expanded since [clear_touched];
     x0 > x1 encodes empty.  Deliberately NOT reset by [begin_search]:
     the region a whole net attempt read spans several searches
     (windowed probes included), so the accumulator survives until the
     caller clears it. *)
  tx0 : int array;
  ty0 : int array;
  tx1 : int array;
  ty1 : int array;
  nlayers : int;
}

let create g =
  let n = Grid.node_count g in
  let nl = Grid.layers g in
  {
    dist = Array.make n max_int;
    parent = Array.make n (-1);
    dist_gen = Array.make n 0;
    mark_gen = Array.make n 0;
    gen = 0;
    (* Sized to the grid: a search frontier rarely exceeds a small fraction
       of the node count, so n/8 avoids every grow on large grids without
       over-allocating on small ones. *)
    heap = Util.Pqueue.create ~capacity:(max 1024 (n / 8)) ();
    buckets = Util.Bucketq.create ();
    hfield = Array.make (Grid.planar_cells g) 0;
    hkey_wire = -1;
    hkey_win = (0, 0, 0, 0);
    hkey_targets = [];
    tx0 = Array.make nl 1;
    ty0 = Array.make nl 1;
    tx1 = Array.make nl 0;
    ty1 = Array.make nl 0;
    nlayers = nl;
  }

let layers ws = ws.nlayers

let clear_touched ws =
  for l = 0 to ws.nlayers - 1 do
    ws.tx0.(l) <- 1;
    ws.tx1.(l) <- 0
  done

let note_touched ws ~layer ~x0 ~y0 ~x1 ~y1 =
  if ws.tx0.(layer) > ws.tx1.(layer) then begin
    ws.tx0.(layer) <- x0;
    ws.ty0.(layer) <- y0;
    ws.tx1.(layer) <- x1;
    ws.ty1.(layer) <- y1
  end
  else begin
    if x0 < ws.tx0.(layer) then ws.tx0.(layer) <- x0;
    if y0 < ws.ty0.(layer) then ws.ty0.(layer) <- y0;
    if x1 > ws.tx1.(layer) then ws.tx1.(layer) <- x1;
    if y1 > ws.ty1.(layer) then ws.ty1.(layer) <- y1
  end

let touched ws ~layer =
  if ws.tx0.(layer) > ws.tx1.(layer) then None
  else
    Some
      (Geom.Rect.make ws.tx0.(layer) ws.ty0.(layer) ws.tx1.(layer)
         ws.ty1.(layer))

let node_capacity ws = Array.length ws.dist

let begin_search ws =
  ws.gen <- ws.gen + 1;
  Util.Pqueue.clear ws.heap;
  Util.Bucketq.clear ws.buckets

let reset = begin_search

let dist ws n = if ws.dist_gen.(n) = ws.gen then ws.dist.(n) else max_int

let set_dist ws n d =
  ws.dist.(n) <- d;
  ws.dist_gen.(n) <- ws.gen

let parent ws n = if ws.dist_gen.(n) = ws.gen then ws.parent.(n) else -1

let set_parent ws n p =
  (* Parents are only meaningful alongside a distance of the same
     generation; [set_dist] must have stamped the node already. *)
  ws.parent.(n) <- p

let mark ws n = ws.mark_gen.(n) <- ws.gen

let marked ws n = ws.mark_gen.(n) = ws.gen

let heap ws = ws.heap

let buckets ws = ws.buckets

let hfield ws = ws.hfield

let hfield_memo_hit ws ~wire ~win ~targets =
  ws.hkey_wire = wire && ws.hkey_win = win && ws.hkey_targets = targets

let hfield_memo_store ws ~wire ~win ~targets =
  ws.hkey_wire <- wire;
  ws.hkey_win <- win;
  ws.hkey_targets <- targets
