(** The mini physical-design flow: placement → global route → detailed
    route.

    [run] drives a problem end to end: free instances are placed by the
    simulated annealer ({!Place}), the placement is realized into plain
    geometry, every net is globally routed into a region guide
    ({!Groute}), and the detailed router finishes the job with the
    guides as certified per-net search windows.  Guides never change
    the answer — an uncertified guided search falls back to the full
    window — so the final layout is byte-identical to routing the
    realized problem without guides, at every [jobs] value.

    The flow forces the detailed-route config onto the guide-compatible
    kernel ([Buckets], no [window_margin], A* on — the certificate works
    through the heuristic lower bound); everything else (order,
    escalation, restarts, jobs, …) is taken from [config].  A shared
    {!Router.Budget} degrades the whole pipeline gracefully: the placer
    stops annealing at its best-so-far, the router returns a partial
    layout, and the flow still completes. *)

type stats = {
  place : Place.stats option;  (** [None] when nothing needed placing *)
  groute : Groute.t;
  route : Router.Engine.stats;
  triage : Analyze.t option;
      (** the pre-route routability verdict, when [run ~triage:true];
          computed on the realized problem before any routing, so it can
          never affect the layout *)
  place_ns : int64;  (** wall-clock split of the three stages *)
  groute_ns : int64;
  route_ns : int64;
}

type t = {
  placed : Netlist.Problem.t;
      (** the input with every instance placed (unchanged if none) *)
  realized : Netlist.Problem.t;  (** the plain routable problem *)
  result : Router.Engine.t;  (** detailed-routing outcome *)
  stats : stats;
}

val run :
  ?config:Router.Config.t ->
  ?budget:Router.Budget.t ->
  ?seed:int ->
  ?tile:int ->
  ?triage:bool ->
  Netlist.Problem.t ->
  (t, string) Stdlib.result
(** [seed] (default [config.seed]) drives the placer; [tile] is the
    global-route tile size.  [triage] (default false) additionally runs
    the pre-route predictor on the realized problem and records its
    verdict in [stats.triage].  Errors when the placer cannot find a
    legal placement; detailed-route failures are reported in
    [result.stats.failed_nets], not as [Error]. *)

type triage_report = {
  score : float;  (** predictor's routability score *)
  predicted_overflow : float;  (** before routing, from {!Analyze.run} *)
  actual_overflow : float;
      (** after global routing: overflow units over total capacity *)
  agree : bool;
      (** both sides agree on whether the instance meaningfully
          overflows (either fraction above 1%) *)
}

val triage_report : t -> triage_report option
(** Predicted-vs-actual congestion for a [~triage:true] run: the
    predictor's verdict against the global router's realized overflow.
    [None] when the flow ran without triage. *)

val guide_hit_rate : t -> float
(** Certified-guide fraction of guided searches, in [0, 1]; [1.0] when
    nothing was guided. *)
