type stats = {
  place : Place.stats option;
  groute : Groute.t;
  route : Router.Engine.stats;
  triage : Analyze.t option;
  place_ns : int64;
  groute_ns : int64;
  route_ns : int64;
}

type t = {
  placed : Netlist.Problem.t;
  realized : Netlist.Problem.t;
  result : Router.Engine.t;
  stats : stats;
}

let timed f =
  let t0 = Monotonic_clock.now () in
  let r = f () in
  (r, Int64.sub (Monotonic_clock.now ()) t0)

let run ?(config = Router.Config.default) ?budget ?seed ?tile
    ?(triage = false) problem =
  let seed = match seed with Some s -> s | None -> config.Router.Config.seed in
  let placed_r, place_ns =
    timed @@ fun () ->
    if Netlist.Problem.has_insts problem then
      match Place.place ~seed ?budget problem with
      | Ok (p, st) -> Ok (p, Some st)
      | Error e -> Error e
    else Ok (problem, None)
  in
  match placed_r with
  | Error e -> Error e
  | Ok (placed, place_stats) ->
      let realized = Netlist.Problem.realize placed in
      (* The triage gate is read-only and runs before any routing: it
         cannot affect the layout, only the report. *)
      let pre = if triage then Some (Analyze.run ?tile realized) else None in
      let gr, groute_ns = timed @@ fun () -> Groute.run ?tile realized in
      (* Guides require the bucket kernel and no widen-retry windowing,
         and certify through the A* lower bound (with h = 0 an escape is
         almost never provably worse, so guides would never hit);
         everything else of the caller's config applies unchanged. *)
      let config =
        {
          config with
          Router.Config.kernel = Maze.Search.Buckets;
          window_margin = None;
          use_astar = true;
        }
      in
      let result, route_ns =
        timed @@ fun () ->
        Router.Engine.route ~config ?budget ~guides:gr.Groute.guides realized
      in
      Ok
        {
          placed;
          realized;
          result;
          stats =
            {
              place = place_stats;
              groute = gr;
              route = result.Router.Engine.stats;
              triage = pre;
              place_ns;
              groute_ns;
              route_ns;
            };
        }

type triage_report = {
  score : float;
  predicted_overflow : float;
  actual_overflow : float;
  agree : bool;
}

let actual_overflow (g : Groute.t) =
  let total = Array.fold_left ( + ) 0 g.Groute.capacity in
  let over = ref 0 in
  Array.iteri
    (fun i u ->
      if u > g.Groute.capacity.(i) then
        over := !over + (u - g.Groute.capacity.(i)))
    g.Groute.usage;
  if total = 0 then if !over > 0 then 1.0 else 0.0
  else Float.min 1.0 (float_of_int !over /. float_of_int total)

let triage_report t =
  Option.map
    (fun (a : Analyze.t) ->
      let actual = actual_overflow t.stats.groute in
      let predicted = a.Analyze.verdict.Analyze.predicted_overflow in
      {
        score = a.Analyze.verdict.Analyze.score;
        predicted_overflow = predicted;
        actual_overflow = actual;
        (* "Congested" means meaningfully over supply on either side —
           a 0.3% predicted overflow against a 0.0% realized one is an
           agreement on routability, not a miss. *)
        agree = predicted > 0.01 = (actual > 0.01);
      })
    t.stats.triage

let guide_hit_rate t =
  let g = t.stats.route.Router.Engine.guide in
  let total = g.Router.Outcome.hits + g.Router.Outcome.fallbacks in
  if total = 0 then 1.0
  else float_of_int g.Router.Outcome.hits /. float_of_int total
