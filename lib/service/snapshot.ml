module J = Util.Json

type info = {
  gen : int;
  last_rid : int;
  vias : (int * int * int) list;  (* (pair layer, x, y) *)
  frozen : string list;
  problem : Netlist.Problem.t;
}

(* A pair-0 via encodes as the historical [x, y] pair so 2-layer
   snapshots stay byte-identical; higher pairs carry the layer as a
   third element. *)
let encode_body ~vias ~frozen problem =
  let meta =
    J.to_string
      (J.Obj
         [
           ("frozen", J.List (List.map (fun s -> J.String s) frozen));
           ( "vias",
             J.List
               (List.map
                  (fun (l, x, y) ->
                    if l = 0 then J.List [ J.Int x; J.Int y ]
                    else J.List [ J.Int x; J.Int y; J.Int l ])
                  vias) );
         ])
  in
  meta ^ "\n" ^ Netlist.Parse.to_string problem

let write ?(chaos = Router.Chaos.none) ~fsync ~gen ~last_rid ~vias ~frozen
    problem path =
  let body = encode_body ~vias ~frozen problem in
  let header =
    Printf.sprintf "walsnap 1 %d %d %d %s\n" gen last_rid (String.length body)
      (Util.Crc.to_hex (Util.Crc.string body))
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc header;
     let n = String.length body in
     let half = n / 2 in
     output_substring oc body 0 half;
     flush oc;
     Router.Chaos.kill_point chaos "snapshot:mid-write";
     output_substring oc body half (n - half);
     flush oc;
     if fsync then (
       try Unix.fsync (Unix.descr_of_out_channel oc)
       with Unix.Unix_error _ -> ())
   with exn ->
     close_out_noerr oc;
     raise exn);
  close_out_noerr oc;
  Router.Chaos.kill_point chaos "snapshot:pre-rename";
  Sys.rename tmp path;
  Router.Chaos.kill_point chaos "snapshot:renamed"

(* --- reading --- *)

let meta_of_json json =
  let frozen =
    Option.bind (J.member "frozen" json) J.to_list_opt
    |> Option.map (List.filter_map J.to_string_opt)
  in
  let vias =
    Option.bind (J.member "vias" json) J.to_list_opt
    |> Option.map
         (List.filter_map (fun v ->
              match v with
              | J.List [ x; y ] -> (
                  match (J.to_int_opt x, J.to_int_opt y) with
                  | Some x, Some y -> Some (0, x, y)
                  | _ -> None)
              | J.List [ x; y; l ] -> (
                  match (J.to_int_opt x, J.to_int_opt y, J.to_int_opt l) with
                  | Some x, Some y, Some l -> Some (l, x, y)
                  | _ -> None)
              | _ -> None))
  in
  match (frozen, vias) with
  | Some frozen, Some vias -> Some (frozen, vias)
  | _ -> None

let read path =
  if not (Sys.file_exists path) then Error "no snapshot"
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error "empty snapshot"
        | header -> (
            match
              Scanf.sscanf header "walsnap %d %d %d %d %s"
                (fun v gen rid len crc -> (v, gen, rid, len, crc))
            with
            | exception _ -> Error "bad snapshot header"
            | v, _, _, _, _ when v <> 1 ->
                Error (Printf.sprintf "unsupported snapshot version %d" v)
            | _, gen, last_rid, len, crc_hex -> (
                match really_input_string ic len with
                | exception End_of_file -> Error "truncated snapshot body"
                | body -> (
                    match Util.Crc.of_hex crc_hex with
                    | None -> Error "bad snapshot header"
                    | Some crc
                      when not (Int32.equal crc (Util.Crc.string body)) ->
                        Error "snapshot CRC mismatch"
                    | Some _ -> (
                        let meta_line, problem_text =
                          match String.index_opt body '\n' with
                          | None -> (body, "")
                          | Some nl ->
                              ( String.sub body 0 nl,
                                String.sub body (nl + 1)
                                  (String.length body - nl - 1) )
                        in
                        match J.of_string meta_line with
                        | Error msg -> Error ("bad snapshot meta: " ^ msg)
                        | Ok meta_json -> (
                            match meta_of_json meta_json with
                            | None -> Error "snapshot meta missing fields"
                            | Some (frozen, vias) -> (
                                match
                                  Netlist.Parse.of_string ~src:path
                                    problem_text
                                with
                                | Error e ->
                                    Error (Netlist.Parse.error_to_string e)
                                | Ok problem ->
                                    Ok
                                      { gen; last_rid; vias; frozen; problem }
                                )))))))
  end
