(** Live service telemetry: monotonic counters and latency histograms.

    One {!t} lives for the whole life of a server.  Every executed
    request records its kind, outcome and wall-clock latency; admission
    control records sheds; the session layer records budget trips,
    injected faults and idle evictions.  Latencies go into per-kind
    histograms with power-of-two microsecond buckets, from which
    {!snapshot} reports p50/p95/p99 (as the upper bound of the quantile's
    bucket — cheap, monotone, and accurate to a factor of two, which is
    all a service dashboard needs).

    Everything here is plain mutation with {b per-field single-writer
    ownership} — no locks, no atomics.  On the sharded server each shard
    owns one store; its worker domain is the only writer of the
    execution-side fields ([record], [budget_trip], [fault], [evicted],
    [refine_cache], [flow_guides]) while the acceptor domain is the only
    writer of the admission-side fields ([shed], [note_queue_depth]).
    The two sides never write the same field, so there are no lost
    updates; cross-domain {e reads} ({!merge}, {!snapshot} of a foreign
    shard) may observe slightly stale values, which is acceptable for
    telemetry and exact once the writers have quiesced.  For that
    discipline to be safe the per-kind table must not grow while foreign
    domains read it — pass every kind the store will ever record to
    {!create} ([Proto.op_names] for a server shard). *)

type t

val create : ?kinds:string list -> unit -> t
(** [kinds] pre-creates one (empty) histogram per name so the table is
    structurally immutable afterwards.  Pre-seeded kinds with zero
    requests never appear in {!snapshot} or {!render}. *)

val merge : t list -> t
(** Fold several per-domain stores into one fresh store: counters and
    histogram buckets sum, maxima take the max.  Lock-free — safe to
    call while the owners are still writing (the result is then a
    near-point-in-time view), exact when they are quiet.  The inputs are
    not modified. *)

val record : t -> kind:string -> ok:bool -> latency_s:float -> unit
(** Account one executed request of wire kind [kind] (e.g. ["route"]).
    [latency_s] is seconds of wall clock spent executing it. *)

val shed : t -> unit
(** One request refused by admission control. *)

val budget_trip : t -> unit
(** One request rolled back by a budget trip. *)

val fault : t -> unit
(** One request aborted by an injected chaos fault. *)

val evicted : t -> int -> unit
(** [n] sessions evicted for idleness. *)

val refine_cache : t -> skips:int -> stale:int -> repairs:int -> unit
(** Accumulate one refine request's incremental-cache effectiveness:
    net-visits skipped (certificate hits + lower-bound oracle), stale
    certificates dropped, and dirty-region lower-bound field repairs.
    Reported under ["refine_cache"] in {!snapshot}. *)

val flow_guides : t -> guided:int -> hits:int -> fallbacks:int -> unit
(** Accumulate one flow request's guided-search telemetry: nets guided,
    certified window hits, full-window fallbacks.  Reported under
    ["flow_guides"] in {!snapshot}, next to ["refine_cache"]. *)

val note_queue_depth : t -> int -> unit
(** Sample the scheduler queue depth (tracked as a high-water mark). *)

val shed_count : t -> int

val requests : t -> int
(** Total executed requests (sheds excluded). *)

val snapshot : ?queue_depth:int -> ?sessions:int -> t -> Util.Json.t
(** The [stats] reply body: totals, gauges and the per-kind table
    [{count, errors, p50_ms, p95_ms, p99_ms, max_ms}], kinds sorted
    alphabetically so snapshots diff cleanly. *)

val render : ?queue_depth:int -> ?sessions:int -> t -> string
(** Human-readable multi-line dump (the shutdown report). *)
