(** Durable session snapshots: the compaction half of the WAL.

    A snapshot file is a self-validating capture of one session's full
    checkpoint ({!Router.Session.checkpoint}) plus its service-level
    counters:

    {v
    walsnap 1 <gen> <last_rid> <len> <crc32 hex>
    {"frozen":[...],"vias":[[x,y],[x,y,l],...]}
    <problem text, FORMAT.md syntax, wiring as pre-wires>
    v}

    A via element [[x,y]] is a pair-0 via (joining layers 0 and 1 —
    the only kind a 2-layer session can hold, so 2-layer snapshots are
    byte-identical to the historical format); [[x,y,l]] records a via
    pair at layer [l] (joining layers [l] and [l+1]).

    The header's [len]/[crc] cover the body (meta line + problem text),
    so a torn or bit-flipped snapshot is detected on read and reported
    as an error — recovery then falls back to replaying the WAL from
    scratch.  Writes go to [<path>.tmp] and rename into place, so the
    previous snapshot survives any crash before the rename: at every
    instant the path holds either the old complete snapshot, the new
    complete snapshot, or nothing (first ever write). *)

type info = {
  gen : int;  (** session generation at capture time *)
  last_rid : int;  (** last applied client request id (0 = none) *)
  vias : (int * int * int) list;  (** (pair layer, x, y) *)
  frozen : string list;
  problem : Netlist.Problem.t;
}

val write :
  ?chaos:Router.Chaos.t ->
  fsync:bool ->
  gen:int ->
  last_rid:int ->
  vias:(int * int * int) list ->
  frozen:string list ->
  Netlist.Problem.t ->
  string ->
  unit
(** [write ... problem path] captures atomically.  Kill points:
    ["snapshot:mid-write"] (half the body flushed to the tmp file),
    ["snapshot:pre-rename"] (tmp complete, rename pending),
    ["snapshot:renamed"] (snapshot live, WAL truncation pending). *)

val read : string -> (info, string) result
(** Validate and decode.  Errors cover: missing file, bad header, torn
    body, CRC mismatch, malformed meta JSON, problem-text parse failure
    (with the snapshot path as source). *)
