module J = Util.Json

type record = { gen : int; rid : int; req : J.t }

type t = {
  path : string;
  fsync : bool;
  chaos : Router.Chaos.t;
  mutable oc : out_channel;
  mutable records : int;
}

let path t = t.path

let records t = t.records

(* --- encoding --- *)

let encode_record { gen; rid; req } =
  let body =
    J.to_string
      (J.Obj [ ("gen", J.Int gen); ("rid", J.Int rid); ("req", req) ])
  in
  Util.Crc.to_hex (Util.Crc.string body) ^ " " ^ body

let record_of_json json =
  match
    ( Option.bind (J.member "gen" json) J.to_int_opt,
      Option.bind (J.member "rid" json) J.to_int_opt,
      J.member "req" json )
  with
  | Some gen, Some rid, Some req -> Some { gen; rid; req }
  | _ -> None

(* A line is valid iff it carries a well-formed CRC prefix, the CRC
   matches the JSON bytes, and the JSON has the record shape.  Anything
   else — including a syntactically fine line whose CRC disagrees — is
   treated as the start of a torn tail. *)
let decode_line line =
  let n = String.length line in
  if n < 10 || line.[8] <> ' ' then None
  else
    match Util.Crc.of_hex (String.sub line 0 8) with
    | None -> None
    | Some crc ->
        let body = String.sub line 9 (n - 9) in
        if not (Int32.equal crc (Util.Crc.string body)) then None
        else (
          match J.of_string body with
          | Error _ -> None
          | Ok json -> record_of_json json)

(* --- scanning --- *)

let load path =
  if not (Sys.file_exists path) then ([], 0, false)
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> In_channel.input_all ic)
    in
    let len = String.length data in
    let rec go offset acc =
      if offset >= len then (List.rev acc, offset, false)
      else
        match String.index_from_opt data offset '\n' with
        | None -> (List.rev acc, offset, true) (* partial line at EOF *)
        | Some nl -> (
            let line = String.sub data offset (nl - offset) in
            match decode_line line with
            | None -> (List.rev acc, offset, true)
            | Some r -> go (nl + 1) (r :: acc))
    in
    go 0 []
  end

(* --- lifecycle --- *)

let do_fsync t =
  if t.fsync then
    try Unix.fsync (Unix.descr_of_out_channel t.oc)
    with Unix.Unix_error _ -> ()

let create ?(chaos = Router.Chaos.none) ~fsync path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  { path; fsync; chaos; oc; records = 0 }

let open_existing ?(chaos = Router.Chaos.none) ~fsync path =
  let recs, valid_bytes, torn = load path in
  if torn then Unix.truncate path valid_bytes;
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  ({ path; fsync; chaos; oc; records = List.length recs }, recs, torn)

let append t record =
  Router.Chaos.kill_point t.chaos "wal:pre-append";
  let line = encode_record record in
  let n = String.length line in
  let half = n / 2 in
  (* Flush a deliberate half-record before the mid kill point so a crash
     there leaves a genuinely torn record on disk for recovery to find. *)
  output_substring t.oc line 0 half;
  flush t.oc;
  Router.Chaos.kill_point t.chaos "wal:mid-record";
  output_substring t.oc line half (n - half);
  output_char t.oc '\n';
  flush t.oc;
  do_fsync t;
  t.records <- t.records + 1;
  Router.Chaos.kill_point t.chaos "wal:appended"

let truncate t =
  close_out_noerr t.oc;
  t.oc <- open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 t.path;
  do_fsync t;
  t.records <- 0;
  Router.Chaos.kill_point t.chaos "wal:truncated"

let close t = close_out_noerr t.oc

(* --- session-name <-> filename encoding --- *)

let file_key name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' ->
          Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    name;
  Buffer.contents buf

let key_name key =
  let n = String.length key in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else
      match key.[i] with
      | '%' ->
          if i + 2 >= n then None
          else (
            match int_of_string_opt ("0x" ^ String.sub key (i + 1) 2) with
            | Some c when c >= 0 && c < 256 ->
                Buffer.add_char buf (Char.chr c);
                go (i + 3)
            | _ -> None)
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_') as c ->
          Buffer.add_char buf c;
          go (i + 1)
      | _ -> None
  in
  go 0
