(** The routing service: a long-lived daemon around {!Router.Session}.

    One server owns a {!Registry} of named sessions, a bounded {!Sched}
    request queue and a {!Metrics} core.  Requests arrive as protocol
    lines ({!Proto}), pass admission control, and execute one at a time
    in the scheduler's fair order; every reply is one line.

    {b Transactionality.}  Every mutating request rides the transactional
    session layer: a request that trips its per-request budget (the SLO)
    or hits an injected chaos fault returns a structured error {e and
    leaves its session exactly as it was before the request} — the reply
    stream tells the client precisely which requests took effect (and the
    [gen] counter in each reply counts them).

    {b Determinism.}  With no budget and no chaos, a request trace
    produces layouts byte-identical to running the equivalent batch
    calls directly — the service adds scheduling, not behaviour.

    Two transports share this engine: {!serve_pipe} (stdin/stdout, one
    client) and {!serve_socket} (Unix domain socket, many clients
    multiplexed onto the one scheduler).  Tests and benches can also
    drive the engine directly with {!submit}/{!drain_one}. *)

type config = {
  router : Router.Config.t;  (** engine configuration of every session *)
  chaos : Router.Chaos.t;  (** fault injector handed to every session *)
  queue_cap : int;  (** admission-control bound on queued requests *)
  default_slo_ms : int option;
      (** default per-request wall-clock budget for [route] requests;
          a request's [slo_ms] field overrides it.  [None] = no deadline
          unless the client asks for one. *)
  max_sessions : int;  (** registry hard cap *)
  idle_ticks : int;  (** idle-session eviction horizon, in requests *)
  allow_files : bool;
      (** permit [open] by server-side [file] path (on for the CLI;
          turn off when exposing the socket beyond trusted clients) *)
  data_dir : string option;
      (** durability root: one write-ahead log + snapshot per session
          lives here, sessions found here are recovered at {!create}.
          [None] = fully in-memory (the previous behaviour). *)
  snapshot_every : int;
      (** compact each session's log into a snapshot every this many
          committed mutations *)
  fsync : bool;  (** fsync log appends and snapshots (slower, safer) *)
}

val default_config : config
(** [Router.Config.default], no chaos, queue cap 64, no default SLO,
    64 sessions, eviction after 10_000 requests, files allowed, no
    durability ([data_dir = None]; snapshot every 64, fsync on when a
    directory is given). *)

type t

val create : ?config:config -> unit -> t

val metrics : t -> Metrics.t

val registry : t -> Registry.t

val queue_depth : t -> int

val shutdown_requested : t -> bool

val request_shutdown : t -> unit
(** Flip the shutdown flag from outside the request stream — the signal
    handlers of the CLI call this on SIGTERM/SIGINT.  Admission stops
    immediately ({!submit} refuses with [shutting_down]); the transports
    drain what was already queued, then run their normal end-of-life
    path (final snapshots, metrics dump). *)

val finalize : t -> unit
(** The transports' end-of-life path: snapshot every durable session
    (so a restart replays nothing) and dump metrics to [stderr].
    Exposed for tests and embedders driving {!submit}/{!drain_one}
    directly. *)

val submit : t -> client:int -> string -> string option
(** Feed one request line.  [Some reply] is an immediate reply that
    bypassed the queue — a parse error, a shed ([queue_full] with
    [retry_after_ms]), or a [shutting_down] refusal.  [None] means the
    request was admitted; its reply will come out of {!drain_one} tagged
    with [client]. *)

val drain_one : t -> (int * string) option
(** Execute the next queued request (fair round-robin over sessions) and
    return its client tag and reply line.  [None] when the queue is
    empty. *)

val handle_line : t -> string -> string list
(** Synchronous convenience for single-client transports and tests:
    {!submit} as client 0, then drain until empty; returns every reply
    produced, in order. *)

val metrics_dump : t -> string
(** Human-readable metrics + registry summary (printed to stderr on
    shutdown by the transports). *)

val serve_pipe : t -> in_channel -> out_channel -> unit
(** Serve line-delimited requests until EOF or a [shutdown] request;
    replies go to [oc], flushed per line.  Returns after dumping metrics
    to [stderr]. *)

val serve_socket : t -> path:string -> unit
(** Bind a Unix domain socket at [path] (replacing any stale file),
    accept any number of clients, and multiplex their requests onto the
    scheduler.  Runs until a [shutdown] request, then closes every
    client, unlinks [path] and dumps metrics to [stderr]. *)
