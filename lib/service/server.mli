(** The routing service: a long-lived daemon around {!Router.Session}.

    One server owns an array of {b shards} — each a {!Registry}
    partition, a bounded {!Sched} queue slice and a contention-free
    {!Metrics} store.  Requests arrive as protocol lines ({!Proto}),
    pass admission control on the acceptor, and are routed to their
    session's shard by a stable FNV-1a hash of the session name;
    every reply is one line.

    {b Affinity and parallelism.}  A session lives on exactly one shard
    for its whole life (including its on-disk WAL/snapshot state), so
    each session's requests execute single-threaded in FIFO order —
    per-session determinism is untouched — while different sessions'
    requests execute in parallel once one worker domain per shard is
    running ({!start_workers}, used by the transports).  With
    [shards = 1] (the default) the engine is exactly the previous
    fully-synchronous server.

    {b Transactionality.}  Every mutating request rides the transactional
    session layer: a request that trips its per-request budget (the SLO)
    or hits an injected chaos fault returns a structured error {e and
    leaves its session exactly as it was before the request} — the reply
    stream tells the client precisely which requests took effect (and the
    [gen] counter in each reply counts them).

    {b Determinism.}  With no budget and no chaos, a request trace
    produces layouts byte-identical to running the equivalent batch
    calls directly — the service adds scheduling, not behaviour — and
    byte-identical across any shard count, because sharding only changes
    {e which domain} runs a session, never the order within it.

    Two transports share this engine: {!serve_pipe} (stdin/stdout, one
    client) and {!serve_socket} (Unix domain socket, many clients
    multiplexed onto one acceptor).  Tests and benches can also drive
    the engine directly with {!submit}/{!drain_one} (synchronous, no
    domains) or {!submit} + {!start_workers} (parallel). *)

type config = {
  router : Router.Config.t;  (** engine configuration of every session *)
  chaos : Router.Chaos.t;  (** fault injector handed to every session *)
  queue_cap : int;
      (** admission-control bound on queued requests, across all shards;
          each shard's queue slice is [queue_cap / shards] (rounded up,
          at least 1), so one flooding session sheds early instead of
          consuming the whole server's budget *)
  default_slo_ms : int option;
      (** default per-request wall-clock budget for [route] requests;
          a request's [slo_ms] field overrides it.  [None] = no deadline
          unless the client asks for one. *)
  max_sessions : int;  (** registry hard cap, per shard *)
  idle_ticks : int;  (** idle-session eviction horizon, in requests *)
  allow_files : bool;
      (** permit [open] by server-side [file] path (on for the CLI;
          turn off when exposing the socket beyond trusted clients) *)
  data_dir : string option;
      (** durability root: one write-ahead log + snapshot per session
          lives here, sessions found here are recovered at {!create}.
          Shards share the directory; each recovers only the sessions
          hashed to it.  [None] = fully in-memory. *)
  snapshot_every : int;
      (** compact each session's log into a snapshot every this many
          committed mutations *)
  fsync : bool;  (** fsync log appends and snapshots (slower, safer) *)
  shards : int;
      (** number of shards (clamped to at least 1).  1 = the synchronous
          single-domain engine; [n] = sessions spread over [n] persistent
          worker domains when the transports start them. *)
}

val default_config : config
(** [Router.Config.default], no chaos, queue cap 64, no default SLO,
    64 sessions, eviction after 10_000 requests, files allowed, no
    durability ([data_dir = None]; snapshot every 64, fsync on when a
    directory is given), 1 shard. *)

type t

val create : ?config:config -> unit -> t

val shard_count : t -> int

val shard_of : t -> string -> int
(** The shard index session [name] is (and will always be) assigned to:
    FNV-1a of the name mod {!shard_count}.  Stable across runs and
    processes — the on-disk recovery partition depends on it. *)

val metrics : t -> Metrics.t
(** A fresh {!Metrics.merge} of the acceptor store and every shard
    store.  Exact when the server is quiet (tests, post-drain); a
    near-point-in-time view while workers are executing. *)

val registry : t -> Registry.t
(** Shard 0's registry.  On a single-shard server (the default, and
    every test that uses this) that is {e the} registry; on a sharded
    server use {!registry_for} with the session's name. *)

val registry_for : t -> string -> Registry.t
(** The registry of the shard owning session [name]. *)

val queue_depth : t -> int
(** Requests admitted and not yet popped, across all shards. *)

val pending : t -> int
(** {!queue_depth} plus requests currently executing on a worker —
    0 means the server is fully idle.  Only meaningful while workers
    are running. *)

val shutdown_requested : t -> bool

val request_shutdown : t -> unit
(** Flip the shutdown flag from outside the request stream — the signal
    handlers of the CLI call this on SIGTERM/SIGINT.  Admission stops
    immediately ({!submit} refuses with [shutting_down]); the transports
    drain what was already queued, then run their normal end-of-life
    path (final snapshots, metrics dump). *)

val finalize : t -> unit
(** The transports' end-of-life path: snapshot every durable session
    (so a restart replays nothing) and dump merged metrics to [stderr].
    Exposed for tests and embedders driving {!submit}/{!drain_one}
    directly.  With workers running, call {!stop_workers} first. *)

val submit : t -> client:int -> string -> string option
(** Feed one request line.  [Some reply] is an immediate reply that
    bypassed the queue — a parse error, a shed ([queue_full] with a
    load-aware [retry_after_ms] scaled by the {e target shard's} queue
    depth and observed mean latency), or a [shutting_down] refusal.
    [None] means the request was admitted to its session's shard; its
    reply will come out of {!drain_one} (or a worker's [emit]) tagged
    with [client].  Thread-safe against running workers. *)

val drain_one : t -> (int * string) option
(** Execute the next queued request on the calling domain and return its
    client tag and reply line; [None] when every shard's queue is empty.
    Rotates over shards, and within a shard drains in the scheduler's
    fair round-robin order over sessions.  This is the synchronous
    engine — do not mix with running workers. *)

val handle_line : t -> string -> string list
(** Synchronous convenience for single-client transports and tests:
    {!submit} as client 0, then drain until empty; returns every reply
    produced, in order. *)

type workers
(** A running pool of one persistent worker domain per shard. *)

val start_workers : t -> emit:(int -> string -> unit) -> workers
(** Spawn one domain per shard.  Each worker blocks on its shard's
    queue, executes requests (FIFO per session, fair across a shard's
    sessions) and hands every reply to [emit client reply].  [emit] is
    called concurrently from different domains and must be thread-safe;
    all of one session's replies come from one domain, in order. *)

val quiesce : t -> unit
(** Block until {!pending} is 0 — every admitted request has replied.
    Call only while workers are running (or nothing is queued). *)

val stop_workers : t -> workers -> unit
(** Graceful drain: workers finish everything already admitted, then
    exit; joins every domain.  After this the synchronous API
    ({!drain_one}, {!finalize}) is safe again. *)

val metrics_dump : t -> string
(** Human-readable merged metrics + registry summary (printed to stderr
    on shutdown by the transports). *)

val serve_pipe : t -> in_channel -> out_channel -> unit
(** Serve line-delimited requests until EOF or a [shutdown] request;
    replies go to [oc], flushed per line.  With one shard this is the
    fully synchronous engine (replies strictly in admission order);
    with more, the calling domain only parses, routes and writes while
    the workers execute — replies of {e different} sessions may
    interleave, each session's replies stay in its own request order.
    Returns after draining, joining the workers and dumping metrics to
    [stderr]. *)

val serve_socket : t -> path:string -> unit
(** Bind a Unix domain socket at [path] (replacing any stale file),
    accept any number of clients, and multiplex their requests onto the
    shard pool (workers run at any shard count; a self-pipe wakes the
    acceptor's [select] the moment a reply is ready).  Runs until a
    [shutdown] request once every pending request has replied, then
    closes every client, unlinks [path] and dumps merged metrics to
    [stderr]. *)
