(** Per-session write-ahead log.

    One append-only text file per session.  Each record is one line:

    {v <crc32 hex, 8 chars> <space> <compact JSON> v}

    where the JSON object is [{"gen":G,"rid":R,"req":{...}}] — the
    session generation {e after} applying the request, the client
    request id (0 = unset), and the request's op re-encoded through
    {!Proto.op_to_json}.  The CRC covers the JSON bytes, so a torn tail
    (partial line at EOF, bad CRC, or unparseable JSON) is detected and
    the log truncates to the last valid record; everything before the
    first corrupt record replays.

    Appends happen {e after} the session transaction commits: a
    rolled-back or shed request never reaches the log.  Crash points
    (before, mid-record after a partial flush, after) fire through
    {!Router.Chaos.kill_point} so the recovery suite can kill at every
    byte boundary that matters. *)

type record = { gen : int; rid : int; req : Util.Json.t }

type t

val path : t -> string

val records : t -> int
(** Records currently in the log (valid ones; after {!open_existing},
    the torn tail is already excluded). *)

val create : ?chaos:Router.Chaos.t -> fsync:bool -> string -> t
(** Open for append, truncating any previous content — used by a fresh
    [open] of a session name. *)

val open_existing :
  ?chaos:Router.Chaos.t -> fsync:bool -> string -> t * record list * bool
(** Load the valid prefix of an existing log (missing file = empty log),
    truncate the file to that prefix, and open it for append.  Returns
    [(log, valid_records, torn)] where [torn] reports whether a corrupt
    tail was dropped. *)

val load : string -> record list * int * bool
(** Read-only scan: [(valid_records, valid_bytes, torn)].  Missing file
    = [([], 0, false)]. *)

val append : t -> record -> unit
(** Write one record, flush, and (when [fsync]) push it to disk.  Kill
    points: ["wal:pre-append"], ["wal:mid-record"] (a partial record has
    been flushed — a torn write), ["wal:appended"]. *)

val truncate : t -> unit
(** Drop every record (snapshot compaction: the snapshot now owns the
    state).  Kill point ["wal:truncated"] fires after. *)

val close : t -> unit

val encode_record : record -> string
(** The exact line (without newline) {!append} writes — exposed for
    tests that hand-craft corrupt logs. *)

val file_key : string -> string
(** Encode an arbitrary session name into a safe filename fragment
    (alphanumerics, ['-'] and ['_'] kept, everything else [%XX]). *)

val key_name : string -> string option
(** Inverse of {!file_key}; [None] on malformed encodings. *)
