(** The routing-service wire protocol.

    Line-delimited JSON: every request is one line, every reply is one
    line.  Requests carry an [op] string, an optional client-chosen [id]
    (echoed verbatim in the reply, default 0) and, for session-scoped
    operations, the [session] name.  Replies are versioned ([v], see
    {!version}) and either [{"ok":true, "gen":…, "result":…}] or
    [{"ok":false, "error":{"code":…, "msg":…}}] with a machine-parseable
    {!error_code}; shed replies additionally carry [retry_after_ms].

    The full message catalogue, field by field, lives in
    docs/PROTOCOL.md — this module is its executable form. *)

val version : int
(** Protocol version stamped on every reply ([1]). *)

(** A net referenced either by id (the protocol's [net] field) or by name
    (the [name] field).  Ids are renumbered by [remove_net]; names are
    stable, so interactive clients should prefer them. *)
type target = Net_id of int | Net_name of string

type op =
  | Open of { problem_text : string option; file : string option }
      (** create a session; the problem arrives inline ([problem]) or as
          a server-side path ([file]) — exactly one must be present *)
  | Route of { slo_ms : int option }
      (** route everything unrouted, under an optional per-request SLO
          overriding the server default *)
  | Add_net of { name : string; pins : Netlist.Net.pin list }
  | Remove_net of target
  | Rip of target
  | Freeze of target
  | Thaw of target
  | Refine of { max_passes : int option }
  | Place of { seed : int option }
      (** anneal the session's placement section, realize it, and
          install the realized problem on a fresh grid; the server
          journals the {e resolved} seed so replay is exact *)
  | Groute of { tile : int option }
      (** read-only: global-route the (realized) problem and report the
          tile-capacity picture — never journalled *)
  | Flow_run of { seed : int option; tile : int option; slo_ms : int option }
      (** the full mini-flow: place (if needed) → realize → global route
          → guide-windowed detailed route, installed atomically *)
  | Analyze of { tile : int option }
      (** read-only: the pre-route routability predictor ({!Analyze.run})
          on the session's (realized) problem — never journalled, never
          shed by admission control *)
  | Verify
  | Render  (** ASCII rendering of the session's current layout *)
  | Stats  (** server-wide metrics + registry snapshot; no session *)
  | Close
  | Shutdown

type request = { rid : int; session : string option; op : op }

val op_name : op -> string
(** The wire name of the operation — also the metrics key. *)

val op_names : string list
(** Every possible {!op_name} plus ["invalid"] (the pseudo-kind recorded
    for unparseable request lines).  The server seeds each shard's
    {!Metrics} store with these so the per-kind tables are structurally
    immutable after creation and safe to read from other domains. *)

val read_only : op -> bool
(** Ops that never mutate session state and are never journalled
    ([groute], [analyze], [verify], [render], [stats]).  Admission
    control force-admits them past the queue cap, so a saturated shard
    still answers triage requests. *)

type error_code =
  | Parse_error  (** request line is not valid JSON *)
  | Bad_request  (** JSON is fine, fields are not *)
  | Unknown_op
  | Unknown_session
  | Session_exists
  | Session_cap  (** registry hard cap reached *)
  | Net_error  (** session mutation rejected (bad pin, frozen net, …) *)
  | Budget_tripped
      (** the per-request budget expired; the session was rolled back *)
  | Fault_injected
      (** an injected chaos fault aborted the request after rollback *)
  | Queue_full  (** admission control shed the request; retry later *)
  | Shutting_down
  | Internal

val code_name : error_code -> string
(** Stable wire identifier, e.g. ["queue_full"]. *)

val parse : string -> (request, error_code * string) result
(** Decode one request line.  Errors come back as the code to put in the
    structured reply plus a human-readable message. *)

val op_to_json : op -> Util.Json.t
(** Re-encode an op as the request-shaped object {!parse} accepts (the
    [op] field plus its parameters, no [id]/[session]) — the payload of
    a WAL record.  [Route]'s [slo_ms] is dropped: budgets scope one
    execution, not the mutation, and committed mutations must replay
    un-budgeted. *)

val op_of_json : Util.Json.t -> (op, string) result
(** Decode the object {!op_to_json} produced (same grammar as a request
    line) — the replay half of the WAL. *)

val ok_line : rid:int -> ?gen:int -> Util.Json.t -> string
(** Encode a success reply line (no trailing newline).  [gen] is the
    session's generation counter after the request, present on
    session-scoped replies. *)

val error_line :
  rid:int -> ?retry_after_ms:int -> error_code -> string -> string
(** Encode a failure reply line (no trailing newline). *)
