(** Named concurrent routing sessions with lifecycle management.

    The registry owns every live {!Router.Session.t} of the server, keyed
    by client-chosen name.  It enforces a hard cap on concurrent sessions
    (opening past it fails with a structured error, it never blocks),
    tracks a per-session {e generation counter} — bumped once per
    committed mutation and echoed in every reply, so a client can detect
    it raced another client on the same session — and evicts sessions
    that have sat idle for more than [idle_ticks] server requests
    (a logical clock: one tick per executed request, which keeps eviction
    deterministic for replayed traces). *)

type t

type entry

val create :
  ?config:Router.Config.t ->
  ?chaos:Router.Chaos.t ->
  ?max_sessions:int ->
  ?idle_ticks:int ->
  unit ->
  t
(** [config] (default {!Router.Config.default}) and [chaos] (default
    {!Router.Chaos.none}) are handed to every session created.
    [max_sessions] defaults to 64; [idle_ticks] defaults to 10_000. *)

val open_session :
  t -> name:string -> Netlist.Problem.t ->
  (entry, [ `Exists | `Cap of int ]) result
(** Create and register a fresh session over [problem].  [`Cap n] carries
    the configured maximum. *)

val find : t -> string -> entry option
(** Look up a session and mark it used at the current tick. *)

val session : entry -> Router.Session.t

val generation : entry -> int

val bump : entry -> unit
(** Record one committed mutation: the generation counter increments. *)

val close : t -> string -> bool
(** [false] when no such session. *)

val count : t -> int

val names : t -> string list
(** Alphabetical. *)

val tick : t -> string list
(** Advance the logical clock by one request and evict every session idle
    longer than [idle_ticks]; returns the evicted names (alphabetical). *)

val snapshot : t -> Util.Json.t
(** Registry half of the [stats] reply: per-session name, generation,
    net count and routed-net count. *)
