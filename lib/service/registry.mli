(** Named concurrent routing sessions with lifecycle management and
    optional durability.

    The registry owns every live {!Router.Session.t} of the server, keyed
    by client-chosen name.  It enforces a hard cap on concurrent sessions
    (opening past it fails with a structured error, it never blocks),
    tracks a per-session {e generation counter} — bumped once per
    committed mutation and echoed in every reply, so a client can detect
    it raced another client on the same session — and evicts sessions
    that have sat idle for more than [idle_ticks] server requests
    (a logical clock: one tick per executed request, which keeps eviction
    deterministic for replayed traces).

    {b Durability.}  With a {!data} configuration, every session gets a
    write-ahead log ({!Wal}) and periodic snapshots ({!Snapshot}) under
    [data.dir].  {!commit} appends each committed mutation {e after} the
    transactional session layer has applied it — rolled-back and shed
    requests never reach the log — and compacts the log into a fresh
    snapshot every [snapshot_every] records.  {!create} recovers every
    session found on disk; idle eviction parks sessions to disk instead
    of dropping them, and {!find} resurrects parked sessions on demand.
    Each entry also remembers the last applied client request id
    ({!last_rid}, persisted in both log and snapshot), giving the server
    exactly-once resubmission: a client that never saw its reply can
    resend the same [id] and get a duplicate-ack instead of a second
    application. *)

type t

type entry

type data = {
  dir : string;  (** directory holding one [.wal] + [.snap] per session *)
  snapshot_every : int;  (** compact the log every this many records *)
  fsync : bool;  (** push appends and snapshots to stable storage *)
}

val create :
  ?config:Router.Config.t ->
  ?chaos:Router.Chaos.t ->
  ?max_sessions:int ->
  ?idle_ticks:int ->
  ?owns:(string -> bool) ->
  ?data:data ->
  unit ->
  t
(** [config] (default {!Router.Config.default}) and [chaos] (default
    {!Router.Chaos.none}) are handed to every session created.
    [max_sessions] defaults to 64; [idle_ticks] defaults to 10_000.
    With [data], the directory is created if missing and every session
    found on disk {e that satisfies [owns]} (default: all) is recovered
    immediately (up to the session cap; failures count in
    {!durability_json}'s [recover_failures] and leave the files in
    place).  On a sharded server, [owns] is the shard-affinity
    predicate: each shard's registry recovers and resurrects only the
    sessions hashed to it, so several registries can share one data
    directory without double-opening a WAL. *)

val open_session :
  t -> name:string -> ?rid:int -> Netlist.Problem.t ->
  (entry, [ `Exists | `Cap of int ]) result
(** Create and register a fresh session over [problem].  [`Cap n] carries
    the configured maximum.  A durable open first checks the disk: a
    parked session of the same name resurrects and reports [`Exists]
    (check {!last_rid} against [rid] to recognise a client resubmitting
    an un-acked open).  A genuinely fresh open logs the problem's
    canonical text as the log's first record, so the session is durable
    from its first instant. *)

val find : t -> string -> entry option
(** Look up a session and mark it used at the current tick.  On a
    durable registry a miss falls back to disk: a parked (evicted)
    session reattaches transparently, cap permitting. *)

val session : entry -> Router.Session.t

val generation : entry -> int

val last_rid : entry -> int
(** The request id of the last committed mutation (0 = none recorded). *)

val is_duplicate : entry -> rid:int -> bool
(** [rid] is non-zero and equals {!last_rid}: this is a resubmission of
    the most recent committed request and must not re-apply. *)

val bump : entry -> unit
(** Record one committed mutation: the generation counter increments.
    Durable callers want {!commit}, which also journals the request. *)

val commit : t -> entry -> rid:int -> Proto.op -> unit
(** The durable {!bump}: increment the generation, remember [rid], and
    (when durable) append the op to the session's log — compacting into
    a snapshot when the log reaches [snapshot_every] records.  Call it
    {e after} the session mutation has committed. *)

val close : t -> string -> bool
(** [false] when no such session.  Durable close deletes the session's
    log and snapshot — closing is the explicit "forget this" verb. *)

val count : t -> int

val names : t -> string list
(** Alphabetical. *)

val tick : t -> string list
(** Advance the logical clock by one request and evict every session idle
    longer than [idle_ticks]; returns the evicted names (alphabetical).
    Durable eviction {e parks}: final snapshot, log compacted, files
    kept — {!find} brings the session back. *)

val flush_all : t -> unit
(** Snapshot every live session (graceful-shutdown path): after this,
    recovery needs no log replay. *)

val recover_all : t -> int
(** Recover every on-disk session not already live (cap permitting);
    returns how many came back.  {!create} already does this — exposed
    for tests. *)

val durable : t -> bool

val durability_json : t -> Util.Json.t
(** Durability counters for the [stats] reply: [durable],
    [snapshots_written], [sessions_recovered], [records_replayed],
    [torn_tails], [recover_failures], and [last_error] — the most
    recent recovery failure, with its [wal:<path>#<record>] or snapshot
    provenance ([null] if none). *)

val snapshot : t -> Util.Json.t
(** Registry half of the [stats] reply: per-session name, generation,
    net count and routed-net count. *)
