(** Bounded request queue with admission control and per-session fairness.

    Requests enter through {!submit} keyed by their session name.  The
    queue holds at most [cap] requests in total; past that, admission
    control rejects ({b sheds}) the request immediately — the caller
    turns that into a structured [queue_full] reply with a
    [retry_after_ms] hint, so a client under overload always gets a
    prompt, parseable answer instead of a hang.

    {!pop} drains in {b round-robin order over sessions}: sessions with
    pending work are served one request at a time in rotation, so a
    client that floods one session cannot starve the others — its
    requests wait behind one request of every other active session.
    Within one session, order is strictly FIFO (a single-session trace
    drains in submission order, which is what the byte-identical
    trace-equivalence guarantee relies on). *)

type 'a t

val create : cap:int -> unit -> 'a t
(** [cap] is clamped to at least 1. *)

val cap : 'a t -> int

val length : 'a t -> int
(** Requests currently queued. *)

val submit : ?force:bool -> 'a t -> key:string -> 'a -> bool
(** Enqueue under the session key; [false] when the queue is full (the
    request was shed — nothing was enqueued).  [force] (default false)
    admits past the cap: read-only requests are never shed, so a shard
    saturated with mutations still answers triage probes. *)

val pop : 'a t -> (string * 'a) option
(** Next request in fair rotation, with its key. *)
