module J = Util.Json

let version = 1

type target = Net_id of int | Net_name of string

type op =
  | Open of { problem_text : string option; file : string option }
  | Route of { slo_ms : int option }
  | Add_net of { name : string; pins : Netlist.Net.pin list }
  | Remove_net of target
  | Rip of target
  | Freeze of target
  | Thaw of target
  | Refine of { max_passes : int option }
  | Place of { seed : int option }
  | Groute of { tile : int option }
  | Flow_run of { seed : int option; tile : int option; slo_ms : int option }
  | Analyze of { tile : int option }
  | Verify
  | Render
  | Stats
  | Close
  | Shutdown

type request = { rid : int; session : string option; op : op }

let op_name = function
  | Open _ -> "open"
  | Route _ -> "route"
  | Add_net _ -> "add_net"
  | Remove_net _ -> "remove_net"
  | Rip _ -> "rip"
  | Freeze _ -> "freeze"
  | Thaw _ -> "thaw"
  | Refine _ -> "refine"
  | Place _ -> "place"
  | Groute _ -> "groute"
  | Flow_run _ -> "flow"
  | Analyze _ -> "analyze"
  | Verify -> "verify"
  | Render -> "render"
  | Stats -> "stats"
  | Close -> "close"
  | Shutdown -> "shutdown"

(* Every value [op_name] can produce, plus the pseudo-kind the server
   records for unparseable lines.  The sharded metrics stores pre-create
   one histogram per name so their tables never mutate structurally
   after creation — that is what makes lock-free cross-domain reads at
   [stats] time safe. *)
let op_names =
  [
    "open"; "route"; "add_net"; "remove_net"; "rip"; "freeze"; "thaw";
    "refine"; "place"; "groute"; "flow"; "analyze"; "verify"; "render";
    "stats"; "close"; "shutdown"; "invalid";
  ]

(* Read-only ops never touch a session's state, are never journalled,
   and are deliberately cheap; admission control lets them through a
   full queue so a saturated shard still answers triage requests. *)
let read_only = function
  | Groute _ | Analyze _ | Verify | Render | Stats -> true
  | Open _ | Route _ | Add_net _ | Remove_net _ | Rip _ | Freeze _ | Thaw _
  | Refine _ | Place _ | Flow_run _ | Close | Shutdown ->
      false

type error_code =
  | Parse_error
  | Bad_request
  | Unknown_op
  | Unknown_session
  | Session_exists
  | Session_cap
  | Net_error
  | Budget_tripped
  | Fault_injected
  | Queue_full
  | Shutting_down
  | Internal

let code_name = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Unknown_session -> "unknown_session"
  | Session_exists -> "session_exists"
  | Session_cap -> "session_cap"
  | Net_error -> "net_error"
  | Budget_tripped -> "budget_tripped"
  | Fault_injected -> "fault_injected"
  | Queue_full -> "queue_full"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

(* --- request decoding --- *)

exception Reject of error_code * string

let reject code fmt = Printf.ksprintf (fun msg -> raise (Reject (code, msg))) fmt

let str_field json name =
  match Option.bind (J.member name json) J.to_string_opt with
  | Some s -> s
  | None -> reject Bad_request "missing or non-string field %S" name

let opt_str json name =
  match J.member name json with
  | None | Some J.Null -> None
  | Some v -> (
      match J.to_string_opt v with
      | Some s -> Some s
      | None -> reject Bad_request "field %S must be a string" name)

let opt_int json name =
  match J.member name json with
  | None | Some J.Null -> None
  | Some v -> (
      match J.to_int_opt v with
      | Some n -> Some n
      | None -> reject Bad_request "field %S must be an integer" name)

(* [net] (id) or [name]; exactly one. *)
let target_of json =
  match (opt_int json "net", opt_str json "name") with
  | Some id, None -> Net_id id
  | None, Some name -> Net_name name
  | Some _, Some _ -> reject Bad_request "give either \"net\" or \"name\", not both"
  | None, None -> reject Bad_request "missing target: give \"net\" (id) or \"name\""

let pin_of = function
  | J.List [ x; y ] -> (
      match (J.to_int_opt x, J.to_int_opt y) with
      | Some x, Some y -> Netlist.Net.pin x y
      | _ -> reject Bad_request "pin coordinates must be integers")
  | J.List [ x; y; layer ] -> (
      match (J.to_int_opt x, J.to_int_opt y, J.to_int_opt layer) with
      | Some x, Some y, Some layer -> Netlist.Net.pin ~layer x y
      | _ -> reject Bad_request "pin coordinates must be integers")
  | _ -> reject Bad_request "each pin must be [x,y] or [x,y,layer]"

let op_of json = function
  | "open" ->
      let problem_text = opt_str json "problem" and file = opt_str json "file" in
      (match (problem_text, file) with
      | None, None ->
          reject Bad_request "open needs \"problem\" (inline text) or \"file\""
      | Some _, Some _ ->
          reject Bad_request "open takes either \"problem\" or \"file\", not both"
      | _ -> ());
      Open { problem_text; file }
  | "route" -> Route { slo_ms = opt_int json "slo_ms" }
  | "add_net" ->
      let name = str_field json "name" in
      let pins =
        match Option.bind (J.member "pins" json) J.to_list_opt with
        | Some ps -> List.map pin_of ps
        | None -> reject Bad_request "add_net needs a \"pins\" array"
      in
      Add_net { name; pins }
  | "remove_net" -> Remove_net (target_of json)
  | "rip" -> Rip (target_of json)
  | "freeze" -> Freeze (target_of json)
  | "thaw" -> Thaw (target_of json)
  | "refine" -> Refine { max_passes = opt_int json "max_passes" }
  | "place" -> Place { seed = opt_int json "seed" }
  | "groute" -> Groute { tile = opt_int json "tile" }
  | "flow" ->
      Flow_run
        {
          seed = opt_int json "seed";
          tile = opt_int json "tile";
          slo_ms = opt_int json "slo_ms";
        }
  | "analyze" -> Analyze { tile = opt_int json "tile" }
  | "verify" -> Verify
  | "render" -> Render
  | "stats" -> Stats
  | "close" -> Close
  | "shutdown" -> Shutdown
  | other -> reject Unknown_op "unknown op %S" other

let parse line =
  match J.of_string line with
  | Error msg -> Error (Parse_error, "bad JSON: " ^ msg)
  | Ok json -> (
      match
        let rid = Option.value ~default:0 (opt_int json "id") in
        let session = opt_str json "session" in
        let op = op_of json (str_field json "op") in
        { rid; session; op }
      with
      | req -> Ok req
      | exception Reject (code, msg) -> Error (code, msg))

(* --- op re-encoding: the WAL record format ---

   [op_to_json] emits exactly the request-shaped object [op_of] decodes,
   so a WAL record replays through the same decoder that handled the
   live request — one wire grammar, not two.  [Route]'s [slo_ms] is
   deliberately dropped: an SLO budgets one {e execution}, it is not
   part of the mutation, and a committed route must replay without a
   budget (determinism of the engine makes the un-budgeted replay land
   on the same layout). *)

let target_fields = function
  | Net_id id -> [ ("net", J.Int id) ]
  | Net_name name -> [ ("name", J.String name) ]

let op_to_json op =
  let fields =
    match op with
    | Open { problem_text; file } ->
        (match problem_text with
        | Some t -> [ ("problem", J.String t) ]
        | None -> [])
        @ (match file with Some f -> [ ("file", J.String f) ] | None -> [])
    | Route _ -> []
    | Add_net { name; pins } ->
        [
          ("name", J.String name);
          ( "pins",
            J.List
              (List.map
                 (fun (p : Netlist.Net.pin) ->
                   J.List
                     [
                       J.Int p.Netlist.Net.x;
                       J.Int p.Netlist.Net.y;
                       J.Int p.Netlist.Net.layer;
                     ])
                 pins) );
        ]
    | Remove_net t | Rip t | Freeze t | Thaw t -> target_fields t
    | Refine { max_passes } -> (
        match max_passes with
        | Some n -> [ ("max_passes", J.Int n) ]
        | None -> [])
    | Place { seed } -> (
        match seed with Some s -> [ ("seed", J.Int s) ] | None -> [])
    | Groute { tile } | Analyze { tile } -> (
        match tile with Some n -> [ ("tile", J.Int n) ] | None -> [])
    | Flow_run { seed; tile; slo_ms = _ } ->
        (* [slo_ms] is dropped for the same reason as [Route]'s. *)
        (match seed with Some s -> [ ("seed", J.Int s) ] | None -> [])
        @ (match tile with Some n -> [ ("tile", J.Int n) ] | None -> [])
    | Verify | Render | Stats | Close | Shutdown -> []
  in
  J.Obj (("op", J.String (op_name op)) :: fields)

let op_of_json json =
  match Option.bind (J.member "op" json) J.to_string_opt with
  | None -> Error "missing \"op\" field"
  | Some name -> (
      match op_of json name with
      | op -> Ok op
      | exception Reject (_, msg) -> Error msg)

(* --- reply encoding --- *)

let ok_line ~rid ?gen result =
  let gen_field = match gen with None -> [] | Some g -> [ ("gen", J.Int g) ] in
  J.to_string
    (J.Obj
       ([ ("v", J.Int version); ("id", J.Int rid); ("ok", J.Bool true) ]
       @ gen_field
       @ [ ("result", result) ]))

let error_line ~rid ?retry_after_ms code msg =
  let retry =
    match retry_after_ms with
    | None -> []
    | Some ms -> [ ("retry_after_ms", J.Int ms) ]
  in
  J.to_string
    (J.Obj
       [
         ("v", J.Int version);
         ("id", J.Int rid);
         ("ok", J.Bool false);
         ( "error",
           J.Obj
             ([ ("code", J.String (code_name code)); ("msg", J.String msg) ]
             @ retry) );
       ])
