module J = Util.Json

type config = {
  router : Router.Config.t;
  chaos : Router.Chaos.t;
  queue_cap : int;
  default_slo_ms : int option;
  max_sessions : int;
  idle_ticks : int;
  allow_files : bool;
  data_dir : string option;
  snapshot_every : int;
  fsync : bool;
}

let default_config =
  {
    router = Router.Config.default;
    chaos = Router.Chaos.none;
    queue_cap = 64;
    default_slo_ms = None;
    max_sessions = 64;
    idle_ticks = 10_000;
    allow_files = true;
    data_dir = None;
    snapshot_every = 64;
    fsync = true;
  }

type item = { client : int; request : Proto.request }

type t = {
  config : config;
  registry : Registry.t;
  queue : item Sched.t;
  metrics : Metrics.t;
  mutable shutdown : bool;
  (* Running mean of request execution time, feeding the retry_after_ms
     hint of shed replies. *)
  mutable exec_count : int;
  mutable exec_sum_s : float;
}

let create ?(config = default_config) () =
  let data =
    Option.map
      (fun dir ->
        {
          Registry.dir;
          snapshot_every = max 1 config.snapshot_every;
          fsync = config.fsync;
        })
      config.data_dir
  in
  {
    config;
    registry =
      Registry.create ~config:config.router ~chaos:config.chaos
        ~max_sessions:config.max_sessions ~idle_ticks:config.idle_ticks
        ?data ();
    queue = Sched.create ~cap:config.queue_cap ();
    metrics = Metrics.create ();
    shutdown = false;
    exec_count = 0;
    exec_sum_s = 0.0;
  }

let metrics t = t.metrics

let registry t = t.registry

let queue_depth t = Sched.length t.queue

let shutdown_requested t = t.shutdown

(* How long a shed client should wait before retrying: the time the
   current backlog will plausibly take to drain, from the observed mean
   request latency (falling back to the SLO, then to a token 50ms before
   any request has executed). *)
let retry_after_ms t =
  let mean_ms =
    if t.exec_count > 0 then 1000.0 *. t.exec_sum_s /. float_of_int t.exec_count
    else
      match t.config.default_slo_ms with
      | Some ms -> float_of_int ms
      | None -> 50.0
  in
  max 1 (int_of_float (mean_ms *. float_of_int (Sched.length t.queue + 1)))

(* --- request execution --- *)

exception Reply of string

let error_reply ~rid ?retry_after_ms code msg =
  raise (Reply (Proto.error_line ~rid ?retry_after_ms code msg))

let chaos_message msg =
  String.length msg >= 6 && String.sub msg 0 6 = "chaos:"

let with_session t (req : Proto.request) f =
  match req.Proto.session with
  | None ->
      error_reply ~rid:req.Proto.rid Proto.Bad_request
        "this op needs a \"session\" field"
  | Some name -> (
      match Registry.find t.registry name with
      | None ->
          error_reply ~rid:req.Proto.rid Proto.Unknown_session
            (Printf.sprintf "no session named %S" name)
      | Some entry -> f name entry)

(* Exactly-once resubmission: a client that never saw its reply (it or
   the server died in between) resends the same non-zero request id.
   If that id matches the session's last committed mutation — live or
   recovered from the journal — the work already happened: ack it with
   a [duplicate] marker instead of applying it twice.  Requests with
   id 0 opt out. *)
let deduped ~rid entry k =
  if Registry.is_duplicate entry ~rid then
    Proto.ok_line ~rid ~gen:(Registry.generation entry)
      (J.Obj [ ("duplicate", J.Bool true) ])
  else k ()

let resolve_target ~rid entry = function
  | Proto.Net_id id -> id
  | Proto.Net_name name -> (
      match Router.Session.net_id (Registry.session entry) name with
      | Some id -> id
      | None ->
          error_reply ~rid Proto.Net_error
            (Printf.sprintf "no net named %S" name))

(* Session mutations surface injected faults as [Error msg] with a
   recognisable prefix; give them their own error code so clients (and
   the chaos tests) can tell a fault-aborted request from a rejected
   one.  Either way the session has already rolled back. *)
let mutation_error ~rid t msg =
  if chaos_message msg then begin
    Metrics.fault t.metrics;
    error_reply ~rid Proto.Fault_injected msg
  end
  else error_reply ~rid Proto.Net_error msg

let engine_stats_json (s : Router.Engine.stats) =
  let status = if s.Router.Engine.failed_nets = [] then "complete" else "infeasible" in
  J.Obj
    [
      ("status", J.String status);
      ("routed", J.Int s.Router.Engine.routed_nets);
      ( "failed",
        J.List (List.map (fun id -> J.Int id) s.Router.Engine.failed_nets) );
      ("wirelength", J.Int s.Router.Engine.total_wirelength);
      ("vias", J.Int s.Router.Engine.total_vias);
      ("rips", J.Int s.Router.Engine.rips);
      ("shoves", J.Int s.Router.Engine.shoves);
      ("searches", J.Int s.Router.Engine.searches);
      ("expanded", J.Int s.Router.Engine.expanded);
      ("attempts", J.Int s.Router.Engine.attempts);
      ("cache_hits", J.Int s.Router.Engine.par.Router.Outcome.cache_hits);
      ("cache_stale", J.Int s.Router.Engine.par.Router.Outcome.cache_stale);
    ]

let place_stats_json (s : Place.stats) =
  J.Obj
    [
      ("insts", J.Int s.Place.insts);
      ("free_insts", J.Int s.Place.free_insts);
      ("moves", J.Int s.Place.moves);
      ("accepted", J.Int s.Place.accepted);
      ("sweeps", J.Int s.Place.sweeps);
      ("initial_cost", J.Int s.Place.initial_cost);
      ("final_cost", J.Int s.Place.final_cost);
      ("degraded", J.Bool s.Place.degraded);
    ]

let groute_json (g : Groute.t) =
  let class_total cls =
    Array.fold_left ( + ) 0 g.Groute.class_usage.(Groute.cls_index cls)
  in
  J.Obj
    [
      ("tiles_x", J.Int g.Groute.tiles_x);
      ("tiles_y", J.Int g.Groute.tiles_y);
      ("tile", J.Int g.Groute.tile);
      ("overflow_tiles", J.Int g.Groute.overflow_tiles);
      ( "audit",
        match Groute.audit g with
        | Ok () -> J.Bool true
        | Error _ -> J.Bool false );
      ( "class_usage",
        J.Obj
          [
            ("signal", J.Int (class_total Netlist.Net.Signal));
            ("clock", J.Int (class_total Netlist.Net.Clock));
            ("power", J.Int (class_total Netlist.Net.Power));
          ] );
      ( "guides",
        J.Int
          (Array.fold_left
             (fun a g -> if g <> None then a + 1 else a)
             0 g.Groute.guides) );
    ]

let guide_json (g : Router.Outcome.guide_stats) =
  let total = g.Router.Outcome.hits + g.Router.Outcome.fallbacks in
  J.Obj
    [
      ("guided", J.Int g.Router.Outcome.guided);
      ("hits", J.Int g.Router.Outcome.hits);
      ("fallbacks", J.Int g.Router.Outcome.fallbacks);
      ( "hit_rate",
        J.Float
          (if total = 0 then 1.0
           else float_of_int g.Router.Outcome.hits /. float_of_int total) );
    ]

let load_problem t ~rid = function
  | Proto.Open { problem_text = Some text; _ } -> (
      match Netlist.Parse.of_string ~src:"<request>" text with
      | Ok p -> p
      | Error e ->
          error_reply ~rid Proto.Bad_request (Netlist.Parse.error_to_string e))
  | Proto.Open { file = Some path; _ } -> (
      if not t.config.allow_files then
        error_reply ~rid Proto.Bad_request
          "open by \"file\" is disabled on this server";
      match Netlist.Parse.load path with
      | Ok p -> p
      | Error e ->
          error_reply ~rid Proto.Bad_request (Netlist.Parse.error_to_string e))
  | _ -> error_reply ~rid Proto.Bad_request "open needs \"problem\" or \"file\""

let exec t (req : Proto.request) =
  let rid = req.Proto.rid in
  let ok ?gen result = Proto.ok_line ~rid ?gen result in
  match req.Proto.op with
  | Proto.Open _ -> assert false (* dispatched to [exec_open] by [execute] *)
  | Proto.Route { slo_ms } ->
      with_session t req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      let session = Registry.session entry in
      let budget =
        match (slo_ms, t.config.default_slo_ms) with
        | Some ms, _ | None, Some ms ->
            Some (Router.Budget.create ~deadline:(float_of_int ms /. 1000.0) ())
        | None, None -> None
      in
      (match Router.Session.try_route ?budget session with
      | Ok stats ->
          Registry.commit t.registry entry ~rid req.Proto.op;
          ok ~gen:(Registry.generation entry) (engine_stats_json stats)
      | Error reason ->
          let msg = Router.Budget.reason_to_string reason in
          if chaos_message msg then begin
            Metrics.fault t.metrics;
            error_reply ~rid Proto.Fault_injected msg
          end
          else begin
            Metrics.budget_trip t.metrics;
            error_reply ~rid Proto.Budget_tripped msg
          end
      | exception Router.Chaos.Injected_fault msg ->
          Metrics.fault t.metrics;
          error_reply ~rid Proto.Fault_injected msg)
  | Proto.Add_net { name; pins } -> (
      with_session t req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      match Router.Session.add_net (Registry.session entry) ~name pins with
      | Ok id ->
          Registry.commit t.registry entry ~rid req.Proto.op;
          ok ~gen:(Registry.generation entry) (J.Obj [ ("net", J.Int id) ])
      | Error msg -> mutation_error ~rid t msg)
  | Proto.Remove_net target | Proto.Rip target
  | Proto.Freeze target | Proto.Thaw target -> (
      with_session t req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      let session = Registry.session entry in
      let net = resolve_target ~rid entry target in
      let call =
        match req.Proto.op with
        | Proto.Remove_net _ -> Router.Session.remove_net
        | Proto.Rip _ -> Router.Session.rip
        | Proto.Freeze _ -> Router.Session.freeze
        | _ -> Router.Session.thaw
      in
      match call session ~net with
      | Ok () ->
          Registry.commit t.registry entry ~rid req.Proto.op;
          ok ~gen:(Registry.generation entry) (J.Obj [ ("done", J.Bool true) ])
      | Error msg -> mutation_error ~rid t msg)
  | Proto.Refine { max_passes } -> (
      with_session t req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      match Router.Session.refine ?max_passes (Registry.session entry) with
      | s ->
          Registry.commit t.registry entry ~rid req.Proto.op;
          Metrics.refine_cache t.metrics
            ~skips:(s.Router.Improve.skipped_cert + s.Router.Improve.skipped_bound)
            ~stale:s.Router.Improve.cache_stale
            ~repairs:s.Router.Improve.field_repairs;
          ok ~gen:(Registry.generation entry)
            (J.Obj
               [
                 ("passes", J.Int s.Router.Improve.passes);
                 ("improved_nets", J.Int s.Router.Improve.improved_nets);
                 ("wirelength_before", J.Int s.Router.Improve.wirelength_before);
                 ("wirelength_after", J.Int s.Router.Improve.wirelength_after);
                 ("vias_before", J.Int s.Router.Improve.vias_before);
                 ("vias_after", J.Int s.Router.Improve.vias_after);
                 ("planned", J.Int s.Router.Improve.planned);
                 ("skipped_cert", J.Int s.Router.Improve.skipped_cert);
                 ("skipped_bound", J.Int s.Router.Improve.skipped_bound);
                 ("cache_stale", J.Int s.Router.Improve.cache_stale);
                 ("field_builds", J.Int s.Router.Improve.field_builds);
                 ("field_repairs", J.Int s.Router.Improve.field_repairs);
               ])
      | exception Router.Chaos.Injected_fault msg ->
          Metrics.fault t.metrics;
          error_reply ~rid Proto.Fault_injected msg)
  | Proto.Place { seed } -> (
      with_session t req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      let session = Registry.session entry in
      let problem = Router.Session.problem session in
      if not (Netlist.Problem.has_insts problem) then
        error_reply ~rid Proto.Net_error
          "the session's problem has no placement section"
      else begin
        (* Resolve the seed now and journal the resolved value, so a WAL
           replay reruns the exact same annealing schedule. *)
        let seed =
          match seed with
          | Some s -> s
          | None -> t.config.router.Router.Config.seed
        in
        match Place.place ~seed problem with
        | Error msg -> mutation_error ~rid t msg
        | exception Router.Chaos.Injected_fault msg ->
            Metrics.fault t.metrics;
            error_reply ~rid Proto.Fault_injected msg
        | Ok (placed, pstats) -> (
            match Netlist.Problem.realize placed with
            | exception Invalid_argument msg -> mutation_error ~rid t msg
            | realized -> (
                match
                  Router.Session.install session ~problem:realized
                    ~grid:(Netlist.Problem.instantiate realized)
                with
                | Error msg -> mutation_error ~rid t msg
                | exception Router.Chaos.Injected_fault msg ->
                    Metrics.fault t.metrics;
                    error_reply ~rid Proto.Fault_injected msg
                | Ok () ->
                    Registry.commit t.registry entry ~rid
                      (Proto.Place { seed = Some seed });
                    ok ~gen:(Registry.generation entry)
                      (place_stats_json pstats)))
      end)
  | Proto.Groute { tile } -> (
      with_session t req @@ fun _ entry ->
      let session = Registry.session entry in
      let problem = Router.Session.problem session in
      if Netlist.Problem.has_insts problem
         && not (Netlist.Problem.placed problem)
      then
        error_reply ~rid Proto.Net_error
          "the placement section has unplaced instances; place first"
      else
        match Netlist.Problem.realize problem with
        | exception Invalid_argument msg -> mutation_error ~rid t msg
        | realized ->
            ok ~gen:(Registry.generation entry)
              (groute_json (Groute.run ?tile realized)))
  | Proto.Flow_run { seed; tile; slo_ms } -> (
      with_session t req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      let session = Registry.session entry in
      let config = Router.Session.config session in
      let seed =
        match seed with Some s -> s | None -> config.Router.Config.seed
      in
      let budget =
        match (slo_ms, t.config.default_slo_ms) with
        | Some ms, _ | None, Some ms ->
            Some (Router.Budget.create ~deadline:(float_of_int ms /. 1000.0) ())
        | None, None -> None
      in
      match
        Flow.run ~config ?budget ~seed ?tile (Router.Session.problem session)
      with
      | Error msg -> mutation_error ~rid t msg
      | exception Invalid_argument msg -> mutation_error ~rid t msg
      | exception Router.Chaos.Injected_fault msg ->
          Metrics.fault t.metrics;
          error_reply ~rid Proto.Fault_injected msg
      | Ok f ->
          let place_degraded =
            match f.Flow.stats.Flow.place with
            | Some ps -> ps.Place.degraded
            | None -> false
          in
          let route_degraded =
            match f.Flow.result.Router.Engine.status with
            | Router.Outcome.Degraded _ -> true
            | _ -> false
          in
          if place_degraded || route_degraded then begin
            (* SLO blown: like [route], leave the session untouched. *)
            Metrics.budget_trip t.metrics;
            error_reply ~rid Proto.Budget_tripped
              "flow budget tripped; session unchanged"
          end
          else
            match
              Router.Session.install session ~problem:f.Flow.realized
                ~grid:f.Flow.result.Router.Engine.grid
            with
            | Error msg -> mutation_error ~rid t msg
            | exception Router.Chaos.Injected_fault msg ->
                Metrics.fault t.metrics;
                error_reply ~rid Proto.Fault_injected msg
            | Ok () ->
                let g = f.Flow.result.Router.Engine.stats.Router.Engine.guide in
                Metrics.flow_guides t.metrics
                  ~guided:g.Router.Outcome.guided ~hits:g.Router.Outcome.hits
                  ~fallbacks:g.Router.Outcome.fallbacks;
                Registry.commit t.registry entry ~rid
                  (Proto.Flow_run
                     { seed = Some seed; tile; slo_ms = None });
                ok ~gen:(Registry.generation entry)
                  (J.Obj
                     [
                       ( "place",
                         match f.Flow.stats.Flow.place with
                         | Some ps -> place_stats_json ps
                         | None -> J.Null );
                       ("groute", groute_json f.Flow.stats.Flow.groute);
                       ("route", engine_stats_json f.Flow.result.Router.Engine.stats);
                       ("guide", guide_json g);
                       ( "wall_ns",
                         J.Obj
                           [
                             ("place", J.Int (Int64.to_int f.Flow.stats.Flow.place_ns));
                             ("groute", J.Int (Int64.to_int f.Flow.stats.Flow.groute_ns));
                             ("route", J.Int (Int64.to_int f.Flow.stats.Flow.route_ns));
                           ] );
                     ]))
  | Proto.Verify ->
      with_session t req @@ fun _ entry ->
      let violations = Router.Session.verify (Registry.session entry) in
      ok ~gen:(Registry.generation entry)
        (J.Obj
           [
             ("clean", J.Bool (violations = []));
             ( "violations",
               J.List
                 (List.map
                    (fun v ->
                      J.String
                        (Format.asprintf "%a" Drc.Check.pp_violation v))
                    violations) );
           ])
  | Proto.Render ->
      with_session t req @@ fun _ entry ->
      ok ~gen:(Registry.generation entry)
        (J.Obj
           [
             ( "ascii",
               J.String (Viz.Ascii.render (Router.Session.grid (Registry.session entry)))
             );
           ])
  | Proto.Stats ->
      ok
        (J.Obj
           [
             ("protocol", J.Int Proto.version);
             ( "metrics",
               Metrics.snapshot ~queue_depth:(Sched.length t.queue)
                 ~sessions:(Registry.count t.registry) t.metrics );
             ("registry", Registry.snapshot t.registry);
             ("durability", Registry.durability_json t.registry);
           ])
  | Proto.Close -> (
      match req.Proto.session with
      | None ->
          error_reply ~rid Proto.Bad_request "close needs a \"session\" field"
      | Some name ->
          if Registry.close t.registry name then
            ok (J.Obj [ ("closed", J.String name) ])
          else
            error_reply ~rid Proto.Unknown_session
              (Printf.sprintf "no session named %S" name))
  | Proto.Shutdown ->
      t.shutdown <- true;
      ok (J.Obj [ ("stopping", J.Bool true) ])

(* [open] is special-cased before [exec]'s session lookup: it is the one
   session-scoped op whose session must not exist yet. *)
let exec_open t (req : Proto.request) op =
  let rid = req.Proto.rid in
  match req.Proto.session with
  | None -> error_reply ~rid Proto.Bad_request "open needs a \"session\" field"
  | Some name -> (
      let problem = load_problem t ~rid op in
      match Registry.open_session t.registry ~name ~rid problem with
      | Ok entry ->
          Proto.ok_line ~rid ~gen:(Registry.generation entry)
            (J.Obj
               [
                 ("session", J.String name);
                 ("nets", J.Int (Netlist.Problem.net_count problem));
                 ("width", J.Int problem.Netlist.Problem.width);
                 ("height", J.Int problem.Netlist.Problem.height);
               ])
      | Error `Exists -> (
          (* A resubmitted open whose first try committed (journalled)
             but whose reply was lost: ack it as a duplicate. *)
          match Registry.find t.registry name with
          | Some entry when Registry.is_duplicate entry ~rid ->
              Proto.ok_line ~rid ~gen:(Registry.generation entry)
                (J.Obj
                   [ ("session", J.String name); ("duplicate", J.Bool true) ])
          | _ ->
              error_reply ~rid Proto.Session_exists
                (Printf.sprintf "session %S already exists" name))
      | Error (`Cap n) ->
          error_reply ~rid Proto.Session_cap
            (Printf.sprintf "session cap reached (%d); close one first" n))

let execute t (req : Proto.request) =
  let t0 = Unix.gettimeofday () in
  let reply, ok_flag =
    match
      match req.Proto.op with
      | Proto.Open _ as op -> exec_open t req op
      | _ -> exec t req
    with
    | reply -> (reply, true)
    | exception Reply reply -> (reply, false)
    | exception (Router.Chaos.Killed _ as e) ->
        (* A simulated process death must not degrade into an [internal]
           reply: let it unwind the whole server, like the real thing. *)
        raise e
    | exception exn ->
        ( Proto.error_line ~rid:req.Proto.rid Proto.Internal
            (Printexc.to_string exn),
          false )
  in
  let dt = Unix.gettimeofday () -. t0 in
  t.exec_count <- t.exec_count + 1;
  t.exec_sum_s <- t.exec_sum_s +. dt;
  Metrics.record t.metrics ~kind:(Proto.op_name req.Proto.op) ~ok:ok_flag
    ~latency_s:dt;
  Metrics.evicted t.metrics (List.length (Registry.tick t.registry));
  reply

(* --- admission --- *)

let submit t ~client line =
  if t.shutdown then
    Some
      (Proto.error_line ~rid:0 Proto.Shutting_down "server is shutting down")
  else
    match Proto.parse line with
    | Error (code, msg) ->
        Metrics.record t.metrics ~kind:"invalid" ~ok:false ~latency_s:0.0;
        Some (Proto.error_line ~rid:0 code msg)
    | Ok request ->
        let key = Option.value ~default:"" request.Proto.session in
        if Sched.submit t.queue ~key { client; request } then begin
          Metrics.note_queue_depth t.metrics (Sched.length t.queue);
          None
        end
        else begin
          Metrics.shed t.metrics;
          Some
            (Proto.error_line ~rid:request.Proto.rid
               ~retry_after_ms:(retry_after_ms t) Proto.Queue_full
               (Printf.sprintf "queue full (%d queued)" (Sched.length t.queue)))
        end

let drain_one t =
  match Sched.pop t.queue with
  | None -> None
  | Some (_key, { client; request }) -> Some (client, execute t request)

let handle_line t line =
  let immediate = submit t ~client:0 line in
  let drained = ref [] in
  let rec drain () =
    match drain_one t with
    | Some (_, reply) ->
        drained := reply :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  (match immediate with Some r -> [ r ] | None -> []) @ List.rev !drained

let request_shutdown t = t.shutdown <- true

(* End-of-life housekeeping shared by the transports: park every live
   session in a final snapshot (so a restart replays nothing), then
   report.  Runs after the queue has drained. *)
let finalize t =
  Registry.flush_all t.registry;
  prerr_string
    (Metrics.render ~queue_depth:(Sched.length t.queue)
       ~sessions:(Registry.count t.registry) t.metrics);
  flush stderr

let metrics_dump t =
  Metrics.render ~queue_depth:(Sched.length t.queue)
    ~sessions:(Registry.count t.registry) t.metrics

(* --- transports --- *)

let serve_pipe t ic oc =
  let rec loop () =
    if not t.shutdown then
      match input_line ic with
      | exception End_of_file -> ()
      | exception Sys_error _ ->
          (* A signal (SIGTERM handler flipping [shutdown]) can abort the
             blocking read; treat it like EOF and fall through to the
             graceful path. *)
          ()
      | line ->
          List.iter
            (fun reply ->
              output_string oc reply;
              output_char oc '\n')
            (handle_line t line);
          flush oc;
          loop ()
  in
  loop ();
  finalize t

(* One connected socket client: fd, partial-line input buffer. *)
type client = { fd : Unix.file_descr; buf : Buffer.t }

let serve_socket t ~path =
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let clients : (int, client) Hashtbl.t = Hashtbl.create 8 in
  let next_id = ref 0 in
  let close_client id =
    match Hashtbl.find_opt clients id with
    | None -> ()
    | Some c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        Hashtbl.remove clients id
  in
  let send id line =
    match Hashtbl.find_opt clients id with
    | None -> () (* client went away; its reply is dropped *)
    | Some c -> (
        let data = Bytes.of_string (line ^ "\n") in
        let len = Bytes.length data in
        let rec write off =
          if off < len then
            let n = Unix.write c.fd data off (len - off) in
            write (off + n)
        in
        try write 0 with Unix.Unix_error _ -> close_client id)
  in
  let read_chunk = Bytes.create 4096 in
  let feed id c =
    match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> close_client id
    | n ->
        Buffer.add_subbytes c.buf read_chunk 0 n;
        (* Split completed lines off the front of the buffer. *)
        let data = Buffer.contents c.buf in
        Buffer.clear c.buf;
        let lines = String.split_on_char '\n' data in
        let rec consume = function
          | [] -> ()
          | [ partial ] -> Buffer.add_string c.buf partial
          | line :: rest ->
              (match submit t ~client:id line with
              | Some reply -> send id reply
              | None -> ());
              consume rest
        in
        consume lines
    | exception Unix.Unix_error _ -> close_client id
  in
  let rec loop () =
    let fds =
      listen_fd :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) clients []
    in
    (match Unix.select fds [] [] 0.2 with
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              let cfd, _ = Unix.accept listen_fd in
              incr next_id;
              Hashtbl.replace clients !next_id
                { fd = cfd; buf = Buffer.create 256 }
            end
            else
              let found =
                Hashtbl.fold
                  (fun id c acc -> if c.fd = fd then Some (id, c) else acc)
                  clients None
              in
              match found with
              | Some (id, c) -> feed id c
              | None -> ())
          ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* Drain everything admitted before going back to select: requests
       are compute-bound and execution is serialised by design. *)
    let rec drain () =
      match drain_one t with
      | Some (client, reply) ->
          send client reply;
          drain ()
      | None -> ()
    in
    drain ();
    if (not t.shutdown) || Sched.length t.queue > 0 then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      finalize t)
    loop
