module J = Util.Json

type config = {
  router : Router.Config.t;
  chaos : Router.Chaos.t;
  queue_cap : int;
  default_slo_ms : int option;
  max_sessions : int;
  idle_ticks : int;
  allow_files : bool;
  data_dir : string option;
  snapshot_every : int;
  fsync : bool;
  shards : int;
}

let default_config =
  {
    router = Router.Config.default;
    chaos = Router.Chaos.none;
    queue_cap = 64;
    default_slo_ms = None;
    max_sessions = 64;
    idle_ticks = 10_000;
    allow_files = true;
    data_dir = None;
    snapshot_every = 64;
    fsync = true;
    shards = 1;
  }

type item = { client : int; request : Proto.request }

(* One shard: a registry partition, a bounded queue and a metrics store,
   owned by one executor at a time.  In parallel mode the executor is a
   persistent worker domain; in synchronous mode ([drain_one]) it is the
   calling domain.  [qmutex]/[qcond] guard the queue (acceptor submits,
   executor pops); [lock] serialises execution against the cross-shard
   reads of a [stats] request.  The [exec_*] means feed shed hints and
   are written by the executor only; [inflight] flips under [qmutex]. *)
type shard = {
  index : int;
  registry : Registry.t;
  queue : item Sched.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  lock : Mutex.t;
  metrics : Metrics.t;
  mutable exec_count : int;
  mutable exec_sum_s : float;
  mutable inflight : bool;
}

type t = {
  config : config;
  shards : shard array;
  (* Acceptor-domain store: parse errors and the global queue-depth
     high-water mark.  Sheds count on the target shard's store. *)
  acceptor : Metrics.t;
  (* Requests admitted but not yet popped, across every shard — the
     global admission cap. *)
  queued : int Atomic.t;
  shutdown : bool Atomic.t;
  (* Parallel mode: tells the worker domains to exit once their queue is
     empty (graceful drain). *)
  draining : bool Atomic.t;
  (* Synchronous mode: [drain_one]'s rotation over shards. *)
  mutable cursor : int;
}

(* Stable session→shard affinity: FNV-1a over the session name.  Not
   OCaml's [Hashtbl.hash] on purpose — the mapping reaches the on-disk
   recovery partition ([Registry]'s [owns]), so it must stay fixed under
   compiler upgrades. *)
let shard_of_name ~shards name =
  if shards <= 1 || name = "" then 0
  else begin
    let h = ref 2166136261 in
    String.iter
      (fun c -> h := (!h lxor Char.code c) * 16777619 land max_int)
      name;
    !h mod shards
  end

(* [stats] reads every shard and is the only request that takes foreign
   shard locks; pinning it to shard 0 means lock acquisition is always
   ordered (holder of lock 0 takes 1..n-1) and can never deadlock. *)
let shard_for t (req : Proto.request) =
  match req.Proto.op with
  | Proto.Stats -> t.shards.(0)
  | _ ->
      let name = Option.value ~default:"" req.Proto.session in
      t.shards.(shard_of_name ~shards:(Array.length t.shards) name)

let create ?(config = default_config) () =
  let shards = max 1 config.shards in
  let data =
    Option.map
      (fun dir ->
        {
          Registry.dir;
          snapshot_every = max 1 config.snapshot_every;
          fsync = config.fsync;
        })
      config.data_dir
  in
  (* Per-shard queue slice of the global cap: a session flooding its own
     shard sheds early instead of filling the whole server's budget. *)
  let per_shard_cap = max 1 ((config.queue_cap + shards - 1) / shards) in
  let mk_shard index =
    {
      index;
      registry =
        Registry.create ~config:config.router ~chaos:config.chaos
          ~max_sessions:config.max_sessions ~idle_ticks:config.idle_ticks
          ~owns:(fun name -> shard_of_name ~shards name = index)
          ?data ();
      queue = Sched.create ~cap:per_shard_cap ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      lock = Mutex.create ();
      metrics = Metrics.create ~kinds:Proto.op_names ();
      exec_count = 0;
      exec_sum_s = 0.0;
      inflight = false;
    }
  in
  {
    config;
    shards = Array.init shards mk_shard;
    acceptor = Metrics.create ~kinds:Proto.op_names ();
    queued = Atomic.make 0;
    shutdown = Atomic.make false;
    draining = Atomic.make false;
    cursor = 0;
  }

let shard_count t = Array.length t.shards

let shard_of t name = shard_of_name ~shards:(Array.length t.shards) name

let metrics t =
  Metrics.merge
    (t.acceptor :: Array.to_list (Array.map (fun s -> s.metrics) t.shards))

let registry t = t.shards.(0).registry

let registry_for t name = t.shards.(shard_of t name).registry

let queue_depth t = Atomic.get t.queued

let pending t =
  Atomic.get t.queued
  + Array.fold_left (fun a s -> if s.inflight then a + 1 else a) 0 t.shards

let shutdown_requested t = Atomic.get t.shutdown

(* How long a shed client should wait before retrying: the time the
   target shard's backlog will plausibly take to drain, from that
   shard's observed mean request latency (falling back to the SLO, then
   to a token 50ms before any request has executed).  Load-aware per
   shard: a client bounced off a deep queue gets a proportionally later
   retry slot than one bounced off a briefly-full shard. *)
let retry_after_ms t shard =
  let mean_ms =
    if shard.exec_count > 0 then
      1000.0 *. shard.exec_sum_s /. float_of_int shard.exec_count
    else
      match t.config.default_slo_ms with
      | Some ms -> float_of_int ms
      | None -> 50.0
  in
  max 1 (int_of_float (mean_ms *. float_of_int (Sched.length shard.queue + 1)))

(* --- request execution --- *)

exception Reply of string

let error_reply ~rid ?retry_after_ms code msg =
  raise (Reply (Proto.error_line ~rid ?retry_after_ms code msg))

let chaos_message msg =
  String.length msg >= 6 && String.sub msg 0 6 = "chaos:"

let with_session shard (req : Proto.request) f =
  match req.Proto.session with
  | None ->
      error_reply ~rid:req.Proto.rid Proto.Bad_request
        "this op needs a \"session\" field"
  | Some name -> (
      match Registry.find shard.registry name with
      | None ->
          error_reply ~rid:req.Proto.rid Proto.Unknown_session
            (Printf.sprintf "no session named %S" name)
      | Some entry -> f name entry)

(* Exactly-once resubmission: a client that never saw its reply (it or
   the server died in between) resends the same non-zero request id.
   If that id matches the session's last committed mutation — live or
   recovered from the journal — the work already happened: ack it with
   a [duplicate] marker instead of applying it twice.  Requests with
   id 0 opt out. *)
let deduped ~rid entry k =
  if Registry.is_duplicate entry ~rid then
    Proto.ok_line ~rid ~gen:(Registry.generation entry)
      (J.Obj [ ("duplicate", J.Bool true) ])
  else k ()

let resolve_target ~rid entry = function
  | Proto.Net_id id -> id
  | Proto.Net_name name -> (
      match Router.Session.net_id (Registry.session entry) name with
      | Some id -> id
      | None ->
          error_reply ~rid Proto.Net_error
            (Printf.sprintf "no net named %S" name))

(* Session mutations surface injected faults as [Error msg] with a
   recognisable prefix; give them their own error code so clients (and
   the chaos tests) can tell a fault-aborted request from a rejected
   one.  Either way the session has already rolled back. *)
let mutation_error ~rid shard msg =
  if chaos_message msg then begin
    Metrics.fault shard.metrics;
    error_reply ~rid Proto.Fault_injected msg
  end
  else error_reply ~rid Proto.Net_error msg

let engine_stats_json (s : Router.Engine.stats) =
  let status = if s.Router.Engine.failed_nets = [] then "complete" else "infeasible" in
  J.Obj
    [
      ("status", J.String status);
      ("routed", J.Int s.Router.Engine.routed_nets);
      ( "failed",
        J.List (List.map (fun id -> J.Int id) s.Router.Engine.failed_nets) );
      ("wirelength", J.Int s.Router.Engine.total_wirelength);
      ("vias", J.Int s.Router.Engine.total_vias);
      ("rips", J.Int s.Router.Engine.rips);
      ("shoves", J.Int s.Router.Engine.shoves);
      ("searches", J.Int s.Router.Engine.searches);
      ("expanded", J.Int s.Router.Engine.expanded);
      ("attempts", J.Int s.Router.Engine.attempts);
      ("cache_hits", J.Int s.Router.Engine.par.Router.Outcome.cache_hits);
      ("cache_stale", J.Int s.Router.Engine.par.Router.Outcome.cache_stale);
    ]

let place_stats_json (s : Place.stats) =
  J.Obj
    [
      ("insts", J.Int s.Place.insts);
      ("free_insts", J.Int s.Place.free_insts);
      ("moves", J.Int s.Place.moves);
      ("accepted", J.Int s.Place.accepted);
      ("sweeps", J.Int s.Place.sweeps);
      ("initial_cost", J.Int s.Place.initial_cost);
      ("final_cost", J.Int s.Place.final_cost);
      ("degraded", J.Bool s.Place.degraded);
    ]

let groute_json (g : Groute.t) =
  let class_total cls =
    Array.fold_left ( + ) 0 g.Groute.class_usage.(Groute.cls_index cls)
  in
  J.Obj
    [
      ("tiles_x", J.Int g.Groute.tiles_x);
      ("tiles_y", J.Int g.Groute.tiles_y);
      ("tile", J.Int g.Groute.tile);
      ("overflow_tiles", J.Int g.Groute.overflow_tiles);
      ( "audit",
        match Groute.audit g with
        | Ok () -> J.Bool true
        | Error _ -> J.Bool false );
      ( "class_usage",
        J.Obj
          [
            ("signal", J.Int (class_total Netlist.Net.Signal));
            ("clock", J.Int (class_total Netlist.Net.Clock));
            ("power", J.Int (class_total Netlist.Net.Power));
          ] );
      ( "guides",
        J.Int
          (Array.fold_left
             (fun a g -> if g <> None then a + 1 else a)
             0 g.Groute.guides) );
    ]

let guide_json (g : Router.Outcome.guide_stats) =
  let total = g.Router.Outcome.hits + g.Router.Outcome.fallbacks in
  J.Obj
    [
      ("guided", J.Int g.Router.Outcome.guided);
      ("hits", J.Int g.Router.Outcome.hits);
      ("fallbacks", J.Int g.Router.Outcome.fallbacks);
      ( "hit_rate",
        J.Float
          (if total = 0 then 1.0
           else float_of_int g.Router.Outcome.hits /. float_of_int total) );
    ]

let load_problem t ~rid = function
  | Proto.Open { problem_text = Some text; _ } -> (
      match Netlist.Parse.of_string ~src:"<request>" text with
      | Ok p -> p
      | Error e ->
          error_reply ~rid Proto.Bad_request (Netlist.Parse.error_to_string e))
  | Proto.Open { file = Some path; _ } -> (
      if not t.config.allow_files then
        error_reply ~rid Proto.Bad_request
          "open by \"file\" is disabled on this server";
      match Netlist.Parse.load path with
      | Ok p -> p
      | Error e ->
          error_reply ~rid Proto.Bad_request (Netlist.Parse.error_to_string e))
  | _ -> error_reply ~rid Proto.Bad_request "open needs \"problem\" or \"file\""

(* The [stats] reply: metrics merged lock-free across every per-domain
   store; registry tables (session maps, durability counters) read under
   each foreign shard's execution lock.  [self] is the shard executing
   the request — its lock is already held by our executor. *)
let stats_json t ~(self : shard) =
  let with_shard_lock s f =
    if s == self then f ()
    else begin
      Mutex.lock s.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f
    end
  in
  let per_shard =
    Array.map
      (fun s ->
        let sessions, reg_rows, durability =
          with_shard_lock s (fun () ->
              ( Registry.count s.registry,
                Registry.snapshot s.registry,
                Registry.durability_json s.registry ))
        in
        (s, sessions, reg_rows, durability))
      t.shards
  in
  let total_sessions =
    Array.fold_left (fun a (_, n, _, _) -> a + n) 0 per_shard
  in
  let registry_rows =
    Array.to_list per_shard
    |> List.concat_map (fun (_, _, rows, _) ->
           match rows with J.Obj fields -> fields | _ -> [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let durabilities =
    Array.to_list (Array.map (fun (_, _, _, d) -> d) per_shard)
  in
  let sum_int name =
    J.Int
      (List.fold_left
         (fun a d ->
           match J.member name d with Some (J.Int n) -> a + n | _ -> a)
         0 durabilities)
  in
  let durability =
    J.Obj
      [
        ( "durable",
          J.Bool
            (List.exists
               (fun d -> J.member "durable" d = Some (J.Bool true))
               durabilities) );
        ("snapshots_written", sum_int "snapshots_written");
        ("sessions_recovered", sum_int "sessions_recovered");
        ("records_replayed", sum_int "records_replayed");
        ("torn_tails", sum_int "torn_tails");
        ("recover_failures", sum_int "recover_failures");
        ( "last_error",
          match
            List.find_opt
              (fun d ->
                match J.member "last_error" d with
                | Some (J.String _) -> true
                | _ -> false)
              durabilities
          with
          | Some d -> Option.get (J.member "last_error" d)
          | None -> J.Null );
      ]
  in
  let shard_rows =
    Array.to_list per_shard
    |> List.map (fun ((s : shard), sessions, _, _) ->
           J.Obj
             [
               ("shard", J.Int s.index);
               ("sessions", J.Int sessions);
               ("queue_depth", J.Int (Sched.length s.queue));
               ("queue_cap", J.Int (Sched.cap s.queue));
               ("shed", J.Int (Metrics.shed_count s.metrics));
               ("requests", J.Int (Metrics.requests s.metrics));
             ])
  in
  J.Obj
    [
      ("protocol", J.Int Proto.version);
      ( "metrics",
        Metrics.snapshot ~queue_depth:(Atomic.get t.queued)
          ~sessions:total_sessions (metrics t) );
      ("shards", J.List shard_rows);
      ("registry", J.Obj registry_rows);
      ("durability", durability);
    ]

let exec t shard (req : Proto.request) =
  let rid = req.Proto.rid in
  let ok ?gen result = Proto.ok_line ~rid ?gen result in
  match req.Proto.op with
  | Proto.Open _ -> assert false (* dispatched to [exec_open] by [execute] *)
  | Proto.Route { slo_ms } ->
      with_session shard req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      let session = Registry.session entry in
      let budget =
        match (slo_ms, t.config.default_slo_ms) with
        | Some ms, _ | None, Some ms ->
            Some (Router.Budget.create ~deadline:(float_of_int ms /. 1000.0) ())
        | None, None -> None
      in
      (match Router.Session.try_route ?budget session with
      | Ok stats ->
          Registry.commit shard.registry entry ~rid req.Proto.op;
          ok ~gen:(Registry.generation entry) (engine_stats_json stats)
      | Error reason ->
          let msg = Router.Budget.reason_to_string reason in
          if chaos_message msg then begin
            Metrics.fault shard.metrics;
            error_reply ~rid Proto.Fault_injected msg
          end
          else begin
            Metrics.budget_trip shard.metrics;
            error_reply ~rid Proto.Budget_tripped msg
          end
      | exception Router.Chaos.Injected_fault msg ->
          Metrics.fault shard.metrics;
          error_reply ~rid Proto.Fault_injected msg)
  | Proto.Add_net { name; pins } -> (
      with_session shard req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      match Router.Session.add_net (Registry.session entry) ~name pins with
      | Ok id ->
          Registry.commit shard.registry entry ~rid req.Proto.op;
          ok ~gen:(Registry.generation entry) (J.Obj [ ("net", J.Int id) ])
      | Error msg -> mutation_error ~rid shard msg)
  | Proto.Remove_net target | Proto.Rip target
  | Proto.Freeze target | Proto.Thaw target -> (
      with_session shard req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      let session = Registry.session entry in
      let net = resolve_target ~rid entry target in
      let call =
        match req.Proto.op with
        | Proto.Remove_net _ -> Router.Session.remove_net
        | Proto.Rip _ -> Router.Session.rip
        | Proto.Freeze _ -> Router.Session.freeze
        | _ -> Router.Session.thaw
      in
      match call session ~net with
      | Ok () ->
          Registry.commit shard.registry entry ~rid req.Proto.op;
          ok ~gen:(Registry.generation entry) (J.Obj [ ("done", J.Bool true) ])
      | Error msg -> mutation_error ~rid shard msg)
  | Proto.Refine { max_passes } -> (
      with_session shard req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      match Router.Session.refine ?max_passes (Registry.session entry) with
      | s ->
          Registry.commit shard.registry entry ~rid req.Proto.op;
          Metrics.refine_cache shard.metrics
            ~skips:(s.Router.Improve.skipped_cert + s.Router.Improve.skipped_bound)
            ~stale:s.Router.Improve.cache_stale
            ~repairs:s.Router.Improve.field_repairs;
          ok ~gen:(Registry.generation entry)
            (J.Obj
               [
                 ("passes", J.Int s.Router.Improve.passes);
                 ("improved_nets", J.Int s.Router.Improve.improved_nets);
                 ("wirelength_before", J.Int s.Router.Improve.wirelength_before);
                 ("wirelength_after", J.Int s.Router.Improve.wirelength_after);
                 ("vias_before", J.Int s.Router.Improve.vias_before);
                 ("vias_after", J.Int s.Router.Improve.vias_after);
                 ("planned", J.Int s.Router.Improve.planned);
                 ("skipped_cert", J.Int s.Router.Improve.skipped_cert);
                 ("skipped_bound", J.Int s.Router.Improve.skipped_bound);
                 ("cache_stale", J.Int s.Router.Improve.cache_stale);
                 ("field_builds", J.Int s.Router.Improve.field_builds);
                 ("field_repairs", J.Int s.Router.Improve.field_repairs);
               ])
      | exception Router.Chaos.Injected_fault msg ->
          Metrics.fault shard.metrics;
          error_reply ~rid Proto.Fault_injected msg)
  | Proto.Place { seed } -> (
      with_session shard req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      let session = Registry.session entry in
      let problem = Router.Session.problem session in
      if not (Netlist.Problem.has_insts problem) then
        error_reply ~rid Proto.Net_error
          "the session's problem has no placement section"
      else begin
        (* Resolve the seed now and journal the resolved value, so a WAL
           replay reruns the exact same annealing schedule. *)
        let seed =
          match seed with
          | Some s -> s
          | None -> t.config.router.Router.Config.seed
        in
        match Place.place ~seed problem with
        | Error msg -> mutation_error ~rid shard msg
        | exception Router.Chaos.Injected_fault msg ->
            Metrics.fault shard.metrics;
            error_reply ~rid Proto.Fault_injected msg
        | Ok (placed, pstats) -> (
            match Netlist.Problem.realize placed with
            | exception Invalid_argument msg -> mutation_error ~rid shard msg
            | realized -> (
                match
                  Router.Session.install session ~problem:realized
                    ~grid:(Netlist.Problem.instantiate realized)
                with
                | Error msg -> mutation_error ~rid shard msg
                | exception Router.Chaos.Injected_fault msg ->
                    Metrics.fault shard.metrics;
                    error_reply ~rid Proto.Fault_injected msg
                | Ok () ->
                    Registry.commit shard.registry entry ~rid
                      (Proto.Place { seed = Some seed });
                    ok ~gen:(Registry.generation entry)
                      (place_stats_json pstats)))
      end)
  | Proto.Groute { tile } -> (
      with_session shard req @@ fun _ entry ->
      let session = Registry.session entry in
      let problem = Router.Session.problem session in
      if Netlist.Problem.has_insts problem
         && not (Netlist.Problem.placed problem)
      then
        error_reply ~rid Proto.Net_error
          "the placement section has unplaced instances; place first"
      else
        match Netlist.Problem.realize problem with
        | exception Invalid_argument msg -> mutation_error ~rid shard msg
        | realized ->
            ok ~gen:(Registry.generation entry)
              (groute_json (Groute.run ?tile realized)))
  | Proto.Analyze { tile } -> (
      (* Read-only like [groute]: nothing to commit, nothing journalled.
         Admission force-admits it, so this must stay cheap — it is
         (closed-form supply/demand over the tile graph, no routing). *)
      with_session shard req @@ fun _ entry ->
      let session = Registry.session entry in
      let problem = Router.Session.problem session in
      if Netlist.Problem.has_insts problem
         && not (Netlist.Problem.placed problem)
      then
        error_reply ~rid Proto.Net_error
          "the placement section has unplaced instances; place first"
      else
        match Netlist.Problem.realize problem with
        | exception Invalid_argument msg -> mutation_error ~rid shard msg
        | realized ->
            ok ~gen:(Registry.generation entry)
              (Analyze.to_json (Analyze.run ?tile realized)))
  | Proto.Flow_run { seed; tile; slo_ms } -> (
      with_session shard req @@ fun _ entry ->
      deduped ~rid entry @@ fun () ->
      let session = Registry.session entry in
      let config = Router.Session.config session in
      let seed =
        match seed with Some s -> s | None -> config.Router.Config.seed
      in
      let budget =
        match (slo_ms, t.config.default_slo_ms) with
        | Some ms, _ | None, Some ms ->
            Some (Router.Budget.create ~deadline:(float_of_int ms /. 1000.0) ())
        | None, None -> None
      in
      match
        Flow.run ~config ?budget ~seed ?tile (Router.Session.problem session)
      with
      | Error msg -> mutation_error ~rid shard msg
      | exception Invalid_argument msg -> mutation_error ~rid shard msg
      | exception Router.Chaos.Injected_fault msg ->
          Metrics.fault shard.metrics;
          error_reply ~rid Proto.Fault_injected msg
      | Ok f ->
          let place_degraded =
            match f.Flow.stats.Flow.place with
            | Some ps -> ps.Place.degraded
            | None -> false
          in
          let route_degraded =
            match f.Flow.result.Router.Engine.status with
            | Router.Outcome.Degraded _ -> true
            | _ -> false
          in
          if place_degraded || route_degraded then begin
            (* SLO blown: like [route], leave the session untouched. *)
            Metrics.budget_trip shard.metrics;
            error_reply ~rid Proto.Budget_tripped
              "flow budget tripped; session unchanged"
          end
          else
            match
              Router.Session.install session ~problem:f.Flow.realized
                ~grid:f.Flow.result.Router.Engine.grid
            with
            | Error msg -> mutation_error ~rid shard msg
            | exception Router.Chaos.Injected_fault msg ->
                Metrics.fault shard.metrics;
                error_reply ~rid Proto.Fault_injected msg
            | Ok () ->
                let g = f.Flow.result.Router.Engine.stats.Router.Engine.guide in
                Metrics.flow_guides shard.metrics
                  ~guided:g.Router.Outcome.guided ~hits:g.Router.Outcome.hits
                  ~fallbacks:g.Router.Outcome.fallbacks;
                Registry.commit shard.registry entry ~rid
                  (Proto.Flow_run
                     { seed = Some seed; tile; slo_ms = None });
                ok ~gen:(Registry.generation entry)
                  (J.Obj
                     [
                       ( "place",
                         match f.Flow.stats.Flow.place with
                         | Some ps -> place_stats_json ps
                         | None -> J.Null );
                       ("groute", groute_json f.Flow.stats.Flow.groute);
                       ("route", engine_stats_json f.Flow.result.Router.Engine.stats);
                       ("guide", guide_json g);
                       ( "wall_ns",
                         J.Obj
                           [
                             ("place", J.Int (Int64.to_int f.Flow.stats.Flow.place_ns));
                             ("groute", J.Int (Int64.to_int f.Flow.stats.Flow.groute_ns));
                             ("route", J.Int (Int64.to_int f.Flow.stats.Flow.route_ns));
                           ] );
                     ]))
  | Proto.Verify ->
      with_session shard req @@ fun _ entry ->
      let violations = Router.Session.verify (Registry.session entry) in
      ok ~gen:(Registry.generation entry)
        (J.Obj
           [
             ("clean", J.Bool (violations = []));
             ( "violations",
               J.List
                 (List.map
                    (fun v ->
                      J.String
                        (Format.asprintf "%a" Drc.Check.pp_violation v))
                    violations) );
           ])
  | Proto.Render ->
      with_session shard req @@ fun _ entry ->
      ok ~gen:(Registry.generation entry)
        (J.Obj
           [
             ( "ascii",
               J.String (Viz.Ascii.render (Router.Session.grid (Registry.session entry)))
             );
           ])
  | Proto.Stats -> ok (stats_json t ~self:shard)
  | Proto.Close -> (
      match req.Proto.session with
      | None ->
          error_reply ~rid Proto.Bad_request "close needs a \"session\" field"
      | Some name ->
          if Registry.close shard.registry name then
            ok (J.Obj [ ("closed", J.String name) ])
          else
            error_reply ~rid Proto.Unknown_session
              (Printf.sprintf "no session named %S" name))
  | Proto.Shutdown ->
      Atomic.set t.shutdown true;
      ok (J.Obj [ ("stopping", J.Bool true) ])

(* [open] is special-cased before [exec]'s session lookup: it is the one
   session-scoped op whose session must not exist yet. *)
let exec_open t shard (req : Proto.request) op =
  let rid = req.Proto.rid in
  match req.Proto.session with
  | None -> error_reply ~rid Proto.Bad_request "open needs a \"session\" field"
  | Some name -> (
      let problem = load_problem t ~rid op in
      match Registry.open_session shard.registry ~name ~rid problem with
      | Ok entry ->
          Proto.ok_line ~rid ~gen:(Registry.generation entry)
            (J.Obj
               [
                 ("session", J.String name);
                 ("nets", J.Int (Netlist.Problem.net_count problem));
                 ("width", J.Int problem.Netlist.Problem.width);
                 ("height", J.Int problem.Netlist.Problem.height);
               ])
      | Error `Exists -> (
          (* A resubmitted open whose first try committed (journalled)
             but whose reply was lost: ack it as a duplicate. *)
          match Registry.find shard.registry name with
          | Some entry when Registry.is_duplicate entry ~rid ->
              Proto.ok_line ~rid ~gen:(Registry.generation entry)
                (J.Obj
                   [ ("session", J.String name); ("duplicate", J.Bool true) ])
          | _ ->
              error_reply ~rid Proto.Session_exists
                (Printf.sprintf "session %S already exists" name))
      | Error (`Cap n) ->
          error_reply ~rid Proto.Session_cap
            (Printf.sprintf "session cap reached (%d); close one first" n))

(* Execute one request on its shard.  The caller holds [shard.lock]. *)
let execute t shard (req : Proto.request) =
  let t0 = Unix.gettimeofday () in
  let reply, ok_flag =
    match
      match req.Proto.op with
      | Proto.Open _ as op -> exec_open t shard req op
      | _ -> exec t shard req
    with
    | reply -> (reply, true)
    | exception Reply reply -> (reply, false)
    | exception (Router.Chaos.Killed _ as e) ->
        (* A simulated process death must not degrade into an [internal]
           reply: let it unwind the whole server, like the real thing. *)
        raise e
    | exception exn ->
        ( Proto.error_line ~rid:req.Proto.rid Proto.Internal
            (Printexc.to_string exn),
          false )
  in
  let dt = Unix.gettimeofday () -. t0 in
  shard.exec_count <- shard.exec_count + 1;
  shard.exec_sum_s <- shard.exec_sum_s +. dt;
  Metrics.record shard.metrics ~kind:(Proto.op_name req.Proto.op) ~ok:ok_flag
    ~latency_s:dt;
  Metrics.evicted shard.metrics
    (List.length (Registry.tick shard.registry));
  reply

let locked_execute t shard req =
  Mutex.lock shard.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock shard.lock)
    (fun () -> execute t shard req)

(* --- admission --- *)

let submit t ~client line =
  if Atomic.get t.shutdown then
    Some
      (Proto.error_line ~rid:0 Proto.Shutting_down "server is shutting down")
  else
    match Proto.parse line with
    | Error (code, msg) ->
        Metrics.record t.acceptor ~kind:"invalid" ~ok:false ~latency_s:0.0;
        Some (Proto.error_line ~rid:0 code msg)
    | Ok request ->
        let shard = shard_for t request in
        let key = Option.value ~default:"" request.Proto.session in
        Mutex.lock shard.qmutex;
        (* Read-only requests bypass the queue-cap accounting entirely:
           they are force-admitted past both the global cap and the
           shard's slice, so a shard saturated with mutations still
           answers [analyze]/[stats]/[verify] probes.  They still count
           in [queued] while in flight (the drain path decrements
           uniformly), which only makes mutation admission stricter. *)
        let force = Proto.read_only request.Proto.op in
        let admitted =
          (force || Atomic.get t.queued < t.config.queue_cap)
          && Sched.submit ~force shard.queue ~key { client; request }
        in
        if admitted then begin
          Atomic.incr t.queued;
          let depth = Sched.length shard.queue in
          Condition.signal shard.qcond;
          Mutex.unlock shard.qmutex;
          Metrics.note_queue_depth t.acceptor (Atomic.get t.queued);
          Metrics.note_queue_depth shard.metrics depth;
          None
        end
        else begin
          let retry = retry_after_ms t shard in
          Mutex.unlock shard.qmutex;
          Metrics.shed shard.metrics;
          Some
            (Proto.error_line ~rid:request.Proto.rid ~retry_after_ms:retry
               Proto.Queue_full
               (Printf.sprintf "queue full (%d queued)" (Atomic.get t.queued)))
        end

(* Synchronous drain: pop-and-execute on the calling domain, rotating
   over shards (and, inside each shard, round-robin over sessions).
   This is the deterministic single-domain path tests and [handle_line]
   use; the transports run the same shards on persistent worker domains
   instead ([start_workers]). *)
let drain_one t =
  let n = Array.length t.shards in
  let rec scan k =
    if k >= n then None
    else begin
      let shard = t.shards.((t.cursor + k) mod n) in
      Mutex.lock shard.qmutex;
      let popped = Sched.pop shard.queue in
      Mutex.unlock shard.qmutex;
      match popped with
      | Some (_key, { client; request }) ->
          Atomic.decr t.queued;
          t.cursor <- (t.cursor + k + 1) mod n;
          Some (client, locked_execute t shard request)
      | None -> scan (k + 1)
    end
  in
  scan 0

let handle_line t line =
  let immediate = submit t ~client:0 line in
  let drained = ref [] in
  let rec drain () =
    match drain_one t with
    | Some (_, reply) ->
        drained := reply :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  (match immediate with Some r -> [ r ] | None -> []) @ List.rev !drained

let request_shutdown t = Atomic.set t.shutdown true

(* --- the worker pool (parallel mode) --- *)

type workers = { group : Util.Parallel.Shards.t }

(* One persistent domain per shard: block on the shard's queue, execute,
   hand the reply to [emit] (which must be thread-safe), repeat; exit
   once [draining] is set and the queue is empty — so a drain completes
   every admitted request.  [inflight] is the worker's "between pop and
   reply" marker, letting [pending] distinguish idle from mid-request. *)
let worker_loop t ~emit i =
  let shard = t.shards.(i) in
  let rec loop () =
    Mutex.lock shard.qmutex;
    let rec next () =
      match Sched.pop shard.queue with
      | Some _ as popped -> popped
      | None ->
          if Atomic.get t.draining then None
          else begin
            Condition.wait shard.qcond shard.qmutex;
            next ()
          end
    in
    match next () with
    | None -> Mutex.unlock shard.qmutex
    | Some (_key, { client; request }) ->
        shard.inflight <- true;
        Mutex.unlock shard.qmutex;
        Atomic.decr t.queued;
        let reply = locked_execute t shard request in
        emit client reply;
        Mutex.lock shard.qmutex;
        shard.inflight <- false;
        Mutex.unlock shard.qmutex;
        loop ()
  in
  loop ()

let start_workers t ~emit =
  Atomic.set t.draining false;
  {
    group =
      Util.Parallel.Shards.create ~n:(Array.length t.shards)
        ~run:(worker_loop t ~emit);
  }

let quiesce t =
  while pending t > 0 do
    Unix.sleepf 0.0002
  done

let stop_workers t w =
  Atomic.set t.draining true;
  Array.iter
    (fun s ->
      Mutex.lock s.qmutex;
      Condition.broadcast s.qcond;
      Mutex.unlock s.qmutex)
    t.shards;
  Util.Parallel.Shards.join w.group;
  Atomic.set t.draining false

(* End-of-life housekeeping shared by the transports: park every live
   session in a final snapshot (so a restart replays nothing), then
   report.  Runs after the queues have drained and the workers (if any)
   have been joined. *)
let finalize t =
  Array.iter (fun s -> Registry.flush_all s.registry) t.shards;
  let sessions =
    Array.fold_left (fun a s -> a + Registry.count s.registry) 0 t.shards
  in
  prerr_string
    (Metrics.render ~queue_depth:(Atomic.get t.queued) ~sessions (metrics t));
  flush stderr

let metrics_dump t =
  let sessions =
    Array.fold_left (fun a s -> a + Registry.count s.registry) 0 t.shards
  in
  Metrics.render ~queue_depth:(Atomic.get t.queued) ~sessions (metrics t)

(* --- transports --- *)

let serve_pipe t ic oc =
  if Array.length t.shards = 1 then begin
    (* One shard: keep the fully synchronous engine — no domains, no
       output interleaving, replies strictly in admission order. *)
    let rec loop () =
      if not (Atomic.get t.shutdown) then
        match input_line ic with
        | exception End_of_file -> ()
        | exception Sys_error _ ->
            (* A signal (SIGTERM handler flipping [shutdown]) can abort
               the blocking read; treat it like EOF and fall through to
               the graceful path. *)
            ()
        | line ->
            List.iter
              (fun reply ->
                output_string oc reply;
                output_char oc '\n')
              (handle_line t line);
            flush oc;
            loop ()
    in
    loop ();
    finalize t
  end
  else begin
    (* Sharded: the acceptor (this domain) only parses, routes and
       writes; the worker domains execute.  Replies from different
       sessions may interleave across the admission order — each
       session's replies stay in its own request order. *)
    let out_mutex = Mutex.create () in
    let emit _client reply =
      Mutex.lock out_mutex;
      output_string oc reply;
      output_char oc '\n';
      flush oc;
      Mutex.unlock out_mutex
    in
    let w = start_workers t ~emit in
    let rec loop () =
      if not (Atomic.get t.shutdown) then
        match input_line ic with
        | exception End_of_file -> ()
        | exception Sys_error _ -> ()
        | line ->
            (match submit t ~client:0 line with
            | Some reply -> emit 0 reply
            | None -> ());
            loop ()
    in
    loop ();
    stop_workers t w;
    finalize t
  end

(* One connected socket client: fd, partial-line input buffer. *)
type client = { fd : Unix.file_descr; buf : Buffer.t }

let serve_socket t ~path =
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let clients : (int, client) Hashtbl.t = Hashtbl.create 8 in
  let next_id = ref 0 in
  let close_client id =
    match Hashtbl.find_opt clients id with
    | None -> ()
    | Some c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        Hashtbl.remove clients id
  in
  let send id line =
    match Hashtbl.find_opt clients id with
    | None -> () (* client went away; its reply is dropped *)
    | Some c -> (
        let data = Bytes.of_string (line ^ "\n") in
        let len = Bytes.length data in
        let rec write off =
          if off < len then
            let n = Unix.write c.fd data off (len - off) in
            write (off + n)
        in
        try write 0 with Unix.Unix_error _ -> close_client id)
  in
  (* Workers push replies here; the acceptor flushes them to the right
     client after each select round.  The wake pipe breaks the select
     wait as soon as a reply lands, so reply latency is not bounded by
     the select timeout. *)
  let replies : (int * string) Queue.t = Queue.create () in
  let rmutex = Mutex.create () in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  let wake_buf = Bytes.create 64 in
  let emit client line =
    Mutex.lock rmutex;
    Queue.push (client, line) replies;
    Mutex.unlock rmutex;
    try ignore (Unix.write wake_w (Bytes.make 1 'w') 0 1)
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let flush_replies () =
    let drained = ref [] in
    Mutex.lock rmutex;
    while not (Queue.is_empty replies) do
      drained := Queue.pop replies :: !drained
    done;
    Mutex.unlock rmutex;
    List.iter (fun (id, line) -> send id line) (List.rev !drained)
  in
  let w = start_workers t ~emit in
  let read_chunk = Bytes.create 4096 in
  let feed id c =
    match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> close_client id
    | n ->
        Buffer.add_subbytes c.buf read_chunk 0 n;
        (* Split completed lines off the front of the buffer. *)
        let data = Buffer.contents c.buf in
        Buffer.clear c.buf;
        let lines = String.split_on_char '\n' data in
        let rec consume = function
          | [] -> ()
          | [ partial ] -> Buffer.add_string c.buf partial
          | line :: rest ->
              (match submit t ~client:id line with
              | Some reply -> send id reply
              | None -> ());
              consume rest
        in
        consume lines
    | exception Unix.Unix_error _ -> close_client id
  in
  let rec loop () =
    let fds =
      listen_fd :: wake_r
      :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) clients []
    in
    (match Unix.select fds [] [] 0.2 with
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              let cfd, _ = Unix.accept listen_fd in
              incr next_id;
              Hashtbl.replace clients !next_id
                { fd = cfd; buf = Buffer.create 256 }
            end
            else if fd = wake_r then
              ignore (Unix.read wake_r wake_buf 0 (Bytes.length wake_buf))
            else
              let found =
                Hashtbl.fold
                  (fun id c acc -> if c.fd = fd then Some (id, c) else acc)
                  clients None
              in
              match found with
              | Some (id, c) -> feed id c
              | None -> ())
          ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    flush_replies ();
    if (not (Atomic.get t.shutdown)) || pending t > 0 then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      stop_workers t w;
      flush_replies ();
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.close wake_r with Unix.Unix_error _ -> ());
      (try Unix.close wake_w with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      finalize t)
    loop
