module J = Util.Json

type entry = {
  name : string;
  session : Router.Session.t;
  mutable gen : int;
  mutable last_used : int;
}

type t = {
  config : Router.Config.t;
  chaos : Router.Chaos.t;
  max_sessions : int;
  idle_ticks : int;
  sessions : (string, entry) Hashtbl.t;
  mutable clock : int;
}

let create ?(config = Router.Config.default) ?(chaos = Router.Chaos.none)
    ?(max_sessions = 64) ?(idle_ticks = 10_000) () =
  {
    config;
    chaos;
    max_sessions = max 1 max_sessions;
    idle_ticks = max 1 idle_ticks;
    sessions = Hashtbl.create 16;
    clock = 0;
  }

let count t = Hashtbl.length t.sessions

let open_session t ~name problem =
  if Hashtbl.mem t.sessions name then Error `Exists
  else if count t >= t.max_sessions then Error (`Cap t.max_sessions)
  else begin
    let session =
      Router.Session.create ~config:t.config ~chaos:t.chaos problem
    in
    let e = { name; session; gen = 0; last_used = t.clock } in
    Hashtbl.replace t.sessions name e;
    Ok e
  end

let find t name =
  match Hashtbl.find_opt t.sessions name with
  | None -> None
  | Some e ->
      e.last_used <- t.clock;
      Some e

let session e = e.session

let generation e = e.gen

let bump e = e.gen <- e.gen + 1

let close t name =
  if Hashtbl.mem t.sessions name then begin
    Hashtbl.remove t.sessions name;
    true
  end
  else false

let names t =
  List.sort String.compare
    (Hashtbl.fold (fun name _ acc -> name :: acc) t.sessions [])

let tick t =
  t.clock <- t.clock + 1;
  let stale =
    Hashtbl.fold
      (fun name e acc ->
        if t.clock - e.last_used > t.idle_ticks then name :: acc else acc)
      t.sessions []
  in
  let stale = List.sort String.compare stale in
  List.iter (Hashtbl.remove t.sessions) stale;
  stale

let snapshot t =
  let row name =
    let e = Hashtbl.find t.sessions name in
    let problem = Router.Session.problem e.session in
    let nets = Netlist.Problem.net_count problem in
    let routed = ref 0 in
    for net = 1 to nets do
      if Router.Session.is_routed e.session ~net then incr routed
    done;
    ( name,
      J.Obj
        [
          ("gen", J.Int e.gen);
          ("nets", J.Int nets);
          ("routed", J.Int !routed);
        ] )
  in
  J.Obj (List.map row (names t))
