module J = Util.Json

type data = { dir : string; snapshot_every : int; fsync : bool }

type entry = {
  name : string;
  mutable session : Router.Session.t;
  mutable gen : int;
  mutable last_used : int;
  mutable wal : Wal.t option;
  mutable last_rid : int;
}

type counters = {
  mutable snapshots_written : int;
  mutable sessions_recovered : int;
  mutable records_replayed : int;
  mutable torn_tails : int;
  mutable recover_failures : int;
  mutable last_error : string option;
}

type t = {
  config : Router.Config.t;
  chaos : Router.Chaos.t;
  max_sessions : int;
  idle_ticks : int;
  data : data option;
  (* Shard-affinity filter: on a sharded server each shard's registry
     recovers only the on-disk sessions it owns, so two shards never
     open the same WAL.  [fun _ -> true] on unsharded registries. *)
  owns : string -> bool;
  sessions : (string, entry) Hashtbl.t;
  counters : counters;
  mutable clock : int;
}

let wal_path data name = Filename.concat data.dir (Wal.file_key name ^ ".wal")

let snap_path data name =
  Filename.concat data.dir (Wal.file_key name ^ ".snap")

let count t = Hashtbl.length t.sessions

let session e = e.session

let generation e = e.gen

let last_rid e = e.last_rid

let is_duplicate e ~rid = rid <> 0 && rid = e.last_rid

let bump e = e.gen <- e.gen + 1

(* --- durability plumbing --- *)

let write_snapshot t e =
  match t.data with
  | None -> ()
  | Some data ->
      let problem, vias, frozen = Router.Session.checkpoint e.session in
      Snapshot.write ~chaos:t.chaos ~fsync:data.fsync ~gen:e.gen
        ~last_rid:e.last_rid ~vias ~frozen problem (snap_path data e.name);
      t.counters.snapshots_written <- t.counters.snapshots_written + 1;
      (match e.wal with Some w -> Wal.truncate w | None -> ())

let commit t e ~rid op =
  bump e;
  if rid <> 0 then e.last_rid <- rid;
  match (t.data, e.wal) with
  | Some data, Some wal ->
      Wal.append wal { Wal.gen = e.gen; rid; req = Proto.op_to_json op };
      if Wal.records wal >= data.snapshot_every then write_snapshot t e
  | _ -> ()

(* Replay one WAL record through the normal session mutation path.  A
   committed [route] replays with an explicitly unlimited budget: the
   live request finished inside whatever budget it ran under, and the
   engine is deterministic given (state, config, seed), so the
   un-budgeted rerun reconverges on the same layout. *)
let apply_op session (op : Proto.op) =
  let resolve target =
    match target with
    | Proto.Net_id id -> Ok id
    | Proto.Net_name name -> (
        match Router.Session.net_id session name with
        | Some id -> Ok id
        | None -> Error (Printf.sprintf "unknown net %S" name))
  in
  let on_net target f =
    Result.bind (resolve target) (fun net -> f session ~net)
  in
  match op with
  | Proto.Route _ -> (
      match
        Router.Session.try_route ~budget:(Router.Budget.unlimited ()) session
      with
      | Ok _ -> Ok ()
      | Error reason -> Error (Router.Budget.reason_to_string reason))
  | Proto.Add_net { name; pins } ->
      Result.map
        (fun (_ : int) -> ())
        (Router.Session.add_net session ~name pins)
  | Proto.Remove_net target -> on_net target Router.Session.remove_net
  | Proto.Rip target -> on_net target Router.Session.rip
  | Proto.Freeze target -> on_net target Router.Session.freeze
  | Proto.Thaw target -> on_net target Router.Session.thaw
  | Proto.Refine { max_passes } ->
      let (_ : Router.Improve.stats) =
        Router.Session.refine ?max_passes session
      in
      Ok ()
  | Proto.Place { seed } -> (
      let problem = Router.Session.problem session in
      if not (Netlist.Problem.has_insts problem) then
        Error "place: the problem has no placement section"
      else
        let seed =
          match seed with
          | Some s -> s
          | None -> (Router.Session.config session).Router.Config.seed
        in
        match Place.place ~seed problem with
        | Error e -> Error e
        | Ok (placed, _) -> (
            match Netlist.Problem.realize placed with
            | exception Invalid_argument msg -> Error msg
            | realized ->
                Router.Session.install session ~problem:realized
                  ~grid:(Netlist.Problem.instantiate realized)))
  | Proto.Flow_run { seed; tile; slo_ms = _ } -> (
      (* Committed flows replay un-budgeted, like [Route]: the live
         request only commits non-degraded results, and the pipeline is
         deterministic given (problem, config, seed). *)
      let config = Router.Session.config session in
      let seed =
        match seed with Some s -> s | None -> config.Router.Config.seed
      in
      match Flow.run ~config ~seed ?tile (Router.Session.problem session) with
      | Error e -> Error e
      | exception Invalid_argument msg -> Error msg
      | Ok f ->
          Router.Session.install session ~problem:f.Flow.realized
            ~grid:f.Flow.result.Router.Engine.grid)
  | Proto.Open _ | Proto.Groute _ | Proto.Analyze _ | Proto.Verify
  | Proto.Render | Proto.Stats | Proto.Close | Proto.Shutdown ->
      Error (Printf.sprintf "op %S cannot appear mid-log" (Proto.op_name op))

let provenance wal idx = Printf.sprintf "wal:%s#%d" (Wal.path wal) idx

(* Rebuild one session from its on-disk state: newest valid snapshot if
   any, then the WAL tail (records with [gen] beyond the snapshot's —
   the gen filter makes a crash between snapshot rename and WAL
   truncation harmless, the overlapping records just skip).  Without a
   snapshot the WAL must start with its [open] record. *)
let recover_session t data name =
  let wal, records, torn =
    Wal.open_existing ~chaos:t.chaos ~fsync:data.fsync (wal_path data name)
  in
  if torn then t.counters.torn_tails <- t.counters.torn_tails + 1;
  let close_and_fail msg =
    Wal.close wal;
    Error msg
  in
  let base =
    match Snapshot.read (snap_path data name) with
    | Ok info ->
        let session =
          Router.Session.of_checkpoint ~config:t.config ~chaos:t.chaos
            ~vias:info.Snapshot.vias ~frozen:info.Snapshot.frozen
            info.Snapshot.problem
        in
        Ok (session, info.Snapshot.gen, info.Snapshot.last_rid)
    | Error _ -> (
        (* No usable snapshot: the log must open the session itself. *)
        match records with
        | { Wal.req; rid; _ } :: _ -> (
            match Proto.op_of_json req with
            | Ok (Proto.Open { problem_text = Some text; _ }) -> (
                match
                  Netlist.Parse.of_string ~src:(provenance wal 0) text
                with
                | Ok problem ->
                    Ok
                      ( Router.Session.create ~config:t.config ~chaos:t.chaos
                          problem,
                        0,
                        rid )
                | Error e -> Error (Netlist.Parse.error_to_string e))
            | Ok _ ->
                Error
                  (Printf.sprintf "%s: log does not start with an open record"
                     (provenance wal 0))
            | Error msg ->
                Error (Printf.sprintf "%s: %s" (provenance wal 0) msg))
        | [] -> Error "no snapshot and empty log")
  in
  match base with
  | Error msg -> close_and_fail msg
  | Ok (session, base_gen, base_rid) -> (
      let replay () =
        List.fold_left
          (fun acc (idx, { Wal.gen; rid; req }) ->
            Result.bind acc (fun (g, r) ->
                if gen <= base_gen then Ok (g, r)
                else
                  match Proto.op_of_json req with
                  | Error msg ->
                      Error (Printf.sprintf "%s: %s" (provenance wal idx) msg)
                  | Ok op -> (
                      match apply_op session op with
                      | Ok () ->
                          t.counters.records_replayed <-
                            t.counters.records_replayed + 1;
                          Ok (gen, if rid <> 0 then rid else r)
                      | Error msg ->
                          Error
                            (Printf.sprintf "%s: %s" (provenance wal idx) msg)
                      )))
          (Ok (base_gen, base_rid))
          (List.mapi (fun i r -> (i, r)) records)
      in
      match Router.Chaos.with_paused t.chaos replay with
      | Error msg -> close_and_fail msg
      | Ok (gen, rid) ->
          let e =
            {
              name;
              session;
              gen;
              last_used = t.clock;
              wal = Some wal;
              last_rid = rid;
            }
          in
          Hashtbl.replace t.sessions name e;
          t.counters.sessions_recovered <- t.counters.sessions_recovered + 1;
          Ok e)

let has_disk_state data name =
  Sys.file_exists (wal_path data name) || Sys.file_exists (snap_path data name)

(* Reattach a session from disk, respecting the session cap.  Failures
   count in [recover_failures] and leave the files untouched for post
   mortem inspection. *)
let maybe_recover t name =
  match t.data with
  | None -> None
  | Some data ->
      if
        (not (t.owns name))
        || (not (has_disk_state data name))
        || count t >= t.max_sessions
      then None
      else (
        match recover_session t data name with
        | Ok e -> Some e
        | Error msg ->
            t.counters.recover_failures <- t.counters.recover_failures + 1;
            t.counters.last_error <- Some msg;
            None)

let recover_all t =
  match t.data with
  | None -> 0
  | Some data ->
      let keys = Hashtbl.create 16 in
      Array.iter
        (fun file ->
          match Filename.chop_suffix_opt file ~suffix:".wal" with
          | Some key -> Hashtbl.replace keys key ()
          | None -> (
              match Filename.chop_suffix_opt file ~suffix:".snap" with
              | Some key -> Hashtbl.replace keys key ()
              | None -> ()))
        (try Sys.readdir data.dir with Sys_error _ -> [||]);
      let names =
        List.sort String.compare
          (Hashtbl.fold
             (fun key () acc ->
               match Wal.key_name key with
               | Some name when t.owns name -> name :: acc
               | Some _ | None -> acc)
             keys [])
      in
      List.fold_left
        (fun recovered name ->
          if Hashtbl.mem t.sessions name then recovered
          else
            match maybe_recover t name with
            | Some _ -> recovered + 1
            | None -> recovered)
        0 names

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(config = Router.Config.default) ?(chaos = Router.Chaos.none)
    ?(max_sessions = 64) ?(idle_ticks = 10_000) ?(owns = fun _ -> true)
    ?data () =
  (match data with Some d -> mkdir_p d.dir | None -> ());
  let t =
    {
      config;
      chaos;
      max_sessions = max 1 max_sessions;
      idle_ticks = max 1 idle_ticks;
      data;
      owns;
      sessions = Hashtbl.create 16;
      counters =
        {
          snapshots_written = 0;
          sessions_recovered = 0;
          records_replayed = 0;
          torn_tails = 0;
          recover_failures = 0;
          last_error = None;
        };
      clock = 0;
    }
  in
  let (_ : int) = recover_all t in
  t

let open_session t ~name ?(rid = 0) problem =
  if Hashtbl.mem t.sessions name then Error `Exists
  else
    match maybe_recover t name with
    | Some _ -> Error `Exists
    | None ->
        if count t >= t.max_sessions then Error (`Cap t.max_sessions)
        else begin
          let session =
            Router.Session.create ~config:t.config ~chaos:t.chaos problem
          in
          let wal =
            match t.data with
            | None -> None
            | Some data ->
                (* A fresh open supersedes whatever an earlier life of
                   this name left behind. *)
                (try Sys.remove (snap_path data name)
                 with Sys_error _ -> ());
                let w =
                  Wal.create ~chaos:t.chaos ~fsync:data.fsync
                    (wal_path data name)
                in
                Wal.append w
                  {
                    Wal.gen = 0;
                    rid;
                    req =
                      Proto.op_to_json
                        (Proto.Open
                           {
                             (* Canonical text, not the client's bytes or a
                                file path: the file may change or vanish
                                before recovery replays this record. *)
                             problem_text =
                               Some (Netlist.Parse.to_string problem);
                             file = None;
                           });
                  };
                Some w
          in
          let e =
            {
              name;
              session;
              gen = 0;
              last_used = t.clock;
              wal;
              last_rid = rid;
            }
          in
          Hashtbl.replace t.sessions name e;
          Ok e
        end

let find t name =
  match Hashtbl.find_opt t.sessions name with
  | None -> (
      match maybe_recover t name with
      | None -> None
      | Some e ->
          e.last_used <- t.clock;
          Some e)
  | Some e ->
      e.last_used <- t.clock;
      Some e

let close t name =
  match Hashtbl.find_opt t.sessions name with
  | None -> false
  | Some e ->
      (match e.wal with Some w -> Wal.close w | None -> ());
      (match t.data with
      | Some data ->
          (try Sys.remove (wal_path data name) with Sys_error _ -> ());
          (try Sys.remove (snap_path data name) with Sys_error _ -> ())
      | None -> ());
      Hashtbl.remove t.sessions name;
      true

let names t =
  List.sort String.compare
    (Hashtbl.fold (fun name _ acc -> name :: acc) t.sessions [])

(* Park a session on disk: final snapshot (compacting the WAL away),
   then drop the in-memory half.  [find] resurrects it on demand. *)
let park t e =
  write_snapshot t e;
  (match e.wal with Some w -> Wal.close w | None -> ());
  Hashtbl.remove t.sessions e.name

let tick t =
  t.clock <- t.clock + 1;
  let stale =
    Hashtbl.fold
      (fun name e acc ->
        if t.clock - e.last_used > t.idle_ticks then (name, e) :: acc else acc)
      t.sessions []
  in
  let stale =
    List.sort (fun (a, _) (b, _) -> String.compare a b) stale
  in
  List.iter
    (fun (_, e) ->
      match t.data with
      | Some _ -> park t e
      | None -> Hashtbl.remove t.sessions e.name)
    stale;
  List.map fst stale

let flush_all t =
  match t.data with
  | None -> ()
  | Some _ ->
      List.iter
        (fun name ->
          match Hashtbl.find_opt t.sessions name with
          | Some e -> write_snapshot t e
          | None -> ())
        (names t)

let durable t = t.data <> None

let durability_json t =
  let c = t.counters in
  J.Obj
    [
      ("durable", J.Bool (durable t));
      ("snapshots_written", J.Int c.snapshots_written);
      ("sessions_recovered", J.Int c.sessions_recovered);
      ("records_replayed", J.Int c.records_replayed);
      ("torn_tails", J.Int c.torn_tails);
      ("recover_failures", J.Int c.recover_failures);
      ( "last_error",
        match c.last_error with None -> J.Null | Some m -> J.String m );
    ]

let snapshot t =
  let row name =
    let e = Hashtbl.find t.sessions name in
    let problem = Router.Session.problem e.session in
    let nets = Netlist.Problem.net_count problem in
    let routed = ref 0 in
    for net = 1 to nets do
      if Router.Session.is_routed e.session ~net then incr routed
    done;
    ( name,
      J.Obj
        [
          ("gen", J.Int e.gen);
          ("nets", J.Int nets);
          ("routed", J.Int !routed);
        ] )
  in
  J.Obj (List.map row (names t))
