module J = Util.Json

(* Power-of-two microsecond buckets: bucket [i] counts latencies in
   [2^i, 2^(i+1)) µs.  Bucket 0 also absorbs sub-microsecond samples;
   the last bucket absorbs everything from ~17.9 minutes up. *)
let buckets = 31

let bucket_of_latency s =
  let us = int_of_float (s *. 1e6) in
  if us <= 1 then 0
  else
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    min (buckets - 1) (log2 us 0)

(* Upper bound of bucket [i], in milliseconds. *)
let bucket_upper_ms i = Float.ldexp 1.0 (i + 1) /. 1000.0

type kind_stats = {
  mutable count : int;
  mutable errors : int;
  mutable sum_s : float;
  mutable max_s : float;
  hist : int array;
}

type t = {
  kinds : (string, kind_stats) Hashtbl.t;
  mutable total : int;
  mutable total_errors : int;
  mutable sheds : int;
  mutable budget_trips : int;
  mutable faults : int;
  mutable evictions : int;
  mutable max_queue_depth : int;
  (* Incremental-cache effectiveness across every refine request served:
     net-visits skipped (certificate or lower-bound), certificates
     invalidated by writes, and dirty-region field repairs. *)
  mutable refine_skips : int;
  mutable refine_stale : int;
  mutable refine_repairs : int;
  (* Guided-search effectiveness across every flow request served. *)
  mutable flow_guided : int;
  mutable flow_hits : int;
  mutable flow_fallbacks : int;
}

let blank_kind () =
  { count = 0; errors = 0; sum_s = 0.0; max_s = 0.0;
    hist = Array.make buckets 0 }

let create ?(kinds = []) () =
  let table = Hashtbl.create 16 in
  List.iter (fun kind -> Hashtbl.replace table kind (blank_kind ())) kinds;
  {
    kinds = table;
    total = 0;
    total_errors = 0;
    sheds = 0;
    budget_trips = 0;
    faults = 0;
    evictions = 0;
    max_queue_depth = 0;
    refine_skips = 0;
    refine_stale = 0;
    refine_repairs = 0;
    flow_guided = 0;
    flow_hits = 0;
    flow_fallbacks = 0;
  }

let kind_stats t kind =
  match Hashtbl.find_opt t.kinds kind with
  | Some ks -> ks
  | None ->
      let ks = blank_kind () in
      Hashtbl.replace t.kinds kind ks;
      ks

let record t ~kind ~ok ~latency_s =
  let ks = kind_stats t kind in
  ks.count <- ks.count + 1;
  if not ok then ks.errors <- ks.errors + 1;
  ks.sum_s <- ks.sum_s +. latency_s;
  if latency_s > ks.max_s then ks.max_s <- latency_s;
  let b = bucket_of_latency latency_s in
  ks.hist.(b) <- ks.hist.(b) + 1;
  t.total <- t.total + 1;
  if not ok then t.total_errors <- t.total_errors + 1

let shed t = t.sheds <- t.sheds + 1

let budget_trip t = t.budget_trips <- t.budget_trips + 1

let fault t = t.faults <- t.faults + 1

let evicted t n = t.evictions <- t.evictions + n

let refine_cache t ~skips ~stale ~repairs =
  t.refine_skips <- t.refine_skips + skips;
  t.refine_stale <- t.refine_stale + stale;
  t.refine_repairs <- t.refine_repairs + repairs

let flow_guides t ~guided ~hits ~fallbacks =
  t.flow_guided <- t.flow_guided + guided;
  t.flow_hits <- t.flow_hits + hits;
  t.flow_fallbacks <- t.flow_fallbacks + fallbacks

let note_queue_depth t d =
  if d > t.max_queue_depth then t.max_queue_depth <- d

let shed_count t = t.sheds

let requests t = t.total

(* Upper bound of the bucket holding the q-quantile sample. *)
let quantile_ms ks q =
  if ks.count = 0 then 0.0
  else begin
    let target =
      max 1 (int_of_float (Float.round (q *. float_of_int ks.count)))
    in
    let seen = ref 0 and result = ref (bucket_upper_ms (buckets - 1)) in
    (try
       for i = 0 to buckets - 1 do
         seen := !seen + ks.hist.(i);
         if !seen >= target then begin
           result := bucket_upper_ms i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

(* Pre-seeded kinds that never saw a request are invisible in snapshots
   and renders, so seeding the table (for lock-free sharing) does not
   change any output. *)
let sorted_kinds t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold
       (fun k v acc -> if v.count > 0 then (k, v) :: acc else acc)
       t.kinds [])

(* Fold the per-domain stores of a sharded server into one fresh store.
   Reads are plain field loads with no locking: every counter is written
   by exactly one domain (see the .mli ownership contract), so a merge
   racing live execution sees each field at some recent value — fine for
   telemetry, and exact once the writers have quiesced (shutdown). *)
let merge parts =
  let m = create () in
  List.iter
    (fun p ->
      m.total <- m.total + p.total;
      m.total_errors <- m.total_errors + p.total_errors;
      m.sheds <- m.sheds + p.sheds;
      m.budget_trips <- m.budget_trips + p.budget_trips;
      m.faults <- m.faults + p.faults;
      m.evictions <- m.evictions + p.evictions;
      if p.max_queue_depth > m.max_queue_depth then
        m.max_queue_depth <- p.max_queue_depth;
      m.refine_skips <- m.refine_skips + p.refine_skips;
      m.refine_stale <- m.refine_stale + p.refine_stale;
      m.refine_repairs <- m.refine_repairs + p.refine_repairs;
      m.flow_guided <- m.flow_guided + p.flow_guided;
      m.flow_hits <- m.flow_hits + p.flow_hits;
      m.flow_fallbacks <- m.flow_fallbacks + p.flow_fallbacks;
      Hashtbl.iter
        (fun kind ks ->
          if ks.count > 0 then begin
            let acc = kind_stats m kind in
            acc.count <- acc.count + ks.count;
            acc.errors <- acc.errors + ks.errors;
            acc.sum_s <- acc.sum_s +. ks.sum_s;
            if ks.max_s > acc.max_s then acc.max_s <- ks.max_s;
            Array.iteri
              (fun i n -> acc.hist.(i) <- acc.hist.(i) + n)
              ks.hist
          end)
        p.kinds)
    parts;
  m

let snapshot ?(queue_depth = 0) ?(sessions = 0) t =
  let kind_row (name, ks) =
    ( name,
      J.Obj
        [
          ("count", J.Int ks.count);
          ("errors", J.Int ks.errors);
          ("p50_ms", J.Float (quantile_ms ks 0.50));
          ("p95_ms", J.Float (quantile_ms ks 0.95));
          ("p99_ms", J.Float (quantile_ms ks 0.99));
          ("max_ms", J.Float (ks.max_s *. 1000.0));
        ] )
  in
  J.Obj
    [
      ("requests", J.Int t.total);
      ("errors", J.Int t.total_errors);
      ("shed", J.Int t.sheds);
      ("budget_trips", J.Int t.budget_trips);
      ("faults", J.Int t.faults);
      ("evictions", J.Int t.evictions);
      ("sessions", J.Int sessions);
      ("queue_depth", J.Int queue_depth);
      ("max_queue_depth", J.Int t.max_queue_depth);
      ( "refine_cache",
        J.Obj
          [
            ("skips", J.Int t.refine_skips);
            ("stale", J.Int t.refine_stale);
            ("repairs", J.Int t.refine_repairs);
          ] );
      ( "flow_guides",
        J.Obj
          [
            ("guided", J.Int t.flow_guided);
            ("hits", J.Int t.flow_hits);
            ("fallbacks", J.Int t.flow_fallbacks);
          ] );
      ("by_kind", J.Obj (List.map kind_row (sorted_kinds t)));
    ]

let render ?(queue_depth = 0) ?(sessions = 0) t =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "service metrics:\n";
  addf
    "  requests %d  errors %d  shed %d  budget-trips %d  faults %d  \
     evictions %d\n"
    t.total t.total_errors t.sheds t.budget_trips t.faults t.evictions;
  addf "  sessions %d  queue-depth %d (max %d)\n" sessions queue_depth
    t.max_queue_depth;
  if t.refine_skips + t.refine_stale + t.refine_repairs > 0 then
    addf "  refine-cache skips %d  stale %d  repairs %d\n" t.refine_skips
      t.refine_stale t.refine_repairs;
  if t.flow_guided + t.flow_hits + t.flow_fallbacks > 0 then
    addf "  flow-guides guided %d  hits %d  fallbacks %d\n" t.flow_guided
      t.flow_hits t.flow_fallbacks;
  List.iter
    (fun (name, ks) ->
      addf "  %-12s count %-6d errors %-4d p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n"
        name ks.count ks.errors (quantile_ms ks 0.50) (quantile_ms ks 0.95)
        (quantile_ms ks 0.99) (ks.max_s *. 1000.0))
    (sorted_kinds t);
  Buffer.contents buf
