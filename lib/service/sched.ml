type 'a t = {
  cap : int;
  per_key : (string, 'a Queue.t) Hashtbl.t;
  ring : string Queue.t;  (* rotation of keys with pending requests *)
  mutable length : int;
}

let create ~cap () =
  { cap = max 1 cap; per_key = Hashtbl.create 8; ring = Queue.create ();
    length = 0 }

let cap t = t.cap

let length t = t.length

(* [force] bypasses the cap: read-only requests are admitted even into
   a saturated queue (they are cheap and never journalled, so a shard
   drowning in mutations still answers triage probes). *)
let submit ?(force = false) t ~key item =
  if (not force) && t.length >= t.cap then false
  else begin
    (match Hashtbl.find_opt t.per_key key with
    | Some q -> Queue.push item q
    | None ->
        let q = Queue.create () in
        Queue.push item q;
        Hashtbl.replace t.per_key key q;
        Queue.push key t.ring);
    t.length <- t.length + 1;
    true
  end

let pop t =
  if t.length = 0 then None
  else begin
    (* The ring only ever holds keys with a live queue, so this loop pops
       at most one stale entry per vanished key and terminates. *)
    let rec next () =
      let key = Queue.pop t.ring in
      match Hashtbl.find_opt t.per_key key with
      | None -> next ()
      | Some q ->
          let item = Queue.pop q in
          t.length <- t.length - 1;
          if Queue.is_empty q then Hashtbl.remove t.per_key key
          else Queue.push key t.ring;
          Some (key, item)
    in
    next ()
  end
