(** Seeded simulated-annealing macro placement.

    The placer assigns locations to the free instances of a problem's
    placement section (fixed instances never move) so that the realized
    problem is routable: footprints stay inside the region, avoid
    obstructions, pre-wiring, and existing pins, and no two instances
    conflict (footprint overlap, pin-on-footprint, or coincident pin
    cells).  Legality against the static geometry is precomputed once per
    instance as a legal-anchor table; conflicts between instances are
    checked per move.

    The objective is total half-perimeter wirelength over all nets (fixed
    pins and instance pins together) plus a congestion penalty: net
    bounding boxes are spread over square bins and every bin pays
    quadratically for coverage beyond its capacity.  Moves are
    distance-limited displacements to legal anchors and swaps of
    equal-footprint instances, both with exact undo; the distance limit
    and temperature shrink together on a geometric cooling schedule.

    Everything is driven by a {!Util.Prng} stream, so equal seeds yield
    equal placements.  An optional {!Router.Budget} bounds the run: when
    it trips, annealing stops and the best placement found so far is
    returned ([degraded] is set) — the placer never raises on budget
    pressure. *)

type stats = {
  insts : int;  (** instances in the problem *)
  free_insts : int;  (** instances the annealer may move *)
  moves : int;  (** moves attempted *)
  accepted : int;  (** moves accepted (uphill included) *)
  sweeps : int;  (** temperature steps executed *)
  initial_cost : int;  (** objective of the initial placement *)
  final_cost : int;  (** objective of the returned placement *)
  degraded : bool;  (** the budget tripped before the schedule ended *)
}

val place :
  ?seed:int ->
  ?budget:Router.Budget.t ->
  ?bin:int ->
  ?bin_capacity:int ->
  ?congestion_weight:int ->
  ?spacing:int ->
  ?sweeps:int ->
  Netlist.Problem.t ->
  (Netlist.Problem.t * stats, string) Stdlib.result
(** [place p] returns a copy of [p] with every instance placed, plus run
    statistics.  Instances that already have a location start there (and
    free ones may still be moved); unplaced ones are first seeded
    greedily onto the earliest legal anchor.  Problems without instances
    are returned unchanged.  [bin] (default 8) is the congestion bin
    size, [bin_capacity] (default 6) the per-bin coverage allowance,
    [congestion_weight] (default 4) the penalty multiplier, [spacing]
    (default 3) the minimum free-cell gap kept between any two
    footprints so routing alleys survive, [sweeps] (default 128) the
    length of the cooling schedule.  Errors (rather
    than raising) when some instance has no conflict-free legal
    anchor. *)

(** Exposed for the property tests: the incremental objective state with
    single-move apply/undo.  Not a stable API. *)
module Internal : sig
  type state

  val init :
    ?bin:int -> ?bin_capacity:int -> ?congestion_weight:int ->
    ?spacing:int -> Netlist.Problem.t -> state
  (** Requires a fully-placed problem.  @raise Invalid_argument
      otherwise. *)

  val cost : state -> int
  (** Current incrementally-maintained objective. *)

  val recompute_cost : state -> int
  (** Objective recomputed from scratch at the current locations. *)

  val random_move : state -> Util.Prng.t -> range:int -> bool
  (** Attempt one random displace/swap; [true] iff it was applied (the
      state then holds the move for {!undo}). *)

  val undo : state -> unit
  (** Revert the last applied move exactly.  No-op if none pending. *)
end
