type stats = {
  insts : int;
  free_insts : int;
  moves : int;
  accepted : int;
  sweeps : int;
  initial_cost : int;
  final_cost : int;
  degraded : bool;
}

(* --- incremental objective state ------------------------------------- *)

module Internal = struct
  type undo_net = { un_net : int; un_bbox : Geom.Rect.t option; un_hpwl : int }

  type undo_rec = {
    u_insts : (int * int * int) list;  (** inst, old x, old y *)
    u_nets : undo_net list;
    u_cost : int;
  }

  type state = {
    problem : Netlist.Problem.t;
    names : string array;
    fw : int array;  (** footprint widths *)
    fh : int array;
    fixed : bool array;
    xs : int array;  (** current anchors (lower-left origins) *)
    ys : int array;
    ipins : (int * int * int) array array;
        (** per inst: (net index, dx, dy) *)
    (* Static legality: anchors where the footprint and every pin avoid
       the region boundary, obstructions, pre-wiring and fixed problem
       pins.  [legal.(i)] is indexed ((y - lo_y) * span_x + (x - lo_x));
       an empty table means the instance has no legal anchor at all. *)
    legal : bool array array;
    lo_x : int array;
    hi_x : int array;
    lo_y : int array;
    hi_y : int array;
    net_fixed : (int * int) array array;  (** per net: fixed pin coords *)
    net_insts : (int * int * int) array array;
        (** per net: (inst, dx, dy) *)
    inst_nets : int array array;  (** per inst: nets it pins, dedup *)
    bbox : Geom.Rect.t option array;
    hpwl : int array;
    bin : int;
    bins_x : int;
    bins_y : int;
    cap : int;
    cw : int;
    spacing : int;  (** min free cells kept between any two footprints *)
    cover : int array;
    mutable cost : int;
    mutable last : undo_rec option;
  }

  let pen st c = if c > st.cap then (c - st.cap) * (c - st.cap) else 0

  let bin_range st lo hi =
    (lo / st.bin, hi / st.bin)

  (* Add [d] to the coverage of every bin the box overlaps, returning the
     congestion-cost delta. *)
  let adjust_cover st (r : Geom.Rect.t) d =
    let bx0, bx1 = bin_range st r.Geom.Rect.x0 r.Geom.Rect.x1 in
    let by0, by1 = bin_range st r.Geom.Rect.y0 r.Geom.Rect.y1 in
    let delta = ref 0 in
    for by = by0 to by1 do
      for bx = bx0 to bx1 do
        let i = (by * st.bins_x) + bx in
        let c = st.cover.(i) in
        st.cover.(i) <- c + d;
        delta := !delta + pen st (c + d) - pen st c
      done
    done;
    st.cw * !delta

  let net_geometry st n =
    let x0 = ref max_int and y0 = ref max_int in
    let x1 = ref min_int and y1 = ref min_int in
    let add x y =
      if x < !x0 then x0 := x;
      if x > !x1 then x1 := x;
      if y < !y0 then y0 := y;
      if y > !y1 then y1 := y
    in
    Array.iter (fun (x, y) -> add x y) st.net_fixed.(n);
    Array.iter
      (fun (i, dx, dy) -> add (st.xs.(i) + dx) (st.ys.(i) + dy))
      st.net_insts.(n);
    if !x1 < !x0 then None
    else Some (Geom.Rect.make !x0 !y0 !x1 !y1)

  (* Re-derive one net's bbox from current locations and fold the cover
     and hpwl deltas into [cost]. *)
  let update_net st n =
    let nb = net_geometry st n in
    if nb <> st.bbox.(n) then begin
      (match st.bbox.(n) with
      | Some r -> st.cost <- st.cost + adjust_cover st r (-1)
      | None -> ());
      (match nb with
      | Some r -> st.cost <- st.cost + adjust_cover st r 1
      | None -> ());
      let h = match nb with Some r -> Geom.Rect.half_perimeter r | None -> 0 in
      st.cost <- st.cost + h - st.hpwl.(n);
      st.bbox.(n) <- nb;
      st.hpwl.(n) <- h
    end

  let cost st = st.cost

  let recompute_cost st =
    let total = ref 0 in
    let cover = Array.make (Array.length st.cover) 0 in
    Array.iteri
      (fun n _ ->
        match net_geometry st n with
        | None -> ()
        | Some r ->
            total := !total + Geom.Rect.half_perimeter r;
            let bx0, bx1 = bin_range st r.Geom.Rect.x0 r.Geom.Rect.x1 in
            let by0, by1 = bin_range st r.Geom.Rect.y0 r.Geom.Rect.y1 in
            for by = by0 to by1 do
              for bx = bx0 to bx1 do
                let i = (by * st.bins_x) + bx in
                cover.(i) <- cover.(i) + 1
              done
            done)
      st.bbox;
    Array.iter (fun c -> total := !total + (st.cw * pen st c)) cover;
    !total

  (* --- static legality tables --------------------------------------- *)

  let build_tables problem (insts : Netlist.Problem.inst array) ipins =
    let w = problem.Netlist.Problem.width
    and h = problem.Netlist.Problem.height in
    (* Planar cells a footprint may not cover: obstructions (any layer,
       since footprints block both), problem pins, pre-wiring. *)
    let blocked = Array.make (w * h) false in
    let mark x y = if x >= 0 && x < w && y >= 0 && y < h then
        blocked.((y * w) + x) <- true in
    List.iter
      (fun (o : Netlist.Problem.obstruction) ->
        Geom.Rect.iter o.Netlist.Problem.obs_rect mark)
      problem.Netlist.Problem.obstructions;
    List.iter (fun (_, (p : Netlist.Net.pin)) -> mark p.Netlist.Net.x p.Netlist.Net.y)
      (Netlist.Problem.pin_cells problem);
    List.iter
      (fun (pw : Netlist.Problem.prewire) ->
        List.iter (fun (_, x, y) -> mark x y) pw.Netlist.Problem.pre_cells)
      problem.Netlist.Problem.prewires;
    (* Prefix sums for O(1) footprint-emptiness tests. *)
    let psum = Array.make ((w + 1) * (h + 1)) 0 in
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        psum.(((y + 1) * (w + 1)) + x + 1) <-
          psum.((y * (w + 1)) + x + 1)
          + psum.(((y + 1) * (w + 1)) + x)
          - psum.((y * (w + 1)) + x)
          + if blocked.((y * w) + x) then 1 else 0
      done
    done;
    let rect_clear x0 y0 x1 y1 =
      psum.(((y1 + 1) * (w + 1)) + x1 + 1)
      - psum.((y0 * (w + 1)) + x1 + 1)
      - psum.(((y1 + 1) * (w + 1)) + x0)
      + psum.((y0 * (w + 1)) + x0)
      = 0
    in
    let pin_ok x y = x >= 0 && x < w && y >= 0 && y < h
                     && not blocked.((y * w) + x) in
    let n = Array.length insts in
    let legal = Array.make n [||] in
    let lo_x = Array.make n 0 and hi_x = Array.make n (-1) in
    let lo_y = Array.make n 0 and hi_y = Array.make n (-1) in
    Array.iteri
      (fun i (inst : Netlist.Problem.inst) ->
        let iw = inst.Netlist.Problem.inst_w
        and ih = inst.Netlist.Problem.inst_h in
        (* Anchor bounds keeping footprint and every pin in the region. *)
        let lx = ref 0 and hx = ref (w - iw) in
        let ly = ref 0 and hy = ref (h - ih) in
        Array.iter
          (fun (_, dx, dy) ->
            if dx < 0 then lx := max !lx (-dx)
            else if dx >= iw then hx := min !hx (w - 1 - dx);
            if dy < 0 then ly := max !ly (-dy)
            else if dy >= ih then hy := min !hy (h - 1 - dy))
          ipins.(i);
        if !hx >= !lx && !hy >= !ly then begin
          lo_x.(i) <- !lx;
          hi_x.(i) <- !hx;
          lo_y.(i) <- !ly;
          hi_y.(i) <- !hy;
          let span = !hx - !lx + 1 in
          let t = Array.make (span * (!hy - !ly + 1)) false in
          for y = !ly to !hy do
            for x = !lx to !hx do
              let ok =
                rect_clear x y (x + iw - 1) (y + ih - 1)
                && Array.for_all
                     (fun (_, dx, dy) -> pin_ok (x + dx) (y + dy))
                     ipins.(i)
              in
              t.(((y - !ly) * span) + (x - !lx)) <- ok
            done
          done;
          legal.(i) <- t
        end)
      insts;
    (legal, lo_x, hi_x, lo_y, hi_y)

  let statically_legal st i x y =
    x >= st.lo_x.(i) && x <= st.hi_x.(i) && y >= st.lo_y.(i)
    && y <= st.hi_y.(i)
    && st.legal.(i).(((y - st.lo_y.(i)) * (st.hi_x.(i) - st.lo_x.(i) + 1))
                     + (x - st.lo_x.(i)))

  (* Conflict test of inst [i] at (x, y) against every other placed
     instance: footprints closer than [spacing] free cells (routing
     alleys must survive), a pin landing on a footprint (either
     direction), or coincident pin cells.  Pin conflicts ignore the
     layer, which is conservative but never admits a placement that
     [realize] would reject. *)
  let conflict_free st ?(skip = -1) i x y =
    let n = Array.length st.xs in
    let ri = Geom.Rect.make x y (x + st.fw.(i) - 1) (y + st.fh.(i) - 1) in
    let ok = ref true in
    let j = ref 0 in
    while !ok && !j < n do
      if !j <> i && !j <> skip && st.xs.(!j) >= 0 then begin
        let rj =
          Geom.Rect.make st.xs.(!j) st.ys.(!j)
            (st.xs.(!j) + st.fw.(!j) - 1)
            (st.ys.(!j) + st.fh.(!j) - 1)
        in
        if Geom.Rect.overlap (Geom.Rect.inflate ri st.spacing) rj then
          ok := false
        else begin
          Array.iter
            (fun (_, dx, dy) ->
              if Geom.Rect.mem rj (x + dx) (y + dy) then ok := false)
            st.ipins.(i);
          Array.iter
            (fun (_, dx, dy) ->
              let px = st.xs.(!j) + dx and py = st.ys.(!j) + dy in
              if Geom.Rect.mem ri px py then ok := false
              else
                Array.iter
                  (fun (_, idx, idy) ->
                    if x + idx = px && y + idy = py then ok := false)
                  st.ipins.(i))
            st.ipins.(!j)
        end
      end;
      incr j
    done;
    !ok

  (* --- construction -------------------------------------------------- *)

  let make_state ?(bin = 8) ?(bin_capacity = 6) ?(congestion_weight = 4)
      ?(spacing = 3) problem =
    let insts = Array.of_list problem.Netlist.Problem.insts in
    let nets = Array.length problem.Netlist.Problem.nets in
    let ipins =
      Array.map
        (fun (inst : Netlist.Problem.inst) ->
          Array.of_list
            (List.map
               (fun (p : Netlist.Problem.ipin) ->
                 (p.Netlist.Problem.ip_net - 1, p.Netlist.Problem.ip_dx,
                  p.Netlist.Problem.ip_dy))
               inst.Netlist.Problem.inst_pins))
        insts
    in
    let legal, lo_x, hi_x, lo_y, hi_y = build_tables problem insts ipins in
    let net_fixed =
      Array.init nets (fun i ->
          Array.of_list
            (List.map
               (fun (p : Netlist.Net.pin) -> (p.Netlist.Net.x, p.Netlist.Net.y))
               (problem.Netlist.Problem.nets.(i)).Netlist.Net.pins))
    in
    let net_insts = Array.make nets [] in
    Array.iteri
      (fun i pins ->
        Array.iter
          (fun (nn, dx, dy) -> net_insts.(nn) <- (i, dx, dy) :: net_insts.(nn))
          pins)
      ipins;
    let net_insts = Array.map (fun l -> Array.of_list (List.rev l)) net_insts in
    let inst_nets =
      Array.map
        (fun pins ->
          let seen = Hashtbl.create 8 in
          let acc = ref [] in
          Array.iter
            (fun (nn, _, _) ->
              if not (Hashtbl.mem seen nn) then begin
                Hashtbl.add seen nn ();
                acc := nn :: !acc
              end)
            pins;
          Array.of_list (List.rev !acc))
        ipins
    in
    let w = problem.Netlist.Problem.width
    and h = problem.Netlist.Problem.height in
    let bins_x = ((w + bin - 1) / bin) and bins_y = ((h + bin - 1) / bin) in
    {
      problem;
      names = Array.map (fun i -> i.Netlist.Problem.inst_name) insts;
      fw = Array.map (fun i -> i.Netlist.Problem.inst_w) insts;
      fh = Array.map (fun i -> i.Netlist.Problem.inst_h) insts;
      fixed = Array.map (fun i -> i.Netlist.Problem.inst_fixed) insts;
      xs =
        Array.map
          (fun i ->
            match i.Netlist.Problem.inst_loc with Some (x, _) -> x | None -> -1)
          insts;
      ys =
        Array.map
          (fun i ->
            match i.Netlist.Problem.inst_loc with Some (_, y) -> y | None -> -1)
          insts;
      ipins;
      legal;
      lo_x;
      hi_x;
      lo_y;
      hi_y;
      net_fixed;
      net_insts;
      inst_nets;
      bbox = Array.make nets None;
      hpwl = Array.make nets 0;
      bin;
      bins_x;
      bins_y;
      cap = bin_capacity;
      cw = congestion_weight;
      spacing;
      cover = Array.make (max 1 (bins_x * bins_y)) 0;
      cost = 0;
      last = None;
    }

  (* Fold every net into the cost structures; every inst must be placed. *)
  let seed_cost st =
    st.cost <- 0;
    Array.fill st.cover 0 (Array.length st.cover) 0;
    Array.iteri
      (fun n _ ->
        st.bbox.(n) <- None;
        st.hpwl.(n) <- 0;
        update_net st n)
      st.bbox

  let init ?bin ?bin_capacity ?congestion_weight ?spacing problem =
    if not (Netlist.Problem.placed problem) then
      invalid_arg "Place.Internal.init: problem has unplaced instances";
    let st = make_state ?bin ?bin_capacity ?congestion_weight ?spacing problem in
    seed_cost st;
    st

  (* --- moves --------------------------------------------------------- *)

  let nets_of st is =
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    List.iter
      (fun i ->
        Array.iter
          (fun n ->
            if not (Hashtbl.mem seen n) then begin
              Hashtbl.add seen n ();
              acc := n :: !acc
            end)
          st.inst_nets.(i))
      is;
    List.rev !acc

  let apply st moved_insts set =
    let u_insts = List.map (fun i -> (i, st.xs.(i), st.ys.(i))) moved_insts in
    let touched = nets_of st moved_insts in
    let u_nets =
      List.map
        (fun n -> { un_net = n; un_bbox = st.bbox.(n); un_hpwl = st.hpwl.(n) })
        touched
    in
    let u_cost = st.cost in
    set ();
    List.iter (fun n -> update_net st n) touched;
    st.last <- Some { u_insts; u_nets; u_cost }

  let undo st =
    match st.last with
    | None -> ()
    | Some u ->
        List.iter (fun (i, x, y) ->
            st.xs.(i) <- x;
            st.ys.(i) <- y)
          u.u_insts;
        List.iter
          (fun un ->
            (match st.bbox.(un.un_net) with
            | Some r -> ignore (adjust_cover st r (-1))
            | None -> ());
            (match un.un_bbox with
            | Some r -> ignore (adjust_cover st r 1)
            | None -> ());
            st.bbox.(un.un_net) <- un.un_bbox;
            st.hpwl.(un.un_net) <- un.un_hpwl)
          u.u_nets;
        st.cost <- u.u_cost;
        st.last <- None

  let free_indices st =
    let acc = ref [] in
    Array.iteri (fun i f -> if not f then acc := i :: !acc) st.fixed;
    Array.of_list (List.rev !acc)

  let try_displace st rng ~range i =
    let tries = ref 10 and applied = ref false in
    while (not !applied) && !tries > 0 do
      decr tries;
      let nx =
        min st.hi_x.(i)
          (max st.lo_x.(i) (st.xs.(i) + Util.Prng.int_in rng (-range) range))
      and ny =
        min st.hi_y.(i)
          (max st.lo_y.(i) (st.ys.(i) + Util.Prng.int_in rng (-range) range))
      in
      if (nx, ny) <> (st.xs.(i), st.ys.(i))
         && statically_legal st i nx ny
         && conflict_free st i nx ny
      then begin
        apply st [ i ] (fun () ->
            st.xs.(i) <- nx;
            st.ys.(i) <- ny);
        applied := true
      end
    done;
    !applied

  let try_swap st rng i =
    let mates = ref [] in
    Array.iteri
      (fun j f ->
        if (not f) && j <> i && st.fw.(j) = st.fw.(i) && st.fh.(j) = st.fh.(i)
        then mates := j :: !mates)
      st.fixed;
    match List.rev !mates with
    | [] -> false
    | ms ->
        let j = Util.Prng.pick_list rng ms in
        let xi = st.xs.(i) and yi = st.ys.(i) in
        let xj = st.xs.(j) and yj = st.ys.(j) in
        (* Equal footprints, but pin offsets differ: both ends must be
           statically legal and conflict-free at the other's anchor. *)
        if statically_legal st i xj yj && statically_legal st j xi yi
           && conflict_free st ~skip:j i xj yj
           && conflict_free st ~skip:i j xi yi
           && (let clash = ref false in
               Array.iter
                 (fun (_, dx, dy) ->
                   Array.iter
                     (fun (_, ex, ey) ->
                       if xj + dx = xi + ex && yj + dy = yi + ey then
                         clash := true)
                     st.ipins.(j);
                   if Geom.Rect.mem
                        (Geom.Rect.make xi yi
                           (xi + st.fw.(j) - 1) (yi + st.fh.(j) - 1))
                        (xj + dx) (yj + dy)
                   then clash := true)
                 st.ipins.(i);
               Array.iter
                 (fun (_, dx, dy) ->
                   if Geom.Rect.mem
                        (Geom.Rect.make xj yj
                           (xj + st.fw.(i) - 1) (yj + st.fh.(i) - 1))
                        (xi + dx) (yi + dy)
                   then clash := true)
                 st.ipins.(j);
               not !clash)
        then begin
          apply st [ i; j ] (fun () ->
              st.xs.(i) <- xj;
              st.ys.(i) <- yj;
              st.xs.(j) <- xi;
              st.ys.(j) <- yi);
          true
        end
        else false

  let random_move st rng ~range =
    let free = free_indices st in
    if Array.length free = 0 then false
    else
      let i = Util.Prng.pick rng free in
      if Array.length free > 1 && Util.Prng.int rng 4 = 0 then
        try_swap st rng i
      else try_displace st rng ~range i
end

(* --- the annealer ----------------------------------------------------- *)

open Internal

(* Greedy seeding: earliest legal, conflict-free anchor in row-major
   order.  Deterministic and independent of the PRNG. *)
let seed_placement st =
  let err = ref None in
  Array.iteri
    (fun i x ->
      if !err = None && x < 0 then begin
        let found = ref false in
        let y = ref st.lo_y.(i) in
        while (not !found) && !y <= st.hi_y.(i) do
          let x = ref st.lo_x.(i) in
          while (not !found) && !x <= st.hi_x.(i) do
            if statically_legal st i !x !y && conflict_free st i !x !y
            then begin
              st.xs.(i) <- !x;
              st.ys.(i) <- !y;
              found := true
            end;
            incr x
          done;
          incr y
        done;
        if not !found then
          err := Some (Printf.sprintf
                         "place: no legal location for instance %s"
                         st.names.(i))
      end)
    st.xs;
  match !err with None -> Ok () | Some e -> Error e

let place ?(seed = 1) ?budget ?bin ?bin_capacity ?congestion_weight ?spacing
    ?(sweeps = 128) problem =
  if not (Netlist.Problem.has_insts problem) then
    Ok
      ( problem,
        { insts = 0; free_insts = 0; moves = 0; accepted = 0; sweeps = 0;
          initial_cost = 0; final_cost = 0; degraded = false } )
  else begin
    let st = make_state ?bin ?bin_capacity ?congestion_weight ?spacing problem in
    match seed_placement st with
    | Error e -> Error e
    | Ok () ->
        seed_cost st;
        let rng = Util.Prng.create seed in
        let free = free_indices st in
        let nfree = Array.length free in
        let initial_cost = cost st in
        let moves = ref 0 and accepted = ref 0 and done_sweeps = ref 0 in
        let degraded = ref false in
        let best = ref (Array.copy st.xs, Array.copy st.ys) in
        let best_cost = ref initial_cost in
        if nfree > 0 then begin
          let budget_tripped () =
            match budget with
            | None -> false
            | Some b -> Router.Budget.check b <> None
          in
          let span =
            max problem.Netlist.Problem.width problem.Netlist.Problem.height
          in
          let t0 = Float.max 1.0 (float_of_int initial_cost /. 10.0) in
          let t = ref t0 in
          let s = ref 0 in
          while !s < sweeps && !t >= 0.5 && not !degraded do
            if budget_tripped () then degraded := true
            else begin
              let range =
                max 2 (int_of_float (float_of_int span *. !t /. t0))
              in
              for _ = 1 to 8 * nfree do
                let before = cost st in
                incr moves;
                if random_move st rng ~range then begin
                  let d = cost st - before in
                  if d <= 0
                     || Util.Prng.chance rng (exp (-.float_of_int d /. !t))
                  then begin
                    incr accepted;
                    if cost st < !best_cost then begin
                      best_cost := cost st;
                      best := (Array.copy st.xs, Array.copy st.ys)
                    end
                  end
                  else undo st
                end
              done;
              t := !t *. 0.9;
              incr done_sweeps;
              incr s
            end
          done
        end;
        let bx, by = !best in
        Array.blit bx 0 st.xs 0 (Array.length bx);
        Array.blit by 0 st.ys 0 (Array.length by);
        seed_cost st;
        let locs =
          Array.to_list
            (Array.mapi
               (fun i name -> (name, (st.xs.(i), st.ys.(i))))
               st.names)
        in
        let free_locs =
          List.filteri (fun i _ -> not st.fixed.(i)) locs
        in
        (* Unplaced fixed instances are impossible (validate requires a
           location), so [with_placement] only needs the free ones. *)
        let placed_problem = Netlist.Problem.with_placement problem free_locs in
        Ok
          ( placed_problem,
            {
              insts = Array.length st.names;
              free_insts = nfree;
              moves = !moves;
              accepted = !accepted;
              sweeps = !done_sweeps;
              initial_cost;
              final_cost = cost st;
              degraded = !degraded;
            } )
  end
