type kind = Switchbox | Channel | Region

type obstruction = { obs_layer : int option; obs_rect : Geom.Rect.t }

type prewire = {
  pre_net : int;
  pre_cells : (int * int * int) list;
  pre_fixed : bool;
}

type t = {
  name : string;
  width : int;
  height : int;
  kind : kind;
  nets : Net.t array;
  obstructions : obstruction list;
  prewires : prewire list;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let obstructs obstructions ~layer ~x ~y =
  List.exists
    (fun o ->
      Geom.Rect.mem o.obs_rect x y
      && match o.obs_layer with None -> true | Some l -> l = layer)
    obstructions

let validate p =
  Array.iteri
    (fun i (n : Net.t) ->
      if n.Net.id <> i + 1 then
        fail "Problem %s: net %s has id %d, expected %d" p.name n.Net.name
          n.Net.id (i + 1))
    p.nets;
  let cell_owner = Hashtbl.create 64 in
  let claim ~what net_id layer x y =
    if x < 0 || x >= p.width || y < 0 || y >= p.height || layer < 0
       || layer >= Grid.layers
    then fail "Problem %s: %s of net %d out of bounds (%d,%d)L%d" p.name what net_id x y layer;
    if obstructs p.obstructions ~layer ~x ~y then
      fail "Problem %s: %s of net %d sits on an obstruction at (%d,%d)L%d"
        p.name what net_id x y layer;
    match Hashtbl.find_opt cell_owner (layer, x, y) with
    | Some other when other <> net_id ->
        fail "Problem %s: nets %d and %d share cell (%d,%d)L%d" p.name other
          net_id x y layer
    | Some _ | None -> Hashtbl.replace cell_owner (layer, x, y) net_id
  in
  Array.iter
    (fun (n : Net.t) ->
      List.iter
        (fun (pin : Net.pin) ->
          claim ~what:"pin" n.Net.id pin.Net.layer pin.Net.x pin.Net.y)
        n.Net.pins)
    p.nets;
  List.iter
    (fun pw ->
      if pw.pre_net <= 0 || pw.pre_net > Array.length p.nets then
        fail "Problem %s: prewire references unknown net %d" p.name pw.pre_net;
      List.iter
        (fun (layer, x, y) -> claim ~what:"prewire" pw.pre_net layer x y)
        pw.pre_cells)
    p.prewires

let make ?(kind = Region) ?(obstructions = []) ?(prewires = []) ~name ~width
    ~height nets =
  if width <= 0 || height <= 0 then fail "Problem %s: empty region" name;
  let p =
    {
      name;
      width;
      height;
      kind;
      nets = Array.of_list nets;
      obstructions;
      prewires;
    }
  in
  validate p;
  p

let net_count p = Array.length p.nets

let net p id =
  if id < 1 || id > Array.length p.nets then
    fail "Problem %s: unknown net id %d" p.name id;
  p.nets.(id - 1)

let find_net p name =
  Array.find_opt (fun (n : Net.t) -> n.Net.name = name) p.nets

let nontrivial_net_ids p =
  Array.to_list p.nets
  |> List.filter (fun n -> not (Net.is_trivial n))
  |> List.map (fun (n : Net.t) -> n.Net.id)

let pin_cells p =
  Array.to_list p.nets
  |> List.concat_map (fun (n : Net.t) ->
         List.map (fun pin -> (n.Net.id, pin)) n.Net.pins)

let total_pins p =
  Array.fold_left (fun acc n -> acc + Net.pin_count n) 0 p.nets

let instantiate p =
  let g = Grid.create ~width:p.width ~height:p.height in
  List.iter
    (fun o ->
      match o.obs_layer with
      | Some layer -> Grid.block_rect g ~layer o.obs_rect
      | None -> Grid.block_rect g o.obs_rect)
    p.obstructions;
  Array.iter
    (fun (n : Net.t) ->
      List.iter
        (fun (pin : Net.pin) ->
          Grid.occupy g ~net:n.Net.id
            (Grid.node g ~layer:pin.Net.layer ~x:pin.Net.x ~y:pin.Net.y))
        n.Net.pins)
    p.nets;
  List.iter
    (fun pw ->
      List.iter
        (fun (layer, x, y) ->
          Grid.occupy g ~net:pw.pre_net (Grid.node g ~layer ~x ~y))
        pw.pre_cells;
      (* A prewire occupying both layers of a position implies a via. *)
      List.iter
        (fun (layer, x, y) ->
          if layer = 0
             && List.exists (fun (l, x', y') -> l = 1 && x' = x && y' = y)
                  pw.pre_cells
          then Grid.set_via g ~x ~y)
        pw.pre_cells)
    p.prewires;
  g

let pp fmt p =
  Format.fprintf fmt "%s: %dx%d %s, %d nets, %d pins" p.name p.width p.height
    (match p.kind with
    | Switchbox -> "switchbox"
    | Channel -> "channel"
    | Region -> "region")
    (net_count p) (total_pins p)
