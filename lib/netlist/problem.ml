type kind = Switchbox | Channel | Region

type obstruction = { obs_layer : int option; obs_rect : Geom.Rect.t }

type prewire = {
  pre_net : int;
  pre_cells : (int * int * int) list;
  pre_fixed : bool;
}

type ipin = { ip_net : int; ip_dx : int; ip_dy : int; ip_layer : int }

type inst = {
  inst_name : string;
  inst_w : int;
  inst_h : int;
  inst_fixed : bool;
  inst_loc : (int * int) option;
  inst_pins : ipin list;
}

type t = {
  name : string;
  width : int;
  height : int;
  layers : int;
  layer_dirs : bool array;
  kind : kind;
  nets : Net.t array;
  obstructions : obstruction list;
  prewires : prewire list;
  insts : inst list;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let obstructs obstructions ~layer ~x ~y =
  List.exists
    (fun o ->
      Geom.Rect.mem o.obs_rect x y
      && match o.obs_layer with None -> true | Some l -> l = layer)
    obstructions

let validate p =
  Array.iteri
    (fun i (n : Net.t) ->
      if n.Net.id <> i + 1 then
        fail "Problem %s: net %s has id %d, expected %d" p.name n.Net.name
          n.Net.id (i + 1))
    p.nets;
  let cell_owner = Hashtbl.create 64 in
  let claim ~what net_id layer x y =
    if x < 0 || x >= p.width || y < 0 || y >= p.height || layer < 0
       || layer >= p.layers
    then fail "Problem %s: %s of net %d out of bounds (%d,%d)L%d" p.name what net_id x y layer;
    if obstructs p.obstructions ~layer ~x ~y then
      fail "Problem %s: %s of net %d sits on an obstruction at (%d,%d)L%d"
        p.name what net_id x y layer;
    match Hashtbl.find_opt cell_owner (layer, x, y) with
    | Some other when other <> net_id ->
        fail "Problem %s: nets %d and %d share cell (%d,%d)L%d" p.name other
          net_id x y layer
    | Some _ | None -> Hashtbl.replace cell_owner (layer, x, y) net_id
  in
  Array.iter
    (fun (n : Net.t) ->
      List.iter
        (fun (pin : Net.pin) ->
          claim ~what:"pin" n.Net.id pin.Net.layer pin.Net.x pin.Net.y)
        n.Net.pins)
    p.nets;
  List.iter
    (fun pw ->
      if pw.pre_net <= 0 || pw.pre_net > Array.length p.nets then
        fail "Problem %s: prewire references unknown net %d" p.name pw.pre_net;
      List.iter
        (fun (layer, x, y) -> claim ~what:"prewire" pw.pre_net layer x y)
        pw.pre_cells)
    p.prewires;
  (* Placement section.  Placed footprints and pins must be in bounds;
     everything finer-grained (footprint overlap, pin collisions) is
     validated when [realize] rebuilds a plain routable problem, because
     an unplaced instance has no absolute geometry to check yet. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun inst ->
      if inst.inst_name = "" then fail "Problem %s: unnamed instance" p.name;
      if Hashtbl.mem seen inst.inst_name then
        fail "Problem %s: duplicate instance %s" p.name inst.inst_name;
      Hashtbl.add seen inst.inst_name ();
      if inst.inst_w <= 0 || inst.inst_h <= 0 then
        fail "Problem %s: instance %s has an empty footprint" p.name
          inst.inst_name;
      if inst.inst_fixed && inst.inst_loc = None then
        fail "Problem %s: fixed instance %s has no location" p.name
          inst.inst_name;
      List.iter
        (fun ip ->
          if ip.ip_net <= 0 || ip.ip_net > Array.length p.nets then
            fail "Problem %s: instance %s pin references unknown net %d"
              p.name inst.inst_name ip.ip_net;
          if ip.ip_layer < 0 || ip.ip_layer >= p.layers then
            fail "Problem %s: instance %s pin on bad layer %d" p.name
              inst.inst_name ip.ip_layer;
          if
            ip.ip_dx >= 0 && ip.ip_dx < inst.inst_w && ip.ip_dy >= 0
            && ip.ip_dy < inst.inst_h
          then
            fail
              "Problem %s: instance %s pin offset (%d,%d) inside the \
               footprint"
              p.name inst.inst_name ip.ip_dx ip.ip_dy)
        inst.inst_pins;
      match inst.inst_loc with
      | None -> ()
      | Some (x, y) ->
          if
            x < 0 || y < 0 || x + inst.inst_w > p.width
            || y + inst.inst_h > p.height
          then
            fail "Problem %s: instance %s footprint out of bounds at (%d,%d)"
              p.name inst.inst_name x y;
          List.iter
            (fun ip ->
              let px = x + ip.ip_dx and py = y + ip.ip_dy in
              if px < 0 || px >= p.width || py < 0 || py >= p.height then
                fail
                  "Problem %s: instance %s pin out of bounds at (%d,%d)"
                  p.name inst.inst_name px py)
            inst.inst_pins)
    p.insts

let make ?(kind = Region) ?(obstructions = []) ?(prewires = []) ?(insts = [])
    ?(layers = Grid.default_layers) ?layer_dirs ~name ~width ~height nets =
  if width <= 0 || height <= 0 then fail "Problem %s: empty region" name;
  if layers < 2 then fail "Problem %s: at least two layers" name;
  let layer_dirs =
    match layer_dirs with Some d -> d | None -> Grid.default_dirs layers
  in
  if Array.length layer_dirs <> layers then
    fail "Problem %s: one direction per layer" name;
  let p =
    {
      name;
      width;
      height;
      layers;
      layer_dirs;
      kind;
      nets = Array.of_list nets;
      obstructions;
      prewires;
      insts;
    }
  in
  validate p;
  p

(* The default stack — the one every problem that does not say otherwise
   gets, and the one the printer elides. *)
let default_stack p =
  p.layers = Grid.default_layers
  && p.layer_dirs = Grid.default_dirs p.layers

let net_count p = Array.length p.nets

let net p id =
  if id < 1 || id > Array.length p.nets then
    fail "Problem %s: unknown net id %d" p.name id;
  p.nets.(id - 1)

let find_net p name =
  Array.find_opt (fun (n : Net.t) -> n.Net.name = name) p.nets

let nontrivial_net_ids p =
  Array.to_list p.nets
  |> List.filter (fun n -> not (Net.is_trivial n))
  |> List.map (fun (n : Net.t) -> n.Net.id)

let pin_cells p =
  Array.to_list p.nets
  |> List.concat_map (fun (n : Net.t) ->
         List.map (fun pin -> (n.Net.id, pin)) n.Net.pins)

let total_pins p =
  Array.fold_left (fun acc n -> acc + Net.pin_count n) 0 p.nets

let has_insts p = p.insts <> []

let placed p =
  List.for_all (fun inst -> inst.inst_loc <> None) p.insts

let find_inst p name =
  List.find_opt (fun inst -> inst.inst_name = name) p.insts

let inst_rect inst =
  match inst.inst_loc with
  | None -> None
  | Some (x, y) ->
      Some (Geom.Rect.make x y (x + inst.inst_w - 1) (y + inst.inst_h - 1))

let with_placement p locs =
  let insts =
    List.map
      (fun inst ->
        match List.assoc_opt inst.inst_name locs with
        | None -> inst
        | Some loc ->
            if inst.inst_fixed then
              fail "Problem %s: cannot move fixed instance %s" p.name
                inst.inst_name;
            { inst with inst_loc = Some loc })
      p.insts
  in
  make ~kind:p.kind ~obstructions:p.obstructions ~prewires:p.prewires ~insts
    ~layers:p.layers ~layer_dirs:p.layer_dirs ~name:p.name ~width:p.width
    ~height:p.height
    (Array.to_list p.nets)

let realize p =
  if p.insts = [] then p
  else begin
    List.iter
      (fun inst ->
        if inst.inst_loc = None then
          fail "Problem %s: cannot realize unplaced instance %s" p.name
            inst.inst_name)
      p.insts;
    let extra_obs =
      List.map
        (fun inst ->
          { obs_layer = None; obs_rect = Option.get (inst_rect inst) })
        p.insts
    in
    (* Instance pins become absolute net pins, appended in instance
       declaration order so realization is deterministic. *)
    let extra_pins = Array.make (Array.length p.nets) [] in
    List.iter
      (fun inst ->
        let x, y = Option.get inst.inst_loc in
        List.iter
          (fun ip ->
            let pin =
              Net.pin ~layer:ip.ip_layer (x + ip.ip_dx) (y + ip.ip_dy)
            in
            extra_pins.(ip.ip_net - 1) <-
              pin :: extra_pins.(ip.ip_net - 1))
          inst.inst_pins)
      p.insts;
    let nets =
      Array.to_list
        (Array.mapi
           (fun i (n : Net.t) ->
             Net.make ~cls:n.Net.cls ~id:n.Net.id ~name:n.Net.name
               (n.Net.pins @ List.rev extra_pins.(i)))
           p.nets)
    in
    make ~kind:p.kind
      ~obstructions:(p.obstructions @ extra_obs)
      ~prewires:p.prewires ~layers:p.layers ~layer_dirs:p.layer_dirs
      ~name:p.name ~width:p.width ~height:p.height nets
  end

let instantiate p =
  let g =
    Grid.create ~layers:p.layers ~dirs:p.layer_dirs ~width:p.width
      ~height:p.height ()
  in
  List.iter
    (fun o ->
      match o.obs_layer with
      | Some layer -> Grid.block_rect g ~layer o.obs_rect
      | None -> Grid.block_rect g o.obs_rect)
    p.obstructions;
  Array.iter
    (fun (n : Net.t) ->
      List.iter
        (fun (pin : Net.pin) ->
          Grid.occupy g ~net:n.Net.id
            (Grid.node g ~layer:pin.Net.layer ~x:pin.Net.x ~y:pin.Net.y))
        n.Net.pins)
    p.nets;
  List.iter
    (fun pw ->
      List.iter
        (fun (layer, x, y) ->
          Grid.occupy g ~net:pw.pre_net (Grid.node g ~layer ~x ~y))
        pw.pre_cells;
      (* A prewire occupying two adjacent layers of a position implies a
         via pair between them. *)
      List.iter
        (fun (layer, x, y) ->
          if layer + 1 < p.layers
             && List.exists
                  (fun (l, x', y') -> l = layer + 1 && x' = x && y' = y)
                  pw.pre_cells
          then Grid.set_via ~layer g ~x ~y)
        pw.pre_cells)
    p.prewires;
  g

let pp fmt p =
  Format.fprintf fmt "%s: %dx%d %s, %d nets, %d pins" p.name p.width p.height
    (match p.kind with
    | Switchbox -> "switchbox"
    | Channel -> "channel"
    | Region -> "region")
    (net_count p) (total_pins p);
  if p.insts <> [] then
    Format.fprintf fmt ", %d insts (%d unplaced)" (List.length p.insts)
      (List.length (List.filter (fun i -> i.inst_loc = None) p.insts))
