let group_pins pairs =
  (* Compact net ids to 1..k preserving ascending order of original ids. *)
  let ids =
    List.map fst pairs |> List.sort_uniq Int.compare
    |> List.filter (fun id -> id <> 0)
  in
  List.iter
    (fun id -> if id < 0 then invalid_arg "Build: negative net id")
    ids;
  let index = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace index id (i + 1)) ids;
  let nets =
    List.map
      (fun id ->
        let pins =
          List.filter_map
            (fun (id', pin) -> if id' = id then Some pin else None)
            pairs
        in
        let pins = List.sort_uniq compare pins in
        Net.make ~id:(Hashtbl.find index id)
          ~name:(Printf.sprintf "n%d" id)
          pins)
      ids
  in
  nets

let of_pins ?(name = "problem") ?(kind = Problem.Region) ?(obstructions = [])
    ?layers ?layer_dirs ~width ~height pairs =
  let nets = group_pins (List.filter (fun (id, _) -> id <> 0) pairs) in
  Problem.make ~kind ~obstructions ~name ?layers ?layer_dirs ~width ~height
    nets

let channel ?(name = "channel") ~tracks ~top ~bottom () =
  let columns = Array.length top in
  if Array.length bottom <> columns then
    invalid_arg "Build.channel: top and bottom lengths differ";
  if columns = 0 || tracks < 1 then
    invalid_arg "Build.channel: empty channel";
  let height = tracks + 2 in
  let pairs = ref [] in
  let obstructions = ref [] in
  let pin_row y row =
    Array.iteri
      (fun x id ->
        if id <> 0 then pairs := (id, Net.pin ~layer:1 x y) :: !pairs
        else
          (* Unpinned pin-row cells are dead area on both layers. *)
          obstructions :=
            { Problem.obs_layer = None; obs_rect = Geom.Rect.make x y x y }
            :: !obstructions;
        (* The horizontal layer never enters the pin rows. *)
        if id <> 0 then
          obstructions :=
            { Problem.obs_layer = Some 0; obs_rect = Geom.Rect.make x y x y }
            :: !obstructions)
      row
  in
  pin_row 0 bottom;
  pin_row (height - 1) top;
  of_pins ~name ~kind:Problem.Channel ~obstructions:!obstructions
    ~width:columns ~height !pairs

let switchbox ?(name = "switchbox") ~width ~height ?top ?bottom ?left ?right ()
    =
  let zeros n = Array.make n 0 in
  let top = Option.value top ~default:(zeros width) in
  let bottom = Option.value bottom ~default:(zeros width) in
  let left = Option.value left ~default:(zeros height) in
  let right = Option.value right ~default:(zeros height) in
  if Array.length top <> width || Array.length bottom <> width then
    invalid_arg "Build.switchbox: top/bottom length must equal width";
  if Array.length left <> height || Array.length right <> height then
    invalid_arg "Build.switchbox: left/right length must equal height";
  let pairs = ref [] in
  let add id pin = if id <> 0 then pairs := (id, pin) :: !pairs in
  Array.iteri (fun x id -> add id (Net.pin ~layer:1 x (height - 1))) top;
  Array.iteri (fun x id -> add id (Net.pin ~layer:1 x 0)) bottom;
  let corner_conflict x y id =
    (* A side pin landing on a corner already pinned vertically. *)
    List.exists
      (fun (id', (p : Net.pin)) ->
        p.Net.x = x && p.Net.y = y && p.Net.layer = 1 && id' <> id)
      !pairs
  in
  let add_side x y id =
    if id <> 0 then
      if corner_conflict x y id then
        invalid_arg
          (Printf.sprintf
             "Build.switchbox: conflicting corner pins at (%d,%d)" x y)
      else add id (Net.pin ~layer:0 x y)
  in
  Array.iteri (fun y id -> add_side 0 y id) left;
  Array.iteri (fun y id -> add_side (width - 1) y id) right;
  of_pins ~name ~kind:Problem.Switchbox ~width ~height !pairs

let of_pins_in_outline ?(name = "outline-region") ~outline pairs =
  let box = Geom.Outline.bounding_box outline in
  if box.Geom.Rect.x0 < 0 || box.Geom.Rect.y0 < 0 then
    invalid_arg "Build.of_pins_in_outline: outline in negative quadrant";
  let width = box.Geom.Rect.x1 + 1 and height = box.Geom.Rect.y1 + 1 in
  let full = Geom.Rect.make 0 0 (width - 1) (height - 1) in
  let obstructions =
    List.map
      (fun r -> { Problem.obs_layer = None; obs_rect = r })
      (Geom.Outline.complement_rects ~within:full outline)
  in
  of_pins ~name ~kind:Problem.Region ~obstructions ~width ~height pairs
