exception Error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Error (line, m))) fmt

type header = {
  hname : string;
  hkind : Problem.kind;
  hwidth : int;
  hheight : int;
}

type state = {
  mutable header : header option;
  mutable obstructions : Problem.obstruction list;
  mutable nets : (string * Net.pin list) list; (* reversed; pins reversed *)
  mutable prewires : (string * bool * (int * int * int) list) list;
  mutable context : [ `Top | `Net | `Prewire ];
}

let kind_of_string line = function
  | "switchbox" -> Problem.Switchbox
  | "channel" -> Problem.Channel
  | "region" -> Problem.Region
  | s -> fail line "unknown problem kind %S" s

let string_of_kind = function
  | Problem.Switchbox -> "switchbox"
  | Problem.Channel -> "channel"
  | Problem.Region -> "region"

let int_of line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "expected an integer, got %S" s

let tokens line_text =
  String.split_on_char ' ' line_text
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let handle st lineno line_text =
  match tokens line_text with
  | [] -> ()
  | word :: _ when String.length word > 0 && word.[0] = '#' -> ()
  | [ "problem"; name; kind; w; h ] ->
      if st.header <> None then fail lineno "duplicate problem line";
      st.header <-
        Some
          {
            hname = name;
            hkind = kind_of_string lineno kind;
            hwidth = int_of lineno w;
            hheight = int_of lineno h;
          }
  | [ "obstruct"; layer; x0; y0; x1; y1 ] ->
      let obs_layer =
        if layer = "*" then None else Some (int_of lineno layer)
      in
      st.obstructions <-
        {
          Problem.obs_layer;
          obs_rect =
            Geom.Rect.make (int_of lineno x0) (int_of lineno y0)
              (int_of lineno x1) (int_of lineno y1);
        }
        :: st.obstructions
  | [ "net"; name ] ->
      if List.mem_assoc name st.nets then fail lineno "duplicate net %S" name;
      st.nets <- (name, []) :: st.nets;
      st.context <- `Net
  | "pin" :: rest -> begin
      let pin =
        match rest with
        | [ x; y ] -> Net.pin (int_of lineno x) (int_of lineno y)
        | [ x; y; layer ] ->
            Net.pin ~layer:(int_of lineno layer) (int_of lineno x)
              (int_of lineno y)
        | _ -> fail lineno "pin expects: pin <x> <y> [layer]"
      in
      match (st.context, st.nets) with
      | `Net, (name, pins) :: rest_nets ->
          st.nets <- (name, pin :: pins) :: rest_nets
      | (`Top | `Prewire), _ | `Net, [] ->
          fail lineno "pin outside of a net block"
    end
  | [ "prewire"; net_name; fixity ] ->
      let fixed =
        match fixity with
        | "fixed" -> true
        | "loose" -> false
        | s -> fail lineno "expected fixed|loose, got %S" s
      in
      st.prewires <- (net_name, fixed, []) :: st.prewires;
      st.context <- `Prewire
  | [ "cell"; layer; x; y ] -> begin
      let cell = (int_of lineno layer, int_of lineno x, int_of lineno y) in
      match (st.context, st.prewires) with
      | `Prewire, (name, fixed, cells) :: rest ->
          st.prewires <- (name, fixed, cell :: cells) :: rest
      | (`Top | `Net), _ | `Prewire, [] ->
          fail lineno "cell outside of a prewire block"
    end
  | word :: _ -> fail lineno "unknown directive %S" word

let of_string text =
  let st =
    {
      header = None;
      obstructions = [];
      nets = [];
      prewires = [];
      context = `Top;
    }
  in
  List.iteri
    (fun i line_text -> handle st (i + 1) line_text)
    (String.split_on_char '\n' text);
  match st.header with
  | None -> fail 0 "missing problem line"
  | Some h ->
      let named_nets = List.rev st.nets in
      let nets =
        List.mapi
          (fun i (name, pins) -> Net.make ~id:(i + 1) ~name (List.rev pins))
          named_nets
      in
      let id_of_name name =
        let rec loop i = function
          | [] -> fail 0 "prewire references unknown net %S" name
          | (n, _) :: rest -> if n = name then i else loop (i + 1) rest
        in
        loop 1 named_nets
      in
      let prewires =
        List.rev_map
          (fun (name, fixed, cells) ->
            {
              Problem.pre_net = id_of_name name;
              pre_cells = List.rev cells;
              pre_fixed = fixed;
            })
          st.prewires
      in
      Problem.make ~kind:h.hkind
        ~obstructions:(List.rev st.obstructions)
        ~prewires ~name:h.hname ~width:h.hwidth ~height:h.hheight nets

let to_string (p : Problem.t) =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "problem %s %s %d %d\n" p.Problem.name
    (string_of_kind p.Problem.kind)
    p.Problem.width p.Problem.height;
  List.iter
    (fun (o : Problem.obstruction) ->
      let r = o.Problem.obs_rect in
      addf "obstruct %s %d %d %d %d\n"
        (match o.Problem.obs_layer with None -> "*" | Some l -> string_of_int l)
        r.Geom.Rect.x0 r.Geom.Rect.y0 r.Geom.Rect.x1 r.Geom.Rect.y1)
    p.Problem.obstructions;
  Array.iter
    (fun (n : Net.t) ->
      addf "net %s\n" n.Net.name;
      List.iter
        (fun (pin : Net.pin) ->
          addf "pin %d %d %d\n" pin.Net.x pin.Net.y pin.Net.layer)
        n.Net.pins)
    p.Problem.nets;
  List.iter
    (fun (pw : Problem.prewire) ->
      let net_name = (Problem.net p pw.Problem.pre_net).Net.name in
      addf "prewire %s %s\n" net_name
        (if pw.Problem.pre_fixed then "fixed" else "loose");
      List.iter
        (fun (layer, x, y) -> addf "cell %d %d %d\n" layer x y)
        pw.Problem.pre_cells)
    p.Problem.prewires;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let save path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc
