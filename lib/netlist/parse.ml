type error = { src : string; line : int; col : int; msg : string }

let error_to_string e =
  if e.line = 0 then Printf.sprintf "%s: %s" e.src e.msg
  else Printf.sprintf "%s: line %d, column %d: %s" e.src e.line e.col e.msg

exception Error of int * string

(* Internal control flow of the parser; converted to [error] at the API
   boundary so the result-returning entry points never leak it.  The
   source name is not known at the failure site — the entry point stamps
   it on before handing the error out. *)
exception Fail of error

let fail line col fmt =
  Printf.ksprintf (fun msg -> raise (Fail { src = ""; line; col; msg })) fmt

type header = {
  hname : string;
  hkind : Problem.kind;
  hwidth : int;
  hheight : int;
}

(* An instance under construction; pins are (net name, dx, dy, layer),
   reversed like every other accumulating list here. *)
type pinst = {
  pi_name : string;
  pi_w : int;
  pi_h : int;
  pi_fixed : bool;
  pi_loc : (int * int) option;
  pi_pins : (string * int * int * int) list;
}

type state = {
  mutable header : header option;
  mutable stack : (int * bool array) option;  (* layers, per-layer h-pref *)
  mutable obstructions : Problem.obstruction list;
  mutable nets : (string * Net.pin list) list; (* reversed; pins reversed *)
  mutable classes : (string * Net.cls) list;
  mutable prewires : (string * bool * (int * int * int) list) list;
  mutable insts : pinst list;
  mutable context : [ `Top | `Net | `Prewire | `Inst ];
}

(* A token and the 1-based column it starts at. *)
type tok = { col : int; text : string }

let kind_of_string line (t : tok) =
  match t.text with
  | "switchbox" -> Problem.Switchbox
  | "channel" -> Problem.Channel
  | "region" -> Problem.Region
  | s -> fail line t.col "unknown problem kind %S" s

let string_of_kind = function
  | Problem.Switchbox -> "switchbox"
  | Problem.Channel -> "channel"
  | Problem.Region -> "region"

let int_of line (t : tok) =
  match int_of_string_opt t.text with
  | Some v -> v
  | None -> fail line t.col "expected an integer, got %S" t.text

let tokens line_text =
  let n = String.length line_text in
  let rec scan i acc =
    if i >= n then List.rev acc
    else if line_text.[i] = ' ' || line_text.[i] = '\t' then scan (i + 1) acc
    else begin
      let j = ref i in
      while
        !j < n && line_text.[!j] <> ' ' && line_text.[!j] <> '\t'
      do
        incr j
      done;
      scan !j
        ({ col = i + 1; text = String.sub line_text i (!j - i) } :: acc)
    end
  in
  scan 0 []

let handle st lineno line_text =
  match tokens line_text with
  | [] -> ()
  | word :: _ when word.text.[0] = '#' -> ()
  | [ { text = "problem"; col }; name; kind; w; h ] ->
      if st.header <> None then fail lineno col "duplicate problem line";
      st.header <-
        Some
          {
            hname = name.text;
            hkind = kind_of_string lineno kind;
            hwidth = int_of lineno w;
            hheight = int_of lineno h;
          }
  | { text = "layers"; col } :: count :: dirs ->
      if st.stack <> None then fail lineno col "duplicate layers line";
      let n = int_of lineno count in
      if n < 2 then fail lineno count.col "layers must be >= 2, got %d" n;
      let prefs =
        match dirs with
        | [] -> Grid.default_dirs n
        | _ ->
            if List.length dirs <> n then
              fail lineno col "layers %d expects %d direction tokens (h|v)" n n;
            Array.of_list
              (List.map
                 (fun (t : tok) ->
                   match t.text with
                   | "h" -> true
                   | "v" -> false
                   | s -> fail lineno t.col "expected h|v, got %S" s)
                 dirs)
      in
      st.stack <- Some (n, prefs)
  | [ { text = "obstruct"; _ }; layer; x0; y0; x1; y1 ] ->
      let obs_layer =
        if layer.text = "*" then None else Some (int_of lineno layer)
      in
      st.obstructions <-
        {
          Problem.obs_layer;
          obs_rect =
            Geom.Rect.make (int_of lineno x0) (int_of lineno y0)
              (int_of lineno x1) (int_of lineno y1);
        }
        :: st.obstructions
  | [ { text = "net"; _ }; name ] ->
      if List.mem_assoc name.text st.nets then
        fail lineno name.col "duplicate net %S" name.text;
      st.nets <- (name.text, []) :: st.nets;
      st.context <- `Net
  | { text = "pin"; col } :: rest -> begin
      let pin =
        match rest with
        | [ x; y ] -> Net.pin (int_of lineno x) (int_of lineno y)
        | [ x; y; layer ] ->
            Net.pin ~layer:(int_of lineno layer) (int_of lineno x)
              (int_of lineno y)
        | _ -> fail lineno col "pin expects: pin <x> <y> [layer]"
      in
      match (st.context, st.nets) with
      | `Net, (name, pins) :: rest_nets ->
          st.nets <- (name, pin :: pins) :: rest_nets
      | (`Top | `Prewire | `Inst), _ | `Net, [] ->
          fail lineno col "pin outside of a net block"
    end
  | [ { text = "prewire"; _ }; net_name; fixity ] ->
      let fixed =
        match fixity.text with
        | "fixed" -> true
        | "loose" -> false
        | s -> fail lineno fixity.col "expected fixed|loose, got %S" s
      in
      st.prewires <- (net_name.text, fixed, []) :: st.prewires;
      st.context <- `Prewire
  | [ { text = "cell"; col }; layer; x; y ] -> begin
      let cell = (int_of lineno layer, int_of lineno x, int_of lineno y) in
      match (st.context, st.prewires) with
      | `Prewire, (name, fixed, cells) :: rest ->
          st.prewires <- (name, fixed, cell :: cells) :: rest
      | (`Top | `Net | `Inst), _ | `Prewire, [] ->
          fail lineno col "cell outside of a prewire block"
    end
  | [ { text = "class"; _ }; name; cls ] -> begin
      match Net.cls_of_string cls.text with
      | None -> fail lineno cls.col "expected signal|clock|power, got %S" cls.text
      | Some c ->
          if List.mem_assoc name.text st.classes then
            fail lineno name.col "duplicate class for net %S" name.text;
          st.classes <- (name.text, c) :: st.classes
    end
  | { text = "inst"; col } :: name :: w :: h :: fixity :: rest ->
      let fixed =
        match fixity.text with
        | "fixed" -> true
        | "free" -> false
        | s -> fail lineno fixity.col "expected fixed|free, got %S" s
      in
      let loc =
        match rest with
        | [] -> None
        | [ x; y ] -> Some (int_of lineno x, int_of lineno y)
        | _ -> fail lineno col "inst expects: inst <name> <w> <h> <fixed|free> [<x> <y>]"
      in
      if List.exists (fun i -> i.pi_name = name.text) st.insts then
        fail lineno name.col "duplicate instance %S" name.text;
      st.insts <-
        {
          pi_name = name.text;
          pi_w = int_of lineno w;
          pi_h = int_of lineno h;
          pi_fixed = fixed;
          pi_loc = loc;
          pi_pins = [];
        }
        :: st.insts;
      st.context <- `Inst
  | { text = "ipin"; col } :: rest -> begin
      let pin =
        match rest with
        | [ net; dx; dy ] ->
            (net.text, int_of lineno dx, int_of lineno dy, 0)
        | [ net; dx; dy; layer ] ->
            (net.text, int_of lineno dx, int_of lineno dy, int_of lineno layer)
        | _ -> fail lineno col "ipin expects: ipin <net> <dx> <dy> [layer]"
      in
      match (st.context, st.insts) with
      | `Inst, i :: rest_insts ->
          st.insts <- { i with pi_pins = pin :: i.pi_pins } :: rest_insts
      | (`Top | `Net | `Prewire), _ | `Inst, [] ->
          fail lineno col "ipin outside of an inst block"
    end
  | word :: _ -> fail lineno word.col "unknown directive %S" word.text

let of_string ?(src = "<string>") text =
  let st =
    {
      header = None;
      stack = None;
      obstructions = [];
      nets = [];
      classes = [];
      prewires = [];
      insts = [];
      context = `Top;
    }
  in
  try
    List.iteri
      (fun i line_text -> handle st (i + 1) line_text)
      (String.split_on_char '\n' text);
    match st.header with
    | None ->
        Result.Error { src; line = 0; col = 0; msg = "missing problem line" }
    | Some h ->
        let named_nets = List.rev st.nets in
        List.iter
          (fun (name, _) ->
            if not (List.mem_assoc name named_nets) then
              fail 0 0 "class references unknown net %S" name)
          st.classes;
        let nets =
          List.mapi
            (fun i (name, pins) ->
              let cls =
                Option.value ~default:Net.Signal
                  (List.assoc_opt name st.classes)
              in
              Net.make ~cls ~id:(i + 1) ~name (List.rev pins))
            named_nets
        in
        let id_of_name ~what name =
          let rec loop i = function
            | [] -> fail 0 0 "%s references unknown net %S" what name
            | (n, _) :: rest -> if n = name then i else loop (i + 1) rest
          in
          loop 1 named_nets
        in
        let prewires =
          List.rev_map
            (fun (name, fixed, cells) ->
              {
                Problem.pre_net = id_of_name ~what:"prewire" name;
                pre_cells = List.rev cells;
                pre_fixed = fixed;
              })
            st.prewires
        in
        let insts =
          List.rev_map
            (fun pi ->
              {
                Problem.inst_name = pi.pi_name;
                inst_w = pi.pi_w;
                inst_h = pi.pi_h;
                inst_fixed = pi.pi_fixed;
                inst_loc = pi.pi_loc;
                inst_pins =
                  List.rev_map
                    (fun (net, dx, dy, layer) ->
                      {
                        Problem.ip_net = id_of_name ~what:"ipin" net;
                        ip_dx = dx;
                        ip_dy = dy;
                        ip_layer = layer;
                      })
                    pi.pi_pins;
              })
            st.insts
        in
        let layers, layer_dirs =
          match st.stack with
          | None -> (Grid.default_layers, None)
          | Some (n, prefs) -> (n, Some prefs)
        in
        Ok
          (Problem.make ~kind:h.hkind ~layers ?layer_dirs
             ~obstructions:(List.rev st.obstructions)
             ~prewires ~insts ~name:h.hname ~width:h.hwidth ~height:h.hheight
             nets)
  with
  | Fail e -> Result.Error { e with src }
  (* Semantic validation (Net.make / Problem.make) has no line to point
     at: report the message alone. *)
  | Invalid_argument msg -> Result.Error { src; line = 0; col = 0; msg }

let of_string_exn ?src text =
  match of_string ?src text with
  | Ok p -> p
  | Result.Error e -> raise (Error (e.line, error_to_string e))

let to_string (p : Problem.t) =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "problem %s %s %d %d\n" p.Problem.name
    (string_of_kind p.Problem.kind)
    p.Problem.width p.Problem.height;
  (* The default 2-layer h/v stack is not emitted, keeping pre-existing
     problem files byte-identical (same convention as class lines). *)
  if not (Problem.default_stack p) then begin
    addf "layers %d" p.Problem.layers;
    Array.iter (fun h -> addf " %s" (if h then "h" else "v")) p.Problem.layer_dirs;
    addf "\n"
  end;
  List.iter
    (fun (o : Problem.obstruction) ->
      let r = o.Problem.obs_rect in
      addf "obstruct %s %d %d %d %d\n"
        (match o.Problem.obs_layer with None -> "*" | Some l -> string_of_int l)
        r.Geom.Rect.x0 r.Geom.Rect.y0 r.Geom.Rect.x1 r.Geom.Rect.y1)
    p.Problem.obstructions;
  Array.iter
    (fun (n : Net.t) ->
      addf "net %s\n" n.Net.name;
      List.iter
        (fun (pin : Net.pin) ->
          addf "pin %d %d %d\n" pin.Net.x pin.Net.y pin.Net.layer)
        n.Net.pins)
    p.Problem.nets;
  (* Class lines follow the net blocks; [Signal] is the default and is
     not emitted, keeping pre-existing problem files byte-identical. *)
  Array.iter
    (fun (n : Net.t) ->
      if n.Net.cls <> Net.Signal then
        addf "class %s %s\n" n.Net.name (Net.cls_to_string n.Net.cls))
    p.Problem.nets;
  List.iter
    (fun (pw : Problem.prewire) ->
      let net_name = (Problem.net p pw.Problem.pre_net).Net.name in
      addf "prewire %s %s\n" net_name
        (if pw.Problem.pre_fixed then "fixed" else "loose");
      List.iter
        (fun (layer, x, y) -> addf "cell %d %d %d\n" layer x y)
        pw.Problem.pre_cells)
    p.Problem.prewires;
  List.iter
    (fun (inst : Problem.inst) ->
      addf "inst %s %d %d %s%s\n" inst.Problem.inst_name inst.Problem.inst_w
        inst.Problem.inst_h
        (if inst.Problem.inst_fixed then "fixed" else "free")
        (match inst.Problem.inst_loc with
        | None -> ""
        | Some (x, y) -> Printf.sprintf " %d %d" x y);
      List.iter
        (fun (ip : Problem.ipin) ->
          addf "ipin %s %d %d %d\n"
            (Problem.net p ip.Problem.ip_net).Net.name
            ip.Problem.ip_dx ip.Problem.ip_dy ip.Problem.ip_layer)
        inst.Problem.inst_pins)
    p.Problem.insts;
  Buffer.contents buf

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string ~src:path text
  | exception Sys_error msg ->
      Result.Error { src = path; line = 0; col = 0; msg }

let load_exn path =
  match load path with
  | Ok p -> p
  | Result.Error e -> raise (Error (e.line, error_to_string e))

let save path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc
