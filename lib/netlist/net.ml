type pin = { x : int; y : int; layer : int }

type cls = Signal | Clock | Power

type t = { id : int; name : string; cls : cls; pins : pin list }

let pin ?(layer = 0) x y = { x; y; layer }

let cls_to_string = function
  | Signal -> "signal"
  | Clock -> "clock"
  | Power -> "power"

let cls_of_string = function
  | "signal" -> Some Signal
  | "clock" -> Some Clock
  | "power" -> Some Power
  | _ -> None

let make ?(cls = Signal) ~id ~name pins =
  if id <= 0 then invalid_arg "Net.make: ids are positive";
  let positions = List.map (fun p -> (p.x, p.y, p.layer)) pins in
  let sorted = List.sort_uniq compare positions in
  if List.length sorted <> List.length positions then
    invalid_arg (Printf.sprintf "Net.make: duplicate pins in net %s" name);
  { id; name; cls; pins }

let pin_count n = List.length n.pins

let is_trivial n = pin_count n < 2

let bounding_box n =
  Geom.Rect.hull_points (List.map (fun p -> Geom.Point.make p.x p.y) n.pins)

let half_perimeter n =
  match bounding_box n with
  | None -> 0
  | Some box -> Geom.Rect.half_perimeter box

let pp_pin fmt p = Format.fprintf fmt "(%d,%d)L%d" p.x p.y p.layer

let pp fmt n =
  Format.fprintf fmt "net %s#%d [%a]" n.name n.id
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pin)
    n.pins
