(** Constructors for the two classical problem shapes.

    Channel and switchbox problems are conventionally specified as arrays of
    net ids along the region boundaries (0 meaning "no pin here"); these
    builders turn such boundary maps into full {!Problem.t} values.

    Conventions (matching two-layer HV technology):
    - layer 0 is horizontal-preferred, layer 1 vertical-preferred;
    - channel: [columns × (tracks + 2)] grid; the bottom pin row is [y = 0]
      and the top pin row [y = tracks + 1]; pins sit on layer 1; pin-row
      cells without pins are obstructed so wiring cannot use the pin rows
      as a free track;
    - switchbox: the whole [width × height] box is routable; top/bottom
      pins sit on layer 1, left/right pins on layer 0. *)

val channel :
  ?name:string -> tracks:int -> top:int array -> bottom:int array -> unit ->
  Problem.t
(** [channel ~tracks ~top ~bottom ()] builds a channel problem.  [top] and
    [bottom] must have equal length (the column count); entries are net ids
    or 0.  Net ids need not be consecutive; they are compacted to [1..k]
    (preserving relative order) and named ["n<original-id>"].
    @raise Invalid_argument on mismatched lengths or negative ids. *)

val switchbox :
  ?name:string ->
  width:int ->
  height:int ->
  ?top:int array ->
  ?bottom:int array ->
  ?left:int array ->
  ?right:int array ->
  unit ->
  Problem.t
(** Boundary maps default to all-zero.  [top]/[bottom] have length [width];
    [left]/[right] length [height].  A corner cell may be pinned from both
    of its sides only with the same net id (the duplicate is dropped).
    @raise Invalid_argument on bad lengths or conflicting corner pins. *)

val of_pins_in_outline :
  ?name:string ->
  outline:Geom.Outline.t ->
  (int * Net.pin) list ->
  Problem.t
(** Build an irregular routing region: the problem spans the outline's
    bounding box (which must sit in the non-negative quadrant) and every
    cell outside the outline is obstructed on both layers.  Pins must lie
    inside the outline. *)

val of_pins :
  ?name:string ->
  ?kind:Problem.kind ->
  ?obstructions:Problem.obstruction list ->
  ?layers:int ->
  ?layer_dirs:bool array ->
  width:int ->
  height:int ->
  (int * Net.pin) list ->
  Problem.t
(** Generic builder from [(net id, pin)] pairs, compacting ids to [1..k].
    [layers]/[layer_dirs] select the layer stack (default: 2-layer HV),
    as in {!Problem.make}. *)
