let net_span (n : Net.t) =
  match n.Net.pins with
  | [] -> None
  | p :: rest ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (q : Net.pin) -> (min lo q.Net.x, max hi q.Net.x))
          (p.Net.x, p.Net.x) rest
      in
      Some (Geom.Interval.make lo hi)

let column_density (p : Problem.t) =
  let density = Array.make p.Problem.width 0 in
  Array.iter
    (fun n ->
      if not (Net.is_trivial n) then
        match net_span n with
        | None -> ()
        | Some span ->
            for x = span.Geom.Interval.lo to span.Geom.Interval.hi do
              density.(x) <- density.(x) + 1
            done)
    p.Problem.nets;
  density

let channel_density p = Array.fold_left max 0 (column_density p)

let cuts_along (p : Problem.t) ~count ~coord =
  (* cuts.(i) separates coordinate i from i+1. *)
  let cuts = Array.make (max 0 (count - 1)) 0 in
  Array.iter
    (fun (n : Net.t) ->
      match n.Net.pins with
      | [] | [ _ ] -> ()
      | pins ->
          let cs = List.map coord pins in
          let lo = List.fold_left min (List.hd cs) cs
          and hi = List.fold_left max (List.hd cs) cs in
          for i = lo to hi - 1 do
            cuts.(i) <- cuts.(i) + 1
          done)
    p.Problem.nets;
  cuts

let vertical_cuts p =
  cuts_along p ~count:p.Problem.width ~coord:(fun (pin : Net.pin) -> pin.Net.x)

let horizontal_cuts p =
  cuts_along p ~count:p.Problem.height ~coord:(fun (pin : Net.pin) -> pin.Net.y)

let max_vertical_cut p = Array.fold_left max 0 (vertical_cuts p)

let max_horizontal_cut p = Array.fold_left max 0 (horizontal_cuts p)

let net_bbox ?(halo = 0) (n : Net.t) =
  Option.map (fun r -> Geom.Rect.inflate r halo) (Net.bounding_box n)

let switchbox_track_lower_bound p =
  max (max_vertical_cut p) (max_horizontal_cut p)

let wirelength_lower_bound (p : Problem.t) =
  Array.fold_left (fun acc n -> acc + Net.half_perimeter n) 0 p.Problem.nets

let demand_map (p : Problem.t) =
  let w = p.Problem.width and h = p.Problem.height in
  let demand = Array.make (w * h) 0.0 in
  Array.iter
    (fun (n : Net.t) ->
      if not (Net.is_trivial n) then
        match Net.bounding_box n with
        | None -> ()
        | Some box ->
            (* Half-perimeter wirelength spread over the box area: expected
               track usage per cell. *)
            let wl = float_of_int (max 1 (Geom.Rect.half_perimeter box)) in
            let area = float_of_int (Geom.Rect.area box) in
            Geom.Rect.iter box (fun x y ->
                demand.((y * w) + x) <- demand.((y * w) + x) +. (wl /. area)))
    p.Problem.nets;
  List.iter
    (fun (o : Problem.obstruction) ->
      if o.Problem.obs_layer = None then
        Geom.Rect.iter o.Problem.obs_rect (fun x y ->
            if x >= 0 && x < w && y >= 0 && y < h then
              demand.((y * w) + x) <- infinity))
    p.Problem.obstructions;
  demand

let demand_at (p : Problem.t) demand ~x ~y = demand.((y * p.Problem.width) + x)

let overflow_estimate p =
  let demand = demand_map p in
  let cells = Array.length demand in
  let over =
    Array.fold_left
      (fun acc d -> if d > 2.0 && d <> infinity then acc + 1 else acc)
      0 demand
  in
  if cells = 0 then 0.0 else float_of_int over /. float_of_int cells
