(** A complete detailed-routing problem.

    The problem owns the immutable description — region size and shape,
    obstructions, nets with their pins, and optional pre-existing wiring —
    and knows how to instantiate a fresh routing {!Grid.t} from it.  The
    router mutates instantiated grids, never the problem. *)

type kind =
  | Switchbox  (** pins on all four boundaries *)
  | Channel  (** pins on top/bottom, open left/right *)
  | Region  (** free-form: obstacles, interior pins *)

type obstruction = {
  obs_layer : int option;  (** [None] blocks both layers *)
  obs_rect : Geom.Rect.t;
}

type prewire = {
  pre_net : int;  (** net id owning this wiring *)
  pre_cells : (int * int * int) list;  (** (layer, x, y) cells *)
  pre_fixed : bool;  (** fixed wiring may never be ripped up *)
}

type t = private {
  name : string;
  width : int;
  height : int;
  kind : kind;
  nets : Net.t array;  (** [nets.(i)] has id [i + 1] *)
  obstructions : obstruction list;
  prewires : prewire list;
}

val make :
  ?kind:kind ->
  ?obstructions:obstruction list ->
  ?prewires:prewire list ->
  name:string ->
  width:int ->
  height:int ->
  Net.t list ->
  t
(** Validates and freezes a problem description.
    @raise Invalid_argument when net ids are not consecutive from 1, pins
    fall out of bounds or on obstructions, two nets share a pin cell, or
    pre-existing wiring conflicts with pins/obstructions. *)

val net_count : t -> int

val net : t -> int -> Net.t
(** Net by id.  @raise Invalid_argument for an unknown id. *)

val find_net : t -> string -> Net.t option
(** Net by name. *)

val nontrivial_net_ids : t -> int list
(** Ids of nets with ≥ 2 pins, ascending. *)

val pin_cells : t -> (int * Net.pin) list
(** All (net id, pin) pairs of the problem. *)

val instantiate : t -> Grid.t
(** Fresh grid: obstructions marked, every pin cell occupied by its net, and
    pre-existing wiring laid down (with vias where a prewire occupies both
    layers of a position). *)

val total_pins : t -> int

val pp : Format.formatter -> t -> unit
(** One-line summary (name, size, net/pin counts). *)
