(** A complete detailed-routing problem.

    The problem owns the immutable description — region size and shape,
    obstructions, nets with their pins, and optional pre-existing wiring —
    and knows how to instantiate a fresh routing {!Grid.t} from it.  The
    router mutates instantiated grids, never the problem. *)

type kind =
  | Switchbox  (** pins on all four boundaries *)
  | Channel  (** pins on top/bottom, open left/right *)
  | Region  (** free-form: obstacles, interior pins *)

type obstruction = {
  obs_layer : int option;  (** [None] blocks every layer *)
  obs_rect : Geom.Rect.t;
}

type prewire = {
  pre_net : int;  (** net id owning this wiring *)
  pre_cells : (int * int * int) list;  (** (layer, x, y) cells *)
  pre_fixed : bool;  (** fixed wiring may never be ripped up *)
}

type ipin = {
  ip_net : int;  (** net id the pin belongs to *)
  ip_dx : int;  (** offset from the instance origin; outside the footprint *)
  ip_dy : int;
  ip_layer : int;
}

type inst = {
  inst_name : string;
  inst_w : int;  (** footprint size; blocks both layers when realized *)
  inst_h : int;
  inst_fixed : bool;  (** the placer may never move a fixed instance *)
  inst_loc : (int * int) option;  (** lower-left origin; [None] = unplaced *)
  inst_pins : ipin list;
}

type t = private {
  name : string;
  width : int;
  height : int;
  layers : int;  (** routing layers; 2 unless the problem says otherwise *)
  layer_dirs : bool array;
      (** per-layer horizontal preference; alternating H/V by default *)
  kind : kind;
  nets : Net.t array;  (** [nets.(i)] has id [i + 1] *)
  obstructions : obstruction list;
  prewires : prewire list;
  insts : inst list;  (** placement section; empty for plain problems *)
}

val make :
  ?kind:kind ->
  ?obstructions:obstruction list ->
  ?prewires:prewire list ->
  ?insts:inst list ->
  ?layers:int ->
  ?layer_dirs:bool array ->
  name:string ->
  width:int ->
  height:int ->
  Net.t list ->
  t
(** Validates and freezes a problem description.
    @raise Invalid_argument when net ids are not consecutive from 1, pins
    fall out of bounds or on obstructions, two nets share a pin cell,
    pre-existing wiring conflicts with pins/obstructions, or the placement
    section is malformed (duplicate/empty instances, pin offsets inside a
    footprint, fixed instances without a location, placed footprints out
    of bounds). *)

val default_stack : t -> bool
(** The problem uses the default layer stack (2 layers, H then V) — the
    one the printer elides, keeping historical problem files
    byte-identical. *)

val net_count : t -> int

val net : t -> int -> Net.t
(** Net by id.  @raise Invalid_argument for an unknown id. *)

val find_net : t -> string -> Net.t option
(** Net by name. *)

val nontrivial_net_ids : t -> int list
(** Ids of nets with ≥ 2 pins, ascending. *)

val pin_cells : t -> (int * Net.pin) list
(** All (net id, pin) pairs of the problem. *)

val instantiate : t -> Grid.t
(** Fresh grid: obstructions marked, every pin cell occupied by its net, and
    pre-existing wiring laid down (with via pairs where a prewire occupies
    two adjacent layers of a position). *)

val total_pins : t -> int

val has_insts : t -> bool
(** The problem carries a placement section. *)

val placed : t -> bool
(** Every instance has a location (vacuously true without instances). *)

val find_inst : t -> string -> inst option

val inst_rect : inst -> Geom.Rect.t option
(** Footprint rectangle of a placed instance; [None] when unplaced. *)

val with_placement : t -> (string * (int * int)) list -> t
(** Re-validated copy with the named free instances moved to the given
    lower-left origins; instances not named keep their location.
    @raise Invalid_argument when a named instance is fixed or the new
    placement fails validation. *)

val realize : t -> t
(** Collapse the placement section into a plain routable problem: each
    footprint becomes a both-layer obstruction and each instance pin an
    absolute net pin (appended in instance declaration order).  The
    result has no instances, so [realize] is idempotent.  Returns [p]
    unchanged when there are no instances.
    @raise Invalid_argument when an instance is unplaced or the realized
    geometry fails validation (overlapping pins, pins on footprints). *)

val pp : Format.formatter -> t -> unit
(** One-line summary (name, size, net/pin counts). *)
