(** Nets and pins.

    A net is a set of electrically equivalent pins that the router must
    connect.  Pins sit on a specific layer of a grid cell; a pin cell is
    reserved for its net from the start (it can never be an obstacle or be
    claimed by another net). *)

type pin = { x : int; y : int; layer : int }

type cls =
  | Signal  (** ordinary nets — the default *)
  | Clock  (** timing-critical: routed first, pays extra for detours *)
  | Power  (** supply rails: reserved capacity share in global routing *)

type t = {
  id : int;  (** positive; doubles as the grid occupancy value *)
  name : string;
  cls : cls;  (** routing class; [Signal] unless declared otherwise *)
  pins : pin list;
}

val pin : ?layer:int -> int -> int -> pin
(** [pin x y] with [layer] defaulting to 0. *)

val cls_to_string : cls -> string
(** ["signal"] / ["clock"] / ["power"] — the FORMAT.md spelling. *)

val cls_of_string : string -> cls option

val make : ?cls:cls -> id:int -> name:string -> pin list -> t
(** @raise Invalid_argument on a non-positive id or duplicate pin
    positions within the net.  [cls] defaults to {!Signal}. *)

val pin_count : t -> int

val is_trivial : t -> bool
(** Fewer than two pins: nothing to route. *)

val bounding_box : t -> Geom.Rect.t option
(** Planar bounding box of the pins; [None] when the net has no pins. *)

val half_perimeter : t -> int
(** Half-perimeter of the bounding box (0 for trivial nets) — the standard
    wirelength lower bound used for net ordering. *)

val pp_pin : Format.formatter -> pin -> unit

val pp : Format.formatter -> t -> unit
