(** Congestion analysis and routability lower bounds.

    These quantities drive net ordering, workload calibration and the
    "routed in density" claims of the experiments. *)

val net_span : Net.t -> Geom.Interval.t option
(** Horizontal span of the net's pins ([None] for pinless nets). *)

val channel_density : Problem.t -> int
(** Classical channel (local) density: the maximum over columns of the
    number of nets whose horizontal pin span covers the column.  For a
    two-layer channel this is a lower bound on the number of tracks. *)

val column_density : Problem.t -> int array
(** Per-column local density (length = problem width). *)

val vertical_cuts : Problem.t -> int array
(** [cuts.(x)] = number of nets having pins both in columns ≤ x and in
    columns > x (length = width - 1).  Every such net must cross the cut. *)

val horizontal_cuts : Problem.t -> int array
(** Same across horizontal cut lines (length = height - 1). *)

val max_vertical_cut : Problem.t -> int

val max_horizontal_cut : Problem.t -> int

val net_bbox : ?halo:int -> Net.t -> Geom.Rect.t option
(** Pin bounding box grown by [halo] cells on every side ([None] for
    pinless nets).  The speculative wave scheduler uses halo-inflated pin
    boxes as a cheap spatial-independence predictor: nets whose inflated
    boxes are disjoint rarely contend for cells. *)

val switchbox_track_lower_bound : Problem.t -> int
(** Max cut flow in either direction: a two-layer switchbox needs at least
    this many rows/columns available in the crossing direction. *)

val wirelength_lower_bound : Problem.t -> int
(** Sum over nets of the pin bounding-box half-perimeter. *)

val demand_map : Problem.t -> float array
(** Pre-routing congestion estimate: every net spreads one unit of demand
    uniformly over its pin bounding box (the classical probabilistic
    usage model), accumulated per planar cell (index [y·width + x]).
    Cells under both-layer obstructions get infinite demand. *)

val demand_at : Problem.t -> float array -> x:int -> y:int -> float

val overflow_estimate : Problem.t -> float
(** Fraction of cells whose estimated demand exceeds the two-layer cell
    capacity (2.0) — a quick routability predictor used by the workload
    calibration. *)
