(** Plain-text problem format: parser and printer.

    The format is line-based:
    {v
    # comment
    problem <name> <switchbox|channel|region> <width> <height>
    obstruct <layer|*> <x0> <y0> <x1> <y1>
    net <name>
    pin <x> <y> [layer]
    prewire <net-name> <fixed|loose>
    cell <layer> <x> <y>
    v}
    A [net] line opens a net; subsequent [pin] lines belong to it.  A
    [prewire] line opens a pre-existing wire for the named net; subsequent
    [cell] lines belong to it.  Net ids are assigned in order of appearance.
    [to_string] followed by [of_string] round-trips a problem (up to
    obstruction merging).

    Parsing never raises: {!of_string} and {!load} return a [result] whose
    error carries the source name (file path, or ["<string>"] /
    ["<stdin>"] for in-memory input) and the 1-based line and column of
    the offending token.  The [_exn] variants raise {!Error} for callers
    that prefer exceptions. *)

type error = {
  src : string;
      (** where the text came from: the file path for {!load}, the
          [?src] argument of {!of_string} (default ["<string>"]) *)
  line : int;  (** 1-based; 0 for file-level or semantic errors *)
  col : int;  (** 1-based column of the offending token; 0 if unknown *)
  msg : string;
}

val error_to_string : error -> string
(** ["src: line L, column C: msg"], or ["src: msg"] for position-less
    errors — always prefixed with the source name. *)

exception Error of int * string
(** Raised only by the [_exn] entry points: 1-based line number (0 when
    unknown) and rendered message (which includes the source name). *)

val of_string : ?src:string -> string -> (Problem.t, error) result
(** Parse a problem description.  Syntax errors carry their position;
    semantic validation failures ({!Problem.make}, {!Net.make}) are
    reported with [line = 0] and the validation message.  [src] (default
    ["<string>"]) names the source in errors — pass ["<stdin>"] when
    parsing piped input. *)

val of_string_exn : ?src:string -> string -> Problem.t
(** @raise Error on any parse or validation failure. *)

val to_string : Problem.t -> string

val load : string -> (Problem.t, error) result
(** Read a problem from a file path; I/O failures (missing file,
    permissions) are reported as position-less errors. *)

val load_exn : string -> Problem.t
(** @raise Error on any I/O, parse or validation failure. *)

val save : string -> Problem.t -> unit
