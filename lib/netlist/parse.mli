(** Plain-text problem format: parser and printer.

    The format is line-based:
    {v
    # comment
    problem <name> <switchbox|channel|region> <width> <height>
    obstruct <layer|*> <x0> <y0> <x1> <y1>
    net <name>
    pin <x> <y> [layer]
    prewire <net-name> <fixed|loose>
    cell <layer> <x> <y>
    v}
    A [net] line opens a net; subsequent [pin] lines belong to it.  A
    [prewire] line opens a pre-existing wire for the named net; subsequent
    [cell] lines belong to it.  Net ids are assigned in order of appearance.
    [to_string] followed by [of_string] round-trips a problem (up to
    obstruction merging). *)

exception Error of int * string
(** Parse error: 1-based line number and message. *)

val of_string : string -> Problem.t
(** @raise Error on malformed input, [Invalid_argument] on a description
    that fails {!Problem.make} validation. *)

val to_string : Problem.t -> string

val load : string -> Problem.t
(** Read a problem from a file path. *)

val save : string -> Problem.t -> unit
