(** Axis-aligned integer rectangles, inclusive of both corners.

    Rectangles describe region outlines, obstruction footprints and net
    bounding boxes. *)

type t = { x0 : int; y0 : int; x1 : int; y1 : int }

val make : int -> int -> int -> int -> t
(** [make x0 y0 x1 y1]; corners may be given in any order. *)

val of_points : Point.t -> Point.t -> t

val width : t -> int

val height : t -> int

val area : t -> int

val half_perimeter : t -> int
(** Half-perimeter wirelength estimate of the box. *)

val mem : t -> int -> int -> bool

val mem_point : t -> Point.t -> bool

val overlap : t -> t -> bool

val intersection : t -> t -> t option

val hull : t -> t -> t

val hull_points : Point.t list -> t option
(** Bounding box of a point set; [None] for the empty list. *)

val inflate : t -> int -> t
(** Grow (or shrink, negative) the rectangle by a margin on all sides. *)

val contains : t -> t -> bool
(** [contains outer inner]. *)

val iter : t -> (int -> int -> unit) -> unit
(** Visit every integer cell of the rectangle, row-major. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
