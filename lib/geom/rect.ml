type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let make a b c d =
  { x0 = min a c; y0 = min b d; x1 = max a c; y1 = max b d }

let of_points (p : Point.t) (q : Point.t) = make p.Point.x p.Point.y q.Point.x q.Point.y

let width r = r.x1 - r.x0 + 1

let height r = r.y1 - r.y0 + 1

let area r = width r * height r

let half_perimeter r = (width r - 1) + (height r - 1)

let mem r x y = r.x0 <= x && x <= r.x1 && r.y0 <= y && y <= r.y1

let mem_point r (p : Point.t) = mem r p.Point.x p.Point.y

let overlap a b = a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

let intersection a b =
  let x0 = max a.x0 b.x0
  and y0 = max a.y0 b.y0
  and x1 = min a.x1 b.x1
  and y1 = min a.y1 b.y1 in
  if x0 <= x1 && y0 <= y1 then Some { x0; y0; x1; y1 } else None

let hull a b =
  { x0 = min a.x0 b.x0;
    y0 = min a.y0 b.y0;
    x1 = max a.x1 b.x1;
    y1 = max a.y1 b.y1 }

let hull_points = function
  | [] -> None
  | p :: rest ->
      let single (q : Point.t) = of_points q q in
      Some (List.fold_left (fun acc q -> hull acc (single q)) (single p) rest)

let inflate r m = { x0 = r.x0 - m; y0 = r.y0 - m; x1 = r.x1 + m; y1 = r.y1 + m }

let contains outer inner =
  outer.x0 <= inner.x0 && outer.y0 <= inner.y0
  && inner.x1 <= outer.x1 && inner.y1 <= outer.y1

let iter r f =
  for y = r.y0 to r.y1 do
    for x = r.x0 to r.x1 do
      f x y
    done
  done

let equal a b = a.x0 = b.x0 && a.y0 = b.y0 && a.x1 = b.x1 && a.y1 = b.y1

let pp fmt r = Format.fprintf fmt "[%d,%d..%d,%d]" r.x0 r.y0 r.x1 r.y1
