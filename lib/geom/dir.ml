type t = North | South | East | West

let all = [ North; South; East; West ]

let delta = function
  | North -> (0, 1)
  | South -> (0, -1)
  | East -> (1, 0)
  | West -> (-1, 0)

let opposite = function
  | North -> South
  | South -> North
  | East -> West
  | West -> East

let is_horizontal = function East | West -> true | North | South -> false

let is_vertical d = not (is_horizontal d)

let perpendicular = function
  | North | South -> (East, West)
  | East | West -> (North, South)

let of_step dx dy =
  match (dx, dy) with
  | 0, 1 -> Some North
  | 0, -1 -> Some South
  | 1, 0 -> Some East
  | -1, 0 -> Some West
  | _, _ -> None

let to_string = function
  | North -> "N"
  | South -> "S"
  | East -> "E"
  | West -> "W"

let pp fmt d = Format.pp_print_string fmt (to_string d)
