(** Integer grid points. *)

type t = { x : int; y : int }

val make : int -> int -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val add : t -> t -> t

val sub : t -> t -> t

val manhattan : t -> t -> int
(** L1 distance — the routing metric. *)

val chebyshev : t -> t -> int
(** L-infinity distance. *)

val adjacent : t -> t -> bool
(** True when the points are distinct 4-neighbours. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
