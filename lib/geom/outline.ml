type t = Rect.t list

let of_rects = function
  | [] -> invalid_arg "Outline.of_rects: empty outline"
  | rects -> rects

let rects o = o

let mem o x y = List.exists (fun r -> Rect.mem r x y) o

let bounding_box = function
  | r :: rest -> List.fold_left Rect.hull r rest
  | [] -> assert false (* of_rects forbids it *)

let area o =
  let box = bounding_box o in
  let count = ref 0 in
  Rect.iter box (fun x y -> if mem o x y then incr count);
  !count

let l_shape ~width ~height ~notch_w ~notch_h =
  if notch_w < 1 || notch_h < 1 || notch_w >= width || notch_h >= height then
    invalid_arg "Outline.l_shape: notch must fit strictly inside";
  of_rects
    [
      Rect.make 0 0 (width - 1) (height - notch_h - 1);
      Rect.make 0 (height - notch_h) (width - notch_w - 1) (height - 1);
    ]

let t_shape ~width ~height ~stem_w ~stem_h =
  if stem_w < 1 || stem_h < 1 || stem_w > width || stem_h >= height then
    invalid_arg "Outline.t_shape: stem must fit";
  let stem_x0 = (width - stem_w) / 2 in
  of_rects
    [
      Rect.make 0 stem_h (width - 1) (height - 1);
      Rect.make stem_x0 0 (stem_x0 + stem_w - 1) (stem_h - 1);
    ]

(* Per-row runs of complement cells, merged vertically when identical runs
   stack on consecutive rows. *)
let complement_rects ~within o =
  let runs_of_row y =
    let runs = ref [] in
    let start = ref None in
    for x = within.Rect.x0 to within.Rect.x1 do
      if not (mem o x y) then begin
        if !start = None then start := Some x
      end
      else begin
        (match !start with
        | Some s -> runs := (s, x - 1) :: !runs
        | None -> ());
        start := None
      end
    done;
    (match !start with
    | Some s -> runs := (s, within.Rect.x1) :: !runs
    | None -> ());
    List.rev !runs
  in
  (* open_rects: (x0, x1, y_start) for runs continuing from the previous
     row. *)
  let finished = ref [] in
  let close_all open_rects y =
    List.iter
      (fun (x0, x1, y0) -> finished := Rect.make x0 y0 x1 (y - 1) :: !finished)
      open_rects
  in
  let final_open =
    let rec sweep y open_rects =
      if y > within.Rect.y1 then open_rects
      else begin
        let runs = runs_of_row y in
        let continued, closed =
          List.partition
            (fun (x0, x1, _) -> List.mem (x0, x1) runs)
            open_rects
        in
        close_all closed y;
        let fresh =
          List.filter_map
            (fun (x0, x1) ->
              if List.exists (fun (a, b, _) -> a = x0 && b = x1) continued
              then None
              else Some (x0, x1, y))
            runs
        in
        sweep (y + 1) (continued @ fresh)
      end
    in
    sweep within.Rect.y0 []
  in
  close_all final_open (within.Rect.y1 + 1);
  List.rev !finished
