type t = { lo : int; hi : int }

let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }

let length i = i.hi - i.lo + 1

let mem x i = i.lo <= x && x <= i.hi

let overlap a b = a.lo <= b.hi && b.lo <= a.hi

let touch_or_overlap a b = a.lo <= b.hi + 1 && b.lo <= a.hi + 1

let intersection a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let contains outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi

let shift i d = { lo = i.lo + d; hi = i.hi + d }

let compare_lo a b =
  let c = Int.compare a.lo b.lo in
  if c <> 0 then c else Int.compare a.hi b.hi

(* Sweep the sorted endpoint events; +1 at lo, -1 just after hi.  Openings at
   a coordinate are processed before closings at coordinate - 1 by encoding
   events as (coordinate, kind) with openings sorted first. *)
let max_clique intervals =
  let events =
    List.concat_map (fun i -> [ (i.lo, 1); (i.hi + 1, -1) ]) intervals
  in
  let events =
    List.sort
      (fun (x1, k1) (x2, k2) ->
        let c = Int.compare x1 x2 in
        if c <> 0 then c else Int.compare k1 k2)
      events
  in
  let _, best =
    List.fold_left
      (fun (cur, best) (_, k) ->
        let cur = cur + k in
        (cur, max best cur))
      (0, 0) events
  in
  best

let pp fmt i = Format.fprintf fmt "[%d,%d]" i.lo i.hi
