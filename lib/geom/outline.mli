(** Rectilinear outlines: unions of axis-aligned rectangles.

    Routing regions in macro-cell layouts are rarely rectangles — L- and
    T-shaped channels between blocks are the norm.  An outline describes
    such a region as a union of rectangles; the complement decomposition
    turns it into the obstruction list a routing problem needs. *)

type t

val of_rects : Rect.t list -> t
(** Union of the rectangles (overlap allowed).
    @raise Invalid_argument on the empty list. *)

val rects : t -> Rect.t list
(** The defining rectangles (as given, unnormalised). *)

val mem : t -> int -> int -> bool
(** Cell membership in the union. *)

val bounding_box : t -> Rect.t

val area : t -> int
(** Number of cells in the union (overlaps counted once). *)

val l_shape :
  width:int -> height:int -> notch_w:int -> notch_h:int -> t
(** An L: the [width × height] rectangle with a [notch_w × notch_h] bite
    removed from its top-right corner.
    @raise Invalid_argument when the notch does not fit strictly inside. *)

val t_shape : width:int -> height:int -> stem_w:int -> stem_h:int -> t
(** A T: a horizontal bar of [width × (height - stem_h)] on top, and a
    centred stem of [stem_w × stem_h] below it. *)

val complement_rects : within:Rect.t -> t -> Rect.t list
(** Decompose [within \ outline] into disjoint rectangles (maximal
    per-row runs merged vertically) — ready to use as both-layer
    obstructions carving the outline out of a grid. *)
