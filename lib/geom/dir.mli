(** The four planar routing directions. *)

type t = North | South | East | West

val all : t list

val delta : t -> int * int
(** Unit [(dx, dy)] step; [North] increases [y]. *)

val opposite : t -> t

val is_horizontal : t -> bool

val is_vertical : t -> bool

val perpendicular : t -> t * t
(** The two directions orthogonal to the argument. *)

val of_step : int -> int -> t option
(** [of_step dx dy] recovers the direction of a unit step, or [None] if the
    step is not a unit 4-neighbour move. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
