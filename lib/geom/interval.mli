(** Closed integer intervals [\[lo, hi\]].

    Channel routing reasons almost entirely in terms of horizontal spans of
    nets; density and left-edge track assignment are interval problems. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make a b] is the interval spanning both endpoints, in either order. *)

val length : t -> int
(** Number of integer points covered ([hi - lo + 1]). *)

val mem : int -> t -> bool

val overlap : t -> t -> bool
(** Closed-interval intersection test (shared endpoint counts). *)

val touch_or_overlap : t -> t -> bool
(** True also when the intervals are adjacent ([hi + 1 = lo']). *)

val intersection : t -> t -> t option

val hull : t -> t -> t
(** Smallest interval containing both. *)

val contains : t -> t -> bool
(** [contains outer inner]. *)

val shift : t -> int -> t

val compare_lo : t -> t -> int
(** Order by left endpoint, then right — the left-edge order. *)

val max_clique : t list -> int
(** Maximum number of pairwise-overlapping intervals: the *density* of the
    interval set, computed by an endpoint sweep in O(n log n). *)

val pp : Format.formatter -> t -> unit
