(** Pre-route routability prediction: a closed-form supply/demand model
    over the global router's tile graph, answered without running any
    maze search.

    The predictor prices each net's expected track demand against the
    same per-tile capacities {!Groute.run} routes against:

    - {e supply} — {!Groute.capacities}: unblocked cells (all layers)
      per cell-row of each tile, so macro footprints and blockages
      price themselves out exactly as they do during global routing;
    - {e demand} — the classical probabilistic (flute-style) usage
      model at tile granularity: a Prim/Steiner tree over a net's tile
      bounding box touches about [tbw + tbh - 1] of its [tbw·tbh]
      tiles; that expectation is spread over the {e usable} (nonzero
      supply) tiles of the box, since wiring detours around macro
      footprints rather than through them, with per-tile usage capped
      at the net's full class demand ({!Groute.rule});
    - {e wrong-way pressure} — per net, how much of its span runs in
      directions the layer stack under-serves: a net that is 90%%
      horizontal on a stack with one horizontal layer out of three
      must route wrong-way or via-ladder;
    - {e via pressure} — estimated via pairs per net (pin layer span
      plus two per direction change) against the region's via sites.

    Everything is deterministic and cheap: total work is one
    cell-supply scan plus one tile visit per (net × bbox tile), orders
    of magnitude below a detailed route's node expansions ([cost]
    counts it for comparison).  The verdict's [score] is a calibrated
    monotone map of the pressure terms: higher = more routable, and
    score {e ordering} tracks actual routed overflow ordering across
    instances (see test/test_analyze.ml). *)

type hot_rect = {
  rect : Geom.Rect.t;  (** cell-space tile rectangle *)
  demand : float;  (** estimated track demand of the tile *)
  supply : int;  (** tile capacity ({!Groute.capacities} units) *)
}

type verdict = {
  score : float;  (** routability in (0, 1]; higher = easier *)
  predicted_overflow : float;
      (** estimated overflow units as a fraction of total supply *)
  hot_rects : hot_rect list;
      (** overflowed tiles, most oversubscribed first (capped) *)
}

type t = {
  verdict : verdict;
  tile : int;  (** tile edge length in cells *)
  tiles_x : int;
  tiles_y : int;
  supply : int array;  (** per tile, row-major *)
  demand : float array;  (** per tile, row-major *)
  overflow_tiles : int;  (** tiles with [demand > supply] *)
  wrong_way : float;  (** span-weighted wrong-way fraction, [0, 1] *)
  via_pressure : float;  (** estimated via pairs per available via site *)
  nets : int;  (** non-trivial nets considered *)
  cost : int;
      (** tile visits spent — the expansion-equivalent unit of work,
          directly comparable to (and orders of magnitude below) a
          detailed route's node-expansion count *)
  cells_scanned : int;
      (** cells touched by the linear supply sweep ([w·h·layers]);
          reported separately because a memory sweep step is far cheaper
          than a frontier expansion *)
}

val run : ?tile:int -> ?hot_limit:int -> Netlist.Problem.t -> t
(** Analyze a (realized) problem.  [tile] defaults to 8, clamped like
    {!Groute.run}; [hot_limit] (default 8) caps [verdict.hot_rects].
    Never routes, never mutates the problem. *)

val to_json : t -> Util.Json.t
(** The wire shape served by the [analyze] service op and printed by
    [router_cli analyze --json]; see docs/PROTOCOL.md. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: score, predicted overflow, hot tiles, cost. *)
