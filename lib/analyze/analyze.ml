module J = Util.Json

type hot_rect = { rect : Geom.Rect.t; demand : float; supply : int }

type verdict = {
  score : float;
  predicted_overflow : float;
  hot_rects : hot_rect list;
}

type t = {
  verdict : verdict;
  tile : int;
  tiles_x : int;
  tiles_y : int;
  supply : int array;
  demand : float array;
  overflow_tiles : int;
  wrong_way : float;
  via_pressure : float;
  nets : int;
  cost : int;
  cells_scanned : int;
}

(* Pin bounding box in cell space; [None] for pinless nets. *)
let bbox (net : Netlist.Net.t) =
  match net.Netlist.Net.pins with
  | [] -> None
  | p :: rest ->
      let x0 = ref p.Netlist.Net.x and x1 = ref p.Netlist.Net.x in
      let y0 = ref p.Netlist.Net.y and y1 = ref p.Netlist.Net.y in
      List.iter
        (fun (q : Netlist.Net.pin) ->
          if q.Netlist.Net.x < !x0 then x0 := q.Netlist.Net.x;
          if q.Netlist.Net.x > !x1 then x1 := q.Netlist.Net.x;
          if q.Netlist.Net.y < !y0 then y0 := q.Netlist.Net.y;
          if q.Netlist.Net.y > !y1 then y1 := q.Netlist.Net.y)
        rest;
      Some (Geom.Rect.make !x0 !y0 !x1 !y1)

let layer_span (net : Netlist.Net.t) =
  match net.Netlist.Net.pins with
  | [] -> 0
  | p :: rest ->
      let lo = ref p.Netlist.Net.layer and hi = ref p.Netlist.Net.layer in
      List.iter
        (fun (q : Netlist.Net.pin) ->
          if q.Netlist.Net.layer < !lo then lo := q.Netlist.Net.layer;
          if q.Netlist.Net.layer > !hi then hi := q.Netlist.Net.layer)
        rest;
      !hi - !lo

let run ?(tile = 8) ?(hot_limit = 8) problem =
  let w = problem.Netlist.Problem.width
  and h = problem.Netlist.Problem.height in
  let nlayers = problem.Netlist.Problem.layers in
  let dirs = problem.Netlist.Problem.layer_dirs in
  let tile = max 1 (min tile (max w h)) in
  let tiles_x = (w + tile - 1) / tile
  and tiles_y = (h + tile - 1) / tile in
  let supply = Groute.capacities problem ~tile ~tiles_x ~tiles_y in
  (* [cost] counts tile visits — the expansion-equivalent unit of work
     (each visit updates one priority-weighted quantity, like a frontier
     pop).  The supply scan is a single linear memory sweep over cells
     ([cells_scanned]), far cheaper per step than an expansion; it is
     reported separately rather than conflated into the unit count. *)
  let cost = ref (2 * tiles_x * tiles_y) (* supply + overflow passes *) in
  let cells_scanned = w * h * nlayers in
  let demand = Array.make (tiles_x * tiles_y) 0.0 in
  (* Direction supply of the layer stack: the share of layers that
     prefer each direction.  A balanced HV stack gives 1/2 each; a
     3-layer HVH stack serves horizontal spans with 2/3 of its tracks. *)
  let h_layers = Array.fold_left (fun a d -> if d then a + 1 else a) 0 dirs in
  let h_share = float_of_int h_layers /. float_of_int nlayers in
  let v_share = 1.0 -. h_share in
  let nets = ref 0 in
  let wrong_acc = ref 0.0 and wrong_weight = ref 0.0 in
  let est_vias = ref 0.0 in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      match bbox net with
      | None -> ()
      | Some b when List.length net.Netlist.Net.pins < 2 -> ignore b
      | Some b ->
          incr nets;
          let r = Groute.rule net.Netlist.Net.cls in
          let tx0 = b.Geom.Rect.x0 / tile and tx1 = b.Geom.Rect.x1 / tile in
          let ty0 = b.Geom.Rect.y0 / tile and ty1 = b.Geom.Rect.y1 / tile in
          let tbw = tx1 - tx0 + 1 and tbh = ty1 - ty0 + 1 in
          (* A Prim/Steiner tree over the box touches ~ tbw + tbh - 1 of
             its tbw·tbh tiles.  Spread that expectation over the tiles
             the tree can actually use: a tile with zero supply (a macro
             footprint) carries no wiring — the detailed router detours
             around it — so dumping demand there would predict overflow
             that routing never realizes.  A tile's expected usage is
             capped at the net's full class demand (touch probability is
             at most 1). *)
          let usable = ref 0 in
          for ty = ty0 to ty1 do
            for tx = tx0 to tx1 do
              if supply.((ty * tiles_x) + tx) > 0 then incr usable;
              incr cost
            done
          done;
          let spread = if !usable > 0 then !usable else tbw * tbh in
          let per_tile =
            float_of_int r.Groute.demand
            *. Float.min 1.0
                 (float_of_int (tbw + tbh - 1) /. float_of_int spread)
          in
          for ty = ty0 to ty1 do
            for tx = tx0 to tx1 do
              let i = (ty * tiles_x) + tx in
              if !usable = 0 || supply.(i) > 0 then
                demand.(i) <- demand.(i) +. per_tile;
              incr cost
            done
          done;
          (* Wrong-way pressure: how much of the span the stack's
             preferred directions cannot serve proportionally. *)
          let dx = float_of_int (b.Geom.Rect.x1 - b.Geom.Rect.x0)
          and dy = float_of_int (b.Geom.Rect.y1 - b.Geom.Rect.y0) in
          let span = dx +. dy in
          if span > 0.0 then begin
            let frac_h = dx /. span in
            let wrong =
              Float.max 0.0 (frac_h -. h_share)
              +. Float.max 0.0 ((1.0 -. frac_h) -. v_share)
            in
            wrong_acc := !wrong_acc +. (wrong *. span);
            wrong_weight := !wrong_weight +. span
          end;
          (* Via estimate: pin layer span, plus two pairs per extra pin
             when the net bends (direction changes force layer hops on a
             directional stack). *)
          let bends =
            if dx > 0.0 && dy > 0.0 then
              2 * (List.length net.Netlist.Net.pins - 1)
            else 0
          in
          est_vias := !est_vias +. float_of_int (layer_span net + bends))
    problem.Netlist.Problem.nets;
  let total_supply = Array.fold_left ( + ) 0 supply in
  let over_units = ref 0.0 and overflow_tiles = ref 0 in
  Array.iteri
    (fun i d ->
      let s = float_of_int supply.(i) in
      if d > s then begin
        incr overflow_tiles;
        over_units := !over_units +. (d -. s)
      end)
    demand;
  let predicted_overflow =
    if total_supply = 0 then if !over_units > 0.0 then 1.0 else 0.0
    else Float.min 1.0 (!over_units /. float_of_int total_supply)
  in
  let wrong_way =
    if !wrong_weight = 0.0 then 0.0 else !wrong_acc /. !wrong_weight
  in
  let via_sites = w * h * (nlayers - 1) in
  let via_pressure =
    if via_sites = 0 then 0.0 else !est_vias /. float_of_int via_sites
  in
  (* Calibrated verdict: a monotone squash of the pressure terms.
     Overflow dominates; wrong-way and via pressure are tie-breakers.
     Only the ordering is calibrated (rank-correlates with actual
     routed overflow); absolute values are advisory. *)
  let raw =
    predicted_overflow +. (0.25 *. wrong_way) +. (0.1 *. via_pressure)
  in
  let score = 1.0 /. (1.0 +. (4.0 *. raw)) in
  let hot =
    let idx = Array.init (Array.length demand) Fun.id in
    Array.sort
      (fun a b ->
        compare
          (demand.(b) -. float_of_int supply.(b))
          (demand.(a) -. float_of_int supply.(a)))
      idx;
    let rec take i acc =
      if i >= Array.length idx || List.length acc >= hot_limit then
        List.rev acc
      else
        let t = idx.(i) in
        if demand.(t) <= float_of_int supply.(t) then List.rev acc
        else
          let tx = t mod tiles_x and ty = t / tiles_x in
          let rect =
            Geom.Rect.make (tx * tile) (ty * tile)
              (min (w - 1) (((tx + 1) * tile) - 1))
              (min (h - 1) (((ty + 1) * tile) - 1))
          in
          take (i + 1)
            ({ rect; demand = demand.(t); supply = supply.(t) } :: acc)
    in
    take 0 []
  in
  {
    verdict = { score; predicted_overflow; hot_rects = hot };
    tile;
    tiles_x;
    tiles_y;
    supply;
    demand;
    overflow_tiles = !overflow_tiles;
    wrong_way;
    via_pressure;
    nets = !nets;
    cost = !cost;
    cells_scanned;
  }

let to_json t =
  let rect (r : Geom.Rect.t) =
    J.List
      [
        J.Int r.Geom.Rect.x0; J.Int r.Geom.Rect.y0; J.Int r.Geom.Rect.x1;
        J.Int r.Geom.Rect.y1;
      ]
  in
  J.Obj
    [
      ("score", J.Float t.verdict.score);
      ("predicted_overflow", J.Float t.verdict.predicted_overflow);
      ( "hot_rects",
        J.List
          (List.map
             (fun hr ->
               J.Obj
                 [
                   ("rect", rect hr.rect);
                   ("demand", J.Float hr.demand);
                   ("supply", J.Int hr.supply);
                 ])
             t.verdict.hot_rects) );
      ("tile", J.Int t.tile);
      ("tiles_x", J.Int t.tiles_x);
      ("tiles_y", J.Int t.tiles_y);
      ("overflow_tiles", J.Int t.overflow_tiles);
      ("wrong_way", J.Float t.wrong_way);
      ("via_pressure", J.Float t.via_pressure);
      ("nets", J.Int t.nets);
      ("cost", J.Int t.cost);
      ("cells_scanned", J.Int t.cells_scanned);
    ]

let pp fmt t =
  Format.fprintf fmt
    "score %.3f, predicted overflow %.3f, %d/%d tile(s) hot, wrong-way \
     %.3f, via pressure %.4f, %d net(s), cost %d"
    t.verdict.score t.verdict.predicted_overflow t.overflow_tiles
    (t.tiles_x * t.tiles_y) t.wrong_way t.via_pressure t.nets t.cost
