type t = int list

type step = Planar of Geom.Dir.t | Via | Illegal

let classify g a b =
  let la = Surface.node_layer g a and lb = Surface.node_layer g b in
  let xa = Surface.node_x g a and ya = Surface.node_y g a in
  let xb = Surface.node_x g b and yb = Surface.node_y g b in
  if la <> lb then if xa = xb && ya = yb then Via else Illegal
  else
    match Geom.Dir.of_step (xb - xa) (yb - ya) with
    | Some d -> Planar d
    | None -> Illegal

let rec pairs_ok g = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) ->
      (match classify g a b with Illegal -> false | Planar _ | Via -> true)
      && pairs_ok g rest

let is_valid = pairs_ok

let fold_steps g f init path =
  let rec loop acc = function
    | [] | [ _ ] -> acc
    | a :: (b :: _ as rest) -> loop (f acc (classify g a b)) rest
  in
  loop init path

let wirelength g path =
  fold_steps g
    (fun n s -> match s with Planar _ -> n + 1 | Via | Illegal -> n)
    0 path

let via_steps g path =
  fold_steps g
    (fun n s -> match s with Via -> n + 1 | Planar _ | Illegal -> n)
    0 path

let bends g path =
  let count, _ =
    fold_steps g
      (fun (n, prev) s ->
        match (s, prev) with
        | Planar d, Some d' when d <> d' -> (n + 1, Some d)
        | Planar d, (Some _ | None) -> (n, Some d)
        | (Via | Illegal), _ -> (n, None))
      (0, None) path
  in
  count

let cost ~wire_cost ~via_cost ~bend_cost g path =
  (wire_cost * wirelength g path)
  + (via_cost * via_steps g path)
  + (bend_cost * bends g path)

let endpoints = function
  | [] -> None
  | first :: _ as path ->
      let rec last = function
        | [ x ] -> x
        | _ :: rest -> last rest
        | [] -> assert false
      in
      Some (first, last path)
