(* Dirty-region journal of one layer.  Mutations accumulate into a pending
   rectangle that grows while writes stay near each other (a path being
   occupied, a net being released) and is flushed into a bounded ring of
   recent rectangles when writes jump elsewhere or a consumer queries.
   Consumers hold a [mark] (the ring sequence number at some instant) and
   ask whether a region was written since; once the ring has wrapped past
   a mark the answer is a conservative "yes". *)
type dirt = {
  ring : Geom.Rect.t array;
  freed : Bytes.t; (* parallel to [ring]: did the rect see a release? *)
  mutable seq : int; (* rectangles ever flushed; ring.(i mod cap) = rect i *)
  (* pending rectangle; px0 > px1 encodes empty *)
  mutable px0 : int;
  mutable py0 : int;
  mutable px1 : int;
  mutable py1 : int;
  mutable pfreed : bool;
}

type mark = int array (* per-layer ring sequence numbers *)

type t = {
  w : int;
  h : int;
  nlayers : int;
  hpref : Bytes.t; (* per layer: '\001' = horizontal preferred *)
  occ : int array; (* nlayers*w*h cells: 0 free, -1 obstacle, net id > 0 *)
  via : Bytes.t; (* (nlayers-1)*w*h pair flags; pair l joins layers l,l+1 *)
  mutable n_vias : int;
  dirt : dirt array; (* one journal per layer *)
}

let default_layers = 2

(* Sized so that a handful of rip-up/reroute cycles between refinement
   passes does not wrap the ring: a wrap forgets history and forces every
   consumer (cost cache, refine certificates, lower-bound fields) into
   conservative full invalidation.  512 rects × layers is still tiny,
   and validation scans only the entries written since the queried mark. *)
let dirt_cap = 512

let dirt_capacity = dirt_cap

let make_dirt () =
  {
    ring = Array.make dirt_cap (Geom.Rect.make 0 0 0 0);
    freed = Bytes.make dirt_cap '\000';
    seq = 0;
    px0 = 1;
    py0 = 1;
    px1 = 0;
    py1 = 0;
    pfreed = false;
  }

let dirt_flush d =
  if d.px0 <= d.px1 then begin
    d.ring.(d.seq mod dirt_cap) <- Geom.Rect.make d.px0 d.py0 d.px1 d.py1;
    Bytes.set d.freed (d.seq mod dirt_cap) (if d.pfreed then '\001' else '\000');
    d.seq <- d.seq + 1;
    d.px0 <- 1;
    d.px1 <- 0;
    d.pfreed <- false
  end

(* Coalesce writes within two cells of the pending rectangle (consecutive
   cells of a path segment, a via stack, a shove); farther writes flush
   the pending rectangle so the journal keeps per-segment granularity
   instead of hulling distant mutations together.  The freeing flag is
   OR-coalesced: a rectangle that mixes releases and occupies counts as
   freeing — widening "freeing" is the conservative direction for every
   consumer. *)
let dirt_touch d ~freeing x y =
  if d.px0 > d.px1 then begin
    d.px0 <- x;
    d.py0 <- y;
    d.px1 <- x;
    d.py1 <- y;
    d.pfreed <- freeing
  end
  else if
    x >= d.px0 - 2 && x <= d.px1 + 2 && y >= d.py0 - 2 && y <= d.py1 + 2
  then begin
    if x < d.px0 then d.px0 <- x;
    if x > d.px1 then d.px1 <- x;
    if y < d.py0 then d.py0 <- y;
    if y > d.py1 then d.py1 <- y;
    d.pfreed <- d.pfreed || freeing
  end
  else begin
    dirt_flush d;
    d.px0 <- x;
    d.py0 <- y;
    d.px1 <- x;
    d.py1 <- y;
    d.pfreed <- freeing
  end

let obstacle = -1

let free = 0

(* The default stack alternates horizontal/vertical starting at layer 0
   horizontal — exactly the frozen two-layer convention, extended. *)
let default_dirs n = Array.init n (fun l -> l land 1 = 0)

let create ?(layers = default_layers) ?dirs ~width ~height () =
  if width <= 0 || height <= 0 then invalid_arg "Surface.create: empty grid";
  if layers < 2 then invalid_arg "Surface.create: at least two layers";
  let dirs = match dirs with Some d -> d | None -> default_dirs layers in
  if Array.length dirs <> layers then
    invalid_arg "Surface.create: one direction per layer";
  let hpref = Bytes.make layers '\000' in
  Array.iteri (fun l h -> if h then Bytes.set hpref l '\001') dirs;
  {
    w = width;
    h = height;
    nlayers = layers;
    hpref;
    occ = Array.make (layers * width * height) free;
    via = Bytes.make ((layers - 1) * width * height) '\000';
    n_vias = 0;
    dirt = Array.init layers (fun _ -> make_dirt ());
  }

let copy g =
  {
    g with
    occ = Array.copy g.occ;
    via = Bytes.copy g.via;
    dirt =
      Array.map
        (fun d -> { d with ring = Array.copy d.ring; freed = Bytes.copy d.freed })
        g.dirt;
  }

(* n_vias is derived from the via bytes, so comparing occupancy and via
   flags is a complete state comparison. *)
let equal a b =
  a.w = b.w && a.h = b.h && a.nlayers = b.nlayers
  && Bytes.equal a.hpref b.hpref
  && a.occ = b.occ && Bytes.equal a.via b.via

let width g = g.w

let height g = g.h

let layers g = g.nlayers

let prefers_horizontal g ~layer = Bytes.get g.hpref layer <> '\000'

let layer_dirs g = Array.init g.nlayers (fun l -> prefers_horizontal g ~layer:l)

let planar_cells g = g.w * g.h

let node_count g = g.nlayers * g.w * g.h

let node g ~layer ~x ~y = (layer * g.w * g.h) + (y * g.w) + x

let node_layer g n = n / (g.w * g.h)

let node_x g n = n mod g.w

let node_y g n = n mod (g.w * g.h) / g.w

let planar g n = n mod (g.w * g.h)

let node_above g n = n + (g.w * g.h)

let node_below g n = n - (g.w * g.h)

let in_bounds g ~x ~y = x >= 0 && x < g.w && y >= 0 && y < g.h

let occ g n = g.occ.(n)

let occ_at g ~layer ~x ~y = g.occ.(node g ~layer ~x ~y)

let is_free g n = g.occ.(n) = free

let is_obstacle g n = g.occ.(n) = obstacle

let owner g n =
  let v = g.occ.(n) in
  if v > 0 then Some v else None

let touch g ~freeing n =
  dirt_touch g.dirt.(n / (g.w * g.h)) ~freeing (node_x g n) (node_y g n)

let touch_pair g ~freeing ~layer ~x ~y =
  dirt_touch g.dirt.(layer) ~freeing x y;
  dirt_touch g.dirt.(layer + 1) ~freeing x y

let occupy g ~net n =
  if net <= 0 then invalid_arg "Surface.occupy: net ids are positive";
  let v = g.occ.(n) in
  if v = free || v = net then begin
    g.occ.(n) <- net;
    if v = free then touch g ~freeing:false n
  end
  else if v = obstacle then invalid_arg "Surface.occupy: cell is an obstacle"
  else
    invalid_arg
      (Printf.sprintf "Surface.occupy: cell owned by net %d, wanted %d" v net)

(* Pair via accessors.  Pair [layer] joins layers [layer] and [layer+1];
   its flag lives in plane [layer] of the via bytes.  At two layers there
   is a single plane, bit-identical to the historical planar flag. *)
let pair_index g ~layer ~x ~y = (layer * g.w * g.h) + (y * g.w) + x

let has_via_pair g ~layer ~x ~y =
  Bytes.get g.via (pair_index g ~layer ~x ~y) <> '\000'

(* Any pair at (x,y) — the historical planar query, still what renderers
   and planar legality checks want. *)
let has_via g ~x ~y =
  let rec scan l =
    l < g.nlayers - 1 && (has_via_pair g ~layer:l ~x ~y || scan (l + 1))
  in
  scan 0

let has_via_node g n =
  let x = node_x g n and y = node_y g n in
  has_via g ~x ~y

(* Vias adjacent to a node: the pair just above it and just below it. *)
let via_above g n =
  let l = node_layer g n in
  l + 1 < g.nlayers && has_via_pair g ~layer:l ~x:(node_x g n) ~y:(node_y g n)

let via_below g n =
  let l = node_layer g n in
  l > 0 && has_via_pair g ~layer:(l - 1) ~x:(node_x g n) ~y:(node_y g n)

let clear_via ?(layer = 0) g ~x ~y =
  let p = pair_index g ~layer ~x ~y in
  if Bytes.get g.via p <> '\000' then begin
    Bytes.set g.via p '\000';
    g.n_vias <- g.n_vias - 1;
    touch_pair g ~freeing:true ~layer ~x ~y
  end

let set_via ?(layer = 0) g ~x ~y =
  if layer < 0 || layer >= g.nlayers - 1 then
    invalid_arg "Surface.set_via: pair layer out of range";
  let a = occ_at g ~layer ~x ~y and b = occ_at g ~layer:(layer + 1) ~x ~y in
  if a <= 0 || a <> b then
    invalid_arg "Surface.set_via: both layers must be owned by the same net";
  let p = pair_index g ~layer ~x ~y in
  if Bytes.get g.via p = '\000' then begin
    Bytes.set g.via p '\001';
    g.n_vias <- g.n_vias + 1;
    touch_pair g ~freeing:false ~layer ~x ~y
  end

let release g n =
  let v = g.occ.(n) in
  if v = obstacle then invalid_arg "Surface.release: cell is an obstacle";
  if v > 0 then begin
    g.occ.(n) <- free;
    touch g ~freeing:true n;
    let x = node_x g n and y = node_y g n and l = node_layer g n in
    (* A freed cell can no longer anchor either adjacent via pair. *)
    if l + 1 < g.nlayers && has_via_pair g ~layer:l ~x ~y then
      clear_via ~layer:l g ~x ~y;
    if l > 0 && has_via_pair g ~layer:(l - 1) ~x ~y then
      clear_via ~layer:(l - 1) g ~x ~y
  end

let set_obstacle g ~layer ~x ~y =
  let n = node g ~layer ~x ~y in
  let v = g.occ.(n) in
  if v > 0 then invalid_arg "Surface.set_obstacle: cell owned by a net";
  if v <> obstacle then begin
    g.occ.(n) <- obstacle;
    dirt_touch g.dirt.(layer) ~freeing:false x y
  end

let set_obstacle_all g ~x ~y =
  for layer = 0 to g.nlayers - 1 do
    set_obstacle g ~layer ~x ~y
  done

let block_outside g (r : Geom.Rect.t) =
  for y = 0 to g.h - 1 do
    for x = 0 to g.w - 1 do
      if not (Geom.Rect.mem r x y) then
        for layer = 0 to g.nlayers - 1 do
          if occ_at g ~layer ~x ~y = free then set_obstacle g ~layer ~x ~y
        done
    done
  done

let block_rect g ?layer (r : Geom.Rect.t) =
  Geom.Rect.iter r (fun x y ->
      if in_bounds g ~x ~y then
        match layer with
        | Some l -> set_obstacle g ~layer:l ~x ~y
        | None -> set_obstacle_all g ~x ~y)

let seal g = Array.iter dirt_flush g.dirt

let mark g =
  seal g;
  Array.map (fun d -> d.seq) g.dirt

let dirtied_in g ~since ~layer (r : Geom.Rect.t) =
  let d = g.dirt.(layer) in
  dirt_flush d;
  let s = since.(layer) in
  if d.seq - s > dirt_cap then true (* ring wrapped: be conservative *)
  else begin
    let hit = ref false in
    for i = s to d.seq - 1 do
      if (not !hit) && Geom.Rect.overlap d.ring.(i mod dirt_cap) r then
        hit := true
    done;
    !hit
  end

let dirtied_rects g ~since ~layer =
  let d = g.dirt.(layer) in
  dirt_flush d;
  let s = since.(layer) in
  if d.seq - s > dirt_cap then None (* ring wrapped: history lost *)
  else begin
    let acc = ref [] in
    for i = d.seq - 1 downto s do
      acc := d.ring.(i mod dirt_cap) :: !acc
    done;
    Some !acc
  end

(* Freeing-only views of the journal.  A write that only turned free
   cells into owned or obstructed ones (an occupy, a via placement, an
   obstacle) can remove routes but never create a better one, so
   consumers whose cached answer is a COST FLOOR or a "cannot improve"
   verdict stay valid across it; only releases (and via clears) can
   invalidate them.  The flag is conservative: any rectangle that
   coalesced at least one release counts as freeing. *)
let dirtied_in_freeing g ~since ~layer (r : Geom.Rect.t) =
  let d = g.dirt.(layer) in
  dirt_flush d;
  let s = since.(layer) in
  if d.seq - s > dirt_cap then true (* ring wrapped: be conservative *)
  else begin
    let hit = ref false in
    for i = s to d.seq - 1 do
      if
        (not !hit)
        && Bytes.get d.freed (i mod dirt_cap) <> '\000'
        && Geom.Rect.overlap d.ring.(i mod dirt_cap) r
      then hit := true
    done;
    !hit
  end

let dirtied_freeing_rects g ~since ~layer =
  let d = g.dirt.(layer) in
  dirt_flush d;
  let s = since.(layer) in
  if d.seq - s > dirt_cap then None (* ring wrapped: history lost *)
  else begin
    let acc = ref [] in
    for i = d.seq - 1 downto s do
      if Bytes.get d.freed (i mod dirt_cap) <> '\000' then
        acc := d.ring.(i mod dirt_cap) :: !acc
    done;
    Some !acc
  end

let via_count g = g.n_vias

let iter_nodes g f =
  for n = 0 to node_count g - 1 do
    f n
  done

let iter_planar g f =
  for y = 0 to g.h - 1 do
    for x = 0 to g.w - 1 do
      f ~x ~y
    done
  done

let iter_via_pairs g f =
  for layer = 0 to g.nlayers - 2 do
    for y = 0 to g.h - 1 do
      for x = 0 to g.w - 1 do
        if has_via_pair g ~layer ~x ~y then f ~layer ~x ~y
      done
    done
  done

let count_owned g ~net =
  let c = ref 0 in
  Array.iter (fun v -> if v = net then incr c) g.occ;
  !c

let occupied_nodes g ~net =
  let acc = ref [] in
  for n = node_count g - 1 downto 0 do
    if g.occ.(n) = net then acc := n :: !acc
  done;
  !acc

let fill_ratio g =
  let owned = ref 0 and usable = ref 0 in
  Array.iter
    (fun v ->
      if v <> obstacle then begin
        incr usable;
        if v > 0 then incr owned
      end)
    g.occ;
  if !usable = 0 then 0.0 else float_of_int !owned /. float_of_int !usable
