type axis = H | V

type t = { layer : int; axis : axis; fixed : int; span : Geom.Interval.t }

let cells s =
  let span = s.span in
  let rec loop i acc =
    if i > span.Geom.Interval.hi then List.rev acc
    else
      let cell =
        match s.axis with
        | H -> (s.layer, i, s.fixed)
        | V -> (s.layer, s.fixed, i)
      in
      loop (i + 1) (cell :: acc)
  in
  loop span.Geom.Interval.lo []

let length s = Geom.Interval.length s.span

(* Scan one line (a row for H, a column for V) for maximal runs of the net. *)
let runs_on_line owner_at line_len ~layer ~axis ~fixed acc0 =
  let acc = ref acc0 in
  let run_start = ref (-1) in
  let flush i =
    if !run_start >= 0 && i - !run_start >= 2 then
      acc :=
        { layer; axis; fixed; span = Geom.Interval.make !run_start (i - 1) }
        :: !acc;
    run_start := -1
  in
  for i = 0 to line_len - 1 do
    if owner_at i then begin
      if !run_start < 0 then run_start := i
    end
    else flush i
  done;
  flush line_len;
  !acc

let of_net g ~net =
  let w = Surface.width g and h = Surface.height g in
  let owns ~layer ~x ~y = Surface.occ_at g ~layer ~x ~y = net in
  let segs = ref [] in
  for layer = 0 to Surface.layers g - 1 do
    for y = 0 to h - 1 do
      segs :=
        runs_on_line (fun x -> owns ~layer ~x ~y) w ~layer ~axis:H ~fixed:y !segs
    done;
    for x = 0 to w - 1 do
      segs :=
        runs_on_line (fun y -> owns ~layer ~x ~y) h ~layer ~axis:V ~fixed:x !segs
    done
  done;
  (* Isolated cells: owned cells not covered by any run. *)
  let covered = Hashtbl.create 64 in
  List.iter
    (fun s -> List.iter (fun c -> Hashtbl.replace covered c ()) (cells s))
    !segs;
  for layer = 0 to Surface.layers g - 1 do
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        if owns ~layer ~x ~y && not (Hashtbl.mem covered (layer, x, y)) then
          segs :=
            { layer; axis = H; fixed = y; span = Geom.Interval.make x x }
            :: !segs
      done
    done
  done;
  List.rev !segs

let pp fmt s =
  Format.fprintf fmt "%s L%d %s=%d %a"
    (match s.axis with H -> "H" | V -> "V")
    s.layer
    (match s.axis with H -> "y" | V -> "x")
    s.fixed Geom.Interval.pp s.span
