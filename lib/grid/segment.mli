(** Maximal straight wire segments of a routed net.

    Segments are derived from grid occupancy: per layer, maximal horizontal
    and vertical runs of cells owned by the net.  They drive the weak
    modification operator (only straight through-segments can be shoved
    sideways) and the renderers. *)

type axis = H | V

type t = {
  layer : int;
  axis : axis;
  fixed : int;  (** the row (for H) or column (for V) of the run *)
  span : Geom.Interval.t;  (** the columns (H) or rows (V) covered *)
}

val cells : t -> (int * int * int) list
(** The [(layer, x, y)] cells covered by the segment. *)

val length : t -> int

val of_net : Surface.t -> net:int -> t list
(** All maximal runs of length ≥ 2 of the net, in both orientations, plus a
    length-1 horizontal segment for every isolated cell (one belonging to no
    run).  A corner cell belongs to both its horizontal and vertical run. *)

val pp : Format.formatter -> t -> unit
