(** Public face of the grid library: the two-layer routing surface
    ({!Surface}, included here) plus path and segment helpers. *)

include module type of struct
  include Surface
end

module Path : module type of Path

module Segment : module type of Segment
