(** Paths: node sequences produced by the maze search backtrace.

    A path is a list of packed nodes where each consecutive pair is either a
    planar 4-neighbour step on one layer or a via step (same planar position,
    other layer).  These helpers compute the quality metrics reported by the
    experiments and validate search output in tests. *)

type t = int list

val is_valid : Surface.t -> t -> bool
(** Every consecutive pair is a legal step (planar unit move on one layer, or
    layer change in place); the empty path and singletons are valid. *)

val wirelength : Surface.t -> t -> int
(** Number of planar unit steps (via steps contribute 0). *)

val via_steps : Surface.t -> t -> int
(** Number of layer-change steps. *)

val bends : Surface.t -> t -> int
(** Number of direction changes between successive planar steps (layer
    changes do not count as bends but reset the direction). *)

val cost :
  wire_cost:int -> via_cost:int -> bend_cost:int -> Surface.t -> t -> int
(** Weighted cost of the path under the given cost model. *)

val endpoints : t -> (int * int) option
(** First and last node, or [None] for paths shorter than 1. *)
