(* Library interface module: the grid itself plus its path/segment helpers.
   External code sees only [Grid]; [Surface] is the internal name of the
   occupancy implementation. *)

include Surface
module Path = Path
module Segment = Segment
