(** The mutable N-layer routing grid.

    The grid is the routing surface shared by the maze search, the
    modification operators and the verifier.  It is a dense [width × height ×
    layers] array of cells; each cell is either free, an obstacle, or owned
    by a net (a positive net id).  Vias join two {e adjacent} layers at a
    planar position and are only legal between two cells owned by the same
    net; a via pair [l] joins layers [l] and [l+1].

    Cells are addressed either by [(layer, x, y)] triples or by packed
    integer {e nodes} ([node = layer·w·h + y·w + x]), the representation used
    throughout the search hot path.

    Every layer carries a preferred routing direction.  The default stack is
    two layers, layer 0 horizontal-preferred and layer 1 vertical-preferred
    (the historical convention); taller stacks default to alternating H/V.
    Preference is enforced by search costs, not by the grid itself (the
    router may wire any direction on any layer, as the original system
    does). *)

type t

val default_layers : int
(** [2] — the layer count of every problem that does not say otherwise. *)

val obstacle : int
(** The occupancy value of an obstacle cell ([-1]). *)

val free : int
(** The occupancy value of a free cell ([0]). *)

val default_dirs : int -> bool array
(** Per-layer horizontal preference of the default stack: alternating,
    layer 0 horizontal. *)

val create :
  ?layers:int -> ?dirs:bool array -> width:int -> height:int -> unit -> t
(** A fully free grid.  [layers] defaults to {!default_layers}; [dirs]
    gives each layer's horizontal preference ([true] = horizontal) and
    defaults to {!default_dirs}.
    @raise Invalid_argument on empty grids, fewer than two layers, or a
    direction array of the wrong length. *)

val copy : t -> t
(** Deep copy; mutations of the copy do not affect the original. *)

val equal : t -> t -> bool
(** Same dimensions, layer stack, occupancy, and vias — used by the
    transactional session tests to prove rollbacks are exact. *)

val width : t -> int

val height : t -> int

val layers : t -> int
(** Number of routing layers of this grid (≥ 2). *)

val prefers_horizontal : t -> layer:int -> bool
(** The layer's preferred routing direction. *)

val layer_dirs : t -> bool array
(** Per-layer horizontal preference, freshly allocated. *)

val planar_cells : t -> int
(** [width × height]. *)

val node_count : t -> int
(** [layers × width × height]: exclusive upper bound of packed node
    values. *)

(** {1 Node packing} *)

val node : t -> layer:int -> x:int -> y:int -> int

val node_layer : t -> int -> int

val node_x : t -> int -> int

val node_y : t -> int -> int

val planar : t -> int -> int
(** Planar index [y·w + x] of a node, identifying its (x,y) regardless of
    layer. *)

val node_above : t -> int -> int
(** The node at the same (x,y) one layer up.  Only meaningful when
    [node_layer g n + 1 < layers g]. *)

val node_below : t -> int -> int
(** The node at the same (x,y) one layer down.  Only meaningful when
    [node_layer g n > 0]. *)

val in_bounds : t -> x:int -> y:int -> bool

(** {1 Occupancy} *)

val occ : t -> int -> int
(** Occupancy value at a packed node. *)

val occ_at : t -> layer:int -> x:int -> y:int -> int

val is_free : t -> int -> bool

val is_obstacle : t -> int -> bool

val owner : t -> int -> int option
(** [Some net] when the node is owned by a net, else [None]. *)

val occupy : t -> net:int -> int -> unit
(** Claim a node for a net.
    @raise Invalid_argument if the node is an obstacle or owned by a
    different net (the caller must rip first — silent overwrites would mask
    router bugs). *)

val release : t -> int -> unit
(** Free a node (clears the via pairs adjacent to it, since a freed cell
    can no longer anchor one).  Releasing a free cell is a no-op; releasing
    an obstacle raises [Invalid_argument]. *)

val set_obstacle : t -> layer:int -> x:int -> y:int -> unit
(** Mark a cell as an obstacle.  @raise Invalid_argument if the cell is
    currently owned by a net. *)

val set_obstacle_all : t -> x:int -> y:int -> unit
(** Obstacle on every layer at (x,y). *)

val block_outside : t -> Geom.Rect.t -> unit
(** Turn every free cell outside the rectangle into an obstacle — used to
    carve rectangular routing regions out of the allocated array. *)

val block_rect : t -> ?layer:int -> Geom.Rect.t -> unit
(** Obstruct every cell of the rectangle (all layers unless [layer] is
    given).  Cells already owned by nets raise [Invalid_argument]. *)

(** {1 Vias}

    A via pair [l] ([0 ≤ l < layers−1]) joins layers [l] and [l+1] at a
    planar position.  On the default two-layer stack there is exactly one
    pair, so the pairless queries below coincide with it. *)

val has_via_pair : t -> layer:int -> x:int -> y:int -> bool
(** Is pair [layer] (joining [layer] and [layer+1]) present at (x,y)? *)

val has_via : t -> x:int -> y:int -> bool
(** Any via pair at (x,y) — the planar query renderers and planar
    legality checks want. *)

val has_via_node : t -> int -> bool
(** {!has_via} at the node's planar position (any pair, any layer). *)

val via_above : t -> int -> bool
(** Does the pair joining this node's layer to the one above exist at the
    node's position?  [false] on the top layer. *)

val via_below : t -> int -> bool
(** Does the pair joining this node's layer to the one below exist at the
    node's position?  [false] on layer 0. *)

val set_via : ?layer:int -> t -> x:int -> y:int -> unit
(** Place via pair [layer] (default 0, the only pair of a two-layer
    grid).  @raise Invalid_argument unless layers [layer] and [layer+1] at
    (x,y) are owned by the same net. *)

val clear_via : ?layer:int -> t -> x:int -> y:int -> unit
(** Remove via pair [layer] (default 0) if present. *)

val via_count : t -> int

(** {1 Dirty-region journal}

    Every occupancy or via mutation is recorded, per layer, in a bounded
    journal of dirty rectangles (nearby writes coalesce, so a path segment
    becomes one rectangle).  Consumers take a {!mark} and later ask whether
    a region of a layer has been written since; once the journal's ring has
    wrapped past a mark the answer degrades to a conservative "yes".  This
    is what lets the engine validate speculative routes and replay cached
    failures without rescanning the grid. *)

type mark
(** A point in the journal's history (one sequence number per layer). *)

val dirt_capacity : int
(** Entries the per-layer ring holds before wrapping (and degrading to
    the conservative answers below). *)

val mark : t -> mark
(** Flush pending coalescing and capture the current journal position. *)

val dirtied_in : t -> since:mark -> layer:int -> Geom.Rect.t -> bool
(** [dirtied_in g ~since ~layer r] is [true] iff some cell of layer
    [layer] inside [r] may have been mutated after [since] was taken.
    Never returns a false "clean"; may return a false "dirty" after ring
    wrap-around or because of rectangle coalescing. *)

val dirtied_rects : t -> since:mark -> layer:int -> Geom.Rect.t list option
(** The journal rectangles of [layer] written since [since], oldest first.
    [Some []] means provably nothing was written; [None] means the ring
    wrapped past the mark and the history is lost (the caller must fall
    back to a full rescan/rebuild).  Rectangles are conservative the same
    way {!dirtied_in} is: coalescing may widen them, never shrink them. *)

val dirtied_in_freeing : t -> since:mark -> layer:int -> Geom.Rect.t -> bool
(** Like {!dirtied_in}, but only counts {e freeing} rectangles — those
    that coalesced at least one release or via clear.  Occupies,
    via placements and obstacles can remove routes but never create a
    cheaper one, so cached cost floors and "cannot improve" verdicts
    survive them; only a freeing write can invalidate such a consumer.
    Conservative in the same ways as {!dirtied_in} (wrap-around,
    coalescing, and flag widening: a mixed rectangle counts as
    freeing). *)

val dirtied_freeing_rects :
  t -> since:mark -> layer:int -> Geom.Rect.t list option
(** {!dirtied_rects} restricted to freeing rectangles — the only ones a
    decrease-only repair (e.g. a {e lower-bound} distance field) must
    reprocess, since pure blocking writes leave a lower bound
    admissible. *)

val seal : t -> unit
(** Flush pending coalescing into the journal.  Callers that need journal
    evolution to be independent of {e when} queries happen (the engine
    seals after every net, so sequential and parallel drains journal
    identically) call this at their unit-of-work boundaries. *)

(** {1 Iteration and statistics} *)

val iter_nodes : t -> (int -> unit) -> unit

val iter_planar : t -> (x:int -> y:int -> unit) -> unit

val iter_via_pairs : t -> (layer:int -> x:int -> y:int -> unit) -> unit
(** Visit every placed via pair, lowest pair plane first, row-major within
    a plane. *)

val count_owned : t -> net:int -> int
(** Number of cells owned by the net. *)

val occupied_nodes : t -> net:int -> int list
(** All nodes owned by the net (O(cells); for tests and the verifier — the
    router tracks its own route lists incrementally). *)

val fill_ratio : t -> float
(** Fraction of non-obstacle cells that are owned by some net. *)
