(** Design-rule and connectivity verification.

    Every routing result accepted by the tests, benches and CLI passes
    through this checker.  The grid representation already makes true shorts
    (two nets in one cell) unrepresentable, so the checks concentrate on:

    - {b pin ownership} — every pin cell owned by its net;
    - {b obstruction integrity} — no net wiring on declared obstructions;
    - {b via legality} — every via joins two cells of the same net, and
      every same-net two-layer adjacency used as a connection has a via
      (connectivity is computed through vias only);
    - {b net connectivity} — all cells owned by a net (pins included) form
      a single connected component: no open net and no floating wire. *)

type violation =
  | Net_disconnected of { net : int; components : int }
  | Pin_not_owned of { net : int; pin : Netlist.Net.pin }
  | Via_mismatch of { x : int; y : int }
      (** via flag present where the two layers are not owned by one net *)
  | Wire_on_obstruction of { net : int; layer : int; x : int; y : int }

val check :
  ?nets:int list -> Netlist.Problem.t -> Grid.t -> violation list
(** All violations found.  Connectivity is verified for the given net ids
    (default: every net of the problem); the other checks are always
    global.  Pass the routed subset when verifying an incomplete result. *)

val is_clean : ?nets:int list -> Netlist.Problem.t -> Grid.t -> bool

val connected_components : Grid.t -> net:int -> int
(** Number of connected components of the net's owned cells (planar
    adjacency per layer; across layers only through vias). *)

val pp_violation : Format.formatter -> violation -> unit

val explain : violation list -> string
(** Multi-line human-readable report (empty string when clean). *)
