type violation =
  | Net_disconnected of { net : int; components : int }
  | Pin_not_owned of { net : int; pin : Netlist.Net.pin }
  | Via_mismatch of { x : int; y : int }
  | Wire_on_obstruction of { net : int; layer : int; x : int; y : int }

let connected_components g ~net =
  let uf = Util.Union_find.create (Grid.node_count g) in
  let w = Grid.width g and h = Grid.height g in
  for layer = 0 to Grid.layers g - 1 do
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        if Grid.occ_at g ~layer ~x ~y = net then begin
          let n = Grid.node g ~layer ~x ~y in
          if x + 1 < w && Grid.occ_at g ~layer ~x:(x + 1) ~y = net then
            Util.Union_find.union uf n (Grid.node g ~layer ~x:(x + 1) ~y);
          if y + 1 < h && Grid.occ_at g ~layer ~x ~y:(y + 1) = net then
            Util.Union_find.union uf n (Grid.node g ~layer ~x ~y:(y + 1))
        end
      done
    done
  done;
  Grid.iter_via_pairs g (fun ~layer ~x ~y ->
      if
        Grid.occ_at g ~layer ~x ~y = net
        && Grid.occ_at g ~layer:(layer + 1) ~x ~y = net
      then
        Util.Union_find.union uf
          (Grid.node g ~layer ~x ~y)
          (Grid.node g ~layer:(layer + 1) ~x ~y));
  Util.Union_find.count_components uf (fun n -> Grid.occ g n = net)

let check ?nets problem g =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Pin ownership. *)
  List.iter
    (fun (net, (pin : Netlist.Net.pin)) ->
      if
        Grid.occ_at g ~layer:pin.Netlist.Net.layer ~x:pin.Netlist.Net.x
          ~y:pin.Netlist.Net.y
        <> net
      then add (Pin_not_owned { net; pin }))
    (Netlist.Problem.pin_cells problem);
  (* Obstruction integrity. *)
  List.iter
    (fun (o : Netlist.Problem.obstruction) ->
      Geom.Rect.iter o.Netlist.Problem.obs_rect (fun x y ->
          if Grid.in_bounds g ~x ~y then
            let layers =
              match o.Netlist.Problem.obs_layer with
              | None -> List.init (Grid.layers g) Fun.id
              | Some l -> [ l ]
            in
            List.iter
              (fun layer ->
                let v = Grid.occ_at g ~layer ~x ~y in
                if v > 0 then add (Wire_on_obstruction { net = v; layer; x; y }))
              layers))
    problem.Netlist.Problem.obstructions;
  (* Via legality: each pair must join two cells of one positive owner. *)
  Grid.iter_via_pairs g (fun ~layer ~x ~y ->
      let a = Grid.occ_at g ~layer ~x ~y
      and b = Grid.occ_at g ~layer:(layer + 1) ~x ~y in
      if a <= 0 || a <> b then add (Via_mismatch { x; y }));
  (* Connectivity. *)
  let net_ids =
    match nets with
    | Some ids -> ids
    | None -> List.init (Netlist.Problem.net_count problem) (fun i -> i + 1)
  in
  List.iter
    (fun net ->
      let n = Netlist.Problem.net problem net in
      if Netlist.Net.pin_count n > 0 then begin
        let components = connected_components g ~net in
        if components <> 1 then add (Net_disconnected { net; components })
      end)
    net_ids;
  List.rev !violations

let is_clean ?nets problem g = check ?nets problem g = []

let pp_violation fmt = function
  | Net_disconnected { net; components } ->
      Format.fprintf fmt "net %d split into %d components" net components
  | Pin_not_owned { net; pin } ->
      Format.fprintf fmt "pin %a of net %d not owned by the net"
        Netlist.Net.pp_pin pin net
  | Via_mismatch { x; y } ->
      Format.fprintf fmt "illegal via at (%d,%d)" x y
  | Wire_on_obstruction { net; layer; x; y } ->
      Format.fprintf fmt "net %d wired over obstruction at (%d,%d)L%d" net x y
        layer

let explain violations =
  String.concat "\n"
    (List.map (Format.asprintf "%a" pp_violation) violations)
