let route_at ?config ?(name = "channel") ~tracks spec =
  Router.Engine.route ?config (Model.problem_of_spec ~name ~tracks spec)

let min_tracks ?config ?(max_extra = 10) spec =
  let density = max 1 (Model.density spec) in
  let rec attempt tracks =
    if tracks > density + max_extra then None
    else
      let result = route_at ?config ~tracks spec in
      if result.Router.Engine.completed then Some (tracks, result)
      else attempt (tracks + 1)
  in
  attempt density
