(** Dogleg channel router (Deutsch-style restricted doglegs).

    Each multi-pin net is split at its pin columns into 2-pin {e subnets};
    every subnet gets its own trunk, so a net may change tracks at any of
    its pin columns.  This weakens vertical constraints (they now bind
    subnets, not whole nets) and usually reaches density where the plain
    left-edge algorithm cannot.  Restricted doglegs cannot break constraint
    cycles among 2-pin nets — the case only the full rip-up router
    handles. *)

val route : ?max_extra:int -> Model.spec -> Model.solution option
(** First feasible solution trying track counts from density to density +
    [max_extra] (default 10); [None] when the subnet constraint graph is
    cyclic or nothing fits. *)

val min_tracks : ?max_extra:int -> Model.spec -> int option

val subnet_count : Model.spec -> int
(** Number of trunk subnets the decomposition produces (for reporting). *)
