(** Greedy channel router (Rivest–Fiduccia class).

    The channel is scanned column by column, left to right, maintaining the
    net assigned to each track.  At every column the router, in order:

    + connects the column's top/bottom pins to the nearest track already
      holding the net, or claims the nearest empty track (a same-net
      top+bottom column becomes one straight through-branch);
    + {e collapses} split nets — nets temporarily holding several tracks —
      with a vertical jog, freeing a track;
    + {e jogs} single-track nets towards the side of their next pin, so the
      future pin connection stays short and conflict-free;
    + vacates the tracks of nets whose pins are all connected.

    All branches and jogs in one column live on the vertical layer and must
    be pairwise disjoint (different nets).  Unlike the classical
    formulation, this implementation may not extend the channel with extra
    columns: a net still split after the last column fails the attempt, and
    the caller retries with more tracks — which keeps the comparison metric
    (track count at fixed length) honest.

    Greedy handles vertical-constraint cycles (it does not reason about
    constraints at all), making it the strongest classical baseline here;
    it still needs more tracks than the full router on hard instances. *)

val route_at : Model.spec -> tracks:int -> Model.solution option
(** One greedy scan at a fixed track count; the result has been verified.
    [None] when some pin cannot connect or a net remains split. *)

val route : ?max_extra:int -> Model.spec -> Model.solution option
(** Try track counts from density to density + [max_extra] (default 10),
    without channel extension. *)

val route_padded :
  ?max_extra:int ->
  ?max_extend:int ->
  Model.spec ->
  (Model.spec * Model.solution) option
(** Like {!route} but allowed to append up to [max_extend] (default 6)
    pin-free columns on the right — the classical "the greedy router may
    lengthen the channel" rule.  For each track count the smallest
    sufficient extension is used.  Returns the (possibly padded) spec the
    solution verifies against. *)

val min_tracks : ?max_extra:int -> ?max_extend:int -> Model.spec -> int option
(** Track count found by {!route_padded}. *)

val extension_used : original:Model.spec -> Model.spec -> int
(** Columns appended by {!route_padded} ([padded - original] widths). *)
