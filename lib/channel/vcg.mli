(** Vertical constraint graphs (and a small digraph utility).

    In a reserved-layer channel, a column holding a top pin of net [a] and a
    bottom pin of net [b ≠ a] forces every trunk of [a] incident to that
    column to lie {e above} every trunk of [b] incident to it (their layer-1
    branches would otherwise overlap).  The edge [a → b] reads "[a] above
    [b]".  A cyclic graph is unroutable for any dogleg-free router at any
    track count. *)

type t

val create : unit -> t

val add_node : t -> int -> unit

val add_edge : t -> above:int -> below:int -> unit
(** Adds both endpoints as nodes; self-edges are ignored (same net on both
    rows of a column is not a constraint). *)

val nodes : t -> int list
(** Ascending. *)

val parents : t -> int -> int list
(** Nodes constrained to lie above the given node. *)

val edge_count : t -> int

val has_cycle : t -> bool

val of_spec : Model.spec -> t
(** Net-level vertical constraint graph of a channel spec. *)

val longest_path : t -> int
(** Number of nodes on the longest chain (0 for an empty graph); together
    with density this lower-bounds dogleg-free track counts.  Returns
    [max_int] on a cyclic graph. *)
