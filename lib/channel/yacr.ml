(* Track assignment by unconstrained left-edge packing, then vertical-layer
   maze completion.  Rows: track t = grid row t; pin rows 0 and tracks+1. *)

let trunk_nodes spec =
  List.filter_map
    (fun net ->
      match Lea.shape_of spec ~net with
      | Lea.Trunk span -> Some (net, span)
      | Lea.Trivial | Lea.Single_column _ -> None)
    (Model.net_ids spec)

(* Candidate track assignments, preferred first: pure interval packing
   (reaches density, may leave violations for the repair phase), then — when
   the constraint graph is acyclic — the constraint-respecting packing
   (needs more tracks but never requires repair the columns cannot give). *)
let assignments spec ~tracks =
  let trunks = trunk_nodes spec in
  let unconstrained = Lea.assign ~nodes:trunks ~graph:(Vcg.create ()) ~tracks in
  let graph =
    let g = Vcg.create () in
    Array.iteri
      (fun x a ->
        let b = spec.Model.bottom.(x) in
        if a <> 0 && b <> 0 && a <> b
           && List.mem_assoc a trunks && List.mem_assoc b trunks
        then Vcg.add_edge g ~above:a ~below:b)
      spec.Model.top;
    g
  in
  let constrained =
    if Vcg.has_cycle graph then None
    else Lea.assign ~nodes:trunks ~graph ~tracks
  in
  List.filter_map
    (fun c -> c)
    [ unconstrained; (if constrained = unconstrained then None else constrained) ]

(* Every pin's single escape cell — the vertical-layer cell one row inside
   the channel at the pin's column — is reserved for that pin's net, or a
   jog of another branch could seal the pin in before it routes. *)
let escape_reservations spec ~tracks =
  let reservations = Hashtbl.create 32 in
  Array.iteri
    (fun x net -> if net <> 0 then Hashtbl.replace reservations (x, tracks) net)
    spec.Model.top;
  Array.iteri
    (fun x net -> if net <> 0 then Hashtbl.replace reservations (x, 1) net)
    spec.Model.bottom;
  reservations

(* Branch routing: free cells on either layer (a dogleg jog is a short
   horizontal hop on the trunk layer between two vias), plus the net's own
   cells.  Trunks of other nets are hard obstacles — they are never moved,
   which is what separates this router from the full rip-up engine. *)
let branch_passable g reservations ~net n =
  let v = Grid.occ g n in
  if v = net then Some 0
  else if v = Grid.free then begin
    if Grid.node_layer g n = 1 then
      match
        Hashtbl.find_opt reservations (Grid.node_x g n, Grid.node_y g n)
      with
      | Some owner when owner <> net -> None
      | Some _ | None -> Some 0
    else Some 0
  end
  else None

let route_with spec ~tracks assignment =
      let problem = Model.problem_of_spec ~name:"yacr" ~tracks spec in
      let g = Netlist.Problem.instantiate problem in
      let ws = Maze.Workspace.create g in
      let reservations = escape_reservations spec ~tracks in
      let ok = ref true in
      (* Lay the trunks. *)
      List.iter
        (fun (net, track) ->
          match Lea.shape_of spec ~net with
          | Lea.Trunk span ->
              for x = span.Geom.Interval.lo to span.Geom.Interval.hi do
                if !ok then
                  if Grid.occ_at g ~layer:0 ~x ~y:track = Grid.free then
                    Grid.occupy g ~net (Grid.node g ~layer:0 ~x ~y:track)
                  else ok := false
              done
          | Lea.Trivial | Lea.Single_column _ -> ())
        assignment;
      (* Route every branch: single-column through-branches first, then
         pin-to-trunk connections column by column. *)
      let cost = { Maze.Cost.wire = 1; via = 2; wrong_way = 4 } in
      let connect ~net ~sources ~targets =
        if !ok then
          match
            Maze.Search.run g ws ~cost
              ~passable:(branch_passable g reservations ~net)
              ~sources ~targets ()
          with
          | Some r -> ignore (Maze.Route.occupy_path g ~net r.Maze.Search.path)
          | None -> ok := false
      in
      List.iter
        (fun net ->
          match Lea.shape_of spec ~net with
          | Lea.Trivial -> ()
          | Lea.Single_column c ->
              let top = Grid.node g ~layer:1 ~x:c ~y:(tracks + 1) in
              let bottom = Grid.node g ~layer:1 ~x:c ~y:0 in
              connect ~net ~sources:[ bottom ] ~targets:[ top ]
          | Lea.Trunk _ -> ())
        (Model.net_ids spec);
      let columns = Model.columns spec in
      (* Pass 1: branches whose straight vertical corridor is free route
         directly (the non-violating columns); pass 2 maze-repairs the
         rest with wrong-way jogs.  Routing the easy majority first keeps
         the repair space open — the YACR staging. *)
      let track_of net = List.assoc_opt net assignment in
      let straight ~net ~x ~y =
        match track_of net with
        | None -> false
        | Some t ->
            let lo = if y = 0 then 1 else t
            and hi = if y = 0 then t else tracks in
            let clear = ref true in
            for row = lo to hi do
              let v = Grid.occ_at g ~layer:1 ~x ~y:row in
              if v <> Grid.free && v <> net then clear := false;
              (match Hashtbl.find_opt reservations (x, row) with
              | Some owner when owner <> net -> clear := false
              | Some _ | None -> ())
            done;
            if !clear then begin
              for row = lo to hi do
                if Grid.occ_at g ~layer:1 ~x ~y:row = Grid.free then
                  Grid.occupy g ~net (Grid.node g ~layer:1 ~x ~y:row)
              done;
              Grid.set_via g ~x ~y:t;
              true
            end
            else false
      in
      let deferred = ref [] in
      let pin_connect pass1 net x y =
        if net <> 0 then
          match Lea.shape_of spec ~net with
          | Lea.Trunk _ ->
              if pass1 then begin
                if not (straight ~net ~x ~y) then deferred := (net, x, y) :: !deferred
              end
              else begin
                (* Target the trunk itself (the net's layer-0 cells): other
                   still-unconnected pins are owned but not yet attached. *)
                let trunk_cells =
                  List.filter
                    (fun n -> Grid.node_layer g n = 0)
                    (Grid.occupied_nodes g ~net)
                in
                connect ~net
                  ~sources:[ Grid.node g ~layer:1 ~x ~y ]
                  ~targets:trunk_cells
              end
          | Lea.Trivial | Lea.Single_column _ -> ()
      in
      for x = 0 to columns - 1 do
        pin_connect true spec.Model.top.(x) x (tracks + 1);
        pin_connect true spec.Model.bottom.(x) x 0
      done;
      List.iter
        (fun (net, x, y) -> pin_connect false net x y)
        (List.rev !deferred);
      if !ok && Drc.Check.is_clean problem g then Some (problem, g) else None

let route_at spec ~tracks =
  let rec first = function
    | [] -> None
    | assignment :: rest -> (
        match route_with spec ~tracks assignment with
        | Some result -> Some result
        | None -> first rest)
  in
  first (assignments spec ~tracks)

let route ?(max_extra = 10) spec =
  let density = max 1 (Model.density spec) in
  let rec attempt tracks =
    if tracks > density + max_extra then None
    else
      match route_at spec ~tracks with
      | Some result -> Some result
      | None -> attempt (tracks + 1)
  in
  attempt density

let min_tracks ?max_extra spec =
  Option.map
    (fun ((p, _) : Netlist.Problem.t * Grid.t) -> p.Netlist.Problem.height - 2)
    (route ?max_extra spec)
