(** Running the full rip-up router on channel problems.

    The full router treats a channel as an ordinary routing region, so it is
    not limited to reserved-layer trunk/branch topologies — which is why it
    routes vertical-constraint cycles the channel-specific baselines cannot.
    [min_tracks] performs the "how few tracks suffice?" search the channel
    experiments report. *)

val route_at :
  ?config:Router.Config.t ->
  ?name:string ->
  tracks:int ->
  Model.spec ->
  Router.Engine.t
(** Route the channel at a fixed track count. *)

val min_tracks :
  ?config:Router.Config.t ->
  ?max_extra:int ->
  Model.spec ->
  (int * Router.Engine.t) option
(** Smallest track count in [density .. density + max_extra] (default 10)
    at which the router completes, with the completed result.  [None] when
    even the largest attempted channel fails. *)
