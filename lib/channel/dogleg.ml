type subnet = {
  sid : int;
  net : int;
  sspan : Geom.Interval.t; (* endpoints are consecutive pin columns *)
}

let decompose spec =
  let subnets = ref [] in
  let next = ref 0 in
  List.iter
    (fun net ->
      match Lea.shape_of spec ~net with
      | Lea.Trivial | Lea.Single_column _ -> ()
      | Lea.Trunk _ ->
          let cols = Model.net_columns spec ~net in
          let rec pairs = function
            | a :: (b :: _ as rest) ->
                incr next;
                subnets :=
                  { sid = !next; net; sspan = Geom.Interval.make a b }
                  :: !subnets;
                pairs rest
            | [] | [ _ ] -> ()
          in
          pairs cols)
    (Model.net_ids spec);
  List.rev !subnets

let subnet_count spec = List.length (decompose spec)

let incident subnets ~net ~col =
  List.filter
    (fun s ->
      s.net = net
      && (s.sspan.Geom.Interval.lo = col || s.sspan.Geom.Interval.hi = col))
    subnets

let subnet_graph spec subnets =
  let g = Vcg.create () in
  List.iter (fun s -> Vcg.add_node g s.sid) subnets;
  Array.iteri
    (fun x a ->
      let b = spec.Model.bottom.(x) in
      if a <> 0 && b <> 0 && a <> b then
        List.iter
          (fun sa ->
            List.iter
              (fun sb -> Vcg.add_edge g ~above:sa.sid ~below:sb.sid)
              (incident subnets ~net:b ~col:x))
          (incident subnets ~net:a ~col:x))
    spec.Model.top;
  g

let solution_of spec subnets ~tracks ~track_of_sid =
  let top_row = tracks + 1 in
  let hsegs =
    List.map
      (fun s ->
        { Model.hnet = s.net; track = track_of_sid s.sid; hspan = s.sspan })
      subnets
  in
  let vsegs = ref [] in
  (* One branch per (net, pin column): spans from the lowest to the highest
     incident trunk, extended to the pin row(s). *)
  List.iter
    (fun net ->
      match Lea.shape_of spec ~net with
      | Lea.Trivial -> ()
      | Lea.Single_column c ->
          vsegs :=
            { Model.vnet = net; col = c; vspan = Geom.Interval.make 0 top_row }
            :: !vsegs
      | Lea.Trunk _ ->
          List.iter
            (fun col ->
              let ts =
                List.map
                  (fun s -> track_of_sid s.sid)
                  (incident subnets ~net ~col)
              in
              match ts with
              | [] -> ()
              | t :: rest ->
                  let lo_t = List.fold_left min t rest
                  and hi_t = List.fold_left max t rest in
                  let lo =
                    if spec.Model.bottom.(col) = net then 0 else lo_t
                  in
                  let hi =
                    if spec.Model.top.(col) = net then top_row else hi_t
                  in
                  if lo <> hi || spec.Model.top.(col) = net
                     || spec.Model.bottom.(col) = net
                  then
                    vsegs :=
                      {
                        Model.vnet = net;
                        col;
                        vspan = Geom.Interval.make lo hi;
                      }
                      :: !vsegs)
            (Model.net_columns spec ~net))
    (Model.net_ids spec);
  { Model.tracks; hsegs; vsegs = !vsegs }

(* Doglegs are optional: at each track count we first try the whole-net
   (dogleg-free) assignment, then the subnet decomposition, so the dogleg
   router is never worse than plain left-edge. *)
let route ?(max_extra = 10) spec =
  let subnets = decompose spec in
  let graph = subnet_graph spec subnets in
  if Vcg.has_cycle graph then None
  else begin
    let nodes = List.map (fun s -> (s.sid, s.sspan)) subnets in
    let whole_net_at tracks = Lea.route_at spec ~tracks in
    let split_at tracks =
      match Lea.assign ~nodes ~graph ~tracks with
      | None -> None
      | Some assignment ->
          let track_of_sid sid = List.assoc sid assignment in
          let sol = solution_of spec subnets ~tracks ~track_of_sid in
          (match Model.verify spec sol with Ok () -> Some sol | Error _ -> None)
    in
    let density = Model.density spec in
    let rec attempt tracks =
      if tracks > max 1 density + max_extra then None
      else
        match whole_net_at tracks with
        | Some sol -> Some sol
        | None -> (
            match split_at tracks with
            | Some sol -> Some sol
            | None -> attempt (tracks + 1))
    in
    attempt (max 1 density)
  end

let min_tracks ?max_extra spec =
  Option.map (fun (s : Model.solution) -> s.Model.tracks) (route ?max_extra spec)
