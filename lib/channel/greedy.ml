(* Column-by-column greedy scan.  Tracks are numbered 1..tracks bottom-up
   (track t sits on grid row t); row 0 is the bottom pin row and row
   tracks+1 the top pin row, matching Model's realisation. *)

type state = {
  spec : Model.spec;
  tracks : int;
  track_net : int array; (* index 1..tracks; 0 = empty *)
  occ : int array array; (* occ.(x).(t): layer-0 ownership, filled per column *)
  mutable vsegs : Model.vseg list;
  mutable column_vsegs : (int * Geom.Interval.t) list; (* this column *)
  last_pin_col : (int, int) Hashtbl.t;
  pin_cols : (int, (int * [ `Top | `Bottom ]) list) Hashtbl.t;
}

let make_state spec ~tracks =
  let columns = Model.columns spec in
  let last_pin_col = Hashtbl.create 16 and pin_cols = Hashtbl.create 16 in
  let note net x side =
    if net <> 0 then begin
      (match Hashtbl.find_opt last_pin_col net with
      | Some c when c >= x -> ()
      | Some _ | None -> Hashtbl.replace last_pin_col net x);
      let existing =
        Option.value (Hashtbl.find_opt pin_cols net) ~default:[]
      in
      Hashtbl.replace pin_cols net ((x, side) :: existing)
    end
  in
  Array.iteri (fun x net -> note net x `Top) spec.Model.top;
  Array.iteri (fun x net -> note net x `Bottom) spec.Model.bottom;
  {
    spec;
    tracks;
    track_net = Array.make (tracks + 1) 0;
    occ = Array.init columns (fun _ -> Array.make (tracks + 1) 0);
    vsegs = [];
    column_vsegs = [];
    last_pin_col;
    pin_cols;
  }

(* A vertical wire of [net] over rows [span] in the current column; rejects
   overlap with a different net's wire.  Same-net overlaps merge freely. *)
let add_vseg st ~net ~col span =
  let clash =
    List.exists
      (fun (other, s) -> other <> net && Geom.Interval.overlap s span)
      st.column_vsegs
  in
  if clash then false
  else begin
    st.column_vsegs <- (net, span) :: st.column_vsegs;
    st.vsegs <- { Model.vnet = net; col; vspan = span } :: st.vsegs;
    true
  end

let tracks_of st net =
  let acc = ref [] in
  for t = st.tracks downto 1 do
    if st.track_net.(t) = net then acc := t :: !acc
  done;
  !acc

let next_pin_side st net x =
  match Hashtbl.find_opt st.pin_cols net with
  | None -> None
  | Some pins ->
      let future = List.filter (fun (c, _) -> c > x) pins in
      let nearest =
        List.fold_left
          (fun acc (c, side) ->
            match acc with
            | Some (c', _) when c' <= c -> acc
            | Some _ | None -> Some (c, side))
          None future
      in
      Option.map snd nearest

let has_future_pin st net x =
  match Hashtbl.find_opt st.last_pin_col net with
  | Some c -> c > x
  | None -> false

(* Connect the top pin of [net] at column [x]: nearest-to-top own track,
   else nearest-to-top empty track; the branch must be vertically clear. *)
let connect_top st ~net ~x =
  let top_row = st.tracks + 1 in
  let candidates =
    let own =
      List.rev (tracks_of st net) (* highest own tracks first *)
    in
    let empty = ref [] in
    for t = 1 to st.tracks do
      if st.track_net.(t) = 0 then empty := t :: !empty
    done;
    own @ !empty (* !empty is highest-first already *)
  in
  let rec attempt = function
    | [] -> false
    | t :: rest ->
        if add_vseg st ~net ~col:x (Geom.Interval.make t top_row) then begin
          if st.track_net.(t) = 0 then st.track_net.(t) <- net;
          st.occ.(x).(t) <- net;
          true
        end
        else attempt rest
  in
  attempt candidates

let connect_bottom st ~net ~x =
  let candidates =
    let own = tracks_of st net (* lowest own tracks first *) in
    let empty = ref [] in
    for t = st.tracks downto 1 do
      if st.track_net.(t) = 0 then empty := t :: !empty
    done;
    own @ !empty
  in
  let rec attempt = function
    | [] -> false
    | t :: rest ->
        if add_vseg st ~net ~col:x (Geom.Interval.make 0 t) then begin
          if st.track_net.(t) = 0 then st.track_net.(t) <- net;
          st.occ.(x).(t) <- net;
          true
        end
        else attempt rest
  in
  attempt candidates

(* Collapse a split net: join its two outermost tracks with a jog and free
   the one farther from the next pin side. *)
let collapse st ~x releases =
  List.iter
    (fun net ->
      match tracks_of st net with
      | [] | [ _ ] -> ()
      | (lo :: _ as ts) ->
          let hi = List.fold_left max lo ts in
          if add_vseg st ~net ~col:x (Geom.Interval.make lo hi) then begin
            (* All the net's tracks in [lo,hi] are joined at x; keep the one
               nearest the next pin. *)
            let keep =
              match next_pin_side st net x with
              | Some `Top -> hi
              | Some `Bottom | None -> lo
            in
            List.iter
              (fun t ->
                st.occ.(x).(t) <- net;
                if t <> keep then releases := t :: !releases)
              ts
          end)
    (List.sort_uniq Int.compare
       (Array.to_list st.track_net |> List.filter (fun n -> n <> 0)))

(* Jog a single-track net one step toward its next pin's side, to keep the
   future branch short.  Minimum jog distance 2 avoids thrash. *)
let jog_toward_pins st ~x releases =
  for t = 1 to st.tracks do
    let net = st.track_net.(t) in
    if net <> 0
       && (not (List.mem t !releases))
       && List.length (tracks_of st net) = 1
       && has_future_pin st net x
    then begin
      let target =
        match next_pin_side st net x with
        | Some `Top ->
            let best = ref 0 in
            for t' = t + 2 to st.tracks do
              if !best = 0 && st.track_net.(t') = 0 then best := t'
            done;
            !best
        | Some `Bottom ->
            let best = ref 0 in
            for t' = t - 2 downto 1 do
              if !best = 0 && st.track_net.(t') = 0 then best := t'
            done;
            !best
        | None -> 0
      in
      if target <> 0
         && add_vseg st ~net ~col:x (Geom.Interval.make t target)
      then begin
        st.track_net.(target) <- net;
        st.occ.(x).(t) <- net;
        st.occ.(x).(target) <- net;
        releases := t :: !releases
      end
    end
  done

let process_column st x =
  st.column_vsegs <- [];
  let top = st.spec.Model.top.(x) and bottom = st.spec.Model.bottom.(x) in
  let ok = ref true in
  if top <> 0 && top = bottom then begin
    (* Straight through-branch; it also joins every track the net holds
       (vias appear at the crossings during realisation). *)
    if not (add_vseg st ~net:top ~col:x (Geom.Interval.make 0 (st.tracks + 1)))
    then ok := false
    else List.iter (fun t -> st.occ.(x).(t) <- top) (tracks_of st top)
  end
  else begin
    if top <> 0 && not (connect_top st ~net:top ~x) then ok := false;
    if bottom <> 0 && not (connect_bottom st ~net:bottom ~x) then ok := false
  end;
  let releases = ref [] in
  if !ok then begin
    collapse st ~x releases;
    jog_toward_pins st ~x releases
  end;
  (* Record this column's trunk occupancy, then apply releases and vacate
     finished nets. *)
  for t = 1 to st.tracks do
    let net = st.track_net.(t) in
    if net <> 0 && st.occ.(x).(t) = 0 then st.occ.(x).(t) <- net
  done;
  List.iter (fun t -> st.track_net.(t) <- 0) !releases;
  for t = 1 to st.tracks do
    let net = st.track_net.(t) in
    if net <> 0
       && (not (has_future_pin st net x))
       && List.length (tracks_of st net) = 1
    then st.track_net.(t) <- 0
  done;
  !ok

let hsegs_of_occ st =
  let columns = Model.columns st.spec in
  let segs = ref [] in
  for t = 1 to st.tracks do
    let run_start = ref (-1) and run_net = ref 0 in
    let flush x =
      if !run_net <> 0 then
        segs :=
          {
            Model.hnet = !run_net;
            track = t;
            hspan = Geom.Interval.make !run_start (x - 1);
          }
          :: !segs;
      run_net := 0;
      run_start := -1
    in
    for x = 0 to columns - 1 do
      let net = st.occ.(x).(t) in
      if net <> !run_net then begin
        flush x;
        if net <> 0 then begin
          run_net := net;
          run_start := x
        end
      end
    done;
    flush columns
  done;
  !segs

let route_at spec ~tracks =
  if tracks < 1 then None
  else begin
    let st = make_state spec ~tracks in
    let columns = Model.columns spec in
    let ok = ref true in
    for x = 0 to columns - 1 do
      if !ok then ok := process_column st x
    done;
    (* Every net must have ended on at most one track (vacated nets hold
       none). *)
    if !ok
       && Array.for_all (fun n -> n = 0) st.track_net
    then begin
      let sol =
        { Model.tracks; hsegs = hsegs_of_occ st; vsegs = st.vsegs }
      in
      match Model.verify spec sol with Ok () -> Some sol | Error _ -> None
    end
    else None
  end

let route ?(max_extra = 10) spec =
  let density = max 1 (Model.density spec) in
  let rec attempt tracks =
    if tracks > density + max_extra then None
    else
      match route_at spec ~tracks with
      | Some sol -> Some sol
      | None -> attempt (tracks + 1)
  in
  attempt density

let pad spec extend =
  if extend = 0 then spec
  else
    let zeros = Array.make extend 0 in
    {
      Model.top = Array.append spec.Model.top zeros;
      bottom = Array.append spec.Model.bottom zeros;
    }

let route_padded ?(max_extra = 10) ?(max_extend = 6) spec =
  let density = max 1 (Model.density spec) in
  let rec attempt tracks extend =
    if tracks > density + max_extra then None
    else if extend > max_extend then attempt (tracks + 1) 0
    else
      let padded = pad spec extend in
      match route_at padded ~tracks with
      | Some sol -> Some (padded, sol)
      | None -> attempt tracks (extend + 1)
  in
  attempt density 0

let min_tracks ?max_extra ?max_extend spec =
  Option.map
    (fun ((_, s) : Model.spec * Model.solution) -> s.Model.tracks)
    (route_padded ?max_extra ?max_extend spec)

let extension_used ~original padded =
  Model.columns padded - Model.columns original
