(** The constrained left-edge algorithm (Hashimoto–Stevens style).

    Tracks are filled from the top of the channel downwards; a node (a net
    trunk, or a subnet trunk for the dogleg router) becomes eligible once
    everything constrained to lie above it has been placed.  Within a track,
    eligible nodes are packed greedily in left-edge order.  The algorithm
    fails on cyclic constraint graphs and may need more than density tracks
    on hard acyclic instances — exactly the weaknesses the experiments
    exhibit against the full router. *)

val assign :
  nodes:(int * Geom.Interval.t) list ->
  graph:Vcg.t ->
  tracks:int ->
  (int * int) list option
(** [(node, interval)] trunks to place into [tracks] tracks under the
    constraint graph.  Returns [node → track] (tracks numbered
    [tracks .. 1], i.e. top-down placement yields high numbers first), or
    [None] when the nodes do not fit. *)

type shape =
  | Trivial  (** ≤ 1 pin: nothing to wire *)
  | Single_column of int  (** all pins share a column: a through-branch *)
  | Trunk of Geom.Interval.t  (** needs a trunk across its pin span *)

val shape_of : Model.spec -> net:int -> shape
(** Channel-routing classification of a net (shared with the dogleg
    router). *)

val route_at : Model.spec -> tracks:int -> Model.solution option
(** Dogleg-free left-edge routing at one fixed track count (verified);
    [None] when infeasible at that count or the constraint graph is
    cyclic. *)

val route : ?max_extra:int -> Model.spec -> Model.solution option
(** Full dogleg-free left-edge channel router: one trunk per net.  Tries
    track counts from density up to density + [max_extra] (default 10);
    returns the first feasible solution.  [None] when the vertical
    constraint graph is cyclic or no attempted track count suffices. *)

val min_tracks : ?max_extra:int -> Model.spec -> int option
(** Track count of the solution {!route} finds. *)
