type spec = { top : int array; bottom : int array }

let columns s = Array.length s.top

let spec_of_problem (p : Netlist.Problem.t) =
  if p.Netlist.Problem.kind <> Netlist.Problem.Channel then
    invalid_arg "Model.spec_of_problem: not a channel problem";
  let w = p.Netlist.Problem.width and h = p.Netlist.Problem.height in
  let top = Array.make w 0 and bottom = Array.make w 0 in
  List.iter
    (fun (net, (pin : Netlist.Net.pin)) ->
      if pin.Netlist.Net.y = 0 then bottom.(pin.Netlist.Net.x) <- net
      else if pin.Netlist.Net.y = h - 1 then top.(pin.Netlist.Net.x) <- net
      else invalid_arg "Model.spec_of_problem: interior pin in channel")
    (Netlist.Problem.pin_cells p);
  { top; bottom }

let problem_of_spec ?(name = "channel") ~tracks s =
  Netlist.Build.channel ~name ~tracks ~top:s.top ~bottom:s.bottom ()

let net_ids s =
  let ids = Hashtbl.create 16 in
  Array.iter (fun id -> if id <> 0 then Hashtbl.replace ids id ()) s.top;
  Array.iter (fun id -> if id <> 0 then Hashtbl.replace ids id ()) s.bottom;
  Hashtbl.fold (fun id () acc -> id :: acc) ids [] |> List.sort Int.compare

let net_columns s ~net =
  let cols = ref [] in
  for x = columns s - 1 downto 0 do
    if s.top.(x) = net || s.bottom.(x) = net then cols := x :: !cols
  done;
  !cols

let span s ~net =
  match net_columns s ~net with
  | [] -> None
  | c :: rest ->
      let hi = List.fold_left max c rest in
      Some (Geom.Interval.make c hi)

let density s =
  let spans =
    List.filter_map
      (fun net ->
        match net_columns s ~net with
        | [] | [ _ ] -> None (* single-column nets occupy no track *)
        | c :: rest -> Some (Geom.Interval.make c (List.fold_left max c rest)))
      (net_ids s)
  in
  Geom.Interval.max_clique spans

type hseg = { hnet : int; track : int; hspan : Geom.Interval.t }

type vseg = { vnet : int; col : int; vspan : Geom.Interval.t }

type solution = { tracks : int; hsegs : hseg list; vsegs : vseg list }

let realize ?(name = "channel") s sol =
  let problem = problem_of_spec ~name ~tracks:sol.tracks s in
  let g = Netlist.Problem.instantiate problem in
  let conflict = ref None in
  let claim ~net ~layer ~x ~y =
    if !conflict = None then
      if not (Grid.in_bounds g ~x ~y) then
        conflict :=
          Some (Printf.sprintf "net %d: cell (%d,%d) out of range" net x y)
      else
        let v = Grid.occ_at g ~layer ~x ~y in
        if v = Grid.free || v = net then
          Grid.occupy g ~net (Grid.node g ~layer ~x ~y)
        else
          conflict :=
            Some
              (Printf.sprintf "net %d: cell (%d,%d)L%d already taken by %s"
                 net x y layer
                 (if v = Grid.obstacle then "an obstacle"
                  else Printf.sprintf "net %d" v))
  in
  List.iter
    (fun h ->
      if h.track < 1 || h.track > sol.tracks then
        conflict :=
          Some (Printf.sprintf "net %d: track %d out of range" h.hnet h.track)
      else
        for x = h.hspan.Geom.Interval.lo to h.hspan.Geom.Interval.hi do
          claim ~net:h.hnet ~layer:0 ~x ~y:h.track
        done)
    sol.hsegs;
  List.iter
    (fun v ->
      for y = v.vspan.Geom.Interval.lo to v.vspan.Geom.Interval.hi do
        claim ~net:v.vnet ~layer:1 ~x:v.col ~y
      done)
    sol.vsegs;
  match !conflict with
  | Some msg -> Error msg
  | None ->
      (* Heal vias: any position both of whose layers one net owns becomes a
         layer junction. *)
      Grid.iter_planar g (fun ~x ~y ->
          let a = Grid.occ_at g ~layer:0 ~x ~y
          and b = Grid.occ_at g ~layer:1 ~x ~y in
          if a > 0 && a = b then Grid.set_via g ~x ~y);
      Ok (problem, g)

let verify s sol =
  match realize s sol with
  | Error msg -> Error msg
  | Ok (problem, g) -> (
      match Drc.Check.check problem g with
      | [] -> Ok ()
      | violations -> Error (Drc.Check.explain violations))

let solution_vias sol =
  (* Distinct (net, column, track) junctions where an hseg meets a vseg of
     the same net. *)
  let junctions = Hashtbl.create 64 in
  List.iter
    (fun h ->
      List.iter
        (fun v ->
          if
            v.vnet = h.hnet
            && Geom.Interval.mem v.col h.hspan
            && Geom.Interval.mem h.track v.vspan
          then Hashtbl.replace junctions (h.hnet, v.col, h.track) ())
        sol.vsegs)
    sol.hsegs;
  Hashtbl.length junctions

let solution_wirelength sol =
  List.fold_left (fun acc h -> acc + Geom.Interval.length h.hspan - 1) 0 sol.hsegs
  + List.fold_left
      (fun acc v -> acc + Geom.Interval.length v.vspan - 1)
      0 sol.vsegs
