type t = {
  succ : (int, int list ref) Hashtbl.t; (* above -> belows *)
  pred : (int, int list ref) Hashtbl.t; (* below -> aboves *)
}

let create () = { succ = Hashtbl.create 16; pred = Hashtbl.create 16 }

let slot tbl n =
  match Hashtbl.find_opt tbl n with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add tbl n r;
      r

let add_node g n =
  ignore (slot g.succ n);
  ignore (slot g.pred n)

let add_edge g ~above ~below =
  if above <> below then begin
    add_node g above;
    add_node g below;
    let s = slot g.succ above in
    if not (List.mem below !s) then begin
      s := below :: !s;
      let p = slot g.pred below in
      p := above :: !p
    end
  end

let nodes g =
  Hashtbl.fold (fun n _ acc -> n :: acc) g.succ [] |> List.sort Int.compare

let parents g n = match Hashtbl.find_opt g.pred n with Some r -> !r | None -> []

let children g n = match Hashtbl.find_opt g.succ n with Some r -> !r | None -> []

let edge_count g =
  Hashtbl.fold (fun _ r acc -> acc + List.length !r) g.succ 0

let has_cycle g =
  (* Colourful DFS: 0 unvisited, 1 on stack, 2 done. *)
  let color = Hashtbl.create 16 in
  let rec visit n =
    match Hashtbl.find_opt color n with
    | Some 1 -> true
    | Some _ -> false
    | None ->
        Hashtbl.replace color n 1;
        let cyclic = List.exists visit (children g n) in
        Hashtbl.replace color n 2;
        cyclic
  in
  List.exists visit (nodes g)

let of_spec (s : Model.spec) =
  let g = create () in
  List.iter (fun n -> add_node g n) (Model.net_ids s);
  Array.iteri
    (fun x a ->
      let b = s.Model.bottom.(x) in
      if a <> 0 && b <> 0 then add_edge g ~above:a ~below:b)
    s.Model.top;
  g

let longest_path g =
  if has_cycle g then max_int
  else begin
    let memo = Hashtbl.create 16 in
    let rec depth n =
      match Hashtbl.find_opt memo n with
      | Some d -> d
      | None ->
          let d =
            1 + List.fold_left (fun acc c -> max acc (depth c)) 0 (children g n)
          in
          Hashtbl.replace memo n d;
          d
    in
    List.fold_left (fun acc n -> max acc (depth n)) 0 (nodes g)
  end
