let assign ~nodes ~graph ~tracks =
  let assigned = Hashtbl.create 16 in
  let remaining = ref nodes in
  let eligible (id, _) =
    List.for_all (Hashtbl.mem assigned) (Vcg.parents graph id)
  in
  for t = tracks downto 1 do
    let candidates =
      List.filter eligible !remaining
      |> List.sort (fun (_, a) (_, b) -> Geom.Interval.compare_lo a b)
    in
    (* Greedy left-edge packing of this track. *)
    let last_hi = ref min_int in
    let placed = Hashtbl.create 8 in
    List.iter
      (fun (id, (iv : Geom.Interval.t)) ->
        if iv.Geom.Interval.lo > !last_hi then begin
          Hashtbl.replace assigned id t;
          Hashtbl.replace placed id ();
          last_hi := iv.Geom.Interval.hi
        end)
      candidates;
    remaining := List.filter (fun (id, _) -> not (Hashtbl.mem placed id)) !remaining
  done;
  if !remaining = [] then
    Some (List.map (fun (id, _) -> (id, Hashtbl.find assigned id)) nodes)
  else None

(* Net classification for channel routing: nets with a single pin need no
   wiring, nets whose pins share one column need only a through-branch, and
   the rest get a trunk. *)
type shape = Trivial | Single_column of int | Trunk of Geom.Interval.t

let shape_of spec ~net =
  let cols = Model.net_columns spec ~net in
  let pins =
    Array.fold_left
      (fun acc id -> if id = net then acc + 1 else acc)
      0 spec.Model.top
    + Array.fold_left
        (fun acc id -> if id = net then acc + 1 else acc)
        0 spec.Model.bottom
  in
  match cols with
  | [] -> Trivial
  | [ c ] -> if pins >= 2 then Single_column c else Trivial
  | c :: rest -> Trunk (Geom.Interval.make c (List.fold_left max c rest))

let trunk_graph spec ~is_trunk =
  let g = Vcg.create () in
  Array.iteri
    (fun x a ->
      let b = spec.Model.bottom.(x) in
      if a <> 0 && b <> 0 && a <> b && is_trunk a && is_trunk b then
        Vcg.add_edge g ~above:a ~below:b)
    spec.Model.top;
  g

let solution_of spec ~tracks ~track_of_net =
  let top_row = tracks + 1 in
  let hsegs = ref [] and vsegs = ref [] in
  List.iter
    (fun net ->
      match shape_of spec ~net with
      | Trivial -> ()
      | Single_column c ->
          vsegs :=
            { Model.vnet = net; col = c; vspan = Geom.Interval.make 0 top_row }
            :: !vsegs
      | Trunk span ->
          let t = track_of_net net in
          hsegs := { Model.hnet = net; track = t; hspan = span } :: !hsegs;
          Array.iteri
            (fun x id ->
              if id = net then
                vsegs :=
                  {
                    Model.vnet = net;
                    col = x;
                    vspan = Geom.Interval.make t top_row;
                  }
                  :: !vsegs)
            spec.Model.top;
          Array.iteri
            (fun x id ->
              if id = net then
                vsegs :=
                  { Model.vnet = net; col = x; vspan = Geom.Interval.make 0 t }
                  :: !vsegs)
            spec.Model.bottom)
    (Model.net_ids spec);
  { Model.tracks; hsegs = !hsegs; vsegs = !vsegs }

let trunks_and_graph spec =
  let trunks =
    List.filter_map
      (fun net ->
        match shape_of spec ~net with
        | Trunk span -> Some (net, span)
        | Trivial | Single_column _ -> None)
      (Model.net_ids spec)
  in
  let is_trunk net = List.mem_assoc net trunks in
  (trunks, trunk_graph spec ~is_trunk)

let route_at spec ~tracks =
  let trunks, graph = trunks_and_graph spec in
  if Vcg.has_cycle graph then None
  else
    match assign ~nodes:trunks ~graph ~tracks with
    | None -> None
    | Some assignment ->
        let track_of_net net = List.assoc net assignment in
        let sol = solution_of spec ~tracks ~track_of_net in
        (* Defensive: never return an unverified solution. *)
        (match Model.verify spec sol with Ok () -> Some sol | Error _ -> None)

let route ?(max_extra = 10) spec =
  let density = Model.density spec in
  let rec attempt tracks =
    if tracks > max 1 density + max_extra then None
    else
      match route_at spec ~tracks with
      | Some sol -> Some sol
      | None -> attempt (tracks + 1)
  in
  let _, graph = trunks_and_graph spec in
  if Vcg.has_cycle graph then None else attempt (max 1 density)

let min_tracks ?max_extra spec =
  Option.map (fun (s : Model.solution) -> s.Model.tracks) (route ?max_extra spec)
