(** The channel-routing model shared by all channel routers.

    A channel is specified by its two pin rows ([top]/[bottom] arrays of net
    ids, [0] = no pin).  A {e solution} is the classical reserved-layer
    form: horizontal trunk segments on tracks (layer 0) plus vertical
    branch segments in columns (layer 1).  Solutions are validated by
    {e realising} them onto a routing grid and running the full
    design-rule/connectivity checker — channel routers get no private
    notion of correctness. *)

type spec = { top : int array; bottom : int array }

val spec_of_problem : Netlist.Problem.t -> spec
(** Recover the pin rows of a channel problem (top row [y = height-1],
    bottom row [y = 0]).
    @raise Invalid_argument if the problem is not a channel. *)

val problem_of_spec :
  ?name:string -> tracks:int -> spec -> Netlist.Problem.t

val columns : spec -> int

val density : spec -> int
(** Classical channel density of the spec (lower bound on tracks). *)

val net_ids : spec -> int list
(** Net ids present, ascending. *)

val net_columns : spec -> net:int -> int list
(** Sorted distinct pin columns of a net. *)

val span : spec -> net:int -> Geom.Interval.t option
(** Horizontal extent of a net's pins. *)

(** {1 Solutions} *)

type hseg = { hnet : int; track : int; hspan : Geom.Interval.t }
(** Trunk on layer 0 at row [track] (tracks are numbered [1..tracks],
    bottom-up), covering the span's columns. *)

type vseg = { vnet : int; col : int; vspan : Geom.Interval.t }
(** Branch on layer 1 in column [col], covering grid rows [vspan]
    (row 0 = bottom pin row, row [tracks+1] = top pin row). *)

type solution = { tracks : int; hsegs : hseg list; vsegs : vseg list }

val realize :
  ?name:string ->
  spec ->
  solution ->
  (Netlist.Problem.t * Grid.t, string) Stdlib.result
(** Build the channel problem at [solution.tracks], lay every segment on
    the grid and place a via wherever a net owns both layers of a cell.
    [Error] describes the first conflict (two nets claiming a cell, or a
    segment out of range). *)

val verify : spec -> solution -> (unit, string) Stdlib.result
(** {!realize} followed by the full DRC/connectivity check. *)

val solution_vias : solution -> int
(** Number of via positions the realised solution will contain. *)

val solution_wirelength : solution -> int
(** Total cells-steps of wiring in the solution. *)
