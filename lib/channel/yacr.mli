(** YACR-II-class channel router.

    The defining idea of the YACR family: assign trunks to tracks by pure
    left-edge interval packing — {e ignoring} vertical constraints, which
    packs to density — and then repair the vertical-constraint violations
    with maze routing on the vertical layer, where limited wrong-way
    (horizontal) segments let a branch jog around a conflicting branch in
    the same column.

    Concretely, after packing, every (net, pin-column) branch is routed
    sequentially by a maze search restricted to free vertical-layer cells
    (any direction allowed, wrong-way penalised) with the net's own trunk
    as target; trunks themselves never move and there is no rip-up — which
    is exactly the gap the full router's strong modification closes, and
    what experiment E2 contrasts.

    Unlike the dogleg-free baselines, this router can route
    vertical-constraint {e cycles} (a branch simply jogs around the
    other). *)

val route_at : Model.spec -> tracks:int -> (Netlist.Problem.t * Grid.t) option
(** One attempt at a fixed track count.  The returned grid holds the full
    verified layout (trunks on layer 0, branches on layer 1). *)

val route :
  ?max_extra:int -> Model.spec -> (Netlist.Problem.t * Grid.t) option
(** Try track counts from density to density + [max_extra] (default 10). *)

val min_tracks : ?max_extra:int -> Model.spec -> int option
