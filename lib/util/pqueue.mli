(** Mutable binary min-heap keyed by integer priorities.

    The maze search is the hot loop of the router, so the heap stores plain
    [(priority, payload)] pairs in growable arrays and performs no
    allocation per operation beyond occasional resizing.  Payloads are
    integers (packed grid node indices). *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit
(** Remove every element (O(1); storage retained). *)

val push : t -> int -> int -> unit
(** [push q priority payload] inserts an element. *)

val pop : t -> int * int
(** Remove and return the [(priority, payload)] pair with the smallest
    priority.  Ties are broken arbitrarily.
    @raise Invalid_argument if the heap is empty. *)

val pop_opt : t -> (int * int) option
(** [pop] returning [None] instead of raising on an empty heap. *)

val peek : t -> int * int
(** Like {!pop} without removing.  @raise Invalid_argument if empty. *)

val peek_opt : t -> (int * int) option
