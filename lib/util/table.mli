(** Plain-text table rendering for experiment reports.

    The benchmark harness prints each reproduced table/figure as an aligned
    text table on stdout; this module handles column sizing and alignment. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** Start a table with the given column headers.  Numeric-looking columns are
    right-aligned automatically when rows are added. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty
    cells; longer rows extend the table. *)

val add_sep : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render the whole table, headers underlined, columns aligned. *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string

val cell_pct : float -> string
(** Format a ratio in [0,1] as a percentage with one decimal. *)

val cell_bool : bool -> string
(** ["yes"] / ["no"]. *)
