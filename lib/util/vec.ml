type t = { mutable data : int array; mutable size : int }

let create ?(capacity = 16) () =
  { data = Array.make (max 4 capacity) 0; size = 0 }

let length v = v.size

let is_empty v = v.size = 0

let check v i =
  if i < 0 || i >= v.size then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let push v x =
  if v.size = Array.length v.data then begin
    let data = Array.make (2 * v.size) 0 in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then raise Not_found;
  v.size <- v.size - 1;
  v.data.(v.size)

let clear v = v.size <- 0

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let exists p v =
  let rec loop i = i < v.size && (p v.data.(i) || loop (i + 1)) in
  loop 0

let mem v x = exists (fun y -> y = x) v

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.size - 1) []

let to_array v = Array.sub v.data 0 v.size

let of_list l =
  let v = create ~capacity:(max 4 (List.length l)) () in
  List.iter (push v) l;
  v

let copy v = { data = Array.copy v.data; size = v.size }
