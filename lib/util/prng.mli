(** Deterministic pseudo-random number generator (SplitMix64).

    All stochastic components of the library (workload generation, randomized
    net ordering, tie breaking) draw from this generator so that every
    experiment is reproducible from a single integer seed.  The generator is
    a mutable state cell; [split] derives an independent stream, which lets a
    generator be handed to a sub-component without perturbing the parent
    stream. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split g] advances [g] once and returns a new generator seeded from the
    drawn value, statistically independent of the parent stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] draws uniformly from [0 .. bound-1].  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] draws uniformly from [lo .. hi] inclusive.
    Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance g p] is true with probability [p] (clamped to [0,1]). *)

val float : t -> float -> float
(** [float g x] draws uniformly from [[0, x)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
