type align = Left | Right

type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create ~headers = { headers; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = '%' || c = 'x')
       s

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc r -> match r with Cells c -> max acc (List.length c) | Separator -> acc)
      (List.length t.headers) rows
  in
  let cell_of r i = match List.nth_opt r i with Some c -> c | None -> "" in
  let width i =
    List.fold_left
      (fun acc r ->
        match r with
        | Cells c -> max acc (String.length (cell_of c i))
        | Separator -> acc)
      (String.length (cell_of t.headers i))
      rows
  in
  let widths = Array.init ncols width in
  let alignment i =
    let all_numeric =
      List.for_all
        (fun r ->
          match r with
          | Cells c ->
              let s = cell_of c i in
              s = "" || looks_numeric s
          | Separator -> true)
        rows
    in
    if all_numeric && rows <> [] then Right else Left
  in
  let aligns = Array.init ncols alignment in
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    if n <= 0 then s
    else
      match aligns.(i) with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let line_of cells =
    String.concat "  " (List.init ncols (fun i -> pad i (cell_of cells i)))
  in
  let sep_line =
    String.concat "  " (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line_of t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep_line;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      (match r with
      | Cells c -> Buffer.add_string buf (line_of c)
      | Separator -> Buffer.add_string buf sep_line);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_int = string_of_int

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let cell_pct r = Printf.sprintf "%.1f%%" (100.0 *. r)

let cell_bool b = if b then "yes" else "no"
