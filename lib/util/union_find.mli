(** Classic disjoint-set forest with path compression and union by rank.

    Used by the verifier to check per-net connectivity of routed wiring: all
    grid cells owned by a net must collapse into a single component. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> unit
(** Merge the sets of the two elements (no-op if already joined). *)

val same : t -> int -> int -> bool
(** Whether the two elements share a set. *)

val count_components : t -> (int -> bool) -> int
(** [count_components uf mem] counts distinct sets among the elements
    selected by [mem]. *)
