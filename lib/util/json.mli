(** Minimal JSON: the wire format of the routing service.

    Hand-rolled on purpose — the service protocol must not pull in new
    dependencies.  The encoder emits compact single-line JSON (no
    newlines, so one message is always one line of the line-delimited
    protocol); the decoder is a plain recursive-descent parser accepting
    standard JSON with arbitrary whitespace.

    Numbers without a fraction or exponent that fit an OCaml [int] decode
    as {!Int}; everything else numeric decodes as {!Float}.  String
    escapes cover the JSON standard including [\uXXXX] (decoded to
    UTF-8).  [to_string] and [of_string] round-trip every value built
    from these constructors. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion order preserved *)

val max_depth : int
(** Nesting bound enforced by the parser (currently 256): deeper input
    is rejected with an error instead of recursing until the stack
    blows.  Hardens the decoder against adversarial bytes read back
    from disk (WAL records, snapshots). *)

val to_string : t -> string
(** Compact encoding: no spaces, no newlines, strings escaped. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing garbage (beyond whitespace), nesting
    deeper than {!max_depth} and duplicate object keys are errors.  The
    error message includes the 0-based byte offset. *)

val of_string_exn : string -> t
(** @raise Failure on malformed input. *)

(** {2 Accessors} — total functions used by the protocol decoder. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val to_int_opt : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float_opt : t -> float option

val to_string_opt : t -> string option

val to_bool_opt : t -> bool option

val to_list_opt : t -> t list option
