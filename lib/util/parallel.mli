(** Domain-based work pool for independent tasks (OCaml 5 [Domain]).

    Runs a list of independent jobs across [jobs] domains and returns their
    results in input order, so output is identical for every [jobs] value —
    callers get parallelism without giving up determinism.  Jobs must not
    share mutable state (each experiment instance builds its own
    [Grid]/[Workspace]); the pool only shares the read-only input array and
    a work-stealing counter. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs], running up to
    [jobs] applications concurrently (clamped to the list length;
    [jobs <= 1] degrades to plain [List.map]).  Results preserve input
    order.  If any application raises, the exception of the earliest
    failing element is re-raised after all domains finish. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs tasks] executes the thunks concurrently; [run] is
    [map ~jobs (fun t -> t ())]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], the hardware-sized default for
    [--jobs 0] style flags. *)
