(** Domain-based work pool for independent tasks (OCaml 5 [Domain]).

    Runs a list of independent jobs across [jobs] domains and returns their
    results in input order, so output is identical for every [jobs] value —
    callers get parallelism without giving up determinism.  Jobs must not
    share mutable state (each experiment instance builds its own
    [Grid]/[Workspace]); the pool only shares the read-only input array and
    a work-stealing counter. *)

exception Multiple of exn list
(** Raised when two or more applications of a parallel map fail, carrying
    every failure in input order (earliest first).  A sole failure is
    re-raised as itself. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs], running up to
    [jobs] applications concurrently (clamped below to 1 and above to the
    list length; [jobs <= 1] degrades to plain [List.map]).  Results
    preserve input order.  After all domains finish, a single failing
    element's exception is re-raised as-is; several failures raise
    {!Multiple} with the earliest first. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs tasks] executes the thunks concurrently; [run] is
    [map ~jobs (fun t -> t ())]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], the hardware-sized default for
    [--jobs 0] style flags. *)

(** Persistent domain pool with per-slot worker state.

    {!map} spawns and joins domains on every call — fine for bench-sized
    tasks, too slow for the engine's per-wave fan-out.  A [Pool] keeps
    [jobs - 1] helper domains parked on a condition variable and reuses
    them across calls; the calling domain always participates as slot 0.
    Each slot lazily builds one ['w] state (a {e workspace}) via [init]
    inside the domain that owns it, and that state is handed back to every
    task the slot executes — allocate-once, reset-per-use scratch space. *)
module Pool : sig
  type 'w t

  val create : jobs:int -> init:(int -> 'w) -> 'w t
  (** [create ~jobs ~init] starts a pool of [max 1 jobs] slots
      ([jobs - 1] helper domains).  [init slot] is called at most once per
      slot, lazily, inside the owning domain, on the slot's first task. *)

  val jobs : 'w t -> int

  val map : 'w t -> ('w -> 'a -> 'b) -> 'a list -> 'b list
  (** [map pool f xs] applies [f state x] across the pool, preserving
      input order.  Exception policy matches {!Parallel.map}: one failure
      re-raises as-is, several raise {!Multiple}.  Not reentrant: do not
      call [map] from inside a task of the same pool. *)

  val shutdown : 'w t -> unit
  (** Park, join and release the helper domains.  Idempotent; the pool
      must not be used afterwards. *)
end

(** Long-lived {e shard} domains: one domain per shard, each running its
    own loop to completion — no barrier, no work stealing.

    Where {!Pool} fans a shared task list over slots and joins per call,
    a [Shards] group hands each domain a fixed identity ([run i]) and
    lets it live for the whole life of a service: the routing daemon
    parks one request-executing loop on each shard this way, with the
    shard index selecting the queue/registry partition the domain owns.
    Termination is the loop's own business (a drain flag checked by
    [run]); {!join} only waits for the loops to return. *)
module Shards : sig
  type t

  val create : n:int -> run:(int -> unit) -> t
  (** Spawn [n] domains; domain [i] runs [run i] to completion.
      [n <= 0] spawns none. *)

  val count : t -> int

  val join : t -> unit
  (** Wait for every loop to return.  Idempotent.  The caller must make
      the loops exit (e.g. flip a drain flag and signal their queues)
      before joining, or this blocks forever. *)
end
