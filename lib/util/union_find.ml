type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find uf i =
  let p = uf.parent.(i) in
  if p = i then i
  else begin
    let root = find uf p in
    uf.parent.(i) <- root;
    root
  end

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra <> rb then
    if uf.rank.(ra) < uf.rank.(rb) then uf.parent.(ra) <- rb
    else if uf.rank.(ra) > uf.rank.(rb) then uf.parent.(rb) <- ra
    else begin
      uf.parent.(rb) <- ra;
      uf.rank.(ra) <- uf.rank.(ra) + 1
    end

let same uf a b = find uf a = find uf b

let count_components uf mem =
  let n = Array.length uf.parent in
  let seen = Hashtbl.create 16 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if mem i then begin
      let r = find uf i in
      if not (Hashtbl.mem seen r) then begin
        Hashtbl.add seen r ();
        incr count
      end
    end
  done;
  !count
