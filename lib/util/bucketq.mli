(** Dial-style bucket queue keyed by small integer priorities.

    A circular array of buckets, one per priority value, covering a sliding
    window of priorities.  For the monotone access pattern of Dijkstra/A*
    with bounded integer edge costs — the maze search's exact profile —
    every operation is O(1) amortised ([pop] scans at most the priority
    span, which is the maximum edge cost).  Payloads are integers (packed
    grid node indices), and equal-priority elements pop in LIFO order.

    The structure is in fact fully general: priorities may arrive in any
    order and may be negative; the bucket window re-anchors and grows on
    demand.  Only the complexity guarantee (span stays small) relies on the
    monotone, bounded-increment usage. *)

type t

val create : ?span:int -> unit -> t
(** [create ~span ()] sizes the circular bucket array for priorities
    spanning [span] consecutive values (rounded up to a power of two); it
    grows automatically when exceeded.  [span] defaults to 16, comfortably
    above the default cost model's largest step. *)

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit
(** Remove every element (O(buckets); storage retained). *)

val push : t -> int -> int -> unit
(** [push q priority payload] inserts an element. *)

val pop : t -> int * int
(** Remove and return a [(priority, payload)] pair with the smallest
    priority.  Equal priorities pop LIFO.
    @raise Invalid_argument if the queue is empty. *)

val pop_opt : t -> (int * int) option

val peek : t -> int * int
(** Like {!pop} without removing.  @raise Invalid_argument if empty. *)
