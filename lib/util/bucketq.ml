(* Invariants: every stored priority lies in [base, hi], and
   [hi - base < Array.length buckets] (a power of two).  The bucket of
   priority [p] is [p land mask], so consecutive priorities occupy
   consecutive circular slots and the slot of an in-range priority is
   unique.  [base] is a lower bound for the minimum; [pop] advances it to
   the first non-empty bucket. *)

type t = {
  mutable buckets : Vec.t array;
  mutable mask : int;  (* Array.length buckets - 1 *)
  mutable base : int;
  mutable hi : int;
  mutable size : int;
}

let rec pow2_above n k = if k > n then k else pow2_above n (2 * k)

let create ?(span = 16) () =
  let n = pow2_above (max 1 span) 2 in
  {
    buckets = Array.init n (fun _ -> Vec.create ~capacity:4 ());
    mask = n - 1;
    base = 0;
    hi = 0;
    size = 0;
  }

let length q = q.size

let is_empty q = q.size = 0

let clear q =
  Array.iter Vec.clear q.buckets;
  q.base <- 0;
  q.hi <- 0;
  q.size <- 0

(* Re-anchor the window to [lo, hi] (which must hold every stored priority),
   growing the bucket array so the span fits.  Elements are moved bucket by
   bucket: before the grow each in-range priority owns a unique old slot, so
   the vectors can be transplanted wholesale. *)
let rebucket q ~lo ~hi =
  let n = pow2_above (hi - lo + 1) (2 * (q.mask + 1)) in
  let fresh = Array.init n (fun _ -> Vec.create ~capacity:4 ()) in
  let mask = n - 1 in
  for p = q.base to q.hi do
    let old = q.buckets.(p land q.mask) in
    if not (Vec.is_empty old) then fresh.(p land mask) <- old
  done;
  q.buckets <- fresh;
  q.mask <- mask;
  q.base <- lo;
  q.hi <- hi

let push q priority payload =
  if q.size = 0 then begin
    q.base <- priority;
    q.hi <- priority
  end
  else begin
    let lo = min q.base priority and hi = max q.hi priority in
    if hi - lo > q.mask then rebucket q ~lo ~hi
    else begin
      q.base <- lo;
      q.hi <- hi
    end
  end;
  Vec.push q.buckets.(priority land q.mask) payload;
  q.size <- q.size + 1

let rec advance q =
  if Vec.is_empty q.buckets.(q.base land q.mask) then begin
    q.base <- q.base + 1;
    advance q
  end

let pop q =
  if q.size = 0 then invalid_arg "Bucketq.pop: empty";
  advance q;
  let payload = Vec.pop q.buckets.(q.base land q.mask) in
  q.size <- q.size - 1;
  (q.base, payload)

let pop_opt q = if q.size = 0 then None else Some (pop q)

let peek q =
  if q.size = 0 then invalid_arg "Bucketq.peek: empty";
  advance q;
  let b = q.buckets.(q.base land q.mask) in
  (q.base, Vec.get b (Vec.length b - 1))
