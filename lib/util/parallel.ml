let default_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = 1) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min (max 1 jobs) n in
  if jobs <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some (try Ok (f items.(i)) with e -> Error e)
      done
    in
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end

let run ?jobs tasks = map ?jobs (fun t -> t ()) tasks
