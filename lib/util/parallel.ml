exception Multiple of exn list

let () =
  Printexc.register_printer (function
    | Multiple es ->
        Some
          (Printf.sprintf "Parallel.Multiple (%d failures; first: %s)"
             (List.length es)
             (match es with e :: _ -> Printexc.to_string e | [] -> "?"))
    | _ -> None)

let default_jobs () = Domain.recommended_domain_count ()

(* Collect results in input order; a sole failure re-raises as-is so
   callers' handlers keep working, two or more raise [Multiple] with the
   earliest element's exception first. *)
let collect results =
  let errs =
    Array.to_list results
    |> List.filter_map (function
         | Some (Error e) -> Some e
         | Some (Ok _) -> None
         | None -> assert false)
  in
  match errs with
  | [] ->
      Array.to_list results
      |> List.map (function Some (Ok v) -> v | _ -> assert false)
  | [ e ] -> raise e
  | es -> raise (Multiple es)

let map ?(jobs = 1) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = max 1 jobs in
  (* explicit lower clamp *)
  let jobs = min jobs n in
  if jobs <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some (try Ok (f items.(i)) with e -> Error e)
      done
    in
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    collect results
  end

let run ?jobs tasks = map ?jobs (fun t -> t ()) tasks

module Pool = struct
  type 'w t = {
    jobs : int;
    init : int -> 'w;
    (* Slot [i]'s state, created lazily inside the domain that owns the
       slot (slot 0 is the calling domain) and only ever read there, so
       no synchronization is needed. *)
    states : 'w option array;
    mutex : Mutex.t;
    cond : Condition.t;
    mutable task : (int -> unit) option;
    mutable epoch : int;
    mutable active : int; (* helper domains still inside current epoch *)
    mutable stop : bool;
    mutable domains : unit Domain.t array;
  }

  let worker t slot =
    let rec loop last =
      Mutex.lock t.mutex;
      while t.epoch = last && not t.stop do
        Condition.wait t.cond t.mutex
      done;
      if t.stop then Mutex.unlock t.mutex
      else begin
        let epoch = t.epoch in
        let task = Option.get t.task in
        Mutex.unlock t.mutex;
        task slot;
        Mutex.lock t.mutex;
        t.active <- t.active - 1;
        if t.active = 0 then Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        loop epoch
      end
    in
    loop 0

  let create ~jobs ~init =
    let jobs = max 1 jobs in
    let t =
      {
        jobs;
        init;
        states = Array.make jobs None;
        mutex = Mutex.create ();
        cond = Condition.create ();
        task = None;
        epoch = 0;
        active = 0;
        stop = false;
        domains = [||];
      }
    in
    t.domains <-
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
    t

  let jobs t = t.jobs

  let state t slot =
    match t.states.(slot) with
    | Some w -> w
    | None ->
        let w = t.init slot in
        t.states.(slot) <- Some w;
        w

  let map t f xs =
    let items = Array.of_list xs in
    let n = Array.length items in
    if n = 0 then []
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let task slot =
        let w = state t slot in
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else results.(i) <- Some (try Ok (f w items.(i)) with e -> Error e)
        done
      in
      if t.jobs = 1 then task 0
      else begin
        Mutex.lock t.mutex;
        t.task <- Some task;
        t.epoch <- t.epoch + 1;
        t.active <- t.jobs - 1;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        task 0;
        (* caller participates as slot 0 *)
        Mutex.lock t.mutex;
        while t.active > 0 do
          Condition.wait t.cond t.mutex
        done;
        t.task <- None;
        Mutex.unlock t.mutex
      end;
      collect results
    end

  let shutdown t =
    if not t.stop then begin
      Mutex.lock t.mutex;
      t.stop <- true;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.domains;
      t.domains <- [||]
    end
end

module Shards = struct
  type t = { mutable domains : unit Domain.t array }

  let create ~n ~run =
    { domains = Array.init (max 0 n) (fun i -> Domain.spawn (fun () -> run i)) }

  let count t = Array.length t.domains

  let join t =
    Array.iter Domain.join t.domains;
    t.domains <- [||]
end
