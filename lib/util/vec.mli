(** Growable integer array (OCaml 5.1 predates [Dynarray]).

    Used for route cell lists and scratch buffers in the hot path, where
    boxed lists would cause avoidable GC churn. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

val get : t -> int -> int
(** @raise Invalid_argument on out-of-bounds access. *)

val set : t -> int -> int -> unit

val push : t -> int -> unit

val pop : t -> int
(** Remove and return the last element.  @raise Not_found if empty. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit

val exists : (int -> bool) -> t -> bool

val mem : t -> int -> bool

val to_list : t -> int list

val to_array : t -> int array

val of_list : int list -> t

val copy : t -> t
