type t = {
  mutable prio : int array;
  mutable data : int array;
  mutable size : int;
}

let create ?(capacity = 256) () =
  let capacity = max 16 capacity in
  { prio = Array.make capacity 0; data = Array.make capacity 0; size = 0 }

let length q = q.size

let is_empty q = q.size = 0

let clear q = q.size <- 0

let grow q =
  let n = Array.length q.prio in
  let prio = Array.make (2 * n) 0 and data = Array.make (2 * n) 0 in
  Array.blit q.prio 0 prio 0 n;
  Array.blit q.data 0 data 0 n;
  q.prio <- prio;
  q.data <- data

let push q priority payload =
  if q.size = Array.length q.prio then grow q;
  (* Sift the new element up from the last slot. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if q.prio.(parent) > priority then begin
      q.prio.(!i) <- q.prio.(parent);
      q.data.(!i) <- q.data.(parent);
      i := parent
    end
    else continue := false
  done;
  q.prio.(!i) <- priority;
  q.data.(!i) <- payload

let peek q =
  if q.size = 0 then invalid_arg "Pqueue.peek: empty";
  (q.prio.(0), q.data.(0))

let peek_opt q = if q.size = 0 then None else Some (q.prio.(0), q.data.(0))

let pop q =
  if q.size = 0 then invalid_arg "Pqueue.pop: empty";
  let top = (q.prio.(0), q.data.(0)) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    (* Move the last element to the root and sift it down. *)
    let priority = q.prio.(q.size) and payload = q.data.(q.size) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest =
        if l < q.size && q.prio.(l) < priority then l else !i
      in
      let smallest =
        if r < q.size
           && q.prio.(r) < (if smallest = !i then priority else q.prio.(smallest))
        then r
        else smallest
      in
      if smallest = !i then continue := false
      else begin
        q.prio.(!i) <- q.prio.(smallest);
        q.data.(!i) <- q.data.(smallest);
        i := smallest
      end
    done;
    q.prio.(!i) <- priority;
    q.data.(!i) <- payload
  end;
  top

let pop_opt q = if q.size = 0 then None else Some (pop q)
