(* SplitMix64: fast, high-quality 64-bit generator with trivial seeding.
   Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy g = { state = g.state }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = mix (bits64 g) }

(* Non-negative 62-bit int from the top bits (OCaml ints are 63-bit). *)
let bits g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits g in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (bits64 g) 1L = 1L

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let chance g p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list g l =
  let a = Array.of_list l in
  shuffle g a;
  Array.to_list a

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let pick_list g l = pick g (Array.of_list l)
