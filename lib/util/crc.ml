(* Standard reflected CRC-32, polynomial 0xEDB88320. *)

let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let string s =
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl)
      in
      crc := Int32.logxor t.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl

let to_hex c = Printf.sprintf "%08lx" (Int32.logand c 0xFFFFFFFFl)

let of_hex s =
  (* [Int32.of_string] reads hex literals as unsigned 32-bit patterns, so
     the whole crc range round-trips. *)
  if String.length s = 8 && String.for_all (function
       | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
       | _ -> false) s
  then Int32.of_string_opt ("0x" ^ s)
  else None
