type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          encode buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode buf v;
  Buffer.contents buf

(* --- decoding --- *)

exception Bad of int * string

(* Nesting bound: adversarial input read back from disk (WAL records,
   snapshots) must not be able to blow the stack — the recursive-descent
   parser recurses once per nesting level, so a few hundred levels is
   far more than any legitimate record and far less than any stack. *)
let max_depth = 256

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  (* Encode one Unicode scalar value as UTF-8 bytes. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match text.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape"
           else
             match text.[!pos] with
             | '"' -> advance (); Buffer.add_char buf '"'
             | '\\' -> advance (); Buffer.add_char buf '\\'
             | '/' -> advance (); Buffer.add_char buf '/'
             | 'n' -> advance (); Buffer.add_char buf '\n'
             | 't' -> advance (); Buffer.add_char buf '\t'
             | 'r' -> advance (); Buffer.add_char buf '\r'
             | 'b' -> advance (); Buffer.add_char buf '\b'
             | 'f' -> advance (); Buffer.add_char buf '\012'
             | 'u' ->
                 advance ();
                 add_utf8 buf (hex4 ())
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match text.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected a digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let s = String.sub text start (!pos - start) in
    if !is_float then Float (float_of_string s)
    else
      match int_of_string_opt s with
      | Some v -> Int v
      | None -> Float (float_of_string s)
  in
  let rec parse_value depth =
    if depth >= max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            if List.mem_assoc k acc then
              fail (Printf.sprintf "duplicate key %S" k);
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after value";
  v

let of_string text =
  match parse text with
  | v -> Ok v
  | exception Bad (pos, msg) ->
      Error (Printf.sprintf "at byte %d: %s" pos msg)

let of_string_exn text =
  match of_string text with Ok v -> v | Error msg -> failwith msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 2.0 ** 52.0 ->
      Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
