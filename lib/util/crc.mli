(** CRC-32 (IEEE 802.3, the zlib polynomial), for detecting torn or
    corrupted records read back from disk.  Pure OCaml, table-driven;
    plenty fast for the line-sized records the durability layer checks. *)

val string : string -> int32
(** CRC-32 of a whole string. *)

val to_hex : int32 -> string
(** Fixed-width lowercase hex (8 characters). *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex characters. *)
