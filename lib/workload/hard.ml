(* Fixed seeds make these instances part of the repository: regenerating
   them is deterministic, so results are comparable across runs/machines. *)

let deutsch_like ?(tracks_slack = 0) () =
  let prng = Util.Prng.create 0xD15C in
  Gen.channel_at_density ~name:"deutsch-like" ~tracks_slack prng ~columns:72
    ~density:19

(* Seed chosen by sweep: 24 nets on a 23x15 box (the published Burstein
   profile); the one-shot maze router fails on it under every ordering
   heuristic while the full router completes it. *)
let burstein_like () =
  let prng = Util.Prng.create 7 in
  Gen.routable_switchbox ~name:"burstein-like" prng ~width:23 ~height:15

(* Found by seed sweep: the smallest suite member on which the one-shot
   maze router fails under every ordering heuristic, while rip-up completes
   routing.  The minimal demonstration of the paper's technique. *)
let tiny_blocked () =
  let prng = Util.Prng.create 9 in
  Gen.routable_switchbox ~name:"tiny-blocked" prng ~width:8 ~height:7

(* Vertical-constraint cycle: column 0 wants net 1 above net 2, column 2
   wants net 2 above net 1.  Dogleg-free channel routers cannot route this
   at any track count. *)
let cyclic_channel () =
  Netlist.Build.channel ~name:"vc-cycle" ~tracks:3
    ~top:[| 1; 0; 2; 0 |]
    ~bottom:[| 2; 0; 1; 0 |]
    ()

(* Net i pins: top at column i-1, bottom at column i -> constraint chain
   net_1 above net_2 above ... of length n, density only 2. *)
let staircase_channel n =
  if n < 2 then invalid_arg "staircase_channel: need at least 2 nets";
  let top = Array.make (n + 1) 0 and bottom = Array.make (n + 1) 0 in
  for i = 1 to n do
    top.(i - 1) <- i;
    bottom.(i) <- i
  done;
  Netlist.Build.channel ~name:"staircase" ~tracks:(n + 2) ~top ~bottom ()

let all_channels () =
  let fixed name seed columns density slack =
    ( name,
      Gen.channel_at_density ~name ~tracks_slack:slack
        (Util.Prng.create seed) ~columns ~density )
  in
  [
    ("deutsch-like", deutsch_like ());
    ("vc-cycle", cyclic_channel ());
    ("staircase-8", staircase_channel 8);
    fixed "chan-24x8" 11 24 8 0;
    fixed "chan-40x12" 12 40 12 0;
    fixed "chan-56x14" 13 56 14 0;
    fixed "chan-72x16" 14 72 16 0;
  ]

let all_switchboxes () =
  let routable name seed w h =
    ( name,
      Gen.routable_switchbox ~name (Util.Prng.create seed) ~width:w ~height:h
    )
  in
  [
    ("burstein-like", burstein_like ());
    ("tiny-blocked", tiny_blocked ());
    routable "sb-10x10" 11 10 10;
    routable "sb-14x12" 14 14 12;
    routable "sb-18x14" 10 18 14;
    routable "sb-24x16" 14 24 16;
  ]
