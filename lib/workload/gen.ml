(* All generators draw pins from an explicit pool of free "slots" so no two
   pins ever collide; Problem.make still validates the result. *)

let take_slots prng pool k =
  (* Remove and return k random slots from the pool (a mutable list ref). *)
  let arr = Array.of_list !pool in
  Util.Prng.shuffle prng arr;
  let n = Array.length arr in
  let k = min k n in
  let taken = Array.sub arr 0 k |> Array.to_list in
  pool := Array.sub arr k (n - k) |> Array.to_list;
  taken

let channel_of_slot_nets ?(name = "rand-channel") ~tracks_slack ~columns nets_slots =
  (* nets_slots : (side, column) list list; side = `Top | `Bottom *)
  let top = Array.make columns 0 and bottom = Array.make columns 0 in
  List.iteri
    (fun i slots ->
      let id = i + 1 in
      List.iter
        (function
          | `Top, x -> top.(x) <- id
          | `Bottom, x -> bottom.(x) <- id)
        slots)
    nets_slots;
  (* Density of the provisional problem decides the track count. *)
  let provisional =
    Netlist.Build.channel ~name ~tracks:1 ~top ~bottom ()
  in
  let density = Netlist.Analysis.channel_density provisional in
  let tracks = max 1 (density + tracks_slack) in
  Netlist.Build.channel ~name ~tracks ~top ~bottom ()

let all_channel_slots columns =
  List.init columns (fun x -> [ (`Top, x); (`Bottom, x) ]) |> List.concat

let channel ?(name = "rand-channel") ?(tracks_slack = 2) ?(min_pins = 2)
    ?(max_pins = 4) prng ~columns ~nets =
  let pool = ref (all_channel_slots columns) in
  let nets_slots =
    List.init nets (fun _ ->
        take_slots prng pool (Util.Prng.int_in prng min_pins max_pins))
  in
  let nets_slots = List.filter (fun s -> List.length s >= 2) nets_slots in
  channel_of_slot_nets ~name ~tracks_slack ~columns nets_slots

let channel_at_density ?(name = "rand-channel") ?(tracks_slack = 0) prng
    ~columns ~density =
  let pool = ref (all_channel_slots columns) in
  let span_of slots =
    match List.map snd slots with
    | [] -> None
    | x :: rest ->
        let lo = List.fold_left min x rest
        and hi = List.fold_left max x rest in
        Some (Geom.Interval.make lo hi)
  in
  let current_density nets_slots =
    Geom.Interval.max_clique (List.filter_map span_of nets_slots)
  in
  let rec add acc =
    if current_density acc >= density || List.length !pool < 2 then acc
    else
      let k = Util.Prng.int_in prng 2 4 in
      let slots = take_slots prng pool k in
      if List.length slots >= 2 then add (slots :: acc) else acc
  in
  let nets_slots = List.rev (add []) in
  channel_of_slot_nets ~name ~tracks_slack ~columns nets_slots

type sb_slot = Top of int | Bottom of int | Left of int | Right of int

let switchbox_arrays ~width ~height nets_slots =
  let top = Array.make width 0
  and bottom = Array.make width 0
  and left = Array.make height 0
  and right = Array.make height 0 in
  List.iteri
    (fun i slots ->
      let id = i + 1 in
      List.iter
        (function
          | Top x -> top.(x) <- id
          | Bottom x -> bottom.(x) <- id
          | Left y -> left.(y) <- id
          | Right y -> right.(y) <- id)
        slots)
    nets_slots;
  (top, bottom, left, right)

let all_switchbox_slots ~width ~height =
  List.init width (fun x -> Top x)
  @ List.init width (fun x -> Bottom x)
  @ List.init (max 0 (height - 2)) (fun y -> Left (y + 1))
  @ List.init (max 0 (height - 2)) (fun y -> Right (y + 1))

let switchbox ?(name = "rand-switchbox") ?(min_pins = 2) ?(max_pins = 4) prng
    ~width ~height ~nets =
  let pool = ref (all_switchbox_slots ~width ~height) in
  let nets_slots =
    List.init nets (fun _ ->
        take_slots prng pool (Util.Prng.int_in prng min_pins max_pins))
    |> List.filter (fun s -> List.length s >= 2)
  in
  let top, bottom, left, right = switchbox_arrays ~width ~height nets_slots in
  Netlist.Build.switchbox ~name ~width ~height ~top ~bottom ~left ~right ()

let dense_switchbox ?(name = "dense-switchbox") ?(fill = 0.85) prng ~width
    ~height =
  let slots = Array.of_list (all_switchbox_slots ~width ~height) in
  Util.Prng.shuffle prng slots;
  let used = int_of_float (fill *. float_of_int (Array.length slots)) in
  let used = max 4 (used - (used mod 2)) in
  let rec group i acc =
    if i + 1 >= used then acc
    else if i + 2 < used && Util.Prng.chance prng 0.15 then
      group (i + 3) ([ slots.(i); slots.(i + 1); slots.(i + 2) ] :: acc)
    else group (i + 2) ([ slots.(i); slots.(i + 1) ] :: acc)
  in
  let nets_slots = group 0 [] in
  let top, bottom, left, right = switchbox_arrays ~width ~height nets_slots in
  Netlist.Build.switchbox ~name ~width ~height ~top ~bottom ~left ~right ()

(* Routable-by-construction switchboxes: actually route disjoint wires on an
   empty grid, then forget the wires and keep the endpoints as pins.  A
   hash-based per-cell cost noise makes the witness wires wiggle, which is
   what makes the instances hard for one-shot routing. *)
let routable_switchbox ?(name = "routable-switchbox") ?(fill = 0.9)
    ?(multi_pin_prob = 0.2) prng ~width ~height =
  let g = Grid.create ~width ~height () in
  let ws = Maze.Workspace.create g in
  let slots = Array.of_list (all_switchbox_slots ~width ~height) in
  Util.Prng.shuffle prng slots;
  let pin_of_slot = function
    | Top x -> Netlist.Net.pin ~layer:1 x (height - 1)
    | Bottom x -> Netlist.Net.pin ~layer:1 x 0
    | Left y -> Netlist.Net.pin ~layer:0 0 y
    | Right y -> Netlist.Net.pin ~layer:0 (width - 1) y
  in
  (* Reserve every slot cell so witness wires never run over future pins. *)
  let reserved = Array.length slots + 1 in
  Array.iter
    (fun s -> Grid.occupy g ~net:reserved (Maze.Route.pin_node g (pin_of_slot s)))
    slots;
  let kept = ref [] in
  let next_id = ref 0 in
  let cursor = ref 0 in
  let pop () =
    if !cursor >= Array.length slots then None
    else begin
      let s = slots.(!cursor) in
      incr cursor;
      Some s
    end
  in
  let continue = ref true in
  while !continue do
    if Grid.fill_ratio g >= fill then continue := false
    else begin
      let k = if Util.Prng.chance prng multi_pin_prob then 3 else 2 in
      let rec take n acc =
        if n = 0 then Some (List.rev acc)
        else match pop () with None -> None | Some s -> take (n - 1) (s :: acc)
      in
      match take k [] with
      | None -> continue := false
      | Some chosen ->
          incr next_id;
          let id = !next_id in
          let pins = List.map pin_of_slot chosen in
          let nodes = List.map (Maze.Route.pin_node g) pins in
          List.iter (Grid.release g) nodes;
          List.iter (Grid.occupy g ~net:id) nodes;
          let salt = Util.Prng.int prng 1_000_000 in
          let noise n = abs ((n * 2654435761) + salt) land 1 in
          let passable n =
            let v = Grid.occ g n in
            if v = Grid.free || v = id then Some (noise n) else None
          in
          let net = Netlist.Net.make ~id ~name:(Printf.sprintf "n%d" id) pins in
          (match
             Maze.Route.route_net ~passable g ws ~cost:Maze.Cost.default net
           with
          | Ok _ -> kept := (id, chosen) :: !kept
          | Error _ ->
              (* Unroutable pair at current congestion: put the slots back
                 under reservation and drop the net. *)
              List.iter (Grid.release g) nodes;
              List.iter (Grid.occupy g ~net:reserved) nodes;
              decr next_id)
    end
  done;
  let nets_slots = List.rev_map snd !kept in
  let top, bottom, left, right = switchbox_arrays ~width ~height nets_slots in
  Netlist.Build.switchbox ~name ~width ~height ~top ~bottom ~left ~right ()

(* Macro array with routing alleys: macros evenly spaced, alley width >= 3. *)
let chip_macros ~width ~height ~macro_cols ~macro_rows =
  let alley = 3 in
  let mw = (width - ((macro_cols + 1) * alley)) / macro_cols in
  let mh = (height - ((macro_rows + 1) * alley)) / macro_rows in
  if mw < 2 || mh < 2 then
    invalid_arg "Gen.routable_chip: region too small for the macro array";
  let rects = ref [] in
  for r = 0 to macro_rows - 1 do
    for c = 0 to macro_cols - 1 do
      let x0 = alley + (c * (mw + alley)) and y0 = alley + (r * (mh + alley)) in
      rects := Geom.Rect.make x0 y0 (x0 + mw - 1) (y0 + mh - 1) :: !rects
    done
  done;
  List.rev !rects

let routable_chip ?(name = "routable-chip") ?(macro_cols = 3) ?(macro_rows = 2)
    ?(fill = 0.45) ?(multi_pin_prob = 0.25) ?layers ?layer_dirs
    ?(slot_prob = 0.35) prng ~width ~height =
  let macros = chip_macros ~width ~height ~macro_cols ~macro_rows in
  let g = Grid.create ?layers ?dirs:layer_dirs ~width ~height () in
  List.iter (fun r -> Grid.block_rect g r) macros;
  let ws = Maze.Workspace.create g in
  (* Pin slots: free cells hugging a macro edge or on the chip boundary. *)
  let near_macro x y =
    List.exists
      (fun r -> Geom.Rect.mem (Geom.Rect.inflate r 1) x y)
      macros
  in
  let on_boundary x y = x = 0 || y = 0 || x = width - 1 || y = height - 1 in
  (* Only a fraction of the candidate cells become pin slots: reserving the
     whole macro ring would wall the alleys off for the witness wires. *)
  let slots = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if (near_macro x y || on_boundary x y)
         && Grid.occ_at g ~layer:0 ~x ~y = Grid.free
         && Util.Prng.chance prng slot_prob
      then slots := (x, y) :: !slots
    done
  done;
  let slots = Array.of_list !slots in
  Util.Prng.shuffle prng slots;
  (* Reserve each slot on a random layer; witness wires avoid them. *)
  let reserved = Array.length slots + 1 in
  let slot_layer =
    Array.map
      (fun (x, y) ->
        let layer = Util.Prng.int prng (Grid.layers g) in
        Grid.occupy g ~net:reserved (Grid.node g ~layer ~x ~y);
        layer)
      slots
  in
  let kept = ref [] in
  let next_id = ref 0 in
  let cursor = ref 0 in
  let pop () =
    if !cursor >= Array.length slots then None
    else begin
      let i = !cursor in
      incr cursor;
      Some i
    end
  in
  (* Reserved slot cells are not wiring: measure witness fill without
     them. *)
  let wire_fill () =
    let wired = ref 0 and usable = ref 0 in
    Grid.iter_nodes g (fun n ->
        let v = Grid.occ g n in
        if v <> Grid.obstacle then begin
          incr usable;
          if v > 0 && v <> reserved then incr wired
        end);
    if !usable = 0 then 1.0 else float_of_int !wired /. float_of_int !usable
  in
  let continue = ref true in
  while !continue do
    if wire_fill () >= fill then continue := false
    else begin
      let k = if Util.Prng.chance prng multi_pin_prob then 3 else 2 in
      let rec take n acc =
        if n = 0 then Some (List.rev acc)
        else match pop () with None -> None | Some i -> take (n - 1) (i :: acc)
      in
      match take k [] with
      | None -> continue := false
      | Some chosen ->
          incr next_id;
          let id = !next_id in
          let pins =
            List.map
              (fun i ->
                let x, y = slots.(i) in
                Netlist.Net.pin ~layer:slot_layer.(i) x y)
              chosen
          in
          let nodes = List.map (Maze.Route.pin_node g) pins in
          List.iter (Grid.release g) nodes;
          List.iter (Grid.occupy g ~net:id) nodes;
          let salt = Util.Prng.int prng 1_000_000 in
          let noise n = abs ((n * 2654435761) + salt) land 1 in
          let passable n =
            let v = Grid.occ g n in
            if v = Grid.free || v = id then Some (noise n) else None
          in
          let net = Netlist.Net.make ~id ~name:(Printf.sprintf "n%d" id) pins in
          (match
             Maze.Route.route_net ~passable g ws ~cost:Maze.Cost.default net
           with
          | Ok _ -> kept := (id, pins) :: !kept
          | Error _ ->
              List.iter (Grid.release g) nodes;
              List.iter (Grid.occupy g ~net:reserved) nodes;
              decr next_id)
    end
  done;
  let pairs =
    List.concat_map (fun (id, pins) -> List.map (fun p -> (id, p)) pins) !kept
  in
  let obstructions =
    List.map
      (fun r -> { Netlist.Problem.obs_layer = None; obs_rect = r })
      macros
  in
  Netlist.Build.of_pins ~name ~kind:Netlist.Problem.Region ~obstructions
    ?layers ?layer_dirs ~width ~height pairs

(* Chip-scale instances: the witness-wire recipe of [routable_chip]
   cannot reach four-digit net counts — its unwindowed wiggly wires
   wander across the whole region, so a handful of nets saturates the
   fill budget.  Here nets are {e local}: pin slots are bucketed into
   blocks, nets draw their pins from (mostly) one block, and each
   witness wire routes inside its pin bounding box grown by [window]
   cells.  Short wires → thousands of provably routable nets. *)
let chip_scale ?(name = "chip-scale") ?(macro_cols = 7) ?(macro_rows = 5)
    ?(layers = 3) ?layer_dirs ?(slot_prob = 0.6) ?(multi_pin_prob = 0.2)
    ?(window = 10) prng ~width ~height =
  let macros = chip_macros ~width ~height ~macro_cols ~macro_rows in
  let g = Grid.create ~layers ?dirs:layer_dirs ~width ~height () in
  List.iter (fun r -> Grid.block_rect g r) macros;
  let ws = Maze.Workspace.create g in
  let near_macro x y =
    List.exists (fun r -> Geom.Rect.mem (Geom.Rect.inflate r 1) x y) macros
  in
  let on_boundary x y = x = 0 || y = 0 || x = width - 1 || y = height - 1 in
  let slots = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if (near_macro x y || on_boundary x y)
         && Grid.occ_at g ~layer:0 ~x ~y = Grid.free
         && Util.Prng.chance prng slot_prob
      then slots := (x, y) :: !slots
    done
  done;
  let slots = Array.of_list !slots in
  Util.Prng.shuffle prng slots;
  let reserved = Array.length slots + 1 in
  let slot_layer =
    Array.map
      (fun (x, y) ->
        let layer = Util.Prng.int prng layers in
        Grid.occupy g ~net:reserved (Grid.node g ~layer ~x ~y);
        layer)
      slots
  in
  (* Locality: stable-sort the shuffled slots by block; consecutive
     slots then mostly share a block, so popping consecutive groups
     yields local nets (the occasional block-spanning group just gets a
     larger search box). *)
  let block = max 8 (2 * window) in
  let blocks_x = (width + block - 1) / block in
  let bucket (x, y) = ((y / block) * blocks_x) + (x / block) in
  let order = Array.init (Array.length slots) Fun.id in
  Array.sort
    (fun a b ->
      let ba = bucket slots.(a) and bb = bucket slots.(b) in
      if ba <> bb then compare ba bb else compare a b)
    order;
  let kept = ref [] in
  let next_id = ref 0 in
  let cursor = ref 0 in
  let pop () =
    if !cursor >= Array.length order then None
    else begin
      let i = order.(!cursor) in
      incr cursor;
      Some i
    end
  in
  let continue = ref true in
  while !continue do
    let k = if Util.Prng.chance prng multi_pin_prob then 3 else 2 in
    let rec take n acc =
      if n = 0 then Some (List.rev acc)
      else match pop () with None -> None | Some i -> take (n - 1) (i :: acc)
    in
    match take k [] with
    | None -> continue := false
    | Some chosen ->
        incr next_id;
        let id = !next_id in
        let pins =
          List.map
            (fun i ->
              let x, y = slots.(i) in
              Netlist.Net.pin ~layer:slot_layer.(i) x y)
            chosen
        in
        let nodes = List.map (Maze.Route.pin_node g) pins in
        List.iter (Grid.release g) nodes;
        List.iter (Grid.occupy g ~net:id) nodes;
        let salt = Util.Prng.int prng 1_000_000 in
        let noise n = abs ((n * 2654435761) + salt) land 1 in
        let passable n =
          let v = Grid.occ g n in
          if v = Grid.free || v = id then Some (noise n) else None
        in
        let net = Netlist.Net.make ~id ~name:(Printf.sprintf "n%d" id) pins in
        (match
           Maze.Route.route_net ~passable ~window g ws
             ~cost:Maze.Cost.default net
         with
        | Ok _ -> kept := (id, pins) :: !kept
        | Error _ ->
            List.iter (Grid.release g) nodes;
            List.iter (Grid.occupy g ~net:reserved) nodes;
            decr next_id)
  done;
  let pairs =
    List.concat_map (fun (id, pins) -> List.map (fun p -> (id, p)) pins) !kept
  in
  let obstructions =
    List.map
      (fun r -> { Netlist.Problem.obs_layer = None; obs_rect = r })
      macros
  in
  Netlist.Build.of_pins ~name ~kind:Netlist.Problem.Region ~obstructions
    ~layers ?layer_dirs ~width ~height pairs

let region ?(name = "rand-region") ?(obstacle_rects = 3) ?(min_pins = 2)
    ?(max_pins = 4) prng ~width ~height ~nets =
  let obstructions = ref [] in
  for _ = 1 to obstacle_rects do
    let rw = Util.Prng.int_in prng 1 (max 1 (width / 4))
    and rh = Util.Prng.int_in prng 1 (max 1 (height / 4)) in
    let x0 = Util.Prng.int prng (max 1 (width - rw))
    and y0 = Util.Prng.int prng (max 1 (height - rh)) in
    obstructions :=
      {
        Netlist.Problem.obs_layer = None;
        obs_rect = Geom.Rect.make x0 y0 (x0 + rw - 1) (y0 + rh - 1);
      }
      :: !obstructions
  done;
  let blocked x y =
    List.exists
      (fun (o : Netlist.Problem.obstruction) ->
        Geom.Rect.mem o.Netlist.Problem.obs_rect x y)
      !obstructions
  in
  let free_cells = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if not (blocked x y) then free_cells := (x, y) :: !free_cells
    done
  done;
  let pool = ref !free_cells in
  let pairs = ref [] in
  for i = 1 to nets do
    let k = Util.Prng.int_in prng min_pins max_pins in
    let slots = take_slots prng pool k in
    if List.length slots >= 2 then
      List.iter
        (fun (x, y) ->
          let layer = Util.Prng.int prng Grid.default_layers in
          pairs := (i, Netlist.Net.pin ~layer x y) :: !pairs)
        slots
  done;
  Netlist.Build.of_pins ~name ~kind:Netlist.Problem.Region
    ~obstructions:!obstructions ~width ~height !pairs

(* --- macro-instance problems (placement flow) ----------------------- *)

let macro ?(name = "rand-macro") ?(macros = 6) ?(fixed_first = true) prng
    ~width ~height ~nets =
  if width < 24 || height < 24 then
    invalid_arg "Gen.macro: region too small for macro instances";
  let base = max 3 (min width height / 10) in
  (* Perimeter pin slots of a w×h footprint, anchor-relative. *)
  let perimeter w h =
    List.concat
      [
        List.init h (fun dy -> (-1, dy));
        List.init h (fun dy -> (w, dy));
        List.init w (fun dx -> (dx, -1));
        List.init w (fun dx -> (dx, h));
      ]
  in
  let inst_dims = Array.init macros (fun _ ->
      (Util.Prng.int_in prng base (2 * base),
       Util.Prng.int_in prng base (2 * base)))
  in
  let inst_slots =
    Array.map (fun (w, h) -> ref (perimeter w h)) inst_dims
  in
  (* Boundary slots for fixed chip pins; step 2 keeps neighbours free. *)
  let boundary = ref [] in
  let half_w = (width - 1) / 2 and half_h = (height - 1) / 2 in
  for i = 1 to half_w do
    boundary := (2 * i, 0) :: (2 * i, height - 1) :: !boundary
  done;
  for i = 1 to half_h do
    boundary := (0, 2 * i) :: (width - 1, 2 * i) :: !boundary
  done;
  let bpool = ref !boundary in
  (* Net plan: net 1 is the clock (a pin on every instance), net 2 the
     power rail (likewise); the rest are 2–3-instance signal nets, some
     with an extra chip-boundary pin. *)
  let ipins = Array.make macros [] in
  let fixed_pins = Array.make nets [] in
  let add_ipin net i =
    match !(inst_slots.(i)) with
    | [] -> ()
    | _ ->
        let dx, dy = take_slots prng inst_slots.(i) 1 |> List.hd in
        ipins.(i) <-
          { Netlist.Problem.ip_net = net; ip_dx = dx; ip_dy = dy;
            ip_layer = 0 }
          :: ipins.(i)
  in
  let nets = max nets 3 in
  for n = 1 to nets do
    if n <= 2 then
      for i = 0 to macros - 1 do add_ipin n i done
    else begin
      let k = Util.Prng.int_in prng 2 (min 3 macros) in
      let picked = Array.init macros (fun i -> i) in
      Util.Prng.shuffle prng picked;
      for j = 0 to k - 1 do add_ipin n picked.(j) done;
      if Util.Prng.chance prng 0.3 && !bpool <> [] then begin
        let x, y = take_slots prng bpool 1 |> List.hd in
        fixed_pins.(n - 1) <-
          Netlist.Net.pin ~layer:0 x y :: fixed_pins.(n - 1)
      end
    end
  done;
  let net_list =
    List.init nets (fun i ->
        let id = i + 1 in
        let name, cls =
          if id = 1 then ("clk", Netlist.Net.Clock)
          else if id = 2 then ("vdd", Netlist.Net.Power)
          else (Printf.sprintf "n%d" id, Netlist.Net.Signal)
        in
        Netlist.Net.make ~cls ~id ~name fixed_pins.(i))
  in
  let insts =
    List.init macros (fun i ->
        let w, h = inst_dims.(i) in
        let fixed = fixed_first && i = 0 in
        {
          Netlist.Problem.inst_name = Printf.sprintf "m%d" (i + 1);
          inst_w = w;
          inst_h = h;
          inst_fixed = fixed;
          inst_loc = (if fixed then Some (2, 2) else None);
          inst_pins = List.rev ipins.(i);
        })
  in
  Netlist.Problem.make ~kind:Netlist.Problem.Region ~insts ~name ~width
    ~height net_list
