(** Fixed "classic-style" benchmark instances.

    The historical benchmark data (Deutsch's difficult channel, Burstein's
    difficult switchbox) is not available offline; these are fixed-seed
    synthetic stand-ins calibrated to the published structural
    characteristics (see DESIGN.md §4).  They are deterministic: every run
    of the suite routes exactly the same instances. *)

val deutsch_like : ?tracks_slack:int -> unit -> Netlist.Problem.t
(** 72-column channel at density 19 — the published profile of Deutsch's
    difficult channel.  [tracks_slack] adds tracks beyond density
    (default 0: the "route it in density" challenge). *)

val burstein_like : unit -> Netlist.Problem.t
(** 23 × 15 switchbox with dense boundary pins (24 nets region) — the
    published profile of Burstein's difficult switchbox. *)

val tiny_blocked : unit -> Netlist.Problem.t
(** A hand-written 8×7 switchbox on which a one-shot maze router fails for
    any net order, but a single rip-up (or shove) completes routing — the
    minimal demonstration of the paper's technique, also used in tests. *)

val cyclic_channel : unit -> Netlist.Problem.t
(** A hand-written 4-column channel whose vertical constraint graph is
    cyclic: no dogleg-free channel router can finish it at any track count,
    while dogleg-capable routers (and the full router) can. *)

val staircase_channel : int -> Netlist.Problem.t
(** [staircase_channel n] builds [n] 2-pin nets whose vertical constraints
    form a chain of length [n] while the density stays 2: the classic
    instance on which dogleg-free track assignment needs ~[n] tracks but a
    free-form router needs only ~2.  Built with [n + 2] tracks so the
    baselines have room to demonstrate the gap. *)

val all_channels : unit -> (string * Netlist.Problem.t) list
(** The channel suite used by experiment E2 (name, problem). *)

val all_switchboxes : unit -> (string * Netlist.Problem.t) list
(** The switchbox suite used by experiment E1. *)
