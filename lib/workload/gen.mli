(** Reproducible random problem generators.

    Every generator is a pure function of the supplied {!Util.Prng.t} state,
    so a fixed seed reproduces the exact benchmark instance.  Congestion is
    controlled either by net count or by a target channel density. *)

val channel :
  ?name:string ->
  ?tracks_slack:int ->
  ?min_pins:int ->
  ?max_pins:int ->
  Util.Prng.t ->
  columns:int ->
  nets:int ->
  Netlist.Problem.t
(** Random channel: each net receives [min_pins..max_pins] pins (default
    2..4) on distinct top/bottom column slots.  The track count is the
    resulting channel density plus [tracks_slack] (default 2). *)

val channel_at_density :
  ?name:string ->
  ?tracks_slack:int ->
  Util.Prng.t ->
  columns:int ->
  density:int ->
  Netlist.Problem.t
(** Keep adding random 2–4-pin nets until the channel density reaches the
    target (or no free slot remains). *)

val switchbox :
  ?name:string ->
  ?min_pins:int ->
  ?max_pins:int ->
  Util.Prng.t ->
  width:int ->
  height:int ->
  nets:int ->
  Netlist.Problem.t
(** Random switchbox: pins on distinct boundary slots (corners excluded for
    the side columns, so a slot is never double-booked). *)

val dense_switchbox :
  ?name:string ->
  ?fill:float ->
  Util.Prng.t ->
  width:int ->
  height:int ->
  Netlist.Problem.t
(** Hard instance: [fill] (default 0.85) of all boundary slots carry pins,
    randomly paired into 2–3-pin nets — the profile of the classical
    "difficult" switchboxes. *)

val routable_switchbox :
  ?name:string ->
  ?fill:float ->
  ?multi_pin_prob:float ->
  Util.Prng.t ->
  width:int ->
  height:int ->
  Netlist.Problem.t
(** Hard {e but provably routable} instance: nets are constructed by
    actually routing wiggly disjoint wires between random boundary slots on
    an initially empty grid until the boundary slots are
    exhausted (or the grid is [fill] full, default 0.9), then keeping only
    the pins.  The discarded wiring is a
    routability certificate, so a complete router must solve these; a
    one-shot router usually cannot at high fill.  [multi_pin_prob] is the
    chance a net gets a third pin (default 0.2). *)

val routable_chip :
  ?name:string ->
  ?macro_cols:int ->
  ?macro_rows:int ->
  ?fill:float ->
  ?multi_pin_prob:float ->
  ?layers:int ->
  ?layer_dirs:bool array ->
  ?slot_prob:float ->
  Util.Prng.t ->
  width:int ->
  height:int ->
  Netlist.Problem.t
(** Macro-cell chip instance: a [macro_cols × macro_rows] array of macro
    obstructions (default 3×2) separated by routing alleys, with pins on
    macro edges and the chip boundary, and nets constructed by routing
    disjoint witness wires through the alleys (so the instance is provably
    routable).  [layers]/[layer_dirs] select the routing stack (default:
    2-layer HV) — witness wires route on the full stack, and pins land on
    random layers of it.  [slot_prob] (default 0.35) is the chance a
    candidate cell becomes a pin slot; raise it to push the net count up
    for chip-scale instances.  The scaling experiment E9 sweeps these. *)

val chip_scale :
  ?name:string ->
  ?macro_cols:int ->
  ?macro_rows:int ->
  ?layers:int ->
  ?layer_dirs:bool array ->
  ?slot_prob:float ->
  ?multi_pin_prob:float ->
  ?window:int ->
  Util.Prng.t ->
  width:int ->
  height:int ->
  Netlist.Problem.t
(** Chip-scale provably-routable instance: like {!routable_chip} but
    with {e local} nets — pin slots are bucketed into blocks and each
    witness wire routes inside its pin bounding box grown by [window]
    cells (default 10), so a large region yields thousands of short
    nets instead of a handful of wandering ones.  [layers] defaults to
    3 (alternating H/V/H).  The committed [instances/chip_*_l*.problem]
    files and the [bench analyze] chip-scale row use this. *)

val region :
  ?name:string ->
  ?obstacle_rects:int ->
  ?min_pins:int ->
  ?max_pins:int ->
  Util.Prng.t ->
  width:int ->
  height:int ->
  nets:int ->
  Netlist.Problem.t
(** Irregular instance: random rectangular both-layer obstructions plus
    interior pins on random layers, never on obstructions and never
    double-booked. *)

val macro :
  ?name:string ->
  ?macros:int ->
  ?fixed_first:bool ->
  Util.Prng.t ->
  width:int ->
  height:int ->
  nets:int ->
  Netlist.Problem.t
(** Macro-placement flow instance: [macros] free instances with random
    footprints and perimeter pins, unplaced (except the first, fixed at
    the lower-left corner when [fixed_first], default true).  Net 1 is a
    clock and net 2 a power rail, each pinning every instance; the rest
    are 2–3-instance signal nets, some with an extra chip-boundary pin.
    Feed the result to {!Place.place} or [Flow.run]; [nets] is clamped
    to at least 3. *)
