(* Quickstart: describe a small switchbox, route it, verify it, and look at
   the result.

   Run with:  dune exec examples/quickstart.exe
*)

let () =
  (* 1. Describe the problem.  A switchbox is given by net ids along its four
     boundaries (0 = no pin).  Net 1 enters at the top and leaves at the
     bottom; net 2 crosses left to right; net 3 has three pins. *)
  let problem =
    Netlist.Build.switchbox ~name:"quickstart" ~width:10 ~height:8
      ~top:   [| 0; 1; 0; 3; 0; 0; 2; 0; 0; 0 |]
      ~bottom:[| 0; 0; 2; 0; 1; 0; 0; 3; 0; 0 |]
      ~left:  [| 0; 0; 2; 0; 0; 3; 0; 0 |]
      ~right: [| 0; 0; 0; 1; 0; 0; 0; 0 |]
      ()
  in
  Format.printf "Problem: %a@.@." Netlist.Problem.pp problem;
  print_endline (Viz.Ascii.render_problem problem);

  (* 2. Route it with the full rip-up/reroute engine (default config). *)
  let result = Router.Engine.route problem in
  Format.printf "Routed: completed=%b@.Stats: %a@.@."
    result.Router.Engine.completed Router.Engine.pp_stats
    result.Router.Engine.stats;

  (* 3. Verify the layout independently of the router. *)
  (match Drc.Check.check problem result.Router.Engine.grid with
  | [] -> print_endline "DRC: clean"
  | violations -> print_endline (Drc.Check.explain violations));

  (* 4. Inspect the wiring (layer 0 = horizontal, layer 1 = vertical). *)
  print_newline ();
  print_endline (Viz.Ascii.render result.Router.Engine.grid);

  (* 5. Per-net quality numbers. *)
  let table =
    Util.Table.create ~headers:[ "net"; "cells"; "wirelength"; "vias" ]
  in
  List.iter
    (fun (s : Router.Outcome.net_stats) ->
      Util.Table.add_row table
        [
          (Netlist.Problem.net problem s.Router.Outcome.net_id).Netlist.Net.name;
          Util.Table.cell_int s.Router.Outcome.cells;
          Util.Table.cell_int s.Router.Outcome.wirelength;
          Util.Table.cell_int s.Router.Outcome.vias;
        ])
    (Router.Outcome.measure problem result.Router.Engine.grid);
  Util.Table.print table;

  (* 6. Save an SVG rendering next to the binary for visual inspection. *)
  Viz.Svg.save "quickstart.svg" problem result.Router.Engine.grid;
  print_endline "Wrote quickstart.svg"
