(* Channel routing shoot-out: the classical left-edge and dogleg channel
   routers against the full rip-up/reroute engine, on the instances that
   motivated free-form routing — a vertical-constraint cycle, a constraint
   staircase, and a dense Deutsch-class channel.

   Run with:  dune exec examples/channel_compare.exe
*)

let show = function None -> "fail" | Some t -> string_of_int t

let row name spec =
  let density = Channel.Model.density spec in
  let lea = Channel.Lea.min_tracks spec in
  let dogleg = Channel.Dogleg.min_tracks spec in
  let greedy = Channel.Greedy.min_tracks spec in
  let yacr = Channel.Yacr.min_tracks spec in
  let full = Option.map fst (Channel.Adapter.min_tracks spec) in
  [
    name;
    Util.Table.cell_int (Channel.Model.columns spec);
    Util.Table.cell_int density;
    show lea;
    show dogleg;
    show greedy;
    show yacr;
    show full;
  ]

let () =
  print_endline "Minimum track counts per router (fail = cannot route at any";
  print_endline "track count up to density + 10):";
  print_newline ();
  let table =
    Util.Table.create
      ~headers:
        [ "channel"; "cols"; "density"; "left-edge"; "dogleg"; "greedy";
          "yacr"; "full" ]
  in
  List.iter
    (fun (name, problem) ->
      let spec = Channel.Model.spec_of_problem problem in
      Util.Table.add_row table (row name spec))
    (Workload.Hard.all_channels ());
  Util.Table.print table;
  print_newline ();

  (* Show the cycle instance in detail: why the baselines fail. *)
  let cyclic = Workload.Hard.cyclic_channel () in
  let spec = Channel.Model.spec_of_problem cyclic in
  let vcg = Channel.Vcg.of_spec spec in
  Format.printf
    "The vc-cycle channel has a cyclic vertical constraint graph (%d edges,@ \
     cycle=%b): dogleg-free routers cannot route it at ANY track count.@."
    (Channel.Vcg.edge_count vcg) (Channel.Vcg.has_cycle vcg);
  (match Channel.Adapter.min_tracks spec with
  | Some (tracks, result) ->
      Format.printf "The full router finishes it in %d tracks:@.@." tracks;
      print_endline (Viz.Ascii.render result.Router.Engine.grid)
  | None -> print_endline "unexpected: full router failed");

  (* And the staircase: the gap grows linearly with the chain length. *)
  print_endline
    "Staircase channels (density 2, constraint chain of length n):";
  let table =
    Util.Table.create
      ~headers:[ "n"; "left-edge tracks"; "greedy tracks"; "full tracks" ]
  in
  List.iter
    (fun n ->
      let spec =
        Channel.Model.spec_of_problem (Workload.Hard.staircase_channel n)
      in
      Util.Table.add_row table
        [
          Util.Table.cell_int n;
          show (Channel.Lea.min_tracks spec);
          show (Channel.Greedy.min_tracks spec);
          show (Option.map fst (Channel.Adapter.min_tracks spec));
        ])
    [ 4; 6; 8; 10 ];
  Util.Table.print table
