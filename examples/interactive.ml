(* Interactive routing session: the add / freeze / rip / reroute workflow a
   layout editor would drive, built on Router.Session.

   Run with:  dune exec examples/interactive.exe
*)

let pin = Netlist.Net.pin

let show_step session msg =
  Format.printf "--- %s@." msg;
  Format.printf "    nets=%d  violations=%d@."
    (Netlist.Problem.net_count (Router.Session.problem session))
    (List.length (Router.Session.verify session))

let ok = function
  | Ok v -> v
  | Error e -> failwith e

let () =
  (* Start from a small block with three nets. *)
  let problem =
    Netlist.Problem.make ~name:"editor" ~width:16 ~height:12
      [
        Netlist.Net.make ~id:1 ~name:"data" [ pin 0 2; pin 15 2; pin 8 11 ];
        Netlist.Net.make ~id:2 ~name:"addr" [ pin 0 8; pin 15 8 ];
        Netlist.Net.make ~id:3 ~name:"en" [ pin 4 0; pin 4 11 ];
      ]
  in
  let session = Router.Session.create problem in
  show_step session "created session";

  ignore (Router.Session.route session);
  show_step session "routed everything";
  print_endline (Viz.Ascii.render (Router.Session.grid session));

  (* The data net is timing-critical: freeze its wiring. *)
  let data = Option.get (Router.Session.net_id session "data") in
  ok (Router.Session.freeze session ~net:data);
  show_step session "froze `data`";

  (* An engineering change: a new strobe net arrives. *)
  (match Router.Session.add_net session ~name:"strobe" [ pin 0 11; pin 15 11 ] with
  | Ok id -> Format.printf "    added `strobe` as net %d@." id
  | Error e -> Format.printf "    add failed: %s@." e);
  let stats = Router.Session.route session in
  show_step session
    (Printf.sprintf "routed the change (%d rip-ups, %d shoves)"
       stats.Router.Engine.rips stats.Router.Engine.shoves);

  (* The enable net gets re-planned: rip it, tweak, reroute. *)
  let en = Option.get (Router.Session.net_id session "en") in
  ok (Router.Session.rip session ~net:en);
  show_step session "ripped `en`";
  ignore (Router.Session.route session);
  show_step session "rerouted `en`";

  (* The address net is obsolete: delete it entirely. *)
  let addr = Option.get (Router.Session.net_id session "addr") in
  ok (Router.Session.remove_net session ~net:addr);
  show_step session "removed `addr`";

  (* Final cleanup pass and result. *)
  let r = Router.Session.refine session in
  Format.printf "--- refined: wirelength %d -> %d@."
    r.Router.Improve.wirelength_before r.Router.Improve.wirelength_after;
  print_endline (Viz.Ascii.render (Router.Session.grid session));
  match Router.Session.verify session with
  | [] -> print_endline "final DRC: clean"
  | violations -> print_endline (Drc.Check.explain violations)
