(* Macro-cell style routing: an irregular region littered with macro-block
   obstructions and pins on macro edges — the setting the paper's
   introduction motivates ("for the macro-cell design style ... two
   dimensional routers are often necessary").

   Run with:  dune exec examples/macro_region.exe
*)

let pin = Netlist.Net.pin

let () =
  (* Three macros inside a 24x16 region.  Pins sit on the macro edges and
     on the region boundary; wiring must thread the alleys between
     macros. *)
  let macro x0 y0 x1 y1 =
    { Netlist.Problem.obs_layer = None; obs_rect = Geom.Rect.make x0 y0 x1 y1 }
  in
  let problem =
    Netlist.Problem.make ~name:"macro-region" ~width:24 ~height:16
      ~obstructions:[ macro 3 3 8 8; macro 12 6 18 12; macro 14 1 20 3 ]
      [
        (* data bus along the alleys *)
        Netlist.Net.make ~id:1 ~name:"d0" [ pin 2 3; pin 11 7; pin 23 13 ];
        Netlist.Net.make ~id:2 ~name:"d1" [ pin 2 5; pin 11 9; pin 23 14 ];
        (* clock from the boundary into two macro-edge pins *)
        Netlist.Net.make ~id:3 ~name:"clk" [ pin 0 15; pin 9 8; pin 19 5 ];
        (* nets hugging the macros *)
        Netlist.Net.make ~id:4 ~name:"a" [ pin 3 2; pin 9 3; pin 13 4 ];
        Netlist.Net.make ~id:5 ~name:"b" [ pin 2 9; pin 10 13; pin 19 13 ];
        Netlist.Net.make ~id:6 ~name:"c" [ pin 0 0; pin 23 0 ];
        Netlist.Net.make ~id:7 ~name:"e" [ pin 12 5; pin 21 4; pin 23 8 ];
      ]
  in
  Format.printf "Problem: %a@.@." Netlist.Problem.pp problem;
  print_endline (Viz.Ascii.render_problem problem);

  let result = Router.Engine.route problem in
  Format.printf "completed=%b  %a@.@." result.Router.Engine.completed
    Router.Engine.pp_stats result.Router.Engine.stats;
  (match Drc.Check.check problem result.Router.Engine.grid with
  | [] -> print_endline "DRC: clean"
  | violations -> print_endline (Drc.Check.explain violations));

  (* Quality cleanup, then render. *)
  let s = Router.Improve.refine problem result.Router.Engine.grid in
  Format.printf "refinement: wirelength %d -> %d, vias %d -> %d@.@."
    s.Router.Improve.wirelength_before s.Router.Improve.wirelength_after
    s.Router.Improve.vias_before s.Router.Improve.vias_after;
  print_endline (Viz.Ascii.render result.Router.Engine.grid);
  Viz.Svg.save "macro_region.svg" problem result.Router.Engine.grid;
  print_endline "Wrote macro_region.svg"
