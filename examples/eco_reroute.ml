(* ECO rerouting in a partially routed region: an existing layout is mostly
   frozen (fixed pre-wiring), one old net is left movable (loose
   pre-wiring), and a new net is added.  The router must thread the new net
   through the existing wiring, ripping up only what it is allowed to
   touch.

   Run with:  dune exec examples/eco_reroute.exe
*)

let pin = Netlist.Net.pin

(* Cells a net owns beyond its pins, as prewire cell triples. *)
let route_cells problem grid ~net =
  let pins =
    List.filter_map
      (fun (id, (p : Netlist.Net.pin)) ->
        if id = net then
          Some (p.Netlist.Net.layer, p.Netlist.Net.x, p.Netlist.Net.y)
        else None)
      (Netlist.Problem.pin_cells problem)
  in
  List.filter_map
    (fun node ->
      let cell =
        ( Grid.node_layer grid node,
          Grid.node_x grid node,
          Grid.node_y grid node )
      in
      if List.mem cell pins then None else Some cell)
    (Grid.occupied_nodes grid ~net)

let () =
  (* 1. The original design: three nets in a region with an obstruction. *)
  let original =
    Netlist.Problem.make ~name:"original" ~width:14 ~height:10
      ~obstructions:
        [
          {
            Netlist.Problem.obs_layer = None;
            obs_rect = Geom.Rect.make 6 4 8 6;
          };
        ]
      [
        Netlist.Net.make ~id:1 ~name:"bus_a" [ pin 0 1; pin 13 1 ];
        Netlist.Net.make ~id:2 ~name:"bus_b" [ pin 0 8; pin 13 8 ];
        Netlist.Net.make ~id:3 ~name:"ctl" [ pin 2 0; pin 2 9; pin 11 9 ];
      ]
  in
  let first = Router.Engine.route original in
  assert first.Router.Engine.completed;
  print_endline "Original layout (nets 1-3 routed):";
  print_endline (Viz.Ascii.render first.Router.Engine.grid);

  (* 2. The ECO: net 4 appears; bus_a/bus_b are frozen, ctl may move. *)
  let grid = first.Router.Engine.grid in
  let prewire net fixed =
    {
      Netlist.Problem.pre_net = net;
      pre_cells = route_cells original grid ~net;
      pre_fixed = fixed;
    }
  in
  let eco =
    Netlist.Problem.make ~name:"eco" ~width:14 ~height:10
      ~obstructions:original.Netlist.Problem.obstructions
      ~prewires:[ prewire 1 true; prewire 2 true; prewire 3 false ]
      [
        Netlist.Net.make ~id:1 ~name:"bus_a" [ pin 0 1; pin 13 1 ];
        Netlist.Net.make ~id:2 ~name:"bus_b" [ pin 0 8; pin 13 8 ];
        Netlist.Net.make ~id:3 ~name:"ctl" [ pin 2 0; pin 2 9; pin 11 9 ];
        Netlist.Net.make ~id:4 ~name:"eco_net" [ pin 0 5; pin 13 5 ];
      ]
  in
  Format.printf "ECO: adding net %s; bus_a/bus_b fixed, ctl movable.@.@."
    "eco_net";
  let second = Router.Engine.route eco in
  Format.printf "Rerouted: completed=%b  %a@.@." second.Router.Engine.completed
    Router.Engine.pp_stats second.Router.Engine.stats;
  (match Drc.Check.check eco second.Router.Engine.grid with
  | [] -> print_endline "DRC: clean"
  | violations -> print_endline (Drc.Check.explain violations));
  print_newline ();
  print_endline (Viz.Ascii.render second.Router.Engine.grid);

  (* 3. Confirm the frozen wiring did not move. *)
  let moved net =
    List.exists
      (fun (layer, x, y) ->
        Grid.occ_at second.Router.Engine.grid ~layer ~x ~y <> net)
      (route_cells original grid ~net)
  in
  Format.printf "bus_a moved: %b@.bus_b moved: %b@." (moved 1) (moved 2)
