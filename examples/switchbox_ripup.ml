(* The headline demonstration: a switchbox on which one-shot maze routing
   fails under every net-ordering heuristic, while the rip-up/reroute
   engine completes it.

   Run with:  dune exec examples/switchbox_ripup.exe
*)

let order_name = function
  | Router.Config.As_given -> "as-given"
  | Router.Config.Hpwl_ascending -> "hpwl-ascending"
  | Router.Config.Hpwl_descending -> "hpwl-descending"
  | Router.Config.Pins_descending -> "pins-descending"
  | Router.Config.Congestion_descending -> "congestion-descending"
  | Router.Config.Random -> "random"

let () =
  let problem = Workload.Hard.tiny_blocked () in
  Format.printf "Problem: %a@.@." Netlist.Problem.pp problem;
  print_endline (Viz.Ascii.render_problem problem);

  print_endline "One-shot maze routing (no modification), every ordering:";
  let table =
    Util.Table.create ~headers:[ "ordering"; "completed"; "failed nets" ]
  in
  List.iter
    (fun order ->
      let config = { Router.Config.maze_only with order; seed = 3 } in
      let r = Router.Engine.route ~config problem in
      Util.Table.add_row table
        [
          order_name order;
          Util.Table.cell_bool r.Router.Engine.completed;
          Util.Table.cell_int
            (List.length r.Router.Engine.stats.Router.Engine.failed_nets);
        ])
    Router.Config.
      [
        As_given; Hpwl_ascending; Hpwl_descending; Pins_descending;
        Congestion_descending; Random;
      ];
  Util.Table.print table;
  print_newline ();

  print_endline "Full router (weak + strong modification):";
  let r = Router.Engine.route problem in
  Format.printf "completed=%b  %a@.@." r.Router.Engine.completed
    Router.Engine.pp_stats r.Router.Engine.stats;
  (match Drc.Check.check problem r.Router.Engine.grid with
  | [] -> print_endline "DRC: clean"
  | violations -> print_endline (Drc.Check.explain violations));
  print_newline ();
  print_endline (Viz.Ascii.render r.Router.Engine.grid);

  (* Also show the Burstein-class box, the paper's flagship example. *)
  let burstein = Workload.Hard.burstein_like () in
  Format.printf "Flagship: %a@." Netlist.Problem.pp burstein;
  let maze = Router.Engine.route ~config:Router.Config.maze_only burstein in
  let full = Router.Engine.route burstein in
  Format.printf
    "  one-shot maze: completed=%b (failed %d nets)@.  full router: \
     completed=%b with %d rip-ups and %d shoves@."
    maze.Router.Engine.completed
    (List.length maze.Router.Engine.stats.Router.Engine.failed_nets)
    full.Router.Engine.completed full.Router.Engine.stats.Router.Engine.rips
    full.Router.Engine.stats.Router.Engine.shoves;
  Viz.Svg.save "burstein_like.svg" burstein full.Router.Engine.grid;
  print_endline "Wrote burstein_like.svg"
