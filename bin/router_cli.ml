(* Command-line interface to the router.

   Subcommands:
     route   FILE   route a problem file, verify, report, optionally render
     info    FILE   congestion analysis and lower bounds
     gen     KIND   generate a problem file (channel | switchbox | routable |
                    region | suite instances by name)
     show    FILE   render the unrouted problem as ASCII art
     channel FILE   run the channel baselines and the engine on a channel

   Exit codes of `route` (the contract scripts may rely on):
     0   complete — every non-trivial net routed
     2   incomplete — the run was degraded by a budget (--deadline,
         --max-expanded, --max-searches; reason printed on stderr) or the
         instance is infeasible for the engine; the layout printed/saved is
         the DRC-clean best-so-far partial result
     1   usage, parse or internal error
   Other subcommands use 0 for success and 1 for any error. *)

open Cmdliner

let problem_arg =
  let doc = "Problem file (see lib/netlist/parse.mli for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let strategy_conv =
  Arg.enum
    [ ("full", `Full); ("weak-only", `Weak); ("maze-only", `Maze) ]

let order_conv =
  Arg.enum
    [
      ("as-given", Router.Config.As_given);
      ("hpwl-asc", Router.Config.Hpwl_ascending);
      ("hpwl-desc", Router.Config.Hpwl_descending);
      ("pins-desc", Router.Config.Pins_descending);
      ("congestion-desc", Router.Config.Congestion_descending);
      ("random", Router.Config.Random);
    ]

let config_term =
  let strategy =
    Arg.(
      value
      & opt strategy_conv `Full
      & info [ "strategy" ] ~doc:"Router strategy: full, weak-only, maze-only.")
  in
  let order =
    Arg.(
      value
      & opt order_conv Router.Config.Hpwl_descending
      & info [ "order" ]
          ~doc:
            "Net order: as-given, hpwl-asc, hpwl-desc, pins-desc, \
             congestion-desc, random.")
  in
  let restarts =
    Arg.(value & opt int 1 & info [ "restarts" ] ~doc:"Restart attempts.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let astar =
    Arg.(value & flag & info [ "astar" ] ~doc:"Use A* instead of Dijkstra.")
  in
  let kernel =
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("heap", Maze.Search.Binary_heap);
               ("buckets", Maze.Search.Buckets);
             ])
          Maze.Search.Binary_heap
      & info [ "kernel" ]
          ~doc:
            "Search frontier kernel: heap (binary heap) or buckets (Dial \
             bucket queue, O(1) for the small integer edge costs).")
  in
  let window =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"MARGIN"
          ~doc:
            "Restrict each search to the endpoints' bounding box grown by \
             MARGIN cells, widening and retrying automatically on failure.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for the whole route call (restarts \
             included).  On expiry the best partial result found so far is \
             reported and the exit code is 2.")
  in
  let max_expanded =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-expanded" ] ~docv:"N"
          ~doc:
            "Node-expansion budget: total maze-search expansions allowed \
             across the run.")
  in
  let max_searches =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-searches" ] ~docv:"N"
          ~doc:"Total maze searches allowed across the run.")
  in
  let audit =
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("off", Router.Config.Audit_off);
               ("phase", Router.Config.Audit_phase);
               ("net", Router.Config.Audit_net);
             ])
          Router.Config.Audit_off
      & info [ "audit" ]
          ~doc:
            "Run the engine/grid invariant auditor during routing: off \
             (default), phase (after every engine phase), net (after \
             every net — slow).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Routing domains for speculative wave parallelism: 1 = \
             sequential (default), 0 = one per core.  Layouts are \
             identical for every value.")
  in
  let no_cost_cache =
    Arg.(
      value & flag
      & info [ "no-cost-cache" ]
          ~doc:
            "Disable the dirty-region failure-replay cache (retry sweeps \
             re-run every failed search).")
  in
  let incremental =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "incremental" ]
                ~doc:
                  "Enable incremental search reuse (default): memoized \
                   heuristic transforms plus per-net certificate and \
                   lower-bound caches in refinement.  Layouts are \
                   byte-identical either way." );
            ( false,
              info [ "no-incremental" ]
                ~doc:
                  "Disable incremental search reuse; every search and \
                   refinement visit recomputes from scratch." );
          ])
  in
  let make strategy order restarts seed astar kernel window deadline
      max_expanded max_searches audit jobs no_cost_cache incremental =
    let base =
      match strategy with
      | `Full -> Router.Config.default
      | `Weak -> Router.Config.weak_only
      | `Maze -> Router.Config.maze_only
    in
    {
      base with
      Router.Config.order;
      restarts;
      seed;
      use_astar = astar;
      kernel;
      window_margin = window;
      deadline;
      max_expanded;
      max_searches;
      audit;
      jobs = max 0 jobs;
      cost_cache = not no_cost_cache;
      incremental;
    }
  in
  Term.(
    const make $ strategy $ order $ restarts $ seed $ astar $ kernel $ window
    $ deadline $ max_expanded $ max_searches $ audit $ jobs $ no_cost_cache
    $ incremental)

(* Parse errors already carry the source path since errors grew a [src]
   field — no prefixing needed here. *)
let load path =
  match Netlist.Parse.load path with
  | Ok _ as ok -> ok
  | Error e -> Error (Netlist.Parse.error_to_string e)

(* --- route --- *)

let route_cmd =
  let svg_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"OUT" ~doc:"Write an SVG rendering of the result.")
  in
  let ascii =
    Arg.(value & flag & info [ "ascii" ] ~doc:"Print the routed grid as ASCII.")
  in
  let refine =
    Arg.(
      value & flag
      & info [ "refine" ]
          ~doc:"Run the post-route refinement pass after routing.")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ] ~doc:"Print the per-net routing report.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:
            "Print speculative-wave and cost-cache statistics (waves, \
             speculated/committed nets, conflicts, cache hits).")
  in
  let run path config svg ascii refine report verbose =
    match load path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok problem ->
        Format.printf "%a@." Netlist.Problem.pp problem;
        Format.printf "config: %s@." (Router.Config.describe config);
        let t0 = Unix.gettimeofday () in
        let result = Router.Engine.route ~config problem in
        let elapsed = Unix.gettimeofday () -. t0 in
        Format.printf "completed: %b  (%.3fs)@." result.Router.Engine.completed
          elapsed;
        Format.printf "%a@." Router.Engine.pp_stats result.Router.Engine.stats;
        if verbose then begin
          let p = result.Router.Engine.stats.Router.Engine.par in
          Format.printf
            "waves: %d  speculated: %d  committed: %d  conflicts: %d  \
             wasted-expanded: %d@."
            p.Router.Outcome.waves p.Router.Outcome.speculated
            p.Router.Outcome.committed p.Router.Outcome.conflicts
            p.Router.Outcome.wasted_expanded;
          Format.printf "cost-cache: %d hit(s), %d stale@."
            p.Router.Outcome.cache_hits p.Router.Outcome.cache_stale
        end;
        if refine && result.Router.Engine.completed then begin
          let s =
            Router.Improve.refine
              ~incremental:config.Router.Config.incremental problem
              result.Router.Engine.grid
          in
          Format.printf "refined: wirelength %d -> %d, vias %d -> %d@."
            s.Router.Improve.wirelength_before s.Router.Improve.wirelength_after
            s.Router.Improve.vias_before s.Router.Improve.vias_after;
          if verbose then
            Format.printf
              "refine-cache: planned %d  cert-skips %d  bound-skips %d  \
               stale %d  field builds/repairs %d/%d@."
              s.Router.Improve.planned s.Router.Improve.skipped_cert
              s.Router.Improve.skipped_bound s.Router.Improve.cache_stale
              s.Router.Improve.field_builds s.Router.Improve.field_repairs
        end;
        (match Drc.Check.check problem result.Router.Engine.grid with
        | [] -> Format.printf "drc: clean@."
        | violations when result.Router.Engine.completed ->
            Format.printf "drc: VIOLATIONS@.%s@." (Drc.Check.explain violations)
        | _ -> Format.printf "drc: incomplete routing (expected opens)@.");
        if report then print_endline (Router.Report.render problem result);
        if ascii then print_endline (Viz.Ascii.render result.Router.Engine.grid);
        (match svg with
        | Some out ->
            Viz.Svg.save out problem result.Router.Engine.grid;
            Format.printf "wrote %s@." out
        | None -> ());
        (match result.Router.Engine.status with
        | Router.Outcome.Complete -> 0
        | Router.Outcome.Degraded reason ->
            Printf.eprintf "degraded: %s; %d net(s) left unrouted\n%!"
              (Router.Budget.reason_to_string reason)
              (List.length result.Router.Engine.stats.Router.Engine.failed_nets);
            2
        | Router.Outcome.Infeasible ->
            Printf.eprintf "infeasible: %d net(s) could not be routed\n%!"
              (List.length result.Router.Engine.stats.Router.Engine.failed_nets);
            2)
  in
  let term =
    Term.(
      const run $ problem_arg $ config_term $ svg_out $ ascii $ refine
      $ report $ verbose)
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Route a problem file and verify the result.")
    term

(* --- info --- *)

let info_cmd =
  let run path =
    match load path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok problem ->
        Format.printf "%a@." Netlist.Problem.pp problem;
        Format.printf "channel density:        %d@."
          (Netlist.Analysis.channel_density problem);
        Format.printf "max vertical cut:       %d@."
          (Netlist.Analysis.max_vertical_cut problem);
        Format.printf "max horizontal cut:     %d@."
          (Netlist.Analysis.max_horizontal_cut problem);
        Format.printf "wirelength lower bound: %d@."
          (Netlist.Analysis.wirelength_lower_bound problem);
        Format.printf "overflow estimate:      %s@."
          (Util.Table.cell_pct (Netlist.Analysis.overflow_estimate problem));
        Format.printf "demand heatmap:@.%s"
          (Viz.Ascii.render_heatmap problem);
        0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print congestion analysis of a problem file.")
    Term.(const run $ problem_arg)

(* --- analyze --- *)

let analyze_cmd =
  let tile =
    Arg.(
      value
      & opt (some int) None
      & info [ "tile" ] ~docv:"N"
          ~doc:"Congestion-tile size in cells (default 8).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the verdict as one JSON line (the same shape the \
             service's analyze op returns).")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "fail-below" ] ~docv:"SCORE"
          ~doc:
            "Exit with code 2 when the routability score falls below \
             $(docv) — the triage-gate form for scripts.")
  in
  let run path tile json threshold =
    match load path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok problem when
        Netlist.Problem.has_insts problem
        && not (Netlist.Problem.placed problem) ->
        prerr_endline
          "the placement section has unplaced instances; run flow or place \
           first";
        1
    | Ok problem -> (
        match Netlist.Problem.realize problem with
        | exception Invalid_argument msg ->
            prerr_endline msg;
            1
        | realized ->
            let a = Analyze.run ?tile realized in
            if json then
              print_endline (Util.Json.to_string (Analyze.to_json a))
            else begin
              Format.printf "%a@." Netlist.Problem.pp realized;
              Format.printf "analyze: %a@." Analyze.pp a;
              List.iter
                (fun (hr : Analyze.hot_rect) ->
                  Format.printf
                    "hot: (%d,%d)-(%d,%d)  demand %.1f  supply %d@."
                    hr.Analyze.rect.Geom.Rect.x0 hr.Analyze.rect.Geom.Rect.y0
                    hr.Analyze.rect.Geom.Rect.x1 hr.Analyze.rect.Geom.Rect.y1
                    hr.Analyze.demand hr.Analyze.supply)
                a.Analyze.verdict.Analyze.hot_rects
            end;
            (match threshold with
            | Some s when a.Analyze.verdict.Analyze.score < s ->
                Printf.eprintf "routability score %.3f below %.3f\n%!"
                  a.Analyze.verdict.Analyze.score s;
                2
            | _ -> 0))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Pre-route routability prediction: supply/demand over the \
          global-route tile graph, wrong-way and via pressure, and a \
          calibrated verdict — without routing anything.")
    Term.(const run $ problem_arg $ tile $ json $ threshold)

(* --- show --- *)

let show_cmd =
  let run path =
    match load path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok problem ->
        print_endline (Viz.Ascii.render_problem problem);
        0
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Render the unrouted problem as ASCII art.")
    Term.(const run $ problem_arg)

(* --- gen --- *)

let gen_cmd =
  let kind =
    Arg.(
      required
      & pos 0
          (some
             (Arg.enum
                [
                  ("channel", `Channel);
                  ("switchbox", `Switchbox);
                  ("routable", `Routable);
                  ("region", `Region);
                  ("chip", `Chip);
                  ("chipscale", `Chipscale);
                  ("macro", `Macro);
                ]))
          None
      & info [] ~docv:"KIND"
          ~doc:
            "channel | switchbox | routable | region | chip | chipscale | \
             macro")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output problem file.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let width = Arg.(value & opt int 16 & info [ "width" ] ~doc:"Region width / columns.") in
  let height = Arg.(value & opt int 12 & info [ "height" ] ~doc:"Region height.") in
  let nets = Arg.(value & opt int 10 & info [ "nets" ] ~doc:"Net count.") in
  let macros =
    Arg.(
      value & opt int 6
      & info [ "macros" ] ~doc:"Macro instance count (macro kind only).")
  in
  let layers =
    Arg.(
      value
      & opt (some int) None
      & info [ "layers" ] ~docv:"N"
          ~doc:
            "Routing layers for the chip kind (default 2, alternating \
             H/V preference starting horizontal).")
  in
  let macro_cols =
    Arg.(
      value & opt int 3
      & info [ "macro-cols" ] ~doc:"Macro array columns (chip kind only).")
  in
  let macro_rows =
    Arg.(
      value & opt int 2
      & info [ "macro-rows" ] ~doc:"Macro array rows (chip kind only).")
  in
  let slot_prob =
    Arg.(
      value & opt float 0.35
      & info [ "slot-prob" ] ~docv:"P"
          ~doc:
            "Chance a candidate cell becomes a pin slot (chip kind \
             only); raise it for chip-scale net counts.")
  in
  let run kind out seed width height nets macros layers macro_cols macro_rows
      slot_prob =
    let prng = Util.Prng.create seed in
    let problem =
      match kind with
      | `Channel -> Workload.Gen.channel prng ~columns:width ~nets
      | `Switchbox -> Workload.Gen.switchbox prng ~width ~height ~nets
      | `Routable -> Workload.Gen.routable_switchbox prng ~width ~height
      | `Region -> Workload.Gen.region prng ~width ~height ~nets
      | `Chip ->
          Workload.Gen.routable_chip ?layers ~macro_cols ~macro_rows
            ~slot_prob prng ~width ~height
      | `Chipscale ->
          Workload.Gen.chip_scale ?layers ~macro_cols ~macro_rows ~slot_prob
            prng ~width ~height
      | `Macro -> Workload.Gen.macro ~macros prng ~width ~height ~nets
    in
    Netlist.Parse.save out problem;
    Format.printf "wrote %s: %a@." out Netlist.Problem.pp problem;
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random problem file.")
    Term.(
      const run $ kind $ out $ seed $ width $ height $ nets $ macros $ layers
      $ macro_cols $ macro_rows $ slot_prob)

(* --- flow --- *)

let flow_cmd =
  let tile =
    Arg.(
      value
      & opt (some int) None
      & info [ "tile" ] ~docv:"N"
          ~doc:"Global-route tile size in cells (default 8).")
  in
  let svg_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"OUT" ~doc:"Write an SVG rendering of the result.")
  in
  let ascii =
    Arg.(value & flag & info [ "ascii" ] ~doc:"Print the routed grid as ASCII.")
  in
  let report =
    Arg.(
      value & flag & info [ "report" ] ~doc:"Print the per-net routing report.")
  in
  let save_placed =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-placed" ] ~docv:"FILE"
          ~doc:"Write the placed (unrealized) problem back out to $(docv).")
  in
  let triage =
    Arg.(
      value & flag
      & info [ "triage" ]
          ~doc:
            "Run the pre-route routability predictor on the realized \
             problem and report predicted-vs-actual overflow.")
  in
  let run path config tile triage svg ascii report save_placed =
    match load path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok problem -> (
        Format.printf "%a@." Netlist.Problem.pp problem;
        Format.printf "config: %s@." (Router.Config.describe config);
        let budget =
          match
            ( config.Router.Config.deadline,
              config.Router.Config.max_expanded,
              config.Router.Config.max_searches )
          with
          | None, None, None -> None
          | deadline, max_expanded, max_searches ->
              Some
                (Router.Budget.create ?deadline ?max_expanded ?max_searches ())
        in
        match Flow.run ~config ?budget ?tile ~triage problem with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok f ->
            let ms ns = Int64.to_float ns /. 1e6 in
            (match Flow.triage_report f with
            | None -> ()
            | Some r ->
                Format.printf
                  "triage: score %.3f, predicted overflow %.3f, actual \
                   %.3f  (%s)@."
                  r.Flow.score r.Flow.predicted_overflow r.Flow.actual_overflow
                  (if r.Flow.agree then "agree" else "DISAGREE"));
            (match f.Flow.stats.Flow.place with
            | None -> Format.printf "place:  (no placement section)@."
            | Some p ->
                Format.printf
                  "place:  %d inst(s) (%d free), cost %d -> %d, %d/%d moves \
                   accepted, %d sweep(s)%s  (%.1fms)@."
                  p.Place.insts p.Place.free_insts p.Place.initial_cost
                  p.Place.final_cost p.Place.accepted p.Place.moves
                  p.Place.sweeps
                  (if p.Place.degraded then "  [degraded]" else "")
                  (ms f.Flow.stats.Flow.place_ns));
            let gr = f.Flow.stats.Flow.groute in
            Format.printf "groute: %a  (%.1fms)@." Groute.pp gr
              (ms f.Flow.stats.Flow.groute_ns);
            (match Groute.audit gr with
            | Ok () -> ()
            | Error msg -> Format.printf "groute audit: %s@." msg);
            let result = f.Flow.result in
            Format.printf "route:  completed %b  (%.1fms)@."
              result.Router.Engine.completed
              (ms f.Flow.stats.Flow.route_ns);
            let g = result.Router.Engine.stats.Router.Engine.guide in
            Format.printf
              "guides: %d net(s) guided, %d hit(s), %d fallback(s)  (hit \
               rate %.2f)@."
              g.Router.Outcome.guided g.Router.Outcome.hits
              g.Router.Outcome.fallbacks (Flow.guide_hit_rate f);
            Format.printf "%a@." Router.Engine.pp_stats
              result.Router.Engine.stats;
            (match Drc.Check.check f.Flow.realized result.Router.Engine.grid with
            | [] -> Format.printf "drc: clean@."
            | violations when result.Router.Engine.completed ->
                Format.printf "drc: VIOLATIONS@.%s@."
                  (Drc.Check.explain violations)
            | _ -> Format.printf "drc: incomplete routing (expected opens)@.");
            (match save_placed with
            | Some out ->
                Netlist.Parse.save out f.Flow.placed;
                Format.printf "wrote %s@." out
            | None -> ());
            if report then
              print_endline (Router.Report.render f.Flow.realized result);
            if ascii then
              print_endline (Viz.Ascii.render result.Router.Engine.grid);
            (match svg with
            | Some out ->
                Viz.Svg.save out f.Flow.realized result.Router.Engine.grid;
                Format.printf "wrote %s@." out
            | None -> ());
            (match result.Router.Engine.status with
            | Router.Outcome.Complete -> 0
            | Router.Outcome.Degraded reason ->
                Printf.eprintf "degraded: %s; %d net(s) left unrouted\n%!"
                  (Router.Budget.reason_to_string reason)
                  (List.length
                     result.Router.Engine.stats.Router.Engine.failed_nets);
                2
            | Router.Outcome.Infeasible ->
                Printf.eprintf "infeasible: %d net(s) could not be routed\n%!"
                  (List.length
                     result.Router.Engine.stats.Router.Engine.failed_nets);
                2))
  in
  let term =
    Term.(
      const run $ problem_arg $ config_term $ tile $ triage $ svg_out $ ascii
      $ report $ save_placed)
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "Run the full mini-flow on a problem file: annealing placement, \
          global-route guides, then guide-windowed detailed routing.  The \
          final layout is byte-identical to routing the realized problem \
          without guides.  Exit codes match $(b,route).")
    term

(* --- channel --- *)

let channel_cmd =
  let run path =
    match load path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok problem -> (
        match problem.Netlist.Problem.kind with
        | Netlist.Problem.Channel ->
            let spec = Channel.Model.spec_of_problem problem in
            let show = function None -> "fail" | Some t -> string_of_int t in
            Format.printf "density:   %d@." (Channel.Model.density spec);
            Format.printf "left-edge: %s@." (show (Channel.Lea.min_tracks spec));
            Format.printf "dogleg:    %s@."
              (show (Channel.Dogleg.min_tracks spec));
            Format.printf "greedy:    %s@."
              (show (Channel.Greedy.min_tracks spec));
            Format.printf "yacr:      %s@."
              (show (Channel.Yacr.min_tracks spec));
            Format.printf "full:      %s@."
              (show (Option.map fst (Channel.Adapter.min_tracks spec)));
            0
        | Netlist.Problem.Switchbox | Netlist.Problem.Region ->
            prerr_endline "not a channel problem";
            1)
  in
  Cmd.v
    (Cmd.info "channel"
       ~doc:"Compare channel routers (minimum tracks) on a channel file.")
    Term.(const run $ problem_arg)

(* --- serve --- *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve on a Unix domain socket at $(docv) (multiple clients) \
             instead of stdin/stdout pipe mode.")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission-control bound on queued requests; past it new \
             requests are shed with a queue_full + retry_after_ms reply.")
  in
  let slo =
    Arg.(
      value
      & opt (some int) None
      & info [ "slo" ] ~docv:"MS"
          ~doc:
            "Default per-request wall-clock budget for route requests, in \
             milliseconds (a request's slo_ms field overrides it).  A \
             request that trips its budget is rolled back and answered \
             with a budget_tripped error.")
  in
  let max_sessions =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Hard cap on concurrently open sessions.")
  in
  let idle_ticks =
    Arg.(
      value & opt int 10_000
      & info [ "idle-ticks" ] ~docv:"N"
          ~doc:
            "Evict a session after it has sat idle for $(docv) served \
             requests.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"PATH"
          ~doc:
            "Make sessions durable: journal every committed mutation to a \
             per-session write-ahead log under $(docv), snapshot \
             periodically, and recover every session found there on \
             startup.  Without it the server is fully in-memory.")
  in
  let snapshot_every =
    Arg.(
      value & opt int 64
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "With --data-dir: compact each session's log into a snapshot \
             every $(docv) committed mutations.")
  in
  let no_fsync =
    Arg.(
      value & flag
      & info [ "no-fsync" ]
          ~doc:
            "With --data-dir: skip fsync on log appends and snapshots.  \
             Faster; a crash of the whole machine (not just the server \
             process) may then lose the last few committed requests.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard sessions over $(docv) persistent worker domains (0 = \
             one per core).  Each session is pinned to one shard by a \
             stable hash of its name, so per-session determinism and \
             reply order are unchanged; different sessions execute in \
             parallel.  1 = the fully synchronous engine.")
  in
  let run config socket queue_cap slo max_sessions idle_ticks data_dir
      snapshot_every no_fsync shards =
    let shards =
      if shards > 0 then shards else Domain.recommended_domain_count ()
    in
    let sconfig =
      {
        Service.Server.default_config with
        Service.Server.router = config;
        queue_cap;
        default_slo_ms = slo;
        max_sessions;
        idle_ticks;
        data_dir;
        snapshot_every;
        fsync = not no_fsync;
        shards;
      }
    in
    let server = Service.Server.create ~config:sconfig () in
    (* Graceful shutdown: stop admitting, drain the queue, final
       snapshots, metrics.  SIGTERM/SIGINT only flip the flag; the
       serving loop notices and runs its normal end-of-life path. *)
    let graceful _ = Service.Server.request_shutdown server in
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful)
     with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle graceful)
     with Invalid_argument _ | Sys_error _ -> ());
    (match socket with
    | None -> Service.Server.serve_pipe server stdin stdout
    | Some path -> Service.Server.serve_socket server ~path);
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the router as a long-lived service: line-delimited JSON \
          requests (see docs/PROTOCOL.md) over stdin/stdout, or over a \
          Unix socket with --socket.  Sessions are sharded over \
          persistent worker domains (--shards); with --data-dir they are \
          journalled and survive crashes and restarts.  Metrics are \
          dumped to stderr on shutdown; SIGTERM/SIGINT shut down \
          gracefully (drain, snapshot, report).")
    Term.(
      const run $ config_term $ socket $ queue_cap $ slo $ max_sessions
      $ idle_ticks $ data_dir $ snapshot_every $ no_fsync $ shards)

(* --- suite --- *)

let suite_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Route suite instances on N domains in parallel (0 = one per \
             core).  Results are independent of N.")
  in
  let run jobs =
    let jobs = if jobs = 0 then Util.Parallel.default_jobs () else jobs in
    let table =
      Util.Table.create
        ~headers:[ "instance"; "kind"; "nets"; "maze-only"; "full"; "drc" ]
    in
    let instances =
      List.map (fun (n, p) -> (n, "switchbox", p)) (Workload.Hard.all_switchboxes ())
      @ List.map (fun (n, p) -> (n, "channel", p)) (Workload.Hard.all_channels ())
    in
    (* Each instance routes on its own grid/workspace, so instances are
       independent and the pool keeps the row order deterministic. *)
    let rows =
      Util.Parallel.map ~jobs
        (fun (name, kind, problem) ->
          let maze =
            Router.Engine.route ~config:Router.Config.maze_only problem
          in
          let full = Router.Engine.route problem in
          [
            name;
            kind;
            Util.Table.cell_int (Netlist.Problem.net_count problem);
            Util.Table.cell_bool maze.Router.Engine.completed;
            Util.Table.cell_bool full.Router.Engine.completed;
            (if
               (not full.Router.Engine.completed)
               || Drc.Check.is_clean problem full.Router.Engine.grid
             then "clean"
             else "VIOLATION");
          ])
        instances
    in
    List.iter (Util.Table.add_row table) rows;
    Util.Table.print table;
    0
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Route the built-in hard instance suites and report completion.")
    Term.(const run $ jobs)

let () =
  let doc = "A rip-up-and-reroute detailed router for N-layer grids." in
  let info = Cmd.info "router_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            route_cmd; flow_cmd; analyze_cmd; info_cmd; show_cmd; gen_cmd;
            channel_cmd; suite_cmd; serve_cmd;
          ]))
