(* Benchmark harness: regenerates every table and figure of the evaluation
   — experiments E1 through E10 plus bechamel micro-benchmarks (see
   DESIGN.md §3 and EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe                    -- run all experiments
     dune exec bench/main.exe e1 e4              -- run a subset
     dune exec bench/main.exe micro              -- micro-benchmarks only
     dune exec bench/main.exe e5 -- --jobs 4     -- sweep on 4 domains
     dune exec bench/main.exe e5 -- --no-time    -- omit wall-clock columns

   --jobs N runs the instances of the E4/E5/E9 sweeps on N domains
   (0 = one per core); all result columns are byte-identical to the
   sequential run because every instance routes on its own grid and the
   pool preserves order.  Wall-clock columns are the one inherently
   unstable output; --no-time replaces them with "-" so two runs (any
   --jobs values) diff clean.
*)

let jobs = ref 1
let no_time = ref false

let pmap f xs = Util.Parallel.map ~jobs:!jobs f xs

let time_cell ?(decimals = 2) ms =
  if !no_time then "-" else Util.Table.cell_float ~decimals ms

(* Every direct engine invocation in the harness runs under a hard
   per-run wall-clock budget: a pathological instance degrades its own
   row (the engine returns best-so-far) instead of hanging the whole
   table run.  The deadline is far above any observed row time, so
   result columns are unaffected. *)
let run_deadline = 120.0

let route ?config problem =
  Router.Engine.route ?config
    ~budget:(Router.Budget.create ~deadline:run_deadline ())
    problem

let strategies =
  [
    ("maze-only", Router.Config.maze_only);
    ("weak-only", Router.Config.weak_only);
    ("full", Router.Config.default);
  ]

let drc_ok problem (result : Router.Engine.t) =
  let failed = result.Router.Engine.stats.Router.Engine.failed_nets in
  let routed =
    List.filter
      (fun id -> not (List.mem id failed))
      (List.init (Netlist.Problem.net_count problem) (fun i -> i + 1))
  in
  Drc.Check.is_clean ~nets:routed problem result.Router.Engine.grid

let heading title claim =
  Printf.printf "\n=== %s ===\n%s\n\n" title claim

(* ------------------------------------------------------------------ *)
(* E1: difficult switchboxes — completion by strategy                  *)
(* ------------------------------------------------------------------ *)

let e1 () =
  heading "E1 (table): difficult switchboxes, completion by strategy"
    "Claim: one-shot maze routing fails on difficult switchboxes; weak\n\
     modification (shoving) helps but does not complete; rip-up and\n\
     reroute completes them all.";
  let table =
    Util.Table.create
      ~headers:
        [ "switchbox"; "nets"; "strategy"; "done"; "failed"; "rips"; "shoves";
          "vias"; "wirelen"; "drc" ]
  in
  List.iter
    (fun (name, problem) ->
      List.iter
        (fun (sname, config) ->
          let r = route ~config problem in
          let s = r.Router.Engine.stats in
          Util.Table.add_row table
            [
              name;
              Util.Table.cell_int (Netlist.Problem.net_count problem);
              sname;
              Util.Table.cell_bool r.Router.Engine.completed;
              Util.Table.cell_int (List.length s.Router.Engine.failed_nets);
              Util.Table.cell_int s.Router.Engine.rips;
              Util.Table.cell_int s.Router.Engine.shoves;
              Util.Table.cell_int s.Router.Engine.total_vias;
              Util.Table.cell_int s.Router.Engine.total_wirelength;
              (if drc_ok problem r then "clean" else "VIOLATION");
            ])
        strategies;
      Util.Table.add_sep table)
    (Workload.Hard.all_switchboxes ());
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* E2: channels — minimum tracks per router                            *)
(* ------------------------------------------------------------------ *)

let e2 () =
  heading "E2 (table): channels, minimum tracks per router"
    "Claim: the full router finishes difficult channels in density\n\
     (the lower bound), matching or beating channel-specific routers;\n\
     dogleg-free routers fail on constraint cycles and waste tracks on\n\
     constraint chains.";
  let show = function None -> "fail" | Some t -> string_of_int t in
  let table =
    Util.Table.create
      ~headers:
        [ "channel"; "cols"; "nets"; "density"; "left-edge"; "dogleg";
          "greedy"; "yacr"; "full"; "full vias"; "full wirelen" ]
  in
  List.iter
    (fun (name, problem) ->
      let spec = Channel.Model.spec_of_problem problem in
      let full = Channel.Adapter.min_tracks spec in
      let full_tracks, full_vias, full_wl =
        match full with
        | Some (t, r) ->
            ( string_of_int t,
              Util.Table.cell_int r.Router.Engine.stats.Router.Engine.total_vias,
              Util.Table.cell_int
                r.Router.Engine.stats.Router.Engine.total_wirelength )
        | None -> ("fail", "-", "-")
      in
      Util.Table.add_row table
        [
          name;
          Util.Table.cell_int (Channel.Model.columns spec);
          Util.Table.cell_int (List.length (Channel.Model.net_ids spec));
          Util.Table.cell_int (Channel.Model.density spec);
          show (Channel.Lea.min_tracks spec);
          show (Channel.Dogleg.min_tracks spec);
          (match Channel.Greedy.route_padded spec with
          | Some (padded, sol) ->
              let ext = Channel.Greedy.extension_used ~original:spec padded in
              if ext = 0 then string_of_int sol.Channel.Model.tracks
              else Printf.sprintf "%d(+%dc)" sol.Channel.Model.tracks ext
          | None -> "fail");
          show (Channel.Yacr.min_tracks spec);
          full_tracks;
          full_vias;
          full_wl;
        ])
    (Workload.Hard.all_channels ());
  Util.Table.print table;
  Printf.printf
    "Quality at each router's own minimum track count (deutsch-like):\n";
  let spec =
    Channel.Model.spec_of_problem (Workload.Hard.deutsch_like ())
  in
  let table =
    Util.Table.create ~headers:[ "router"; "tracks"; "vias"; "wirelen" ]
  in
  let add_solution name = function
    | Some (sol : Channel.Model.solution) ->
        Util.Table.add_row table
          [
            name;
            Util.Table.cell_int sol.Channel.Model.tracks;
            Util.Table.cell_int (Channel.Model.solution_vias sol);
            Util.Table.cell_int (Channel.Model.solution_wirelength sol);
          ]
    | None -> Util.Table.add_row table [ name; "fail"; "-"; "-" ]
  in
  add_solution "left-edge" (Channel.Lea.route spec);
  add_solution "dogleg" (Channel.Dogleg.route spec);
  add_solution "greedy (padded)"
    (Option.map snd (Channel.Greedy.route_padded spec));
  (match Channel.Yacr.route spec with
  | Some (problem, g) ->
      Util.Table.add_row table
        [
          "yacr";
          Util.Table.cell_int (problem.Netlist.Problem.height - 2);
          Util.Table.cell_int (Router.Outcome.total_vias g);
          Util.Table.cell_int (Router.Outcome.total_wirelength g problem);
        ]
  | None -> Util.Table.add_row table [ "yacr"; "fail"; "-"; "-" ]);
  (match Channel.Adapter.min_tracks spec with
  | Some (tracks, r) ->
      Util.Table.add_row table
        [
          "full";
          Util.Table.cell_int tracks;
          Util.Table.cell_int r.Router.Engine.stats.Router.Engine.total_vias;
          Util.Table.cell_int
            r.Router.Engine.stats.Router.Engine.total_wirelength;
        ]
  | None -> Util.Table.add_row table [ "full"; "fail"; "-"; "-" ]);
  Util.Table.print table;
  Printf.printf "Staircase series (density 2, constraint chain length n):\n";
  let table =
    Util.Table.create
      ~headers:[ "n"; "left-edge"; "dogleg"; "greedy"; "yacr"; "full" ]
  in
  List.iter
    (fun n ->
      let spec =
        Channel.Model.spec_of_problem (Workload.Hard.staircase_channel n)
      in
      Util.Table.add_row table
        [
          Util.Table.cell_int n;
          show (Channel.Lea.min_tracks ~max_extra:(n + 2) spec);
          show (Channel.Dogleg.min_tracks ~max_extra:(n + 2) spec);
          show (Channel.Greedy.min_tracks ~max_extra:(n + 2) spec);
          show (Channel.Yacr.min_tracks ~max_extra:(n + 2) spec);
          show (Option.map fst (Channel.Adapter.min_tracks spec));
        ])
    [ 4; 6; 8; 10; 12 ];
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* E3: routing in a reduced region                                     *)
(* ------------------------------------------------------------------ *)

(* Remove one interior column that carries no top/bottom pin, shifting the
   pins to its right leftwards.  Mirrors the paper's "routed using one less
   column than the original data". *)
let remove_unpinned_column (problem : Netlist.Problem.t) =
  let w = problem.Netlist.Problem.width
  and h = problem.Netlist.Problem.height in
  let top = Array.make w 0
  and bottom = Array.make w 0
  and left = Array.make h 0
  and right = Array.make h 0 in
  List.iter
    (fun (net, (pin : Netlist.Net.pin)) ->
      let x = pin.Netlist.Net.x and y = pin.Netlist.Net.y in
      if y = h - 1 && pin.Netlist.Net.layer = 1 then top.(x) <- net
      else if y = 0 && pin.Netlist.Net.layer = 1 then bottom.(x) <- net
      else if x = 0 then left.(y) <- net
      else right.(y) <- net)
    (Netlist.Problem.pin_cells problem);
  let removable = ref None in
  for x = w - 2 downto 1 do
    if top.(x) = 0 && bottom.(x) = 0 then removable := Some x
  done;
  match !removable with
  | None -> None
  | Some x ->
      let drop a i =
        Array.init
          (Array.length a - 1)
          (fun j -> if j < i then a.(j) else a.(j + 1))
      in
      Some
        (Netlist.Build.switchbox
           ~name:(problem.Netlist.Problem.name ^ "-shrunk")
           ~width:(w - 1) ~height:h ~top:(drop top x) ~bottom:(drop bottom x)
           ~left ~right ())

let min_width config problem =
  let rec loop p =
    let r = route ~config p in
    if not r.Router.Engine.completed then None
    else
      match remove_unpinned_column p with
      | None -> Some p.Netlist.Problem.width
      | Some smaller -> (
          match loop smaller with
          | Some width -> Some width
          | None -> Some p.Netlist.Problem.width)
  in
  loop problem

let e3 () =
  heading "E3 (table): routing in a reduced region"
    "Claim: the rip-up router can finish in a smaller region (fewer\n\
     columns) than one-shot routing needs — the paper's 'one less\n\
     column' result.  Unpinned columns are removed one at a time until\n\
     routing fails; smaller min-columns is better.";
  let table =
    Util.Table.create
      ~headers:
        [ "switchbox"; "orig cols"; "min cols (maze)"; "min cols (full)";
          "cols saved" ]
  in
  List.iter
    (fun (name, problem) ->
      let orig = problem.Netlist.Problem.width in
      let show = function None -> "fail" | Some w -> string_of_int w in
      let m = min_width Router.Config.maze_only problem in
      let f = min_width Router.Config.default problem in
      let saved =
        match (m, f) with
        | Some m, Some f -> string_of_int (m - f)
        | None, Some f -> Printf.sprintf ">=%d" (orig - f)
        | (Some _ | None), None -> "-"
      in
      Util.Table.add_row table
        [ name; Util.Table.cell_int orig; show m; show f; saved ])
    (Workload.Hard.all_switchboxes ());
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* E4: completion rate vs congestion                                   *)
(* ------------------------------------------------------------------ *)

let e4 () =
  heading "E4 (figure): completion rate vs boundary congestion"
    "Claim: as congestion grows, one-shot routing degrades first; weak\n\
     modification extends the routable range; rip-up extends it\n\
     furthest.  Series = completion rate over 20 random switchboxes\n\
     (12x10) per fill level (fill = fraction of boundary slots pinned).";
  let seeds = List.init 20 (fun i -> 1000 + i) in
  let table =
    Util.Table.create
      ~headers:[ "fill"; "maze-only"; "weak-only"; "full"; "full rips/box" ]
  in
  List.iter
    (fun fill ->
      let problems =
        List.map
          (fun seed ->
            Workload.Gen.dense_switchbox ~fill (Util.Prng.create seed)
              ~width:12 ~height:10)
          seeds
      in
      (* Each box routes under all three strategies in one parallel task;
         aggregation below is order-independent, so the table is identical
         for every --jobs value. *)
      let outcomes =
        pmap
          (fun p ->
            let done_with config =
              (route ~config p).Router.Engine.completed
            in
            let full = route p in
            ( done_with Router.Config.maze_only,
              done_with Router.Config.weak_only,
              full.Router.Engine.completed,
              full.Router.Engine.stats.Router.Engine.rips ))
          problems
      in
      let count f = List.length (List.filter f outcomes) in
      let rate n = float_of_int n /. float_of_int (List.length problems) in
      let rips =
        List.fold_left (fun acc (_, _, _, r) -> acc + r) 0 outcomes
      in
      Util.Table.add_row table
        [
          Util.Table.cell_float ~decimals:2 fill;
          Util.Table.cell_pct (rate (count (fun (m, _, _, _) -> m)));
          Util.Table.cell_pct (rate (count (fun (_, w, _, _) -> w)));
          Util.Table.cell_pct (rate (count (fun (_, _, f, _) -> f)));
          Util.Table.cell_float ~decimals:1
            (float_of_int rips /. float_of_int (List.length problems));
        ])
    [ 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ];
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* E5: runtime scaling                                                 *)
(* ------------------------------------------------------------------ *)

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  a.(Array.length a / 2)

let e5 () =
  heading "E5 (figure): runtime and search effort vs region size"
    "Claim: runtime grows polynomially with region size (the search is\n\
     O(cells log cells) per connection); the modification machinery does\n\
     not blow up on larger regions.  Series over routable boxes of\n\
     growing size (median of 3 runs).";
  let table =
    Util.Table.create
      ~headers:
        [ "size"; "nets"; "pins"; "ms (full)"; "expanded"; "searches"; "rips" ]
  in
  let rows =
    pmap
      (fun (w, h) ->
        let problem =
          Workload.Gen.routable_switchbox
            (Util.Prng.create (w + h))
            ~width:w ~height:h
        in
        let times = ref [] and result = ref None in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          let r = route problem in
          times := (Unix.gettimeofday () -. t0) :: !times;
          result := Some r
        done;
        match !result with
        | None -> []
        | Some r ->
            let s = r.Router.Engine.stats in
            [
              Printf.sprintf "%dx%d" w h;
              Util.Table.cell_int (Netlist.Problem.net_count problem);
              Util.Table.cell_int (Netlist.Problem.total_pins problem);
              time_cell (1000.0 *. median !times);
              Util.Table.cell_int s.Router.Engine.expanded;
              Util.Table.cell_int s.Router.Engine.searches;
              Util.Table.cell_int s.Router.Engine.rips;
            ])
      [ (8, 7); (12, 10); (16, 14); (24, 20); (32, 26); (48, 40); (64, 52) ]
  in
  List.iter (fun row -> if row <> [] then Util.Table.add_row table row) rows;
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* E6: ablation of the design choices                                  *)
(* ------------------------------------------------------------------ *)

let e6 () =
  heading "E6 (table, ablation): contribution of each design choice"
    "Aggregated over the switchbox suite: failed nets, modification\n\
     counts and quality per configuration.  Shows what each mechanism\n\
     (ordering, shove, rip-up, costs, A*) buys.";
  let configs =
    [
      ("full (default)", Router.Config.default);
      ( "no weak (strong only)",
        { Router.Config.default with enable_weak = false } );
      ("no strong (weak only)", Router.Config.weak_only);
      ("maze only", Router.Config.maze_only);
      ( "order: hpwl ascending",
        { Router.Config.default with order = Router.Config.Hpwl_ascending } );
      ( "order: as given",
        { Router.Config.default with order = Router.Config.As_given } );
      ( "order: random",
        { Router.Config.default with order = Router.Config.Random } );
      ( "order: congestion",
        {
          Router.Config.default with
          order = Router.Config.Congestion_descending;
        } );
      ("astar", { Router.Config.default with use_astar = true });
      ( "cheap vias (via=1)",
        {
          Router.Config.default with
          cost = { Maze.Cost.default with Maze.Cost.via = 1 };
        } );
      ( "no wrong-way cost",
        {
          Router.Config.default with
          cost = { Maze.Cost.default with Maze.Cost.wrong_way = 0 };
        } );
      ("restarts=4", { Router.Config.default with restarts = 4 });
    ]
  in
  let suite = Workload.Hard.all_switchboxes () in
  let table =
    Util.Table.create
      ~headers:
        [ "configuration"; "boxes done"; "failed nets"; "rips"; "shoves";
          "vias"; "wirelen"; "expanded" ]
  in
  List.iter
    (fun (name, config) ->
      let completed = ref 0
      and failed = ref 0
      and rips = ref 0
      and shoves = ref 0
      and vias = ref 0
      and wirelen = ref 0
      and expanded = ref 0 in
      List.iter
        (fun (_, problem) ->
          let r = route ~config problem in
          let s = r.Router.Engine.stats in
          if r.Router.Engine.completed then incr completed;
          failed := !failed + List.length s.Router.Engine.failed_nets;
          rips := !rips + s.Router.Engine.rips;
          shoves := !shoves + s.Router.Engine.shoves;
          vias := !vias + s.Router.Engine.total_vias;
          wirelen := !wirelen + s.Router.Engine.total_wirelength;
          expanded := !expanded + s.Router.Engine.expanded)
        suite;
      Util.Table.add_row table
        [
          name;
          Printf.sprintf "%d/%d" !completed (List.length suite);
          Util.Table.cell_int !failed;
          Util.Table.cell_int !rips;
          Util.Table.cell_int !shoves;
          Util.Table.cell_int !vias;
          Util.Table.cell_int !wirelen;
          Util.Table.cell_int !expanded;
        ])
    configs;
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* E7: partially routed regions (ECO)                                  *)
(* ------------------------------------------------------------------ *)

let route_cells problem grid ~net =
  let pins =
    List.filter_map
      (fun (id, (p : Netlist.Net.pin)) ->
        if id = net then
          Some (p.Netlist.Net.layer, p.Netlist.Net.x, p.Netlist.Net.y)
        else None)
      (Netlist.Problem.pin_cells problem)
  in
  List.filter_map
    (fun node ->
      let cell =
        (Grid.node_layer grid node, Grid.node_x grid node, Grid.node_y grid node)
      in
      if List.mem cell pins then None else Some cell)
    (Grid.occupied_nodes grid ~net)

(* Freeze a routed region and add fresh nets whose pins sit on free cells. *)
let make_eco seed =
  let prng = Util.Prng.create seed in
  let base = Workload.Gen.region prng ~width:16 ~height:12 ~nets:8 in
  let first = route base in
  if not first.Router.Engine.completed then None
  else begin
    let grid = first.Router.Engine.grid in
    let n = Netlist.Problem.net_count base in
    let prewires =
      List.init n (fun i ->
          let net = i + 1 in
          {
            Netlist.Problem.pre_net = net;
            pre_cells = route_cells base grid ~net;
            (* a third of the old nets are frozen, the rest movable *)
            pre_fixed = net mod 3 = 0;
          })
    in
    let free_cells = ref [] in
    Grid.iter_nodes grid (fun node ->
        if Grid.is_free grid node then free_cells := node :: !free_cells);
    let free = Array.of_list !free_cells in
    Util.Prng.shuffle prng free;
    if Array.length free < 8 then None
    else begin
      let pin_of node =
        Netlist.Net.pin
          ~layer:(Grid.node_layer grid node)
          (Grid.node_x grid node) (Grid.node_y grid node)
      in
      let old_nets = Array.to_list base.Netlist.Problem.nets in
      let new_net k =
        Netlist.Net.make ~id:(n + k)
          ~name:(Printf.sprintf "eco%d" k)
          [ pin_of free.(2 * k); pin_of free.((2 * k) + 1) ]
      in
      let eco =
        Netlist.Problem.make ~name:"eco" ~width:16 ~height:12
          ~obstructions:base.Netlist.Problem.obstructions ~prewires
          (old_nets @ [ new_net 1; new_net 2 ])
      in
      Some eco
    end
  end

let e7 () =
  heading "E7 (table): ECO routing in partially routed regions"
    "Claim: the router handles partially routed areas — frozen wiring is\n\
     respected, movable wiring is ripped only when needed, and new nets\n\
     are threaded through an existing layout.";
  let table =
    Util.Table.create
      ~headers:[ "seed"; "done"; "rips"; "shoves"; "fixed intact"; "drc" ]
  in
  let attempted = ref 0 in
  List.iter
    (fun seed ->
      match make_eco seed with
      | None -> ()
      | Some eco ->
          incr attempted;
          let r = route eco in
          let s = r.Router.Engine.stats in
          let fixed_intact =
            List.for_all
              (fun (pw : Netlist.Problem.prewire) ->
                (not pw.Netlist.Problem.pre_fixed)
                || List.for_all
                     (fun (layer, x, y) ->
                       Grid.occ_at r.Router.Engine.grid ~layer ~x ~y
                       = pw.Netlist.Problem.pre_net)
                     pw.Netlist.Problem.pre_cells)
              eco.Netlist.Problem.prewires
          in
          Util.Table.add_row table
            [
              Util.Table.cell_int seed;
              Util.Table.cell_bool r.Router.Engine.completed;
              Util.Table.cell_int s.Router.Engine.rips;
              Util.Table.cell_int s.Router.Engine.shoves;
              Util.Table.cell_bool fixed_intact;
              (if drc_ok eco r then "clean" else "VIOLATION");
            ])
    (List.init 8 (fun i -> 300 + i));
  Util.Table.print table;
  Printf.printf "(%d of 8 seeds produced a routable base layout)\n" !attempted

(* ------------------------------------------------------------------ *)
(* E8: post-route refinement                                           *)
(* ------------------------------------------------------------------ *)

let e8 () =
  heading "E8 (table): post-route refinement (rip-up-and-improve)"
    "Claim: revisiting nets against the final layout recovers the detours\n\
     taken during sequential routing; the pass is strictly monotone\n\
     (cost never increases) and preserves DRC cleanliness.";
  let table =
    Util.Table.create
      ~headers:
        [ "switchbox"; "wirelen before"; "after"; "vias before"; "after";
          "nets improved"; "passes"; "drc" ]
  in
  List.iter
    (fun (name, problem) ->
      let r = route problem in
      if r.Router.Engine.completed then begin
        let s = Router.Improve.refine problem r.Router.Engine.grid in
        Util.Table.add_row table
          [
            name;
            Util.Table.cell_int s.Router.Improve.wirelength_before;
            Util.Table.cell_int s.Router.Improve.wirelength_after;
            Util.Table.cell_int s.Router.Improve.vias_before;
            Util.Table.cell_int s.Router.Improve.vias_after;
            Util.Table.cell_int s.Router.Improve.improved_nets;
            Util.Table.cell_int s.Router.Improve.passes;
            (if Drc.Check.is_clean problem r.Router.Engine.grid then "clean"
             else "VIOLATION");
          ]
      end)
    (Workload.Hard.all_switchboxes ());
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* E9: macro-cell chips — full-flow scaling                            *)
(* ------------------------------------------------------------------ *)

let e9 () =
  heading "E9 (table): macro-cell chips, end-to-end"
    "Claim: the router is usable as the detailed router of a macro-cell\n\
     flow — irregular regions between macros, pins on macro edges,\n\
     growing problem sizes, with the refinement pass as cleanup.  All\n\
     instances are routable by construction.";
  let table =
    Util.Table.create
      ~headers:
        [ "chip"; "macros"; "nets"; "pins"; "done"; "rips"; "ms (route)";
          "wl"; "wl refined"; "vias"; "vias refined"; "drc" ]
  in
  let rows =
    pmap
      (fun (w, h, mc, mr) ->
        let problem =
          Workload.Gen.routable_chip ~macro_cols:mc ~macro_rows:mr
            (Util.Prng.create (w + h))
            ~width:w ~height:h
        in
        let t0 = Unix.gettimeofday () in
        let r = route problem in
        let elapsed = Unix.gettimeofday () -. t0 in
        let s = r.Router.Engine.stats in
        let refined = Router.Improve.refine problem r.Router.Engine.grid in
        [
          Printf.sprintf "%dx%d" w h;
          Printf.sprintf "%dx%d" mc mr;
          Util.Table.cell_int (Netlist.Problem.net_count problem);
          Util.Table.cell_int (Netlist.Problem.total_pins problem);
          Util.Table.cell_bool r.Router.Engine.completed;
          Util.Table.cell_int s.Router.Engine.rips;
          time_cell ~decimals:1 (1000.0 *. elapsed);
          Util.Table.cell_int refined.Router.Improve.wirelength_before;
          Util.Table.cell_int refined.Router.Improve.wirelength_after;
          Util.Table.cell_int refined.Router.Improve.vias_before;
          Util.Table.cell_int refined.Router.Improve.vias_after;
          (if drc_ok problem r then "clean" else "VIOLATION");
        ])
      [ (32, 24, 2, 2); (48, 32, 3, 2); (64, 48, 3, 3); (96, 64, 4, 3);
        (128, 96, 5, 4) ]
  in
  List.iter (Util.Table.add_row table) rows;
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* E10: the congestion predictor vs reality                            *)
(* ------------------------------------------------------------------ *)

let e10 () =
  heading "E10 (figure): pre-routing congestion estimate vs completion"
    "The demand-map overflow estimate is a cheap routability predictor:\n\
     bucketing 120 random switchboxes by estimated overflow, completion\n\
     rate should fall monotonically as the estimate rises.";
  let problems =
    List.concat_map
      (fun fill ->
        List.map
          (fun seed ->
            Workload.Gen.dense_switchbox ~fill
              (Util.Prng.create (seed * 37))
              ~width:12 ~height:10)
          (List.init 20 (fun i -> 500 + i)))
      [ 0.3; 0.45; 0.6; 0.7; 0.8; 0.9 ]
  in
  let buckets = [ 0.0; 0.02; 0.05; 0.10; 0.20; 0.35; 1.01 ] in
  let table =
    Util.Table.create
      ~headers:[ "overflow estimate"; "boxes"; "completion (full)" ]
  in
  let rec pairs = function
    | lo :: (hi :: _ as rest) ->
        let selected =
          List.filter
            (fun p ->
              let v = Netlist.Analysis.overflow_estimate p in
              v >= lo && v < hi)
            problems
        in
        if selected <> [] then begin
          let routed =
            List.length
              (List.filter
                 (fun p -> (route p).Router.Engine.completed)
                 selected)
          in
          Util.Table.add_row table
            [
              Printf.sprintf "[%.2f, %.2f)" lo hi;
              Util.Table.cell_int (List.length selected);
              Util.Table.cell_pct
                (float_of_int routed /. float_of_int (List.length selected));
            ]
        end;
        pairs rest
    | [] | [ _ ] -> ()
  in
  pairs buckets;
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* budget: anytime behavior — quality vs expansion budget              *)
(* ------------------------------------------------------------------ *)

let budget_sweep () =
  heading "budget (table): solution quality vs expansion budget"
    "Claim: the engine is an anytime router — under a hard expansion\n\
     budget it returns a DRC-clean best-so-far layout, routed nets grow\n\
     monotonically with the budget, and an unlimited budget reproduces\n\
     the default run exactly.  Instances mirror the E4/E5/E9 suites.";
  let instances =
    [
      ( "dense 12x10 (E4, fill 0.6)",
        Workload.Gen.dense_switchbox ~fill:0.6 (Util.Prng.create 1007)
          ~width:12 ~height:10 );
      ( "switchbox 32x26 (E5)",
        Workload.Gen.routable_switchbox (Util.Prng.create 58) ~width:32
          ~height:26 );
      ( "switchbox 64x52 (E5)",
        Workload.Gen.routable_switchbox (Util.Prng.create 116) ~width:64
          ~height:52 );
      ( "chip 64x48 (E9, 3x3 macros)",
        Workload.Gen.routable_chip ~macro_cols:3 ~macro_rows:3
          (Util.Prng.create 112) ~width:64 ~height:48 );
    ]
  in
  let budgets = [ Some 250; Some 1_000; Some 4_000; Some 16_000; None ] in
  let table =
    Util.Table.create
      ~headers:
        [ "instance"; "max expanded"; "status"; "routed"; "failed";
          "expanded"; "wirelen"; "drc" ]
  in
  List.iter
    (fun (name, problem) ->
      let rows =
        pmap
          (fun max_expanded ->
            let budget =
              match max_expanded with
              | Some m -> Router.Budget.create ~max_expanded:m ()
              | None -> Router.Budget.create ~deadline:run_deadline ()
            in
            let r = Router.Engine.route ~budget problem in
            let s = r.Router.Engine.stats in
            [
              name;
              (match max_expanded with
              | Some m -> Util.Table.cell_int m
              | None -> "unlimited");
              Router.Outcome.status_name r.Router.Engine.status;
              Printf.sprintf "%d/%d" s.Router.Engine.routed_nets
                (Netlist.Problem.net_count problem);
              Util.Table.cell_int (List.length s.Router.Engine.failed_nets);
              Util.Table.cell_int (Router.Budget.expanded budget);
              Util.Table.cell_int s.Router.Engine.total_wirelength;
              (if drc_ok problem r then "clean" else "VIOLATION");
            ])
          budgets
      in
      List.iter (Util.Table.add_row table) rows;
      Util.Table.add_sep table)
    instances;
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* micro: bechamel benchmarks of the hot paths                         *)
(* ------------------------------------------------------------------ *)

(* Search-kernel comparison on the E5 size sweep's largest instance: every
   variant runs the identical set of first-connection searches (one per
   non-trivial net, first pin to the remaining pins) on the instantiated
   grid, so total costs must agree exactly — both kernels and the windowed
   search are cost-optimal — and wall-clock differences are pure kernel
   wins.  The engine-level routes below confirm the fast kernels keep the
   router DRC-clean end to end. *)
let micro_kernels () =
  heading "micro (kernels): search kernels on the E5 largest instance (64x52)"
    "Claim: the Dial bucket-queue kernel and the windowed array-based A*\n\
     beat the binary-heap full-grid baseline at identical (optimal) search\n\
     costs, and the engine stays DRC-clean with the fast kernels.";
  let w, h = (64, 52) in
  let problem =
    Workload.Gen.routable_switchbox
      (Util.Prng.create (w + h))
      ~width:w ~height:h
  in
  let g = Netlist.Problem.instantiate problem in
  let ws = Maze.Workspace.create g in
  let searches =
    List.filter_map
      (fun id ->
        let net = Netlist.Problem.net problem id in
        match net.Netlist.Net.pins with
        | first :: (_ :: _ as rest) ->
            Some
              ( id,
                Maze.Route.pin_node g first,
                List.map (Maze.Route.pin_node g) rest )
        | _ -> None)
      (Netlist.Problem.nontrivial_net_ids problem)
  in
  let passable net n =
    let v = Grid.occ g n in
    if v = Grid.free || v = net then Some 0 else None
  in
  let pass search =
    List.fold_left
      (fun (cost, expanded) (net, source, targets) ->
        match search ~passable:(passable net) ~sources:[ source ] ~targets with
        | Some (r : Maze.Search.result) ->
            (cost + r.Maze.Search.total_cost, expanded + r.Maze.Search.expanded)
        | None -> failwith "micro: kernel search failed")
      (0, 0) searches
  in
  let time_pass search =
    ignore (pass search) (* warm-up *);
    let best = ref infinity and result = ref (0, 0) in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      result := pass search;
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    (!best, !result)
  in
  let cost = Maze.Cost.default in
  let heap = Maze.Search.Binary_heap and buckets = Maze.Search.Buckets in
  let variants =
    [
      ( "dijkstra / heap / full grid (baseline)",
        fun ~passable ~sources ~targets ->
          Maze.Search.run ~kernel:heap g ws ~cost ~passable ~sources ~targets
            () );
      ( "dijkstra / buckets / full grid",
        fun ~passable ~sources ~targets ->
          Maze.Search.run ~kernel:buckets g ws ~cost ~passable ~sources
            ~targets () );
      ( "astar / heap / full grid",
        fun ~passable ~sources ~targets ->
          Maze.Search.run_astar ~kernel:heap g ws ~cost ~passable ~sources
            ~targets () );
      ( "astar / buckets / full grid",
        fun ~passable ~sources ~targets ->
          Maze.Search.run_astar ~kernel:buckets g ws ~cost ~passable ~sources
            ~targets () );
      ( "astar / buckets / window margin 4",
        fun ~passable ~sources ~targets ->
          Maze.Search.run_astar ~kernel:buckets ~window:4 g ws ~cost ~passable
            ~sources ~targets () );
      (* The lower-bound-field A*: the heuristic is the exact cost-to-
         target, so expansion collapses to the optimal corridor.  The
         per-search field build (a full-grid backward Dijkstra) is timed
         too — worthwhile only when the field is reused across rip-up
         iterations, which is what the `incremental` sweep measures. *)
      ( "astar / buckets / lb field (build + search)",
        fun ~passable ~sources ~targets ->
          let f =
            Maze.Lowerbound.build g ~cost ~passable ~targets
              ~around:(sources @ targets) ~margin:(max w h)
          in
          Maze.Search.run_astar_lb ~kernel:buckets g ws ~lb:f ~cost ~passable
            ~sources ~targets () );
    ]
  in
  let table =
    Util.Table.create
      ~headers:
        [ "kernel"; "ms/pass"; "speedup"; "total cost"; "expanded" ]
  in
  let baseline = ref None in
  let baseline_cost = ref None in
  let costs_equal = ref true in
  List.iter
    (fun (name, search) ->
      let t, (total, expanded) = time_pass search in
      (match !baseline with None -> baseline := Some t | Some _ -> ());
      (match !baseline_cost with
      | None -> baseline_cost := Some total
      | Some c -> if c <> total then costs_equal := false);
      let speedup =
        match !baseline with Some b -> b /. t | None -> 1.0
      in
      Util.Table.add_row table
        [
          name;
          time_cell (1000.0 *. t);
          (if !no_time then "-" else Printf.sprintf "%.2fx" speedup);
          Util.Table.cell_int total;
          Util.Table.cell_int expanded;
        ])
    variants;
  Util.Table.print table;
  Printf.printf "search costs identical across kernels: %b\n" !costs_equal;
  let engine_table =
    Util.Table.create
      ~headers:[ "engine config"; "done"; "wirelen"; "vias"; "drc" ]
  in
  List.iter
    (fun (name, config) ->
      let r = route ~config problem in
      let s = r.Router.Engine.stats in
      Util.Table.add_row engine_table
        [
          name;
          Util.Table.cell_bool r.Router.Engine.completed;
          Util.Table.cell_int s.Router.Engine.total_wirelength;
          Util.Table.cell_int s.Router.Engine.total_vias;
          (if drc_ok problem r then "clean" else "VIOLATION");
        ])
    [
      ("heap (baseline)", Router.Config.default);
      ("buckets", { Router.Config.default with kernel = buckets });
      ( "astar + buckets + window 4",
        {
          Router.Config.default with
          use_astar = true;
          kernel = buckets;
          window_margin = Some 4;
        } );
    ];
  Util.Table.print engine_table

let micro () =
  micro_kernels ();
  heading "micro (bechamel): hot-path timings"
    "Ordinary-least-squares estimate of time/run for the search and the\n\
     full routing of fixed instances.";
  let tiny = Workload.Hard.tiny_blocked () in
  let burstein = Workload.Hard.burstein_like () in
  let g = Grid.create ~width:32 ~height:32 () in
  let ws = Maze.Workspace.create g in
  let corner_a = Grid.node g ~layer:0 ~x:0 ~y:0
  and corner_b = Grid.node g ~layer:0 ~x:31 ~y:31 in
  let passable n = if Grid.is_free g n then Some 0 else None in
  let search_bench () =
    ignore
      (Maze.Search.run g ws ~cost:Maze.Cost.default ~passable
         ~sources:[ corner_a ] ~targets:[ corner_b ] ())
  in
  let astar_bench () =
    ignore
      (Maze.Search.run_astar g ws ~cost:Maze.Cost.default ~passable
         ~sources:[ corner_a ] ~targets:[ corner_b ] ())
  in
  let lee_bench () =
    ignore
      (Maze.Search.run_lee g ws ~passable ~sources:[ corner_a ]
         ~targets:[ corner_b ] ())
  in
  let tests =
    Bechamel.Test.make_grouped ~name:"router"
      [
        Bechamel.Test.make ~name:"dijkstra 32x32"
          (Bechamel.Staged.stage search_bench);
        Bechamel.Test.make ~name:"astar 32x32"
          (Bechamel.Staged.stage astar_bench);
        Bechamel.Test.make ~name:"lee bfs 32x32"
          (Bechamel.Staged.stage lee_bench);
        Bechamel.Test.make ~name:"route tiny-blocked (full)"
          (Bechamel.Staged.stage (fun () -> ignore (Router.Engine.route tiny)));
        Bechamel.Test.make ~name:"route burstein-like (full)"
          (Bechamel.Staged.stage (fun () ->
               ignore (Router.Engine.route burstein)));
        Bechamel.Test.make ~name:"route burstein-like (maze-only)"
          (Bechamel.Staged.stage (fun () ->
               ignore
                 (Router.Engine.route ~config:Router.Config.maze_only burstein)));
      ]
  in
  let instance = Bechamel.Toolkit.Instance.monotonic_clock in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:200
      ~quota:(Bechamel.Time.second 0.5)
      ~kde:None ()
  in
  let raw = Bechamel.Benchmark.all cfg [ instance ] tests in
  let table = Util.Table.create ~headers:[ "benchmark"; "time/run"; "r^2" ] in
  let results = Hashtbl.fold (fun k v acc -> (k, v) :: acc) raw [] in
  List.iter
    (fun (name, (b : Bechamel.Benchmark.t)) ->
      let ols =
        Bechamel.Analyze.OLS.ols ~bootstrap:0 ~r_square:true
          ~responder:(Bechamel.Measure.label instance)
          ~predictors:[| "run" |] b.Bechamel.Benchmark.lr
      in
      let time =
        match Bechamel.Analyze.OLS.estimates ols with
        | Some (t :: _) ->
            if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
            else Printf.sprintf "%.0f ns" t
        | Some [] | None -> "?"
      in
      let r2 =
        match Bechamel.Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"
      in
      Util.Table.add_row table [ name; time; r2 ])
    (List.sort compare results);
  Util.Table.print table

(* ------------------------------------------------------------------ *)
(* router: --jobs sweep over the committed instances                   *)
(* ------------------------------------------------------------------ *)

(* The engine-level parallel sweep.  Unlike the --jobs flag of the
   harness itself (which parallelises over instances), this sweeps
   [config.jobs] — the speculative wave router inside the engine — and
   verifies the determinism contract on every committed instance: the
   layout at every jobs value is byte-identical to the sequential run.
   Results go to BENCH_router.json next to the human-readable table.

   Speedup is wall-clock relative to --jobs 1 on the same instance and
   config.  It is only meaningful on a multicore host: the JSON records
   host_cores so a sweep run on a 1-core container (where extra domains
   are pure stop-the-world overhead) is not mistaken for a regression. *)

let bench_router_config =
  {
    Router.Config.default with
    Router.Config.use_astar = true;
    kernel = Maze.Search.Buckets;
    window_margin = Some 4;
  }

let router_bench () =
  heading "router (json): engine --jobs sweep over the committed instances"
    "Claim: speculative parallel routing produces byte-identical layouts\n\
     at every jobs value; on multicore hosts the wall-clock drops with\n\
     jobs.  Best of 3 runs per point; written to BENCH_router.json.";
  let instances =
    [ "switchbox_12x10"; "switchbox_32x26"; "switchbox_64x52";
      "switchbox_128x104"; "chip_96x64"; "chip_128x96" ]
  in
  let jobs_values = [ 1; 2; 4 ] and reps = 3 in
  let table =
    Util.Table.create
      ~headers:
        [ "instance"; "jobs"; "ms"; "speedup"; "expanded"; "waves"; "spec";
          "commit"; "confl"; "identical"; "drc" ]
  in
  let json_rows = ref [] in
  let all_identical = ref true in
  List.iter
    (fun name ->
      let path = Filename.concat "instances" (name ^ ".problem") in
      if not (Sys.file_exists path) then
        Printf.printf "(skipping %s: %s not found — run from the repo root)\n"
          name path
      else begin
        let problem = Netlist.Parse.load_exn path in
        let baseline = ref None in
        List.iter
          (fun j ->
            let config = { bench_router_config with Router.Config.jobs = j } in
            let best = ref infinity and result = ref None in
            for _ = 1 to reps do
              let t0 = Unix.gettimeofday () in
              let r = route ~config problem in
              let t = Unix.gettimeofday () -. t0 in
              if t < !best then best := t;
              result := Some r
            done;
            let r = Option.get !result in
            let s = r.Router.Engine.stats in
            let p = s.Router.Engine.par in
            let identical, speedup =
              match !baseline with
              | None ->
                  baseline := Some (r, !best);
                  (true, 1.0)
              | Some (b, t1) ->
                  ( Grid.equal b.Router.Engine.grid r.Router.Engine.grid,
                    t1 /. !best )
            in
            if not identical then all_identical := false;
            let drc = drc_ok problem r in
            Util.Table.add_row table
              [
                name;
                Util.Table.cell_int j;
                time_cell (1000.0 *. !best);
                (if !no_time then "-" else Printf.sprintf "%.2fx" speedup);
                Util.Table.cell_int s.Router.Engine.expanded;
                Util.Table.cell_int p.Router.Outcome.waves;
                Util.Table.cell_int p.Router.Outcome.speculated;
                Util.Table.cell_int p.Router.Outcome.committed;
                Util.Table.cell_int p.Router.Outcome.conflicts;
                Util.Table.cell_bool identical;
                (if drc then "clean" else "VIOLATION");
              ];
            json_rows :=
              Printf.sprintf
                "    {\"instance\": \"%s\", \"nets\": %d, \"jobs\": %d, \
                 \"wall_ms\": %.3f, \"expanded\": %d, \"waves\": %d, \
                 \"speculated\": %d, \"committed\": %d, \"conflicts\": %d, \
                 \"cache_hits\": %d, \"speedup_vs_jobs1\": %.3f, \
                 \"identical_to_jobs1\": %b, \"drc_clean\": %b}"
                name
                (Netlist.Problem.net_count problem)
                j
                (1000.0 *. !best)
                s.Router.Engine.expanded p.Router.Outcome.waves
                p.Router.Outcome.speculated p.Router.Outcome.committed
                p.Router.Outcome.conflicts p.Router.Outcome.cache_hits speedup
                identical drc
              :: !json_rows)
          jobs_values;
        Util.Table.add_sep table
      end)
    instances;
  Util.Table.print table;
  if !json_rows <> [] then begin
    let oc = open_out "BENCH_router.json" in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"router_jobs_sweep\",\n\
      \  \"config\": \"%s\",\n\
      \  \"host_cores\": %d,\n\
      \  \"cpu_bound\": %b,\n\
      \  \"runs_per_point\": %d,\n\
      \  \"all_identical_to_jobs1\": %b,\n\
      \  \"results\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (Router.Config.describe bench_router_config)
      (Util.Parallel.default_jobs ())
      (Util.Parallel.default_jobs () = 1)
      reps !all_identical
      (String.concat ",\n" (List.rev !json_rows));
    close_out oc;
    Printf.printf "layouts identical to --jobs 1 everywhere: %b\n"
      !all_identical;
    Printf.printf "wrote BENCH_router.json\n"
  end

(* ------------------------------------------------------------------ *)
(* incremental: refine-phase cache reuse across rip-up cycles          *)
(* ------------------------------------------------------------------ *)

(* Measures the tentpole of DESIGN.md §11 where it pays: the refine
   phase of a rip-up/improve loop.  Each committed instance is routed
   once, then both modes replay the identical deterministic schedule —
   an initial refine, then [cycles] rounds of (rip a few nets, reroute
   them, refine) — on their own copy of the routed grid.  The initial
   refine is an untimed warm-up in both modes (it is where the
   incremental mode pays its one-time field builds, and where both
   modes converge the fresh routing); the per-cycle refine calls are
   what is timed.  The baseline replans every connected net every
   pass; the incremental mode carries one {!Maze.Cache} across all
   refine calls, so untouched nets are answered by certificate or
   lower-bound oracle.  Final layouts must be byte-identical. *)

let incremental_bench () =
  heading "incremental (json): refine-phase reuse across rip-up cycles"
    "Claim: per-net certificates and journal-repaired lower-bound fields\n\
     cut the wall-clock of repeated refinement passes (>= 1.5x on the\n\
     committed instances) at byte-identical layouts.  The initial refine\n\
     after routing is an untimed warm-up in both modes; the per-cycle\n\
     refines are timed.  Best of 3 runs per mode; written to\n\
     BENCH_incremental.json.";
  let instances =
    [ "switchbox_12x10"; "switchbox_32x26"; "switchbox_64x52";
      "switchbox_128x104"; "chip_96x64"; "chip_128x96" ]
  in
  let reps = 3 and cycles = 6 and rips_per_cycle = 4 in
  let table =
    Util.Table.create
      ~headers:
        [ "instance"; "nets"; "refine ms (base)"; "refine ms (incr)";
          "speedup"; "planned base/incr"; "cert-skips"; "bound-skips";
          "repairs"; "identical"; "drc" ]
  in
  let json_rows = ref [] in
  let all_identical = ref true in
  List.iter
    (fun name ->
      let path = Filename.concat "instances" (name ^ ".problem") in
      if not (Sys.file_exists path) then
        Printf.printf "(skipping %s: %s not found — run from the repo root)\n"
          name path
      else begin
        let problem = Netlist.Parse.load_exn path in
        let routed = route ~config:bench_router_config problem in
        let nets_total = Netlist.Problem.net_count problem in
        let candidates =
          Array.of_list (Netlist.Problem.nontrivial_net_ids problem)
        in
        (* One deterministic rip schedule per instance, shared by every
           mode and rep, so all runs walk the same grid trajectory. *)
        let schedule =
          let prng = Util.Prng.create (nets_total * 7919) in
          List.init cycles (fun _ ->
              List.init rips_per_cycle (fun _ ->
                  Util.Prng.pick prng candidates))
        in
        let pins_of g net =
          List.filter_map
            (fun (id, p) ->
              if id = net then Some (Maze.Route.pin_node g p) else None)
            (Netlist.Problem.pin_cells problem)
        in
        let rip_and_reroute g ws net =
          let pins = pins_of g net in
          List.iter
            (fun n -> if not (List.mem n pins) then Grid.release g n)
            (Grid.occupied_nodes g ~net);
          ignore
            (Maze.Route.route_net g ws ~cost:Maze.Cost.default
               (Netlist.Problem.net problem net))
        in
        (* Runs the whole schedule in one mode; returns the refine-phase
           wall clock, the final grid and the accumulated refine stats. *)
        let run_mode ~incremental =
          let g = Grid.copy routed.Router.Engine.grid in
          let ws = Maze.Workspace.create g in
          let cache = Maze.Cache.create g ~nets:nets_total in
          let refine_s = ref 0.0 in
          let planned = ref 0
          and cert_skips = ref 0
          and bound_skips = ref 0
          and builds = ref 0
          and repairs = ref 0 in
          let refine ~timed =
            let t0 = Unix.gettimeofday () in
            let s =
              Router.Improve.refine ~max_passes:50 ~incremental ~cache
                problem g
            in
            if timed then begin
              refine_s := !refine_s +. (Unix.gettimeofday () -. t0);
              planned := !planned + s.Router.Improve.planned;
              cert_skips := !cert_skips + s.Router.Improve.skipped_cert;
              bound_skips := !bound_skips + s.Router.Improve.skipped_bound;
              builds := !builds + s.Router.Improve.field_builds;
              repairs := !repairs + s.Router.Improve.field_repairs
            end
          in
          refine ~timed:false;
          List.iter
            (fun rips ->
              List.iter (fun net -> rip_and_reroute g ws net) rips;
              refine ~timed:true)
            schedule;
          ( !refine_s,
            g,
            (!planned, !cert_skips, !bound_skips, !builds, !repairs) )
        in
        let best_of mode =
          let best = ref infinity and out = ref None in
          for _ = 1 to reps do
            let t, g, st = run_mode ~incremental:mode in
            if t < !best then best := t;
            out := Some (g, st)
          done;
          let g, st = Option.get !out in
          (!best, g, st)
        in
        let tb, gb, (pb, _, _, _, _) = best_of false in
        let ti, gi, (pi, certs, bounds, builds, repairs) = best_of true in
        let identical = Grid.equal gb gi in
        if not identical then all_identical := false;
        let drc = Drc.Check.is_clean problem gi in
        let speedup = tb /. ti in
        Util.Table.add_row table
          [
            name;
            Util.Table.cell_int nets_total;
            time_cell (1000.0 *. tb);
            time_cell (1000.0 *. ti);
            (if !no_time then "-" else Printf.sprintf "%.2fx" speedup);
            Printf.sprintf "%d/%d" pb pi;
            Util.Table.cell_int certs;
            Util.Table.cell_int bounds;
            Util.Table.cell_int repairs;
            Util.Table.cell_bool identical;
            (if drc then "clean" else "VIOLATION");
          ];
        json_rows :=
          Printf.sprintf
            "    {\"instance\": \"%s\", \"nets\": %d, \"cycles\": %d, \
             \"rips_per_cycle\": %d, \"baseline_refine_ms\": %.3f, \
             \"incremental_refine_ms\": %.3f, \"speedup\": %.3f, \
             \"planned_baseline\": %d, \"planned_incremental\": %d, \
             \"cert_skips\": %d, \"bound_skips\": %d, \"field_builds\": %d, \
             \"field_repairs\": %d, \"identical\": %b, \"drc_clean\": %b}"
            name nets_total cycles rips_per_cycle (1000.0 *. tb)
            (1000.0 *. ti) speedup pb pi certs bounds builds repairs identical
            drc
          :: !json_rows
      end)
    instances;
  Util.Table.print table;
  if !json_rows <> [] then begin
    let oc = open_out "BENCH_incremental.json" in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"incremental_refine_sweep\",\n\
      \  \"config\": \"%s\",\n\
      \  \"host_cores\": %d,\n\
      \  \"runs_per_point\": %d,\n\
      \  \"all_identical_to_baseline\": %b,\n\
      \  \"results\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (Router.Config.describe bench_router_config)
      (Util.Parallel.default_jobs ())
      reps !all_identical
      (String.concat ",\n" (List.rev !json_rows));
    close_out oc;
    Printf.printf "layouts identical to baseline everywhere: %b\n"
      !all_identical;
    Printf.printf "wrote BENCH_incremental.json\n";
    (* The exactness contract is the whole point: a divergent layout is a
       correctness bug, not a perf data point. *)
    if not !all_identical then exit 1
  end

(* ------------------------------------------------------------------ *)
(* service: N-client request trace against the daemon                  *)
(* ------------------------------------------------------------------ *)

(* Replays a generated multi-client trace against an in-process server
   through the same submit/drain engine the transports use, so the
   numbers measure the service layers (protocol, admission, scheduler,
   sessions) without pipe noise — once per shard count in {1, 2, 4, 8}.
   The queue cap is set below one round's burst size on purpose: a slice
   of every burst is shed, which exercises (and measures) admission
   control.  A shed line is retried (after letting the queue drain)
   until admitted, mimicking a client honoring retry_after_ms; because
   no session's next request is submitted before its previous one was
   admitted, per-session execution order — and therefore every final
   layout — is identical at every shard count, which the bench asserts
   byte for byte. *)

type service_point = {
  sp_shards : int;
  sp_submitted : int;
  sp_attempts : int;
  sp_executed : int;
  sp_shed : int;
  sp_wall_s : float;
  sp_throughput : float;
  sp_route_p50 : float;
  sp_route_p95 : float;
  sp_route_p99 : float;
  sp_metrics : Util.Json.t;
  sp_layouts : (string * string) list;
}

let service_bench () =
  heading "service (json): N-client request trace against the daemon"
    "Claim: the service layer adds microseconds to millisecond-scale\n\
     routing requests; under a burst that overflows the queue, admission\n\
     control sheds deterministically instead of hanging; sharding the\n\
     sessions over persistent worker domains changes throughput, never\n\
     results.  Written to BENCH_service.json.";
  let clients = 8 and rounds = 6 and queue_cap = 16 in
  let session c = Printf.sprintf "client%d" c in
  let is_shed line =
    match Util.Json.of_string line with
    | Ok json ->
        Option.bind (Util.Json.member "error" json) (Util.Json.member "code")
        = Some (Util.Json.String "queue_full")
    | Error _ -> false
  in
  let opens =
    List.init clients (fun c ->
        let prng = Util.Prng.create (100 + c) in
        let problem =
          Workload.Gen.routable_switchbox prng ~width:16 ~height:12
        in
        Printf.sprintf
          {|{"id":%d,"op":"open","session":"%s","problem":%s}|}
          c (session c)
          (Util.Json.to_string
             (Util.Json.String (Netlist.Parse.to_string problem))))
  in
  let round_burst round =
    List.concat_map
      (fun c ->
        let s = session c in
        [
          Printf.sprintf
            {|{"id":%d,"op":"rip","session":"%s","net":%d}|}
            (1000 + round) s ((round mod 5) + 1);
          Printf.sprintf {|{"id":%d,"op":"route","session":"%s"}|}
            (2000 + round) s;
          Printf.sprintf {|{"id":%d,"op":"verify","session":"%s"}|}
            (3000 + round) s;
        ])
      (List.init clients (fun c -> c))
  in
  let run_point shards =
    let sconfig =
      {
        Service.Server.default_config with
        Service.Server.router = bench_router_config;
        queue_cap;
        shards;
      }
    in
    let server = Service.Server.create ~config:sconfig () in
    let parallel = shards > 1 in
    let workers =
      if parallel then
        Some (Service.Server.start_workers server ~emit:(fun _ _ -> ()))
      else None
    in
    let submitted = ref 0 and attempts = ref 0 in
    (* Shed-never-hang, measured: on a shed, let the backlog drain a
       little and retry the same line until admitted. *)
    let give_way () =
      if parallel then Unix.sleepf 0.0005
      else ignore (Service.Server.drain_one server)
    in
    let submit_line line =
      incr submitted;
      let rec go () =
        incr attempts;
        match Service.Server.submit server ~client:0 line with
        | None -> ()
        | Some reply when is_shed reply ->
            give_way ();
            go ()
        | Some reply -> failwith ("unexpected immediate reply: " ^ reply)
      in
      go ()
    in
    let settle () =
      if parallel then Service.Server.quiesce server
      else
        let rec go () =
          match Service.Server.drain_one server with
          | Some _ -> go ()
          | None -> ()
        in
        go ()
    in
    let t0 = Unix.gettimeofday () in
    List.iter submit_line opens;
    settle ();
    for round = 1 to rounds do
      List.iter submit_line (round_burst round);
      settle ()
    done;
    (match workers with
    | Some w -> Service.Server.stop_workers server w
    | None -> ());
    let wall_s = Unix.gettimeofday () -. t0 in
    (* Read the counters before the (untimed) render probes below. *)
    let m = Service.Server.metrics server in
    let snapshot = Service.Metrics.snapshot m in
    let executed = Service.Metrics.requests m in
    let shed = Service.Metrics.shed_count m in
    (* Workers joined: the synchronous API is safe again; the layouts
       must be byte-identical at every sweep point. *)
    let layouts =
      List.init clients (fun c ->
          let line =
            Printf.sprintf {|{"op":"render","session":"%s"}|} (session c)
          in
          match Service.Server.handle_line server line with
          | [ reply ] -> (
              match
                Option.bind (Util.Json.of_string reply |> Result.to_option)
                  (fun j ->
                    Option.bind (Util.Json.member "result" j) (fun r ->
                        Option.bind (Util.Json.member "ascii" r)
                          Util.Json.to_string_opt))
              with
              | Some ascii -> (session c, ascii)
              | None -> failwith "render reply carries no ascii")
          | _ -> failwith "render produced an unexpected reply count")
    in
    let route_q name =
      match
        Option.bind (Util.Json.member "by_kind" snapshot) (fun k ->
            Option.bind (Util.Json.member "route" k) (fun r ->
                Option.bind (Util.Json.member name r) Util.Json.to_float_opt))
      with
      | Some v -> v
      | None -> 0.0
    in
    {
      sp_shards = shards;
      sp_submitted = !submitted;
      sp_attempts = !attempts;
      sp_executed = executed;
      sp_shed = shed;
      sp_wall_s = wall_s;
      sp_throughput = float_of_int executed /. wall_s;
      sp_route_p50 = route_q "p50_ms";
      sp_route_p95 = route_q "p95_ms";
      sp_route_p99 = route_q "p99_ms";
      sp_metrics = snapshot;
      sp_layouts = layouts;
    }
  in
  let host_cores = Util.Parallel.default_jobs () in
  let points = List.map run_point [ 1; 2; 4; 8 ] in
  let base = List.hd points in
  (* The sweep's correctness claim: sharding changes which domain runs a
     session, never what the session computes. *)
  List.iter
    (fun p ->
      List.iter2
        (fun (name, a) (_, b) ->
          if not (String.equal a b) then begin
            Printf.eprintf
              "FAIL: session %s layout at %d shards differs from 1 shard\n"
              name p.sp_shards;
            exit 1
          end)
        p.sp_layouts base.sp_layouts)
    points;
  Printf.printf "clients %d  rounds %d  queue-cap %d  host-cores %d\n"
    clients rounds queue_cap host_cores;
  List.iter
    (fun p ->
      Printf.printf
        "shards %d  submitted %d (+%d retries)  executed %d  shed %d\n\
        \  wall %ss  throughput %s req/s  route p50 %.3fms  p95 %.3fms  \
         p99 %.3fms\n"
        p.sp_shards p.sp_submitted
        (p.sp_attempts - p.sp_submitted)
        p.sp_executed p.sp_shed
        (time_cell ~decimals:3 p.sp_wall_s)
        (time_cell ~decimals:1 p.sp_throughput)
        p.sp_route_p50 p.sp_route_p95 p.sp_route_p99)
    points;
  Printf.printf "layouts byte-identical across every shard count\n";
  if host_cores = 1 then
    Printf.printf
      "note: host has 1 core (cpu_bound) — sharding cannot speed this up \
       here\n";
  let point_json p =
    Printf.sprintf
      "{ \"shards\": %d, \"submitted\": %d, \"attempts\": %d, \
       \"executed\": %d, \"shed\": %d, \"shed_rate\": %.4f, \"wall_s\": \
       %.3f, \"throughput_rps\": %.1f, \"route_p50_ms\": %.3f, \
       \"route_p95_ms\": %.3f, \"route_p99_ms\": %.3f }"
      p.sp_shards p.sp_submitted p.sp_attempts p.sp_executed p.sp_shed
      (float_of_int p.sp_shed /. float_of_int p.sp_attempts)
      p.sp_wall_s p.sp_throughput p.sp_route_p50 p.sp_route_p95 p.sp_route_p99
  in
  let oc = open_out "BENCH_service.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"service_trace\",\n\
    \  \"config\": \"%s\",\n\
    \  \"host_cores\": %d,\n\
    \  \"cpu_bound\": %b,\n\
    \  \"clients\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"queue_cap\": %d,\n\
    \  \"submitted\": %d,\n\
    \  \"executed\": %d,\n\
    \  \"shed\": %d,\n\
    \  \"shed_rate\": %.4f,\n\
    \  \"wall_s\": %.3f,\n\
    \  \"throughput_rps\": %.1f,\n\
    \  \"route_p50_ms\": %.3f,\n\
    \  \"route_p95_ms\": %.3f,\n\
    \  \"route_p99_ms\": %.3f,\n\
    \  \"layouts_identical_across_shards\": true,\n\
    \  \"shard_sweep\": [\n\
    \    %s\n\
    \  ],\n\
    \  \"metrics\": %s\n\
     }\n"
    (Router.Config.describe bench_router_config)
    host_cores (host_cores = 1) clients rounds queue_cap base.sp_submitted
    base.sp_executed base.sp_shed
    (float_of_int base.sp_shed /. float_of_int base.sp_attempts)
    base.sp_wall_s base.sp_throughput base.sp_route_p50 base.sp_route_p95
    base.sp_route_p99
    (String.concat ",\n    " (List.map point_json points))
    (Util.Json.to_string base.sp_metrics);
  close_out oc;
  Printf.printf "wrote BENCH_service.json\n"

let recovery_bench () =
  heading "recovery: restart cost vs journal length"
    "Claim: crash recovery replays only the WAL tail beyond the newest\n\
     snapshot, so restart time is bounded by the snapshot interval, not\n\
     by session lifetime; the recovered layout is byte-identical to the\n\
     pre-crash one at every interval.  Written to BENCH_recovery.json.";
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun f -> rm_rf (Filename.concat path f))
          (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
  in
  let mutations = 60 in
  let problem =
    Workload.Gen.routable_switchbox (Util.Prng.create 2026) ~width:16
      ~height:12
  in
  let nets = Netlist.Problem.net_count problem in
  let durability_stat server name =
    match
      Util.Json.member name
        (Service.Registry.durability_json (Service.Server.registry server))
    with
    | Some (Util.Json.Int n) -> n
    | _ -> 0
  in
  let rows =
    (* 1_000_000 = never snapshot: the whole history replays. *)
    List.map
      (fun snapshot_every ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "router_bench_recovery_%d_%d" (Unix.getpid ())
               snapshot_every)
        in
        rm_rf dir;
        let sconfig =
          {
            Service.Server.default_config with
            Service.Server.router = bench_router_config;
            data_dir = Some dir;
            snapshot_every;
            fsync = false;
          }
        in
        let s1 = Service.Server.create ~config:sconfig () in
        let req line = ignore (Service.Server.handle_line s1 line) in
        req
          (Printf.sprintf {|{"id":1,"op":"open","session":"w","problem":%s}|}
             (Util.Json.to_string
                (Util.Json.String (Netlist.Parse.to_string problem))));
        req {|{"id":2,"op":"route","session":"w"}|};
        for i = 1 to mutations do
          req
            (Printf.sprintf {|{"id":%d,"op":"rip","session":"w","net":%d}|}
               (10 + (2 * i))
               ((i mod nets) + 1));
          req
            (Printf.sprintf {|{"id":%d,"op":"route","session":"w"}|}
               (11 + (2 * i)))
        done;
        let before =
          Viz.Ascii.render
            (Router.Session.grid
               (Service.Registry.session
                  (Option.get
                     (Service.Registry.find
                        (Service.Server.registry s1)
                        "w"))))
        in
        let wal_records, _, _ =
          Service.Wal.load (Filename.concat dir (Service.Wal.file_key "w" ^ ".wal"))
        in
        let wal_len = List.length wal_records in
        (* No finalize: s1 is abandoned mid-flight, like a kill -9. *)
        let t0 = Unix.gettimeofday () in
        let s2 = Service.Server.create ~config:sconfig () in
        let recover_s = Unix.gettimeofday () -. t0 in
        let after =
          match
            Service.Registry.find (Service.Server.registry s2) "w"
          with
          | Some e ->
              Viz.Ascii.render
                (Router.Session.grid (Service.Registry.session e))
          | None -> "<missing>"
        in
        let identical = String.equal before after in
        let replayed = durability_stat s2 "records_replayed" in
        Printf.printf
          "snapshot-every %-8d wal at crash %3d records  recover %ss  \
           replayed %3d  identical %b\n"
          snapshot_every wal_len
          (time_cell ~decimals:4 recover_s)
          replayed identical;
        rm_rf dir;
        (snapshot_every, wal_len, recover_s, replayed, identical))
      [ 4; 16; 64; 1_000_000 ]
  in
  let oc = open_out "BENCH_recovery.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"recovery\",\n\
    \  \"config\": \"%s\",\n\
    \  \"host_cores\": %d,\n\
    \  \"mutations\": %d,\n\
    \  \"sweep\": [\n%s\n\
    \  ]\n\
     }\n"
    (Router.Config.describe bench_router_config)
    (Util.Parallel.default_jobs ())
    mutations
    (String.concat ",\n"
       (List.map
          (fun (every, wal_len, recover_s, replayed, identical) ->
            Printf.sprintf
              "    {\"snapshot_every\": %d, \"wal_records_at_crash\": %d, \
               \"recover_s\": %.6f, \"records_replayed\": %d, \
               \"identical\": %b}"
              every wal_len recover_s replayed identical)
          rows));
  close_out oc;
  if List.exists (fun (_, _, _, _, identical) -> not identical) rows then begin
    Printf.eprintf "recovery bench: recovered layout diverged\n";
    exit 1
  end;
  Printf.printf "wrote BENCH_recovery.json\n"

(* ------------------------------------------------------------------- *)
(* flow: mini-flow sweep over the committed macro instances             *)
(* ------------------------------------------------------------------- *)

let flow_bench () =
  heading "flow (json): place → groute → guide-windowed detailed route"
    "Claim: global-route guides window most detailed searches (the rest\n\
     fall back to the full window, certified) without changing the\n\
     answer: on every committed macro instance the guided layout is\n\
     byte-identical to the full-window route.  Stage wall-clock split\n\
     and guide hit rate are written to BENCH_flow.json.";
  let instances = [ "macro_48x40"; "macro_64x52"; "macro_128x104" ] in
  (* The flow forces the guide-compatible detailed-route config (bucket
     kernel, no widen-retry windowing, A* on); the unguided reference must
     route under the same forced config or the layouts are incomparable. *)
  let forced =
    {
      bench_router_config with
      Router.Config.kernel = Maze.Search.Buckets;
      window_margin = None;
      use_astar = true;
    }
  in
  let table =
    Util.Table.create
      ~headers:
        [ "instance"; "place ms"; "groute ms"; "route ms"; "hit rate";
          "routed"; "identical"; "drc" ]
  in
  let json_rows = ref [] in
  let all_identical = ref true in
  List.iter
    (fun name ->
      let path = Filename.concat "instances" (name ^ ".problem") in
      if not (Sys.file_exists path) then
        Printf.printf "(skipping %s: %s not found — run from the repo root)\n"
          name path
      else begin
        let problem = Netlist.Parse.load_exn path in
        match Flow.run ~config:bench_router_config problem with
        | Error msg ->
            Printf.eprintf "flow bench: %s: %s\n" name msg;
            exit 1
        | Ok f ->
            let full = Router.Engine.route ~config:forced f.Flow.realized in
            let identical =
              Grid.equal f.Flow.result.Router.Engine.grid
                full.Router.Engine.grid
            in
            if not identical then all_identical := false;
            let stats = f.Flow.result.Router.Engine.stats in
            let g = stats.Router.Engine.guide in
            let drc_clean =
              Drc.Check.is_clean f.Flow.realized f.Flow.result.Router.Engine.grid
            in
            let ms ns = Int64.to_float ns /. 1e6 in
            let place_ms = ms f.Flow.stats.Flow.place_ns
            and groute_ms = ms f.Flow.stats.Flow.groute_ns
            and route_ms = ms f.Flow.stats.Flow.route_ns in
            let hit_rate = Flow.guide_hit_rate f in
            let routed = stats.Router.Engine.routed_nets
            and failed = List.length stats.Router.Engine.failed_nets in
            Util.Table.add_row table
              [
                name;
                time_cell place_ms;
                time_cell groute_ms;
                time_cell route_ms;
                Printf.sprintf "%.2f" hit_rate;
                Printf.sprintf "%d/%d" routed (routed + failed);
                Util.Table.cell_bool identical;
                (if drc_clean then "clean" else "VIOLATION");
              ];
            json_rows :=
              Printf.sprintf
                "    {\"instance\": \"%s\", \"place_ms\": %.3f, \
                 \"groute_ms\": %.3f, \"route_ms\": %.3f, \"guided\": %d, \
                 \"hits\": %d, \"fallbacks\": %d, \"hit_rate\": %.4f, \
                 \"overflow_tiles\": %d, \"routed\": %d, \"failed\": %d, \
                 \"identical\": %b, \"drc_clean\": %b}"
                name place_ms groute_ms route_ms g.Router.Outcome.guided
                g.Router.Outcome.hits g.Router.Outcome.fallbacks hit_rate
                f.Flow.stats.Flow.groute.Groute.overflow_tiles routed failed
                identical drc_clean
              :: !json_rows
      end)
    instances;
  Util.Table.print table;
  let oc = open_out "BENCH_flow.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"flow\",\n\
    \  \"config\": \"%s\",\n\
    \  \"host_cores\": %d,\n\
    \  \"sweep\": [\n%s\n\
    \  ]\n\
     }\n"
    (Router.Config.describe forced)
    (Util.Parallel.default_jobs ())
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  if not !all_identical then begin
    Printf.eprintf "flow bench: guided layout diverged from full-window route\n";
    exit 1
  end;
  Printf.printf "wrote BENCH_flow.json\n"

(* ------------------------------------------------------------------ *)
(* analyze: pre-route predictor vs actual routed congestion            *)
(* ------------------------------------------------------------------ *)

(* Spearman rank correlation with tie-averaged ranks. *)
let spearman xs ys =
  let rank arr =
    let n = Array.length arr in
    let idx = Array.init n Fun.id in
    Array.sort (fun a b -> compare arr.(a) arr.(b)) idx;
    let r = Array.make n 0.0 in
    let i = ref 0 in
    while !i < n do
      let j = ref !i in
      while !j + 1 < n && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do incr j done;
      let avg = float_of_int (!i + !j) /. 2.0 in
      for k = !i to !j do
        r.(idx.(k)) <- avg
      done;
      i := !j + 1
    done;
    r
  in
  let rx = rank xs and ry = rank ys in
  let n = Array.length xs in
  if n < 2 then 1.0
  else begin
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean rx and my = mean ry in
    let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
    Array.iteri
      (fun i x ->
        let a = x -. mx and b = ry.(i) -. my in
        num := !num +. (a *. b);
        dx := !dx +. (a *. a);
        dy := !dy +. (b *. b))
      rx;
    if !dx = 0.0 || !dy = 0.0 then 1.0 else !num /. sqrt (!dx *. !dy)
  end

let groute_overflow_fraction (g : Groute.t) =
  let total = Array.fold_left ( + ) 0 g.Groute.capacity in
  let over = ref 0 in
  Array.iteri
    (fun i u ->
      if u > g.Groute.capacity.(i) then
        over := !over + (u - g.Groute.capacity.(i)))
    g.Groute.usage;
  if total = 0 then if !over > 0 then 1.0 else 0.0
  else min 1.0 (float_of_int !over /. float_of_int total)

let analyze_bench () =
  heading "analyze (json): pre-route predictor vs actual routed congestion"
    "Claim: the routability predictor's verdict orders instances the same\n\
     way actual routed overflow does, at <5% of a detailed route's\n\
     expansion budget, on every committed instance — including the\n\
     1000+ net chip-scale 3/4-layer ones.  Each router row carries a\n\
     per-run wall-clock deadline so a pathological instance degrades\n\
     (best-so-far layout) instead of hanging the bench; chip-scale rows\n\
     are also routed at --jobs 2 and must match the --jobs 1 layout\n\
     byte-for-byte.  Written to BENCH_analyze.json; exits 1 on layout\n\
     divergence.";
  (* Pre-placed instances: predictor straight off the file; actual =
     global-route overflow; cost yardstick = full detailed route. *)
  let placed =
    [
      "switchbox_12x10"; "switchbox_32x26"; "switchbox_64x52";
      "switchbox_128x104"; "chip_96x64"; "chip_128x96"; "chip_320x224_l3";
      "chip_288x192_l4";
    ]
  in
  (* Placement-flow instances: realized by the flow's placer first, then
     triaged (predicted) and globally routed (actual) inside the flow. *)
  let flows = [ "macro_48x40"; "macro_64x52"; "macro_128x104" ] in
  let deadline = 120.0 in
  let forced =
    {
      bench_router_config with
      Router.Config.kernel = Maze.Search.Buckets;
      use_astar = true;
    }
  in
  let table =
    Util.Table.create
      ~headers:
        [ "instance"; "nets"; "layers"; "score"; "pred ovf"; "actual ovf";
          "analyze ms"; "cost"; "route exp"; "cost %"; "routed"; "deadline";
          "identical" ]
  in
  let json_rows = ref [] in
  let all_identical = ref true in
  let predicted = ref [] and actual = ref [] in
  let now () = Unix.gettimeofday () in
  let row ~name ~problem ~(a : Analyze.t) ~analyze_ms ~actual_ovf
      ~(route : Router.Engine.t option) ~identical =
    let nets = Netlist.Problem.net_count problem in
    let layers = problem.Netlist.Problem.layers in
    predicted := (1.0 -. a.Analyze.verdict.Analyze.score) :: !predicted;
    actual := actual_ovf :: !actual;
    if not identical then all_identical := false;
    let expanded, routed, failed, degraded =
      match route with
      | None -> (0, 0, 0, false)
      | Some r ->
          let s = r.Router.Engine.stats in
          ( s.Router.Engine.expanded,
            s.Router.Engine.routed_nets,
            List.length s.Router.Engine.failed_nets,
            r.Router.Engine.status <> Router.Outcome.Complete )
    in
    let cost_pct =
      if expanded = 0 then 0.0
      else 100.0 *. float_of_int a.Analyze.cost /. float_of_int expanded
    in
    Util.Table.add_row table
      [
        name;
        string_of_int nets;
        string_of_int layers;
        Printf.sprintf "%.3f" a.Analyze.verdict.Analyze.score;
        Printf.sprintf "%.3f" a.Analyze.verdict.Analyze.predicted_overflow;
        Printf.sprintf "%.3f" actual_ovf;
        time_cell analyze_ms;
        string_of_int a.Analyze.cost;
        string_of_int expanded;
        (if expanded = 0 then "-" else Printf.sprintf "%.2f" cost_pct);
        Printf.sprintf "%d/%d" routed (routed + failed);
        (if degraded then "TRIPPED" else "ok");
        Util.Table.cell_bool identical;
      ];
    json_rows :=
      Printf.sprintf
        "    {\"instance\": \"%s\", \"nets\": %d, \"layers\": %d, \
         \"score\": %.4f, \"predicted_overflow\": %.4f, \
         \"actual_overflow\": %.4f, \"analyze_ms\": %.3f, \
         \"analyze_cost\": %d, \"route_expanded\": %d, \
         \"cost_pct\": %.3f, \"routed\": %d, \"failed\": %d, \
         \"deadline_tripped\": %b, \"identical\": %b}"
        name nets layers a.Analyze.verdict.Analyze.score
        a.Analyze.verdict.Analyze.predicted_overflow actual_ovf analyze_ms
        a.Analyze.cost expanded cost_pct routed failed degraded identical
      :: !json_rows
  in
  List.iter
    (fun name ->
      let path = Filename.concat "instances" (name ^ ".problem") in
      if not (Sys.file_exists path) then
        Printf.printf "(skipping %s: %s not found — run from the repo root)\n"
          name path
      else begin
        let problem = Netlist.Parse.load_exn path in
        let t0 = now () in
        let a = Analyze.run problem in
        let analyze_ms = 1000.0 *. (now () -. t0) in
        let actual_ovf = groute_overflow_fraction (Groute.run problem) in
        let route ~jobs =
          Router.Engine.route
            ~config:{ forced with Router.Config.jobs }
            ~budget:(Router.Budget.create ~deadline ())
            problem
        in
        let r1 = route ~jobs:1 in
        (* The determinism check is the expensive half; reserve it for the
           chip-scale rows it was introduced for. *)
        let identical =
          if Netlist.Problem.net_count problem < 1000 then true
          else Grid.equal r1.Router.Engine.grid (route ~jobs:2).Router.Engine.grid
        in
        row ~name ~problem ~a ~analyze_ms ~actual_ovf ~route:(Some r1)
          ~identical
      end)
    placed;
  List.iter
    (fun name ->
      let path = Filename.concat "instances" (name ^ ".problem") in
      if not (Sys.file_exists path) then
        Printf.printf "(skipping %s: %s not found — run from the repo root)\n"
          name path
      else begin
        let problem = Netlist.Parse.load_exn path in
        let t0 = now () in
        match
          Flow.run ~config:bench_router_config
            ~budget:(Router.Budget.create ~deadline ())
            ~triage:true problem
        with
        | Error msg ->
            Printf.eprintf "analyze bench: %s: %s\n" name msg;
            exit 1
        | Ok f ->
            let analyze_ms = 1000.0 *. (now () -. t0) in
            let a =
              match f.Flow.stats.Flow.triage with
              | Some a -> a
              | None ->
                  Printf.eprintf "analyze bench: %s: no triage verdict\n" name;
                  exit 1
            in
            let actual_ovf =
              groute_overflow_fraction f.Flow.stats.Flow.groute
            in
            row ~name ~problem:f.Flow.realized ~a ~analyze_ms ~actual_ovf
              ~route:(Some f.Flow.result) ~identical:true
      end)
    flows;
  Util.Table.print table;
  let rho =
    spearman
      (Array.of_list (List.rev !predicted))
      (Array.of_list (List.rev !actual))
  in
  Printf.printf "rank correlation (1 - score vs actual overflow): %.3f\n" rho;
  let oc = open_out "BENCH_analyze.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"analyze\",\n\
    \  \"config\": \"%s\",\n\
    \  \"host_cores\": %d,\n\
    \  \"cpu_bound\": %b,\n\
    \  \"deadline_s\": %.0f,\n\
    \  \"rank_correlation\": %.4f,\n\
    \  \"all_identical\": %b,\n\
    \  \"results\": [\n%s\n\
    \  ]\n\
     }\n"
    (Router.Config.describe forced)
    (Util.Parallel.default_jobs ())
    (Util.Parallel.default_jobs () = 1)
    deadline rho !all_identical
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  if not !all_identical then begin
    Printf.eprintf
      "analyze bench: chip-scale --jobs 2 layout diverged from --jobs 1\n";
    exit 1
  end;
  Printf.printf "wrote BENCH_analyze.json\n"

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("budget", budget_sweep); ("micro", micro); ("router", router_bench);
    ("incremental", incremental_bench); ("service", service_bench);
    ("recovery", recovery_bench); ("flow", flow_bench);
    ("analyze", analyze_bench);
  ]

let () =
  let rec parse names = function
    | [] -> List.rev names
    | "--" :: rest -> parse names rest
    | "--no-time" :: rest ->
        no_time := true;
        parse names rest
    | "--jobs" :: n :: rest ->
        let v =
          match int_of_string_opt n with
          | Some v when v >= 0 -> v
          | Some _ | None ->
              Printf.eprintf "--jobs expects a non-negative integer, got %S\n" n;
              exit 1
        in
        jobs := (if v = 0 then Util.Parallel.default_jobs () else v);
        parse names rest
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs expects an argument\n";
        exit 1
    | name :: rest -> parse (name :: names) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S (have: %s)\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
