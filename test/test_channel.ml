(* Tests for the channel substrate: spec extraction, constraint graphs,
   left-edge and dogleg routers, solution realisation and the engine
   adapter. *)

let spec top bottom = { Channel.Model.top; bottom }

let simple_spec () = spec [| 1; 0; 2; 0 |] [| 0; 1; 0; 2 |]

(* --- model --- *)

let test_spec_roundtrip () =
  let s = simple_spec () in
  let p = Channel.Model.problem_of_spec ~tracks:3 s in
  let s' = Channel.Model.spec_of_problem p in
  Testkit.check_true "top preserved" (s'.Channel.Model.top = s.Channel.Model.top);
  Testkit.check_true "bottom preserved"
    (s'.Channel.Model.bottom = s.Channel.Model.bottom)

let test_spec_of_problem_rejects_non_channel () =
  let p =
    Netlist.Problem.make ~name:"r" ~width:4 ~height:4
      [ Netlist.Net.make ~id:1 ~name:"a" [ Netlist.Net.pin 0 0 ] ]
  in
  try
    ignore (Channel.Model.spec_of_problem p);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_model_queries () =
  let s = simple_spec () in
  Testkit.check_int "columns" 4 (Channel.Model.columns s);
  Testkit.check_true "net ids" (Channel.Model.net_ids s = [ 1; 2 ]);
  Testkit.check_true "net 1 columns" (Channel.Model.net_columns s ~net:1 = [ 0; 1 ]);
  Testkit.check_true "net 2 span"
    (Channel.Model.span s ~net:2 = Some (Geom.Interval.make 2 3));
  Testkit.check_int "density" 1 (Channel.Model.density s)

let test_density_overlapping () =
  let s = spec [| 1; 2; 3; 0 |] [| 0; 1; 2; 3 |] in
  (* spans [0,1], [1,2], [2,3] -> density 2 *)
  Testkit.check_int "density" 2 (Channel.Model.density s)

let test_realize_detects_conflicts () =
  let s = simple_spec () in
  let overlap =
    {
      Channel.Model.tracks = 2;
      hsegs =
        [
          { Channel.Model.hnet = 1; track = 1; hspan = Geom.Interval.make 0 2 };
          { Channel.Model.hnet = 2; track = 1; hspan = Geom.Interval.make 2 3 };
        ];
      vsegs = [];
    }
  in
  (match Channel.Model.realize s overlap with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected overlap conflict");
  let out_of_range =
    {
      Channel.Model.tracks = 2;
      hsegs =
        [ { Channel.Model.hnet = 1; track = 5; hspan = Geom.Interval.make 0 1 } ];
      vsegs = [];
    }
  in
  match Channel.Model.realize s out_of_range with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected range conflict"

let test_verify_catches_open_net () =
  let s = simple_spec () in
  (* trunks but no branches: pins unconnected *)
  let sol =
    {
      Channel.Model.tracks = 2;
      hsegs =
        [
          { Channel.Model.hnet = 1; track = 2; hspan = Geom.Interval.make 0 1 };
          { Channel.Model.hnet = 2; track = 1; hspan = Geom.Interval.make 2 3 };
        ];
      vsegs = [];
    }
  in
  match Channel.Model.verify s sol with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected open-net failure"

let test_solution_metrics () =
  let sol =
    {
      Channel.Model.tracks = 2;
      hsegs =
        [ { Channel.Model.hnet = 1; track = 1; hspan = Geom.Interval.make 0 3 } ];
      vsegs =
        [ { Channel.Model.vnet = 1; col = 0; vspan = Geom.Interval.make 0 1 } ];
    }
  in
  Testkit.check_int "wirelength" 4 (Channel.Model.solution_wirelength sol);
  Testkit.check_int "vias" 1 (Channel.Model.solution_vias sol)

(* --- vcg --- *)

let test_vcg_edges () =
  let s = spec [| 1; 2 |] [| 2; 1 |] in
  let g = Channel.Vcg.of_spec s in
  Testkit.check_int "edges" 2 (Channel.Vcg.edge_count g);
  Testkit.check_true "cycle" (Channel.Vcg.has_cycle g);
  Testkit.check_true "parents of 2 include 1"
    (List.mem 1 (Channel.Vcg.parents g 2))

let test_vcg_acyclic () =
  let s = spec [| 1; 2; 0 |] [| 0; 1; 2 |] in
  let g = Channel.Vcg.of_spec s in
  Testkit.check_false "acyclic" (Channel.Vcg.has_cycle g);
  Testkit.check_int "chain length" 2 (Channel.Vcg.longest_path g)

let test_vcg_self_edge_ignored () =
  let s = spec [| 1 |] [| 1 |] in
  let g = Channel.Vcg.of_spec s in
  Testkit.check_int "no self edge" 0 (Channel.Vcg.edge_count g);
  Testkit.check_false "no cycle" (Channel.Vcg.has_cycle g)

let test_vcg_longest_path_cyclic () =
  let g = Channel.Vcg.create () in
  Channel.Vcg.add_edge g ~above:1 ~below:2;
  Channel.Vcg.add_edge g ~above:2 ~below:1;
  Testkit.check_int "cyclic sentinel" max_int (Channel.Vcg.longest_path g)

(* --- lea --- *)

let test_lea_assign_simple () =
  let nodes =
    [ (1, Geom.Interval.make 0 3); (2, Geom.Interval.make 4 7);
      (3, Geom.Interval.make 2 5) ]
  in
  let graph = Channel.Vcg.create () in
  List.iter (fun (n, _) -> Channel.Vcg.add_node graph n) nodes;
  (match Channel.Lea.assign ~nodes ~graph ~tracks:2 with
  | Some assignment ->
      let t n = List.assoc n assignment in
      (* 1 and 2 share a track; 3 is alone *)
      Testkit.check_true "disjoint share" (t 1 = t 2);
      Testkit.check_true "overlapping split" (t 3 <> t 1)
  | None -> Alcotest.fail "assign failed");
  match Channel.Lea.assign ~nodes ~graph ~tracks:1 with
  | Some _ -> Alcotest.fail "cannot fit in one track"
  | None -> ()

let test_lea_assign_respects_constraints () =
  let nodes = [ (1, Geom.Interval.make 0 2); (2, Geom.Interval.make 4 6) ] in
  let graph = Channel.Vcg.create () in
  Channel.Vcg.add_edge graph ~above:1 ~below:2;
  match Channel.Lea.assign ~nodes ~graph ~tracks:2 with
  | Some assignment ->
      Testkit.check_true "1 above 2"
        (List.assoc 1 assignment > List.assoc 2 assignment)
  | None -> Alcotest.fail "constrained assign failed"

let test_lea_routes_simple_channel () =
  let s = simple_spec () in
  match Channel.Lea.route s with
  | Some sol ->
      Testkit.check_true "verifies" (Channel.Model.verify s sol = Ok ());
      Testkit.check_true "at most density+2"
        (sol.Channel.Model.tracks <= Channel.Model.density s + 2)
  | None -> Alcotest.fail "lea failed on simple channel"

let test_lea_fails_on_cycle () =
  let s = Channel.Model.spec_of_problem (Workload.Hard.cyclic_channel ()) in
  Testkit.check_true "cycle unroutable" (Channel.Lea.route s = None)

let test_lea_staircase_needs_many_tracks () =
  let s = Channel.Model.spec_of_problem (Workload.Hard.staircase_channel 6) in
  match Channel.Lea.min_tracks s with
  | Some t -> Testkit.check_int "staircase tracks = chain length" 6 t
  | None -> Alcotest.fail "lea failed on staircase"

let test_lea_shapes () =
  let s = spec [| 1; 2; 1 |] [| 0; 1; 2 |] in
  (match Channel.Lea.shape_of s ~net:1 with
  | Channel.Lea.Trunk span ->
      Testkit.check_true "net1 trunk" (span = Geom.Interval.make 0 2)
  | Channel.Lea.Trivial | Channel.Lea.Single_column _ ->
      Alcotest.fail "net1 should be a trunk");
  let s2 = spec [| 0; 3; 0 |] [| 0; 3; 0 |] in
  (match Channel.Lea.shape_of s2 ~net:3 with
  | Channel.Lea.Single_column c -> Testkit.check_int "single column" 1 c
  | Channel.Lea.Trivial | Channel.Lea.Trunk _ ->
      Alcotest.fail "should be single column");
  let s3 = spec [| 4; 0 |] [| 0; 0 |] in
  match Channel.Lea.shape_of s3 ~net:4 with
  | Channel.Lea.Trivial -> ()
  | Channel.Lea.Single_column _ | Channel.Lea.Trunk _ ->
      Alcotest.fail "single pin is trivial"

let test_lea_single_column_net_routed () =
  let s = spec [| 1; 2; 1 |] [| 0; 2; 0 |] in
  (* net 2 has top and bottom pins in column 1 *)
  match Channel.Lea.route s with
  | Some sol -> Testkit.check_true "verifies" (Channel.Model.verify s sol = Ok ())
  | None -> Alcotest.fail "single-column channel failed"

(* --- dogleg --- *)

let test_dogleg_subnet_count () =
  let s = spec [| 1; 1; 1; 2 |] [| 0; 0; 2; 1 |] in
  (* net 1 columns {0,1,2,3} -> 3 subnets; net 2 columns {2,3} -> 1 *)
  Testkit.check_int "subnets" 4 (Channel.Dogleg.subnet_count s)

let test_dogleg_no_worse_than_lea () =
  List.iter
    (fun (_, p) ->
      let s = Channel.Model.spec_of_problem p in
      match (Channel.Lea.min_tracks s, Channel.Dogleg.min_tracks s) with
      | Some lea, Some dog -> Testkit.check_true "dogleg <= lea" (dog <= lea)
      | None, _ -> () (* lea failed: dogleg free to do anything *)
      | Some _, None -> Alcotest.fail "dogleg failed where lea succeeded")
    (Workload.Hard.all_channels ())

let test_dogleg_solutions_verify () =
  List.iter
    (fun (_, p) ->
      let s = Channel.Model.spec_of_problem p in
      match Channel.Dogleg.route s with
      | Some sol ->
          Testkit.check_true "dogleg solution verifies"
            (Channel.Model.verify s sol = Ok ())
      | None -> ())
    (Workload.Hard.all_channels ())

let test_dogleg_breaks_multipin_cycle () =
  (* Net-level cycle through a 3-pin net that doglegging resolves:
     col0: top 1 / bottom 2; col2: top 2 / bottom 1, with net 1 having an
     extra pin at col 1 so its subnets split there. *)
  let s = spec [| 1; 1; 2 |] [| 2; 0; 1 |] in
  Testkit.check_true "lea fails (net cycle)" (Channel.Lea.route s = None);
  match Channel.Dogleg.route s with
  | Some sol -> Testkit.check_true "verifies" (Channel.Model.verify s sol = Ok ())
  | None -> Alcotest.fail "dogleg should break the cycle"

(* --- greedy --- *)

let test_greedy_simple_channel () =
  let s = simple_spec () in
  match Channel.Greedy.route s with
  | Some sol ->
      Testkit.check_true "verifies" (Channel.Model.verify s sol = Ok ());
      Testkit.check_true "near density"
        (sol.Channel.Model.tracks <= Channel.Model.density s + 2)
  | None -> Alcotest.fail "greedy failed on simple channel"

let test_greedy_routes_cycle () =
  (* Greedy does not reason about vertical constraints, so cycles are just
     another channel to it. *)
  let s = Channel.Model.spec_of_problem (Workload.Hard.cyclic_channel ()) in
  match Channel.Greedy.route_padded s with
  | Some (padded, sol) ->
      Testkit.check_true "verifies" (Channel.Model.verify padded sol = Ok ())
  | None -> Alcotest.fail "greedy should route the cycle"

let test_greedy_single_column_net () =
  let s = spec [| 1; 2; 1 |] [| 0; 2; 0 |] in
  match Channel.Greedy.route s with
  | Some sol -> Testkit.check_true "verifies" (Channel.Model.verify s sol = Ok ())
  | None -> Alcotest.fail "greedy failed on single-column net"

let test_greedy_suite_with_extension () =
  List.iter
    (fun (name, p) ->
      let s = Channel.Model.spec_of_problem p in
      match Channel.Greedy.route_padded s with
      | Some (padded, sol) ->
          Testkit.check_true
            (Printf.sprintf "%s greedy solution verifies" name)
            (Channel.Model.verify padded sol = Ok ());
          Testkit.check_true "bounded extension"
            (Channel.Greedy.extension_used ~original:s padded <= 6)
      | None -> Alcotest.failf "greedy failed on %s" name)
    (Workload.Hard.all_channels ())

let test_greedy_respects_density_bound () =
  let s = Channel.Model.spec_of_problem (Workload.Hard.deutsch_like ()) in
  match Channel.Greedy.min_tracks s with
  | Some t -> Testkit.check_true "at least density" (t >= Channel.Model.density s)
  | None -> Alcotest.fail "greedy failed on deutsch-like"

let test_greedy_tracks_never_negative_extension () =
  let s = simple_spec () in
  Testkit.check_int "no padding needed" 0
    (Channel.Greedy.extension_used ~original:s s)

let prop_greedy_verify_random =
  Testkit.qcheck ~count:20 "random channels: greedy solutions verify"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let p =
        Workload.Gen.channel prng ~columns:(Util.Prng.int_in prng 8 24)
          ~nets:(Util.Prng.int_in prng 3 10)
      in
      let s = Channel.Model.spec_of_problem p in
      match Channel.Greedy.route_padded s with
      | Some (padded, sol) -> Channel.Model.verify padded sol = Ok ()
      | None -> true)

(* --- yacr --- *)

let test_yacr_simple_channel () =
  let s = simple_spec () in
  match Channel.Yacr.route s with
  | Some (problem, g) ->
      Testkit.check_true "clean" (Drc.Check.is_clean problem g);
      Testkit.check_true "near density"
        (problem.Netlist.Problem.height - 2 <= Channel.Model.density s + 2)
  | None -> Alcotest.fail "yacr failed on simple channel"

let test_yacr_routes_cycle_at_density () =
  let s = Channel.Model.spec_of_problem (Workload.Hard.cyclic_channel ()) in
  match Channel.Yacr.min_tracks s with
  | Some t -> Testkit.check_int "density" (Channel.Model.density s) t
  | None -> Alcotest.fail "yacr should route the cycle"

let test_yacr_suite () =
  List.iter
    (fun (name, p) ->
      let s = Channel.Model.spec_of_problem p in
      match Channel.Yacr.route s with
      | Some (problem, g) ->
          Testkit.check_true
            (Printf.sprintf "%s yacr result clean" name)
            (Drc.Check.is_clean problem g)
      | None -> Alcotest.failf "yacr failed on %s" name)
    (Workload.Hard.all_channels ())

let test_yacr_single_column_net () =
  let s = spec [| 1; 2; 1 |] [| 0; 2; 0 |] in
  match Channel.Yacr.route s with
  | Some (problem, g) -> Testkit.check_true "clean" (Drc.Check.is_clean problem g)
  | None -> Alcotest.fail "yacr failed on single-column net"

let test_yacr_never_below_density () =
  let s = Channel.Model.spec_of_problem (Workload.Hard.deutsch_like ()) in
  match Channel.Yacr.min_tracks s with
  | Some t -> Testkit.check_true "at least density" (t >= Channel.Model.density s)
  | None -> Alcotest.fail "yacr failed on deutsch-like"

let prop_yacr_results_clean =
  Testkit.qcheck ~count:15 "random channels: yacr results are DRC clean"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let p =
        Workload.Gen.channel prng ~columns:(Util.Prng.int_in prng 8 20)
          ~nets:(Util.Prng.int_in prng 3 8)
      in
      let s = Channel.Model.spec_of_problem p in
      match Channel.Yacr.route s with
      | Some (problem, g) -> Drc.Check.is_clean problem g
      | None -> true)

(* --- adapter --- *)

let test_adapter_routes_at_density () =
  let s = simple_spec () in
  match Channel.Adapter.min_tracks s with
  | Some (tracks, result) ->
      Testkit.check_true "completed" result.Router.Engine.completed;
      Testkit.check_int "density tracks" (Channel.Model.density s) tracks
  | None -> Alcotest.fail "adapter failed"

let test_adapter_beats_baselines_on_cycle () =
  let s = Channel.Model.spec_of_problem (Workload.Hard.cyclic_channel ()) in
  Testkit.check_true "lea fails" (Channel.Lea.min_tracks s = None);
  Testkit.check_true "dogleg fails" (Channel.Dogleg.min_tracks s = None);
  match Channel.Adapter.min_tracks s with
  | Some (tracks, _) -> Testkit.check_true "close to density" (tracks <= 4)
  | None -> Alcotest.fail "full router should route the cycle"

let test_adapter_staircase_near_density () =
  let s = Channel.Model.spec_of_problem (Workload.Hard.staircase_channel 6) in
  match Channel.Adapter.min_tracks s with
  | Some (tracks, _) ->
      Testkit.check_true "much better than chain length" (tracks <= 4)
  | None -> Alcotest.fail "adapter failed on staircase"

let prop_lea_dogleg_verify_random =
  Testkit.qcheck ~count:20 "random channels: baseline solutions verify"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let p =
        Workload.Gen.channel prng ~columns:(Util.Prng.int_in prng 8 24)
          ~nets:(Util.Prng.int_in prng 3 10)
      in
      let s = Channel.Model.spec_of_problem p in
      let ok_lea =
        match Channel.Lea.route s with
        | Some sol -> Channel.Model.verify s sol = Ok ()
        | None -> true
      in
      let ok_dog =
        match Channel.Dogleg.route s with
        | Some sol -> Channel.Model.verify s sol = Ok ()
        | None -> true
      in
      ok_lea && ok_dog)

let prop_density_lower_bound =
  Testkit.qcheck ~count:20 "solutions never beat the density lower bound"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let p =
        Workload.Gen.channel prng ~columns:(Util.Prng.int_in prng 8 20)
          ~nets:(Util.Prng.int_in prng 3 8)
      in
      let s = Channel.Model.spec_of_problem p in
      let d = Channel.Model.density s in
      match Channel.Dogleg.min_tracks s with
      | Some t -> t >= d
      | None -> true)

let () =
  Alcotest.run "channel"
    [
      ( "model",
        [
          Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "rejects non-channel" `Quick
            test_spec_of_problem_rejects_non_channel;
          Alcotest.test_case "queries" `Quick test_model_queries;
          Alcotest.test_case "density overlap" `Quick test_density_overlapping;
          Alcotest.test_case "realize conflicts" `Quick test_realize_detects_conflicts;
          Alcotest.test_case "verify open net" `Quick test_verify_catches_open_net;
          Alcotest.test_case "solution metrics" `Quick test_solution_metrics;
        ] );
      ( "vcg",
        [
          Alcotest.test_case "edges and cycle" `Quick test_vcg_edges;
          Alcotest.test_case "acyclic chain" `Quick test_vcg_acyclic;
          Alcotest.test_case "self edge ignored" `Quick test_vcg_self_edge_ignored;
          Alcotest.test_case "longest path cyclic" `Quick test_vcg_longest_path_cyclic;
        ] );
      ( "lea",
        [
          Alcotest.test_case "assign simple" `Quick test_lea_assign_simple;
          Alcotest.test_case "assign constrained" `Quick
            test_lea_assign_respects_constraints;
          Alcotest.test_case "routes simple channel" `Quick
            test_lea_routes_simple_channel;
          Alcotest.test_case "fails on cycle" `Quick test_lea_fails_on_cycle;
          Alcotest.test_case "staircase cost" `Quick
            test_lea_staircase_needs_many_tracks;
          Alcotest.test_case "shapes" `Quick test_lea_shapes;
          Alcotest.test_case "single-column net" `Quick
            test_lea_single_column_net_routed;
        ] );
      ( "dogleg",
        [
          Alcotest.test_case "subnet count" `Quick test_dogleg_subnet_count;
          Alcotest.test_case "no worse than lea" `Slow test_dogleg_no_worse_than_lea;
          Alcotest.test_case "solutions verify" `Slow test_dogleg_solutions_verify;
          Alcotest.test_case "breaks multipin cycle" `Quick
            test_dogleg_breaks_multipin_cycle;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "simple channel" `Quick test_greedy_simple_channel;
          Alcotest.test_case "routes cycle" `Quick test_greedy_routes_cycle;
          Alcotest.test_case "single-column net" `Quick
            test_greedy_single_column_net;
          Alcotest.test_case "suite with extension" `Slow
            test_greedy_suite_with_extension;
          Alcotest.test_case "density bound" `Quick
            test_greedy_respects_density_bound;
          Alcotest.test_case "zero extension" `Quick
            test_greedy_tracks_never_negative_extension;
          prop_greedy_verify_random;
        ] );
      ( "yacr",
        [
          Alcotest.test_case "simple channel" `Quick test_yacr_simple_channel;
          Alcotest.test_case "cycle at density" `Quick test_yacr_routes_cycle_at_density;
          Alcotest.test_case "suite" `Slow test_yacr_suite;
          Alcotest.test_case "single-column net" `Quick test_yacr_single_column_net;
          Alcotest.test_case "density bound" `Quick test_yacr_never_below_density;
          prop_yacr_results_clean;
        ] );
      ( "adapter",
        [
          Alcotest.test_case "routes at density" `Quick test_adapter_routes_at_density;
          Alcotest.test_case "beats baselines on cycle" `Quick
            test_adapter_beats_baselines_on_cycle;
          Alcotest.test_case "staircase near density" `Quick
            test_adapter_staircase_near_density;
          prop_lea_dogleg_verify_random;
          prop_density_lower_bound;
        ] );
    ]
