(* Incremental goal-oriented search (DESIGN.md §11): the lower-bound
   fields must be exact when their window covers the grid, stay
   admissible under journal-driven repair, and the incremental refine
   pass — certificates, oracle skips, persistent caches — must produce
   byte-identical layouts and verdicts to the from-scratch baseline. *)

let free_passable g n = if Grid.is_free g n then Some 0 else None

let random_obstacle_grid seed =
  let prng = Util.Prng.create seed in
  let g = Grid.create ~width:10 ~height:8 () in
  Grid.iter_nodes g (fun n ->
      if Util.Prng.chance prng 0.25 then
        Grid.set_obstacle g
          ~layer:(Grid.node_layer g n)
          ~x:(Grid.node_x g n) ~y:(Grid.node_y g n));
  g

(* A margin large enough that the window is always the whole grid, so
   field values are exact global distances. *)
let full_margin = 64

let build_full g ~targets ~around =
  Maze.Lowerbound.build g ~cost:Maze.Cost.default
    ~passable:(free_passable g) ~targets ~around ~margin:full_margin

(* --- exactness of the full-window field --- *)

let prop_lowerbound_exact =
  Testkit.qcheck ~count:100 "full-window field value = forward search cost"
    QCheck2.Gen.(
      triple (int_range 0 100_000) (int_range 0 159) (int_range 0 159))
    (fun (seed, a, b) ->
      let g = random_obstacle_grid seed in
      if (not (Grid.is_free g a)) || not (Grid.is_free g b) then true
      else begin
        let ws = Maze.Workspace.create g in
        let f = build_full g ~targets:[ b ] ~around:[ a; b ] in
        let v = Maze.Lowerbound.value f g a in
        match
          Maze.Search.run g ws ~cost:Maze.Cost.default
            ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
        with
        | Some r -> v = r.Maze.Search.total_cost
        | None -> v = Maze.Lowerbound.inf_cost
      end)

(* --- the lb-steered A* returns the same costs --- *)

let prop_astar_lb_cost_identity =
  Testkit.qcheck ~count:100 "run_astar_lb cost = plain Dijkstra cost"
    QCheck2.Gen.(
      triple (int_range 0 100_000) (int_range 0 159) (int_range 0 159))
    (fun (seed, a, b) ->
      let g = random_obstacle_grid seed in
      if (not (Grid.is_free g a)) || not (Grid.is_free g b) then true
      else begin
        let ws = Maze.Workspace.create g in
        let f = build_full g ~targets:[ b ] ~around:[ a; b ] in
        let lb =
          Maze.Search.run_astar_lb g ws ~lb:f ~cost:Maze.Cost.default
            ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
        in
        let plain =
          Maze.Search.run g ws ~cost:Maze.Cost.default
            ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
        in
        match (lb, plain) with
        | None, None -> true
        | Some l, Some r ->
            l.Maze.Search.total_cost = r.Maze.Search.total_cost
            && Grid.Path.is_valid g l.Maze.Search.path
        | Some _, None | None, Some _ -> false
      end)

(* --- repair keeps the lower-bound invariant under mutation --- *)

let mutate prng g =
  (* Occupy some free cells (blocking writes) and release some occupied
     ones (freeing writes), all through the journalled mutators. *)
  Grid.iter_nodes g (fun n ->
      if Grid.is_free g n && Util.Prng.chance prng 0.08 then
        Grid.occupy g ~net:9 n
      else if Grid.occ g n = 9 && Util.Prng.chance prng 0.5 then
        Grid.release g n)

let prop_repair_admissible =
  Testkit.qcheck ~count:100 "repaired field never exceeds a fresh rebuild"
    QCheck2.Gen.(
      pair (int_range 0 100_000) (int_range 0 159))
    (fun (seed, b) ->
      let g = random_obstacle_grid seed in
      if not (Grid.is_free g b) then true
      else begin
        let prng = Util.Prng.create (seed lxor 0x9E37) in
        let f = build_full g ~targets:[ b ] ~around:[ b ] in
        let ok = ref true in
        for _ = 1 to 3 do
          mutate prng g;
          ignore (Maze.Lowerbound.repair g ~passable:(free_passable g) f);
          let fresh = build_full g ~targets:[ b ] ~around:[ b ] in
          (* The lower-bound contract covers passable nodes only: repair
             skips currently-blocked cells (no reader consults them). *)
          Grid.iter_nodes g (fun n ->
              if
                Grid.is_free g n
                && Maze.Lowerbound.value f g n > Maze.Lowerbound.value fresh g n
              then ok := false)
        done;
        !ok
      end)

let prop_repair_exact_after_release =
  Testkit.qcheck ~count:100 "repair is exact under freeing-only writes"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 159))
    (fun (seed, b) ->
      let g = random_obstacle_grid seed in
      if not (Grid.is_free g b) then true
      else begin
        let prng = Util.Prng.create (seed lxor 0x51ED) in
        (* Pre-occupy, then build, then only release: every write after
           the build can only decrease true distances, which repair's
           decrease-only relaxation recovers exactly. *)
        let occupied = ref [] in
        Grid.iter_nodes g (fun n ->
            if Grid.is_free g n && n <> b && Util.Prng.chance prng 0.15
            then begin
              Grid.occupy g ~net:9 n;
              occupied := n :: !occupied
            end);
        let f = build_full g ~targets:[ b ] ~around:[ b ] in
        List.iter
          (fun n -> if Util.Prng.chance prng 0.6 then Grid.release g n)
          !occupied;
        ignore (Maze.Lowerbound.repair g ~passable:(free_passable g) f);
        let fresh = build_full g ~targets:[ b ] ~around:[ b ] in
        let ok = ref true in
        (* Exactness, like admissibility, is promised for passable nodes
           only — cells still occupied at repair time are skipped. *)
        Grid.iter_nodes g (fun n ->
            if
              Grid.is_free g n
              && Maze.Lowerbound.value f g n <> Maze.Lowerbound.value fresh g n
            then ok := false);
        !ok
      end)

(* --- incremental refine ≡ baseline refine --- *)

(* The semantic half of the stats: verdicts and results must agree;
   the cache-telemetry half legitimately differs between modes. *)
let sem_equal (a : Router.Improve.stats) (b : Router.Improve.stats) =
  a.Router.Improve.passes = b.Router.Improve.passes
  && a.Router.Improve.improved_nets = b.Router.Improve.improved_nets
  && a.Router.Improve.wirelength_after = b.Router.Improve.wirelength_after
  && a.Router.Improve.vias_after = b.Router.Improve.vias_after

let pin_nodes problem g net =
  List.filter_map
    (fun (id, p) -> if id = net then Some (Maze.Route.pin_node g p) else None)
    (Netlist.Problem.pin_cells problem)

let rip_and_reroute problem g ws ~net =
  let pins = pin_nodes problem g net in
  List.iter
    (fun n -> if not (List.mem n pins) then Grid.release g n)
    (Grid.occupied_nodes g ~net);
  ignore
    (Maze.Route.route_net g ws ~cost:Maze.Cost.default
       (Netlist.Problem.net problem net))

let prop_incremental_refine_equiv =
  Testkit.qcheck ~count:15
    "incremental refine ≡ baseline under random rip-up cycles"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let problem =
        Workload.Gen.routable_switchbox prng ~width:16 ~height:12
      in
      let r = Router.Engine.route ~config:Router.Config.default problem in
      if not r.Router.Engine.completed then true
      else begin
        let g_inc = Grid.copy r.Router.Engine.grid in
        let g_base = Grid.copy r.Router.Engine.grid in
        let ws_inc = Maze.Workspace.create g_inc in
        let ws_base = Maze.Workspace.create g_base in
        let cache =
          Maze.Cache.create g_inc ~nets:(Netlist.Problem.net_count problem)
        in
        let nets = Array.of_list (Netlist.Problem.nontrivial_net_ids problem) in
        let ok = ref true in
        let check () =
          (* The incremental side keeps one cache alive across every
             refine call; the baseline recomputes everything. *)
          let si =
            Router.Improve.refine ~incremental:true ~cache problem g_inc
          in
          let sb = Router.Improve.refine ~incremental:false problem g_base in
          ok := !ok && Grid.equal g_inc g_base && sem_equal si sb
        in
        check ();
        for _ = 1 to 3 do
          if Array.length nets > 0 then begin
            let net = Util.Prng.pick prng nets in
            rip_and_reroute problem g_inc ws_inc ~net;
            rip_and_reroute problem g_base ws_base ~net;
            ok := !ok && Grid.equal g_inc g_base;
            check ()
          end
        done;
        !ok
      end)

(* --- committed instances (the acceptance check) --- *)

let fast_config =
  {
    Router.Config.default with
    Router.Config.use_astar = true;
    kernel = Maze.Search.Buckets;
    window_margin = Some 4;
  }

let core_stats_equal (a : Router.Engine.stats) (b : Router.Engine.stats) =
  { a with Router.Engine.par = b.Router.Engine.par } = b

let load name =
  (* cwd is test/ under [dune runtest], the project root under [dune exec] *)
  let file = name ^ ".problem" in
  let candidates =
    [ Filename.concat "../instances" file; Filename.concat "instances" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Netlist.Parse.load_exn path
  | None -> Alcotest.failf "instance %s not found" file

let check_instance name =
  let problem = load name in
  let on =
    Router.Engine.route
      ~config:{ fast_config with Router.Config.incremental = true }
      problem
  in
  let off =
    Router.Engine.route
      ~config:{ fast_config with Router.Config.incremental = false }
      problem
  in
  Testkit.check_true (name ^ ": identical routed layout")
    (Grid.equal on.Router.Engine.grid off.Router.Engine.grid);
  Testkit.check_true (name ^ ": identical core stats")
    (core_stats_equal on.Router.Engine.stats off.Router.Engine.stats);
  let g_on = Grid.copy on.Router.Engine.grid in
  let g_off = Grid.copy on.Router.Engine.grid in
  let cache =
    Maze.Cache.create g_on ~nets:(Netlist.Problem.net_count problem)
  in
  (* Enough passes to converge (the internal loop stops at the first
     pass without improvement), so the final pass writes nothing and
     leaves every certificate clean for the re-refine check below. *)
  let s_on =
    Router.Improve.refine ~max_passes:50 ~incremental:true ~cache problem g_on
  in
  let s_off =
    Router.Improve.refine ~max_passes:50 ~incremental:false problem g_off
  in
  Testkit.check_true (name ^ ": identical refined layout")
    (Grid.equal g_on g_off);
  Testkit.check_true (name ^ ": identical refine verdicts")
    (sem_equal s_on s_off);
  (* A second refine on the untouched grid must be answered from the
     cache alone: every visit skips, no planning searches run. *)
  let again = Router.Improve.refine ~incremental:true ~cache problem g_on in
  Testkit.check_int (name ^ ": cached re-refine plans nothing") 0
    again.Router.Improve.planned;
  Testkit.check_int (name ^ ": cached re-refine improves nothing") 0
    again.Router.Improve.improved_nets;
  Testkit.check_true (name ^ ": cached re-refine skips via the cache")
    (again.Router.Improve.skipped_cert + again.Router.Improve.skipped_bound > 0)

let test_committed_small () =
  List.iter check_instance
    [ "switchbox_12x10"; "switchbox_32x26"; "chip_128x96" ]

let test_committed_large () =
  List.iter check_instance
    [ "switchbox_64x52"; "switchbox_128x104"; "chip_96x64" ]

let () =
  Alcotest.run "incremental"
    [
      ( "lowerbound",
        [
          prop_lowerbound_exact;
          prop_astar_lb_cost_identity;
          prop_repair_admissible;
          prop_repair_exact_after_release;
        ] );
      ("refine", [ prop_incremental_refine_equiv ]);
      ( "instances",
        [
          Alcotest.test_case "committed instances (small)" `Quick
            test_committed_small;
          Alcotest.test_case "committed instances (large)" `Slow
            test_committed_large;
        ] );
    ]
