(* Tests for the verifier: every violation class must be detected, clean
   layouts must pass, and the connectivity count must be exact. *)

let pin = Netlist.Net.pin

let two_net_problem () =
  Netlist.Problem.make ~name:"d" ~width:8 ~height:6
    [
      Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 5 0 ];
      Netlist.Net.make ~id:2 ~name:"b" [ pin ~layer:1 2 2; pin ~layer:1 2 5 ];
    ]

let route_net_1 g =
  for x = 1 to 4 do
    Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x ~y:0)
  done

let route_net_2 g =
  for y = 3 to 4 do
    Grid.occupy g ~net:2 (Grid.node g ~layer:1 ~x:2 ~y)
  done

let test_clean_layout () =
  let p = two_net_problem () in
  let g = Netlist.Problem.instantiate p in
  route_net_1 g;
  route_net_2 g;
  Testkit.check_true "clean" (Drc.Check.is_clean p g);
  Testkit.check_true "explain empty" (Drc.Check.explain (Drc.Check.check p g) = "")

let test_detects_open_net () =
  let p = two_net_problem () in
  let g = Netlist.Problem.instantiate p in
  route_net_1 g;
  (* net 2 left unrouted: two components *)
  let violations = Drc.Check.check p g in
  Testkit.check_true "open net reported"
    (List.exists
       (function
         | Drc.Check.Net_disconnected { net = 2; components = 2 } -> true
         | Drc.Check.Net_disconnected _ | Drc.Check.Pin_not_owned _
         | Drc.Check.Via_mismatch _ | Drc.Check.Wire_on_obstruction _ ->
             false)
       violations)

let test_detects_floating_wire () =
  let p = two_net_problem () in
  let g = Netlist.Problem.instantiate p in
  route_net_1 g;
  route_net_2 g;
  (* A stray cell of net 1 far from its tree. *)
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:7 ~y:5);
  let violations = Drc.Check.check p g in
  Testkit.check_true "floating wire reported"
    (List.exists
       (function
         | Drc.Check.Net_disconnected { net = 1; components = 2 } -> true
         | Drc.Check.Net_disconnected _ | Drc.Check.Pin_not_owned _
         | Drc.Check.Via_mismatch _ | Drc.Check.Wire_on_obstruction _ ->
             false)
       violations)

let test_stacked_without_via_disconnected () =
  (* Same net on both layers of a cell but no via: the layers are NOT
     connected there. *)
  let p =
    Netlist.Problem.make ~name:"v" ~width:4 ~height:4
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin ~layer:1 0 0 ] ]
  in
  let g = Netlist.Problem.instantiate p in
  let violations = Drc.Check.check p g in
  Testkit.check_true "stack without via disconnected"
    (List.exists
       (function
         | Drc.Check.Net_disconnected { net = 1; components = 2 } -> true
         | Drc.Check.Net_disconnected _ | Drc.Check.Pin_not_owned _
         | Drc.Check.Via_mismatch _ | Drc.Check.Wire_on_obstruction _ ->
             false)
       violations);
  Grid.set_via g ~x:0 ~y:0;
  Testkit.check_true "via connects" (Drc.Check.is_clean p g)

let test_detects_wire_on_obstruction () =
  (* Build the grid separately so the obstruction exists only in the problem
     description. *)
  let p =
    Netlist.Problem.make ~name:"o" ~width:6 ~height:4
      ~obstructions:
        [
          {
            Netlist.Problem.obs_layer = Some 0;
            obs_rect = Geom.Rect.make 3 1 3 1;
          };
        ]
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 0 1; pin 5 1 ] ]
  in
  let g = Grid.create ~width:6 ~height:4 () in
  for x = 0 to 5 do
    Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x ~y:1)
  done;
  let violations = Drc.Check.check p g in
  Testkit.check_true "obstruction violation"
    (List.exists
       (function
         | Drc.Check.Wire_on_obstruction { net = 1; layer = 0; x = 3; y = 1 } ->
             true
         | Drc.Check.Wire_on_obstruction _ | Drc.Check.Net_disconnected _
         | Drc.Check.Pin_not_owned _ | Drc.Check.Via_mismatch _ ->
             false)
       violations)

let test_detects_missing_pin () =
  let p = two_net_problem () in
  (* Fresh grid without pin occupancy. *)
  let g = Grid.create ~width:8 ~height:6 () in
  let violations = Drc.Check.check p g in
  let missing_pins =
    List.length
      (List.filter
         (function
           | Drc.Check.Pin_not_owned _ -> true
           | Drc.Check.Net_disconnected _ | Drc.Check.Via_mismatch _
           | Drc.Check.Wire_on_obstruction _ ->
               false)
         violations)
  in
  Testkit.check_int "all pins missing" 4 missing_pins

let test_via_mismatch_reported () =
  (* Hand-build a grid with an inconsistent via flag via a legal sequence:
     net 1 owns both layers, via set, then one layer is taken over after
     release. *)
  let p =
    Netlist.Problem.make ~name:"vm" ~width:4 ~height:4
      [
        Netlist.Net.make ~id:1 ~name:"a" [ pin 1 1 ];
        Netlist.Net.make ~id:2 ~name:"b" [ pin 2 2 ];
      ]
  in
  let g = Netlist.Problem.instantiate p in
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:0 ~y:0);
  Grid.occupy g ~net:1 (Grid.node g ~layer:1 ~x:0 ~y:0);
  Grid.set_via g ~x:0 ~y:0;
  (* Simulate a buggy router: replace one layer without clearing the via.
     Grid.release clears it, so poke occupancy through a copy trick is not
     available — instead check that a via over free cells reports. *)
  Grid.release g (Grid.node g ~layer:0 ~x:0 ~y:0);
  (* release cleared the via; set up the mismatch differently *)
  Grid.occupy g ~net:2 (Grid.node g ~layer:0 ~x:0 ~y:0);
  Testkit.check_false "no via now" (Grid.has_via g ~x:0 ~y:0);
  (* The grid API cannot express a mismatched via, which is itself the
     guarantee; verify is_clean flags disconnection instead. *)
  Testkit.check_false "nets 1/2 have issues" (Drc.Check.is_clean p g)

let test_nets_filter () =
  let p = two_net_problem () in
  let g = Netlist.Problem.instantiate p in
  route_net_1 g;
  (* net 2 unrouted, but we only check net 1 *)
  Testkit.check_true "filtered clean" (Drc.Check.is_clean ~nets:[ 1 ] p g);
  Testkit.check_false "full check fails" (Drc.Check.is_clean p g)

let test_connected_components_counts () =
  let g = Grid.create ~width:6 ~height:4 () in
  Testkit.check_int "no cells" 0 (Drc.Check.connected_components g ~net:1);
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:0 ~y:0);
  Testkit.check_int "one cell" 1 (Drc.Check.connected_components g ~net:1);
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:1 ~y:0);
  Testkit.check_int "joined pair" 1 (Drc.Check.connected_components g ~net:1);
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:3 ~y:3);
  Testkit.check_int "two components" 2 (Drc.Check.connected_components g ~net:1);
  (* Diagonal adjacency does not connect. *)
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:2 ~y:1);
  Testkit.check_int "diagonal not connected" 3
    (Drc.Check.connected_components g ~net:1)

let test_pp_violation_output () =
  let s =
    Format.asprintf "%a" Drc.Check.pp_violation
      (Drc.Check.Net_disconnected { net = 3; components = 2 })
  in
  Testkit.check_true "mentions net" (String.length s > 0);
  let s2 =
    Format.asprintf "%a" Drc.Check.pp_violation
      (Drc.Check.Via_mismatch { x = 1; y = 2 })
  in
  Testkit.check_true "mentions via" (String.length s2 > 0)

let () =
  Alcotest.run "drc"
    [
      ( "check",
        [
          Alcotest.test_case "clean layout" `Quick test_clean_layout;
          Alcotest.test_case "open net" `Quick test_detects_open_net;
          Alcotest.test_case "floating wire" `Quick test_detects_floating_wire;
          Alcotest.test_case "stack needs via" `Quick test_stacked_without_via_disconnected;
          Alcotest.test_case "wire on obstruction" `Quick test_detects_wire_on_obstruction;
          Alcotest.test_case "missing pins" `Quick test_detects_missing_pin;
          Alcotest.test_case "via invariants" `Quick test_via_mismatch_reported;
          Alcotest.test_case "nets filter" `Quick test_nets_filter;
          Alcotest.test_case "component counts" `Quick test_connected_components_counts;
          Alcotest.test_case "violation printing" `Quick test_pp_violation_output;
        ] );
    ]
