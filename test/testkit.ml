(* Shared helpers for the test suite. *)

let qcheck ?(count = 100) name gen prop =
  (* Fixed randomness: property tests are part of the deterministic suite
     (set QCHECK_SEED to explore other seeds). *)
  let rand =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> Random.State.make [| int_of_string s |]
    | None -> Random.State.make [| 0x5EED |]
  in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

(* Route a problem and fail the test unless the result is complete and
   DRC-clean; returns the result for further assertions. *)
let route_clean ?config problem =
  let result = Router.Engine.route ?config problem in
  Alcotest.(check bool)
    (Printf.sprintf "%s completes" problem.Netlist.Problem.name)
    true result.Router.Engine.completed;
  let violations = Drc.Check.check problem result.Router.Engine.grid in
  if violations <> [] then
    Alcotest.failf "%s: DRC violations:\n%s" problem.Netlist.Problem.name
      (Drc.Check.explain violations);
  result

(* DRC restricted to the routed nets of a possibly incomplete result. *)
let drc_routed problem (result : Router.Engine.t) =
  let failed = result.Router.Engine.stats.Router.Engine.failed_nets in
  let routed =
    List.filter
      (fun id -> not (List.mem id failed))
      (List.init (Netlist.Problem.net_count problem) (fun i -> i + 1))
  in
  Drc.Check.check ~nets:routed problem result.Router.Engine.grid

(* Substring test for error-message assertions. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_true name b = Alcotest.(check bool) name true b

let check_false name b = Alcotest.(check bool) name false b
