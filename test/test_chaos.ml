(* Fault injection: chaos determinism, the engine's no-raise guarantee
   under injected failures, and the transactional-session property —
   an interrupted mutation leaves the session exactly at its last
   committed state.

   Set DESIGN_CHAOS=1 to crank the qcheck iteration counts. *)

let heavy = Sys.getenv_opt "DESIGN_CHAOS" <> None
let count n = if heavy then n * 5 else n
let prng seed = Util.Prng.create seed

(* --- injector determinism --- *)

let test_none_never_injects () =
  let c = Router.Chaos.none in
  Testkit.check_false "disabled" (Router.Chaos.enabled c);
  for _ = 1 to 1000 do
    Testkit.check_false "no search failures" (Router.Chaos.fail_search c);
    Router.Chaos.maybe_crash c
  done;
  Testkit.check_true "no hook" (Router.Chaos.hook c = None);
  Testkit.check_int "nothing injected" 0 (Router.Chaos.injected c)

let test_same_seed_same_faults () =
  let rolls c = List.init 500 (fun _ -> Router.Chaos.fail_search c) in
  let a = Router.Chaos.create ~search_fail:0.3 ~seed:42 () in
  let b = Router.Chaos.create ~search_fail:0.3 ~seed:42 () in
  Testkit.check_true "identical decision streams" (rolls a = rolls b);
  Testkit.check_int "same injection count" (Router.Chaos.injected a)
    (Router.Chaos.injected b);
  Testkit.check_true "faults actually fire" (Router.Chaos.injected a > 0)

let test_crash_probability () =
  let c = Router.Chaos.create ~crash:1.0 ~seed:1 () in
  (match Router.Chaos.maybe_crash c with
  | () -> Alcotest.fail "crash at p=1 must raise"
  | exception Router.Chaos.Injected_fault _ -> ());
  Testkit.check_int "counted" 1 (Router.Chaos.injected c)

(* --- engine under chaos: never raises, never corrupts --- *)

(* Audit_phase makes the engine itself assert grid consistency after
   every phase; a violation raises Audit.Inconsistent and fails the
   property. *)
let audit_config =
  { Router.Config.default with audit = Router.Config.Audit_phase }

let prop_engine_survives_search_failures =
  Testkit.qcheck ~count:(count 40) "forced search failures stay clean"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 100_000))
    (fun (pseed, cseed) ->
      let p = Workload.Gen.switchbox (prng pseed) ~width:12 ~height:10 ~nets:5 in
      let chaos = Router.Chaos.create ~search_fail:0.3 ~seed:cseed () in
      let result = Router.Engine.route ~config:audit_config ~chaos p in
      Testkit.drc_routed p result = []
      && (result.Router.Engine.status <> Router.Outcome.Complete
         || result.Router.Engine.stats.Router.Engine.failed_nets = []))

let prop_engine_survives_spurious_trips =
  Testkit.qcheck ~count:(count 40) "spurious cancellations stay clean"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 100_000))
    (fun (pseed, cseed) ->
      let p = Workload.Gen.switchbox (prng pseed) ~width:12 ~height:10 ~nets:5 in
      let chaos = Router.Chaos.create ~trip:0.05 ~seed:cseed () in
      let result = Router.Engine.route ~config:audit_config ~chaos p in
      let ok_status =
        match result.Router.Engine.status with
        | Router.Outcome.Complete ->
            result.Router.Engine.stats.Router.Engine.failed_nets = []
        | Router.Outcome.Degraded (Router.Budget.Cancelled _) -> true
        | Router.Outcome.Degraded _ | Router.Outcome.Infeasible -> false
      in
      ok_status && Testkit.drc_routed p result = [])

(* --- satellite 3: transactional sessions under injected faults --- *)

type op = Add | Rip | Remove | Freeze | Thaw | Route

let op_of_int i =
  match i mod 10 with
  | 0 | 1 -> Add
  | 2 | 3 -> Rip
  | 4 -> Remove
  | 5 -> Freeze
  | 6 -> Thaw
  | _ -> Route

(* Runs one op against the session.  Returns [`Committed] when the op
   succeeded (the session advanced to a new consistent state) or
   [`Rolled_back] when it reported an error or an injected fault fired. *)
let run_op s rng i op =
  let net_count = Array.length (Router.Session.problem s).Netlist.Problem.nets in
  let some_net () = 1 + Util.Prng.int rng (max 1 net_count) in
  match op with
  | Add ->
      let g = Router.Session.grid s in
      let pin () =
        Netlist.Net.pin
          (Util.Prng.int rng (Grid.width g))
          (Util.Prng.int rng (Grid.height g))
      in
      let pins = [ pin (); pin () ] in
      (match Router.Session.add_net s ~name:(Printf.sprintf "chaos%d" i) pins with
      | Ok _ -> `Committed
      | Error _ -> `Rolled_back)
  | Rip -> (
      match Router.Session.rip s ~net:(some_net ()) with
      | Ok () -> `Committed
      | Error _ -> `Rolled_back)
  | Remove -> (
      match Router.Session.remove_net s ~net:(some_net ()) with
      | Ok () -> `Committed
      | Error _ -> `Rolled_back)
  | Freeze -> (
      match Router.Session.freeze s ~net:(some_net ()) with
      | Ok () -> `Committed
      | Error _ -> `Rolled_back)
  | Thaw -> (
      match Router.Session.thaw s ~net:(some_net ()) with
      | Ok () -> `Committed
      | Error _ -> `Rolled_back)
  | Route -> (
      match Router.Session.route s with
      | (_ : Router.Engine.stats) -> `Committed
      | exception Router.Chaos.Injected_fault _ -> `Rolled_back)

let prop_session_rolls_back_cleanly =
  Testkit.qcheck ~count:(count 30)
    "interrupted mutations leave the last committed state"
    QCheck2.Gen.(
      pair (int_range 0 100_000) (list_size (int_range 1 10) (int_range 0 999)))
    (fun (seed, ops) ->
      let p = Workload.Gen.switchbox (prng seed) ~width:10 ~height:8 ~nets:4 in
      let chaos =
        Router.Chaos.create ~search_fail:0.15 ~trip:0.02 ~crash:0.3 ~seed ()
      in
      let config =
        { audit_config with max_expanded = Some 20_000 }
      in
      let s = Router.Session.create ~config ~chaos p in
      let rng = prng (seed lxor 0x5A5A) in
      let committed =
        ref (Router.Session.problem s, Grid.copy (Router.Session.grid s))
      in
      let ok = ref true in
      List.iteri
        (fun i code ->
          if !ok then
            match run_op s rng i (op_of_int code) with
            | `Committed ->
                committed :=
                  (Router.Session.problem s, Grid.copy (Router.Session.grid s))
            | `Rolled_back ->
                let prev_problem, prev_grid = !committed in
                ok :=
                  prev_problem == Router.Session.problem s
                  && Grid.equal prev_grid (Router.Session.grid s))
        ops;
      (* Whatever happened, the surviving layout passes full DRC. *)
      !ok && Router.Session.verify s = [])

let test_session_usable_after_crash () =
  (* Force a crash on the first mutation, then show the same session
     still routes to completion once the injector runs out of luck. *)
  let p = Workload.Gen.routable_switchbox (prng 17) ~width:10 ~height:8 in
  let chaos = Router.Chaos.create ~crash:1.0 ~seed:9 () in
  let s = Router.Session.create ~chaos p in
  let before = Grid.copy (Router.Session.grid s) in
  (match Router.Session.rip s ~net:1 with
  | Ok () -> Alcotest.fail "crash at p=1 must abort the mutation"
  | Error _ -> ());
  Testkit.check_true "grid untouched after rollback"
    (Grid.equal before (Router.Session.grid s));
  Testkit.check_true "fault was injected" (Router.Chaos.injected chaos > 0);
  Testkit.check_true "session still verifies" (Router.Session.verify s = [])

let test_chaos_run_reports_injections () =
  let p = Workload.Gen.routable_switchbox (prng 29) ~width:12 ~height:10 in
  let chaos = Router.Chaos.create ~search_fail:0.5 ~seed:3 () in
  let result = Router.Engine.route ~chaos p in
  Testkit.check_true "faults were exercised" (Router.Chaos.injected chaos > 0);
  Testkit.check_true "layout still DRC-clean"
    (Testkit.drc_routed p result = [])

let () =
  Alcotest.run "chaos"
    [
      ( "injector",
        [
          Alcotest.test_case "none never injects" `Quick test_none_never_injects;
          Alcotest.test_case "same seed, same faults" `Quick
            test_same_seed_same_faults;
          Alcotest.test_case "crash at p=1" `Quick test_crash_probability;
        ] );
      ( "engine",
        [
          prop_engine_survives_search_failures;
          prop_engine_survives_spurious_trips;
          Alcotest.test_case "injections are counted" `Quick
            test_chaos_run_reports_injections;
        ] );
      ( "session",
        [
          prop_session_rolls_back_cleanly;
          Alcotest.test_case "usable after an injected crash" `Quick
            test_session_usable_after_crash;
        ] );
    ]
