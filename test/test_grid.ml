(* Tests for the routing grid: node packing, occupancy rules, vias,
   obstruction helpers, paths and segment extraction. *)

let mk () = Grid.create ~width:8 ~height:6 ()

let test_dimensions () =
  let g = mk () in
  Testkit.check_int "width" 8 (Grid.width g);
  Testkit.check_int "height" 6 (Grid.height g);
  Testkit.check_int "planar" 48 (Grid.planar_cells g);
  Testkit.check_int "nodes" 96 (Grid.node_count g)

let test_node_packing_roundtrip () =
  let g = mk () in
  for layer = 0 to 1 do
    for y = 0 to 5 do
      for x = 0 to 7 do
        let n = Grid.node g ~layer ~x ~y in
        Testkit.check_int "layer" layer (Grid.node_layer g n);
        Testkit.check_int "x" x (Grid.node_x g n);
        Testkit.check_int "y" y (Grid.node_y g n);
        Testkit.check_int "planar" ((y * 8) + x) (Grid.planar g n)
      done
    done
  done

let test_nodes_distinct () =
  let g = mk () in
  let seen = Hashtbl.create 128 in
  Grid.iter_nodes g (fun n ->
      Testkit.check_false "duplicate node" (Hashtbl.mem seen n);
      Hashtbl.replace seen n ());
  Testkit.check_int "all nodes" (Grid.node_count g) (Hashtbl.length seen)

let test_other_layer_node () =
  let g = mk () in
  let n = Grid.node g ~layer:0 ~x:3 ~y:2 in
  let m = Grid.node_above g n in
  Testkit.check_int "other layer" 1 (Grid.node_layer g m);
  Testkit.check_int "same x" 3 (Grid.node_x g m);
  Testkit.check_int "same planar" (Grid.planar g n) (Grid.planar g m);
  Testkit.check_int "involution" n (Grid.node_below g m)

let test_occupy_release () =
  let g = mk () in
  let n = Grid.node g ~layer:0 ~x:1 ~y:1 in
  Testkit.check_true "initially free" (Grid.is_free g n);
  Grid.occupy g ~net:3 n;
  Testkit.check_true "owned" (Grid.owner g n = Some 3);
  Grid.occupy g ~net:3 n;
  (* idempotent *)
  Grid.release g n;
  Testkit.check_true "released" (Grid.is_free g n);
  Grid.release g n (* releasing free is a no-op *)

let test_occupy_conflicts () =
  let g = mk () in
  let n = Grid.node g ~layer:0 ~x:1 ~y:1 in
  Grid.occupy g ~net:3 n;
  (try
     Grid.occupy g ~net:4 n;
     Alcotest.fail "expected conflict"
   with Invalid_argument _ -> ());
  let m = Grid.node g ~layer:1 ~x:2 ~y:2 in
  Grid.set_obstacle g ~layer:1 ~x:2 ~y:2;
  (try
     Grid.occupy g ~net:1 m;
     Alcotest.fail "expected obstacle rejection"
   with Invalid_argument _ -> ());
  try
    Grid.release g m;
    Alcotest.fail "expected obstacle release rejection"
  with Invalid_argument _ -> ()

let test_via_lifecycle () =
  let g = mk () in
  let n0 = Grid.node g ~layer:0 ~x:4 ~y:3 in
  let n1 = Grid.node g ~layer:1 ~x:4 ~y:3 in
  (try
     Grid.set_via g ~x:4 ~y:3;
     Alcotest.fail "via without ownership"
   with Invalid_argument _ -> ());
  Grid.occupy g ~net:2 n0;
  Grid.occupy g ~net:2 n1;
  Grid.set_via g ~x:4 ~y:3;
  Testkit.check_true "via set" (Grid.has_via g ~x:4 ~y:3);
  Testkit.check_true "via by node" (Grid.has_via_node g n0);
  Testkit.check_int "count" 1 (Grid.via_count g);
  Grid.set_via g ~x:4 ~y:3;
  Testkit.check_int "idempotent count" 1 (Grid.via_count g);
  Grid.release g n0;
  Testkit.check_false "release clears via" (Grid.has_via g ~x:4 ~y:3);
  Testkit.check_int "count zero" 0 (Grid.via_count g)

let test_via_mismatched_nets () =
  let g = mk () in
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:0 ~y:0);
  Grid.occupy g ~net:2 (Grid.node g ~layer:1 ~x:0 ~y:0);
  try
    Grid.set_via g ~x:0 ~y:0;
    Alcotest.fail "expected mismatch rejection"
  with Invalid_argument _ -> ()

let test_block_outside () =
  let g = mk () in
  Grid.block_outside g (Geom.Rect.make 1 1 6 4);
  Testkit.check_true "outside blocked"
    (Grid.is_obstacle g (Grid.node g ~layer:0 ~x:0 ~y:0));
  Testkit.check_true "inside free"
    (Grid.is_free g (Grid.node g ~layer:1 ~x:3 ~y:3))

let test_block_rect_layer () =
  let g = mk () in
  Grid.block_rect g ~layer:1 (Geom.Rect.make 2 2 3 3);
  Testkit.check_true "layer1 blocked"
    (Grid.is_obstacle g (Grid.node g ~layer:1 ~x:2 ~y:2));
  Testkit.check_true "layer0 free"
    (Grid.is_free g (Grid.node g ~layer:0 ~x:2 ~y:2))

let test_set_obstacle_on_net_rejected () =
  let g = mk () in
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:5 ~y:5);
  try
    Grid.set_obstacle g ~layer:0 ~x:5 ~y:5;
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_copy_independent () =
  let g = mk () in
  let n = Grid.node g ~layer:0 ~x:2 ~y:2 in
  Grid.occupy g ~net:5 n;
  let h = Grid.copy g in
  Grid.release g n;
  Testkit.check_true "copy keeps ownership" (Grid.owner h n = Some 5);
  Grid.occupy h ~net:5 (Grid.node_above h n);
  Grid.set_via h ~x:2 ~y:2;
  Testkit.check_false "original via untouched" (Grid.has_via g ~x:2 ~y:2)

let test_counting () =
  let g = mk () in
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:0 ~y:0);
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:1 ~y:0);
  Grid.occupy g ~net:2 (Grid.node g ~layer:1 ~x:5 ~y:5);
  Testkit.check_int "count net 1" 2 (Grid.count_owned g ~net:1);
  Testkit.check_int "count net 2" 1 (Grid.count_owned g ~net:2);
  Testkit.check_int "occupied list" 2
    (List.length (Grid.occupied_nodes g ~net:1));
  Testkit.check_true "fill ratio" (abs_float (Grid.fill_ratio g -. (3.0 /. 96.0)) < 1e-9)

(* --- paths --- *)

let test_path_validity () =
  let g = mk () in
  let n ~layer ~x ~y = Grid.node g ~layer ~x ~y in
  let path =
    [
      n ~layer:0 ~x:0 ~y:0;
      n ~layer:0 ~x:1 ~y:0;
      n ~layer:1 ~x:1 ~y:0;
      n ~layer:1 ~x:1 ~y:1;
    ]
  in
  Testkit.check_true "valid path" (Grid.Path.is_valid g path);
  Testkit.check_int "wirelength" 2 (Grid.Path.wirelength g path);
  Testkit.check_int "vias" 1 (Grid.Path.via_steps g path);
  Testkit.check_true "empty valid" (Grid.Path.is_valid g []);
  Testkit.check_true "singleton valid" (Grid.Path.is_valid g [ 0 ]);
  let jump = [ n ~layer:0 ~x:0 ~y:0; n ~layer:0 ~x:2 ~y:0 ] in
  Testkit.check_false "jump invalid" (Grid.Path.is_valid g jump);
  let diag_via = [ n ~layer:0 ~x:0 ~y:0; n ~layer:1 ~x:1 ~y:0 ] in
  Testkit.check_false "diagonal via invalid" (Grid.Path.is_valid g diag_via)

let test_path_bends () =
  let g = mk () in
  let n ~x ~y = Grid.node g ~layer:0 ~x ~y in
  let straight = [ n ~x:0 ~y:0; n ~x:1 ~y:0; n ~x:2 ~y:0 ] in
  Testkit.check_int "straight" 0 (Grid.Path.bends g straight);
  let bent = [ n ~x:0 ~y:0; n ~x:1 ~y:0; n ~x:1 ~y:1; n ~x:2 ~y:1 ] in
  Testkit.check_int "two bends" 2 (Grid.Path.bends g bent)

let test_path_cost_and_endpoints () =
  let g = mk () in
  let n ~layer ~x ~y = Grid.node g ~layer ~x ~y in
  let path =
    [ n ~layer:0 ~x:0 ~y:0; n ~layer:0 ~x:1 ~y:0; n ~layer:1 ~x:1 ~y:0 ]
  in
  Testkit.check_int "cost" (1 + 5)
    (Grid.Path.cost ~wire_cost:1 ~via_cost:5 ~bend_cost:0 g path);
  (match Grid.Path.endpoints path with
  | Some (a, b) ->
      Testkit.check_int "first" (n ~layer:0 ~x:0 ~y:0) a;
      Testkit.check_int "last" (n ~layer:1 ~x:1 ~y:0) b
  | None -> Alcotest.fail "endpoints");
  Testkit.check_true "no endpoints" (Grid.Path.endpoints [] = None)

(* --- segments --- *)

let test_segments_straight_run () =
  let g = mk () in
  for x = 1 to 5 do
    Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x ~y:2)
  done;
  match Grid.Segment.of_net g ~net:1 with
  | [ s ] ->
      Testkit.check_true "horizontal" (s.Grid.Segment.axis = Grid.Segment.H);
      Testkit.check_int "row" 2 s.Grid.Segment.fixed;
      Testkit.check_int "length" 5 (Grid.Segment.length s);
      Testkit.check_int "cells" 5 (List.length (Grid.Segment.cells s))
  | segs -> Alcotest.failf "expected one segment, got %d" (List.length segs)

let test_segments_corner () =
  let g = mk () in
  (* L shape: (1,1)-(3,1) then (3,1)-(3,3) on layer 0 *)
  for x = 1 to 3 do
    Grid.occupy g ~net:2 (Grid.node g ~layer:0 ~x ~y:1)
  done;
  for y = 2 to 3 do
    Grid.occupy g ~net:2 (Grid.node g ~layer:0 ~x:3 ~y)
  done;
  let segs = Grid.Segment.of_net g ~net:2 in
  Testkit.check_int "two runs" 2 (List.length segs);
  let total_cells =
    List.fold_left (fun acc s -> acc + Grid.Segment.length s) 0 segs
  in
  (* corner cell (3,1) is in both runs *)
  Testkit.check_int "cells with shared corner" 6 total_cells

let test_segments_isolated_cell () =
  let g = mk () in
  Grid.occupy g ~net:3 (Grid.node g ~layer:1 ~x:4 ~y:4);
  match Grid.Segment.of_net g ~net:3 with
  | [ s ] ->
      Testkit.check_int "singleton length" 1 (Grid.Segment.length s);
      Testkit.check_int "layer" 1 s.Grid.Segment.layer
  | segs -> Alcotest.failf "expected singleton, got %d" (List.length segs)

let test_segments_cover_all_cells () =
  let g = mk () in
  (* plus shape *)
  List.iter
    (fun (x, y) -> Grid.occupy g ~net:4 (Grid.node g ~layer:0 ~x ~y))
    [ (3, 3); (2, 3); (4, 3); (3, 2); (3, 4) ];
  let segs = Grid.Segment.of_net g ~net:4 in
  let covered = Hashtbl.create 16 in
  List.iter
    (fun s ->
      List.iter (fun c -> Hashtbl.replace covered c ()) (Grid.Segment.cells s))
    segs;
  Testkit.check_int "all cells covered" 5 (Hashtbl.length covered)

let prop_random_ops_keep_invariants =
  Testkit.qcheck ~count:60 "random occupy/release sequences keep invariants"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let g = Grid.create ~width:6 ~height:5 () in
      let ok = ref true in
      for _ = 1 to 120 do
        let n = Util.Prng.int prng (Grid.node_count g) in
        match Util.Prng.int prng 4 with
        | 0 ->
            (* occupy with a random net if allowed *)
            let net = Util.Prng.int_in prng 1 3 in
            let v = Grid.occ g n in
            if v = Grid.free || v = net then Grid.occupy g ~net n
        | 1 -> if not (Grid.is_obstacle g n) then Grid.release g n
        | 2 ->
            (* place a via when legal *)
            let x = Grid.node_x g n and y = Grid.node_y g n in
            let a = Grid.occ_at g ~layer:0 ~x ~y
            and b = Grid.occ_at g ~layer:1 ~x ~y in
            if a > 0 && a = b then Grid.set_via g ~x ~y
        | _ ->
            let x = Grid.node_x g n and y = Grid.node_y g n in
            Grid.clear_via g ~x ~y
      done;
      (* invariant: every via joins two same-net cells; via_count matches *)
      let count = ref 0 in
      Grid.iter_planar g (fun ~x ~y ->
          if Grid.has_via g ~x ~y then begin
            incr count;
            let a = Grid.occ_at g ~layer:0 ~x ~y
            and b = Grid.occ_at g ~layer:1 ~x ~y in
            if a <= 0 || a <> b then ok := false
          end);
      (* counts per net are consistent with occupied_nodes *)
      for net = 1 to 3 do
        if Grid.count_owned g ~net
           <> List.length (Grid.occupied_nodes g ~net)
        then ok := false
      done;
      !ok && !count = Grid.via_count g)

(* --- dirty-region journal --- *)

let rect_at x y = Geom.Rect.make x y x y

let test_dirty_basic () =
  let g = mk () in
  let m = Grid.mark g in
  Testkit.check_false "clean after mark"
    (Grid.dirtied_in g ~since:m ~layer:0 (Geom.Rect.make 0 0 7 5));
  Grid.occupy g ~net:3 (Grid.node g ~layer:0 ~x:2 ~y:2);
  Testkit.check_true "write dirties its cell"
    (Grid.dirtied_in g ~since:m ~layer:0 (rect_at 2 2));
  Testkit.check_true "and any overlapping rect"
    (Grid.dirtied_in g ~since:m ~layer:0 (Geom.Rect.make 0 0 3 3));
  Testkit.check_false "other layer untouched"
    (Grid.dirtied_in g ~since:m ~layer:1 (rect_at 2 2));
  Testkit.check_false "distant rect untouched"
    (Grid.dirtied_in g ~since:m ~layer:0 (Geom.Rect.make 6 5 7 5));
  let m2 = Grid.mark g in
  Testkit.check_false "new mark is clean"
    (Grid.dirtied_in g ~since:m2 ~layer:0 (rect_at 2 2))

let test_dirty_idempotent_writes_are_clean () =
  let g = mk () in
  let n = Grid.node g ~layer:0 ~x:1 ~y:1 in
  Grid.occupy g ~net:3 n;
  let m = Grid.mark g in
  Grid.occupy g ~net:3 n;
  (* re-claiming an owned cell is a no-op *)
  Grid.release g (Grid.node g ~layer:1 ~x:4 ~y:4);
  (* releasing free too *)
  Testkit.check_false "no-op writes leave the journal alone"
    (Grid.dirtied_in g ~since:m ~layer:0 (Geom.Rect.make 0 0 7 5)
    || Grid.dirtied_in g ~since:m ~layer:1 (Geom.Rect.make 0 0 7 5))

let test_dirty_release_and_via () =
  let g = mk () in
  let n = Grid.node g ~layer:0 ~x:1 ~y:1 in
  Grid.occupy g ~net:3 n;
  let m = Grid.mark g in
  Grid.release g n;
  Testkit.check_true "release dirties"
    (Grid.dirtied_in g ~since:m ~layer:0 (rect_at 1 1));
  let m = Grid.mark g in
  Grid.occupy g ~net:5 (Grid.node g ~layer:0 ~x:4 ~y:3);
  Grid.occupy g ~net:5 (Grid.node g ~layer:1 ~x:4 ~y:3);
  Grid.set_via g ~x:4 ~y:3;
  Testkit.check_true "via dirties layer 0"
    (Grid.dirtied_in g ~since:m ~layer:0 (rect_at 4 3));
  Testkit.check_true "via dirties layer 1"
    (Grid.dirtied_in g ~since:m ~layer:1 (rect_at 4 3))

let test_dirty_coalescing_is_conservative () =
  let g = mk () in
  let m = Grid.mark g in
  (* a straight wire: nearby writes coalesce into one rectangle that
     still covers every written cell *)
  for x = 0 to 7 do
    Grid.occupy g ~net:2 (Grid.node g ~layer:0 ~x ~y:2)
  done;
  for x = 0 to 7 do
    Testkit.check_true "every cell of the wire is dirty"
      (Grid.dirtied_in g ~since:m ~layer:0 (rect_at x 2))
  done

let test_dirty_ring_wrap_degrades_safely () =
  let g = Grid.create ~width:32 ~height:32 () in
  let m = Grid.mark g in
  (* far-apart alternating writes defeat coalescing and wrap the ring *)
  for i = 0 to (2 * Grid.dirt_capacity) + 15 do
    let x = if i land 1 = 0 then 0 else 31 in
    let y = (7 * i) mod 32 in
    let n = Grid.node g ~layer:0 ~x ~y in
    if Grid.is_free g n then Grid.occupy g ~net:1 n else Grid.release g n
  done;
  Testkit.check_true "wrapped journal reports everything dirty"
    (Grid.dirtied_in g ~since:m ~layer:0 (rect_at 16 16))

let () =
  Alcotest.run "grid"
    [
      ( "surface",
        [
          Alcotest.test_case "dimensions" `Quick test_dimensions;
          Alcotest.test_case "node packing" `Quick test_node_packing_roundtrip;
          Alcotest.test_case "nodes distinct" `Quick test_nodes_distinct;
          Alcotest.test_case "other layer" `Quick test_other_layer_node;
          Alcotest.test_case "occupy/release" `Quick test_occupy_release;
          Alcotest.test_case "occupy conflicts" `Quick test_occupy_conflicts;
          Alcotest.test_case "via lifecycle" `Quick test_via_lifecycle;
          Alcotest.test_case "via mismatch" `Quick test_via_mismatched_nets;
          Alcotest.test_case "block outside" `Quick test_block_outside;
          Alcotest.test_case "block rect layer" `Quick test_block_rect_layer;
          Alcotest.test_case "obstacle on net" `Quick test_set_obstacle_on_net_rejected;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "counting" `Quick test_counting;
          prop_random_ops_keep_invariants;
        ] );
      ( "dirty journal",
        [
          Alcotest.test_case "mark and query" `Quick test_dirty_basic;
          Alcotest.test_case "no-op writes clean" `Quick
            test_dirty_idempotent_writes_are_clean;
          Alcotest.test_case "release and via" `Quick test_dirty_release_and_via;
          Alcotest.test_case "coalescing conservative" `Quick
            test_dirty_coalescing_is_conservative;
          Alcotest.test_case "ring wrap conservative" `Quick
            test_dirty_ring_wrap_degrades_safely;
        ] );
      ( "path",
        [
          Alcotest.test_case "validity" `Quick test_path_validity;
          Alcotest.test_case "bends" `Quick test_path_bends;
          Alcotest.test_case "cost/endpoints" `Quick test_path_cost_and_endpoints;
        ] );
      ( "segment",
        [
          Alcotest.test_case "straight run" `Quick test_segments_straight_run;
          Alcotest.test_case "corner" `Quick test_segments_corner;
          Alcotest.test_case "isolated cell" `Quick test_segments_isolated_cell;
          Alcotest.test_case "cover all" `Quick test_segments_cover_all_cells;
        ] );
    ]
