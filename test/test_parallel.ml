(* The speculative parallel drain (DESIGN.md §8): layout and stats must be
   byte-identical for every jobs value, on random instances and on every
   committed instance, and the domain pool must reuse its per-slot
   workspace states across calls. *)

let fast_config =
  {
    Router.Config.default with
    Router.Config.use_astar = true;
    kernel = Maze.Search.Buckets;
    window_margin = Some 4;
  }

let route_jobs config jobs problem =
  Router.Engine.route ~config:{ config with Router.Config.jobs } problem

(* Everything except the par telemetry must match: waves/speculated/...
   legitimately differ between jobs values, the rest may not. *)
let core_stats_equal (a : Router.Engine.stats) (b : Router.Engine.stats) =
  { a with Router.Engine.par = b.Router.Engine.par } = b

let check_jobs_invariant name config problem =
  let r1 = route_jobs config 1 problem in
  let r4 = route_jobs config 4 problem in
  Testkit.check_true (name ^ ": identical layout")
    (Grid.equal r1.Router.Engine.grid r4.Router.Engine.grid);
  Testkit.check_true (name ^ ": identical core stats")
    (core_stats_equal r1.Router.Engine.stats r4.Router.Engine.stats);
  Testkit.check_true (name ^ ": drc clean")
    (Testkit.drc_routed problem r4 = []);
  r4

(* --- random instances --- *)

let prop_parallel_equals_sequential =
  Testkit.qcheck ~count:20 "parallel drain ≡ sequential on random boxes"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let fill = 0.35 +. (0.4 *. Util.Prng.float prng 1.0) in
      let problem =
        Workload.Gen.dense_switchbox ~fill prng ~width:16 ~height:12
      in
      let r1 = route_jobs Router.Config.default 1 problem in
      let r4 = route_jobs Router.Config.default 4 problem in
      Grid.equal r1.Router.Engine.grid r4.Router.Engine.grid
      && core_stats_equal r1.Router.Engine.stats r4.Router.Engine.stats)

let prop_parallel_equals_sequential_windowed =
  Testkit.qcheck ~count:10 "parallel ≡ sequential with windowed A*"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let problem =
        Workload.Gen.routable_switchbox
          (Util.Prng.create seed)
          ~width:24 ~height:20
      in
      let r1 = route_jobs fast_config 1 problem in
      let r4 = route_jobs fast_config 4 problem in
      Grid.equal r1.Router.Engine.grid r4.Router.Engine.grid
      && core_stats_equal r1.Router.Engine.stats r4.Router.Engine.stats)

(* --- committed instances (the acceptance check) --- *)

let load name =
  (* cwd is test/ under [dune runtest], the project root under [dune exec] *)
  let file = name ^ ".problem" in
  let candidates =
    [ Filename.concat "../instances" file; Filename.concat "instances" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Netlist.Parse.load_exn path
  | None -> Alcotest.failf "instance %s not found" file

let test_committed_small () =
  List.iter
    (fun name -> ignore (check_jobs_invariant name fast_config (load name)))
    [ "switchbox_12x10"; "switchbox_32x26"; "chip_128x96" ]

let test_committed_large () =
  List.iter
    (fun name ->
      let r = check_jobs_invariant name fast_config (load name) in
      (* big enough to actually exercise waves, not just agree trivially *)
      Testkit.check_true (name ^ ": committed speculative routes")
        (r.Router.Engine.stats.Router.Engine.par.Router.Outcome.committed > 0))
    [ "switchbox_64x52"; "switchbox_128x104"; "chip_96x64" ]

(* --- the domain pool --- *)

let test_pool_map_order_and_reuse () =
  let inits = Atomic.make 0 in
  let pool =
    Util.Parallel.Pool.create ~jobs:3
      ~init:(fun slot ->
        Atomic.incr inits;
        (slot, ref 0))
  in
  Testkit.check_int "pool size" 3 (Util.Parallel.Pool.jobs pool);
  let xs = List.init 64 (fun i -> i) in
  let r1 = Util.Parallel.Pool.map pool (fun _ x -> x * 2) xs in
  let r2 = Util.Parallel.Pool.map pool (fun _ x -> x + 1) xs in
  Util.Parallel.Pool.shutdown pool;
  Testkit.check_true "first map in order" (r1 = List.map (fun x -> x * 2) xs);
  Testkit.check_true "second map reuses the pool" (r2 = List.map succ xs);
  let n = Atomic.get inits in
  Testkit.check_true "init at most once per slot" (n >= 1 && n <= 3)

let test_pool_state_reused_across_tasks () =
  (* Per-slot states are handed back to every task the slot runs: with far
     more tasks than slots, the per-state counters must account for every
     task, proving states persist across tasks and across map calls. *)
  let final = Array.make 3 0 in
  let pool =
    Util.Parallel.Pool.create ~jobs:3 ~init:(fun slot -> (slot, ref 0))
  in
  let bump (slot, r) _ =
    incr r;
    final.(slot) <- !r
  in
  ignore (Util.Parallel.Pool.map pool bump (List.init 40 (fun i -> i)));
  ignore (Util.Parallel.Pool.map pool bump (List.init 24 (fun i -> i)));
  Util.Parallel.Pool.shutdown pool;
  Testkit.check_int "every task ran on a pooled state" 64
    (Array.fold_left ( + ) 0 final)

let test_pool_single_job () =
  let pool = Util.Parallel.Pool.create ~jobs:1 ~init:(fun slot -> slot) in
  let r = Util.Parallel.Pool.map pool (fun s x -> (s, x)) [ 1; 2; 3 ] in
  Util.Parallel.Pool.shutdown pool;
  Util.Parallel.Pool.shutdown pool (* idempotent *);
  Testkit.check_true "caller-only pool works" (r = [ (0, 1); (0, 2); (0, 3) ])

let test_pool_exception_policy () =
  let pool = Util.Parallel.Pool.create ~jobs:4 ~init:(fun _ -> ()) in
  Alcotest.check_raises "single failure re-raised as-is" (Failure "boom")
    (fun () ->
      ignore
        (Util.Parallel.Pool.map pool
           (fun () x -> if x = 5 then failwith "boom" else x)
           (List.init 12 (fun i -> i))));
  (match
     Util.Parallel.Pool.map pool
       (fun () x -> if x mod 4 = 1 then failwith (string_of_int x) else x)
       (List.init 12 (fun i -> i))
   with
  | _ -> Alcotest.fail "expected Multiple"
  | exception Util.Parallel.Multiple exns ->
      let msgs =
        List.map (function Failure m -> m | e -> Printexc.to_string e) exns
      in
      Testkit.check_true "all failures collected, input order"
        (msgs = [ "1"; "5"; "9" ]));
  (* the pool survives failing maps *)
  let r = Util.Parallel.Pool.map pool (fun () x -> x) [ 7; 8 ] in
  Util.Parallel.Pool.shutdown pool;
  Testkit.check_true "pool usable after failures" (r = [ 7; 8 ])

(* --- interaction with the rest of the engine --- *)

let test_parallel_with_budget_is_clean () =
  (* Budget trip timing may differ between jobs values; the result must
     still be a DRC-clean best-so-far layout. *)
  let problem = load "switchbox_32x26" in
  let budget = Router.Budget.create ~max_expanded:20_000 () in
  let r =
    Router.Engine.route
      ~config:{ fast_config with Router.Config.jobs = 4 }
      ~budget problem
  in
  Testkit.check_true "budgeted parallel run is drc clean"
    (Testkit.drc_routed problem r = [])

let test_parallel_restarts_invariant () =
  let problem = load "switchbox_12x10" in
  let config = { Router.Config.default with Router.Config.restarts = 3 } in
  ignore (check_jobs_invariant "restarts=3" config problem)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          prop_parallel_equals_sequential;
          prop_parallel_equals_sequential_windowed;
          Alcotest.test_case "committed instances (small)" `Quick
            test_committed_small;
          Alcotest.test_case "committed instances (large)" `Slow
            test_committed_large;
          Alcotest.test_case "restarts" `Quick test_parallel_restarts_invariant;
          Alcotest.test_case "budgeted run clean" `Quick
            test_parallel_with_budget_is_clean;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order and lazy init" `Quick
            test_pool_map_order_and_reuse;
          Alcotest.test_case "state reused across tasks" `Quick
            test_pool_state_reused_across_tasks;
          Alcotest.test_case "single job" `Quick test_pool_single_job;
          Alcotest.test_case "exception policy" `Quick
            test_pool_exception_policy;
        ] );
    ]
