(* Durability and crash recovery (lib/service Wal/Snapshot + the durable
   Registry/Server):

   - WAL torn tails and CRC corruption truncate to the valid prefix;
   - snapshot writes are atomic (a crash at any point leaves the newest
     complete snapshot readable);
   - the flagship qcheck property: kill the server at EVERY kill point a
     random trace traverses (chosen per iteration), restart over the same
     data directory, let the client resubmit its un-acked request, and
     demand state identical to the run that never crashed — generation
     counter, net table, frozen set, via set and layout bytes;
   - idle eviction parks sessions to disk and [find] resurrects them;
   - WAL-replayed parse errors carry wal:<path>#<record> provenance.

   Set DESIGN_CHAOS=1 to crank the qcheck iteration counts. *)

let heavy = Sys.getenv_opt "DESIGN_CHAOS" <> None
let count n = if heavy then n * 5 else n
let prng seed = Util.Prng.create seed

module J = Util.Json

(* --- scratch directories --- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "router_recovery_%d_%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_dirs n f =
  let dirs = List.init n (fun _ -> fresh_dir ()) in
  Fun.protect ~finally:(fun () -> List.iter rm_rf dirs) (fun () -> f dirs)

(* --- reply plumbing (same idioms as test_service.ml) --- *)

let ok_of_reply line =
  match J.of_string line with
  | Ok json -> Option.bind (J.member "ok" json) J.to_bool_opt = Some true
  | Error _ -> false

let result_of_reply line name =
  match J.of_string line with
  | Ok json -> Option.bind (J.member "result" json) (J.member name)
  | Error _ -> None

let gen_of_reply line =
  match J.of_string line with
  | Ok json -> Option.bind (J.member "gen" json) J.to_int_opt
  | Error _ -> None

let one_reply server line =
  match Service.Server.handle_line server line with
  | [ reply ] -> reply
  | replies ->
      Alcotest.failf "expected one reply to %s, got %d" line
        (List.length replies)

let fast_config =
  {
    Router.Config.default with
    Router.Config.use_astar = true;
    kernel = Maze.Search.Buckets;
    window_margin = Some 4;
  }

(* fsync off: these tests simulate process death in-process, so OS
   buffers survive by construction and the suite stays fast. *)
let durable_server ?(chaos = Router.Chaos.none) ?(snapshot_every = 3)
    ?(idle_ticks = 10_000) ~dir () =
  Service.Server.create
    ~config:
      {
        Service.Server.default_config with
        Service.Server.router = fast_config;
        chaos;
        idle_ticks;
        data_dir = Some dir;
        snapshot_every;
        fsync = false;
      }
    ()

let open_line ?(rid = 1) ~session problem =
  J.to_string
    (J.Obj
       [
         ("id", J.Int rid);
         ("op", J.String "open");
         ("session", J.String session);
         ("problem", J.String (Netlist.Parse.to_string problem));
       ])

(* The full observable state of one session, as a comparable string:
   generation + last request id + canonical problem text (wiring as
   pre-wires) + via set + frozen set + rendered layout. *)
let fingerprint server name =
  match Service.Registry.find (Service.Server.registry server) name with
  | None -> "<missing>"
  | Some e ->
      let s = Service.Registry.session e in
      let problem, vias, frozen = Router.Session.checkpoint s in
      Printf.sprintf "gen=%d rid=%d\n%s\nvias=%s\nfrozen=%s\n%s"
        (Service.Registry.generation e)
        (Service.Registry.last_rid e)
        (Netlist.Parse.to_string problem)
        (String.concat ";"
           (List.map (fun (l, x, y) -> Printf.sprintf "%d,%d,%d" l x y) vias))
        (String.concat "," frozen)
        (Viz.Ascii.render (Router.Session.grid s))

(* --- WAL unit tests --- *)

let record i =
  {
    Service.Wal.gen = i;
    rid = i;
    req = J.Obj [ ("op", J.String "rip"); ("net", J.Int i) ];
  }

let test_wal_roundtrip_and_torn_tail () =
  with_dirs 1 @@ fun dirs ->
  let path = Filename.concat (List.hd dirs) "a.wal" in
  let w = Service.Wal.create ~fsync:false path in
  List.iter (Service.Wal.append w) [ record 1; record 2; record 3 ];
  Service.Wal.close w;
  let recs, _, torn = Service.Wal.load path in
  Testkit.check_int "all records back" 3 (List.length recs);
  Testkit.check_false "no torn tail" torn;
  Testkit.check_true "payload survives"
    (List.map (fun r -> r.Service.Wal.gen) recs = [ 1; 2; 3 ]);
  (* A torn append: half a record, no newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  let half = Service.Wal.encode_record (record 4) in
  output_string oc (String.sub half 0 (String.length half / 2));
  close_out oc;
  let recs, _, torn = Service.Wal.load path in
  Testkit.check_int "torn tail excluded" 3 (List.length recs);
  Testkit.check_true "torn tail detected" torn;
  (* Reopening truncates the torn tail and appends cleanly after it. *)
  let w, recs, torn = Service.Wal.open_existing ~fsync:false path in
  Testkit.check_true "reopen reports torn" torn;
  Testkit.check_int "reopen sees valid prefix" 3 (List.length recs);
  Service.Wal.append w (record 5);
  Service.Wal.close w;
  let recs, _, torn = Service.Wal.load path in
  Testkit.check_false "clean after repair" torn;
  Testkit.check_true "append after truncation"
    (List.map (fun r -> r.Service.Wal.gen) recs = [ 1; 2; 3; 5 ])

let test_wal_crc_rejects_corruption () =
  with_dirs 1 @@ fun dirs ->
  let path = Filename.concat (List.hd dirs) "b.wal" in
  let w = Service.Wal.create ~fsync:false path in
  List.iter (Service.Wal.append w) [ record 1; record 2; record 3 ];
  Service.Wal.close w;
  (* Flip one byte inside the second record's JSON. *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let line1_len = String.index data '\n' + 1 in
  let bytes = Bytes.of_string data in
  let target = line1_len + 12 in
  Bytes.set bytes target
    (if Bytes.get bytes target = 'x' then 'y' else 'x');
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bytes);
  let recs, _, torn = Service.Wal.load path in
  (* Everything from the corrupt record on is gone — including the valid
     record behind it: replaying past a hole would reorder history. *)
  Testkit.check_int "valid prefix only" 1 (List.length recs);
  Testkit.check_true "corruption detected" torn

let test_wal_kill_points () =
  with_dirs 1 @@ fun dirs ->
  let path = Filename.concat (List.hd dirs) "c.wal" in
  let chaos = Router.Chaos.create ~seed:1 () in
  let w = Service.Wal.create ~chaos ~fsync:false path in
  Service.Wal.append w (record 1);
  (* Kill before the next append touches the file: record 2 must leave
     no trace. *)
  Router.Chaos.arm_kill chaos ~after:0;
  (match Service.Wal.append w (record 2) with
  | () -> Alcotest.fail "kill point did not fire"
  | exception Router.Chaos.Killed name ->
      Testkit.check_true "pre-append point" (name = "wal:pre-append"));
  let recs, _, torn = Service.Wal.load path in
  Testkit.check_int "nothing written" 1 (List.length recs);
  Testkit.check_false "no torn tail" torn;
  (* Kill mid-record: the flushed half must read back as a torn tail. *)
  Router.Chaos.arm_kill chaos ~after:1;
  (match Service.Wal.append w (record 2) with
  | () -> Alcotest.fail "kill point did not fire"
  | exception Router.Chaos.Killed name ->
      Testkit.check_true "mid-record point" (name = "wal:mid-record"));
  let recs, _, torn = Service.Wal.load path in
  Testkit.check_int "valid prefix" 1 (List.length recs);
  Testkit.check_true "torn record on disk" torn

let test_wal_name_encoding () =
  List.iter
    (fun name ->
      let key = Service.Wal.file_key name in
      Testkit.check_true
        (Printf.sprintf "key %S is filename-safe" key)
        (String.for_all
           (fun c ->
             match c with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '%' -> true
             | _ -> false)
           key);
      Testkit.check_true
        (Printf.sprintf "%S round-trips" name)
        (Service.Wal.key_name key = Some name))
    [ "plain"; "with space"; "sl/ash"; "dots.and..more"; "uni\xc3\xa9"; "" ]

(* --- snapshot atomicity --- *)

let test_snapshot_atomic_under_kill () =
  with_dirs 1 @@ fun dirs ->
  let path = Filename.concat (List.hd dirs) "s.snap" in
  let problem =
    Workload.Gen.routable_switchbox (prng 7) ~width:8 ~height:6
  in
  let session = Router.Session.create ~config:fast_config problem in
  ignore (Router.Session.route session);
  let cp_problem, vias, frozen = Router.Session.checkpoint session in
  let write ?chaos ~gen () =
    Service.Snapshot.write ?chaos ~fsync:false ~gen ~last_rid:gen ~vias
      ~frozen cp_problem path
  in
  write ~gen:1 ();
  (match Service.Snapshot.read path with
  | Ok info ->
      Testkit.check_int "gen back" 1 info.Service.Snapshot.gen;
      Testkit.check_true "same layout"
        (Grid.equal (Router.Session.grid session)
           (Router.Session.grid
              (Router.Session.of_checkpoint
                 ~vias:info.Service.Snapshot.vias
                 ~frozen:info.Service.Snapshot.frozen
                 info.Service.Snapshot.problem)))
  | Error msg -> Alcotest.failf "snapshot read failed: %s" msg);
  (* Crash at every point of the next write: the gen-1 snapshot must
     stay readable until the rename, after which gen 2 is live. *)
  let chaos = Router.Chaos.create ~seed:2 () in
  List.iter
    (fun (after, expected_gen) ->
      Router.Chaos.arm_kill chaos ~after;
      (match write ~chaos ~gen:2 () with
      | () -> Alcotest.fail "kill point did not fire"
      | exception Router.Chaos.Killed _ -> ());
      match Service.Snapshot.read path with
      | Ok info ->
          Testkit.check_int
            (Printf.sprintf "complete snapshot after kill %d" after)
            expected_gen info.Service.Snapshot.gen
      | Error msg -> Alcotest.failf "snapshot unreadable: %s" msg)
    [ (0, 1) (* mid-write *); (1, 1) (* pre-rename *); (2, 2) (* renamed *) ];
  (* A truncated snapshot file is rejected, not misread. *)
  write ~gen:3 ();
  let data = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub data 0 (String.length data - 7)));
  match Service.Snapshot.read path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated snapshot must not read back"

(* --- server restart (deterministic smoke) --- *)

let trace_line rng i session =
  match Util.Prng.int rng 10 with
  | 0 | 1 ->
      let x () = Util.Prng.int rng 10 and y () = Util.Prng.int rng 8 in
      Printf.sprintf
        {|{"id":%d,"op":"add_net","session":"%s","name":"t%d","pins":[[%d,%d],[%d,%d]]}|}
        (i + 2) session i (x ()) (y ()) (x ()) (y ())
  | 2 | 3 ->
      Printf.sprintf {|{"id":%d,"op":"rip","session":"%s","net":%d}|} (i + 2)
        session
        (1 + Util.Prng.int rng 6)
  | 4 ->
      Printf.sprintf {|{"id":%d,"op":"remove_net","session":"%s","net":%d}|}
        (i + 2) session
        (1 + Util.Prng.int rng 6)
  | 5 ->
      Printf.sprintf {|{"id":%d,"op":"freeze","session":"%s","net":%d}|}
        (i + 2) session
        (1 + Util.Prng.int rng 6)
  | 6 ->
      Printf.sprintf {|{"id":%d,"op":"thaw","session":"%s","net":%d}|} (i + 2)
        session
        (1 + Util.Prng.int rng 6)
  | 7 -> Printf.sprintf {|{"id":%d,"op":"refine","session":"%s"}|} (i + 2) session
  | _ -> Printf.sprintf {|{"id":%d,"op":"route","session":"%s"}|} (i + 2) session

let test_restart_recovers_sessions () =
  with_dirs 1 @@ fun dirs ->
  let dir = List.hd dirs in
  let problem =
    Workload.Gen.routable_switchbox (prng 42) ~width:10 ~height:8
  in
  let s1 = durable_server ~dir ~snapshot_every:100 () in
  Testkit.check_true "open" (ok_of_reply (one_reply s1 (open_line ~session:"w" problem)));
  Testkit.check_true "route"
    (ok_of_reply (one_reply s1 {|{"id":2,"op":"route","session":"w"}|}));
  Testkit.check_true "freeze"
    (ok_of_reply (one_reply s1 {|{"id":3,"op":"freeze","session":"w","net":1}|}));
  let before = fingerprint s1 "w" in
  (* No finalize, no flush: this restart replays the log alone. *)
  let s2 = durable_server ~dir () in
  Testkit.check_true "state survives the restart"
    (String.equal before (fingerprint s2 "w"));
  let stats = one_reply s2 {|{"op":"stats"}|} in
  let dur name =
    Option.bind (result_of_reply stats "durability") (fun d ->
        Option.bind (J.member name d) J.to_int_opt)
  in
  Testkit.check_true "one session recovered" (dur "sessions_recovered" = Some 1);
  Testkit.check_true "replay did the work"
    (match dur "records_replayed" with Some n -> n >= 2 | None -> false)

let test_graceful_finalize_compacts () =
  with_dirs 1 @@ fun dirs ->
  let dir = List.hd dirs in
  let problem =
    Workload.Gen.routable_switchbox (prng 43) ~width:10 ~height:8
  in
  let s1 = durable_server ~dir ~snapshot_every:100 () in
  ignore (one_reply s1 (open_line ~session:"g" problem));
  ignore (one_reply s1 {|{"id":2,"op":"route","session":"g"}|});
  let before = fingerprint s1 "g" in
  Service.Server.finalize s1;
  let wal = Filename.concat dir (Service.Wal.file_key "g" ^ ".wal") in
  Testkit.check_int "log compacted away" 0 (Unix.stat wal).Unix.st_size;
  let s2 = durable_server ~dir () in
  Testkit.check_true "state survives graceful shutdown"
    (String.equal before (fingerprint s2 "g"));
  let stats = one_reply s2 {|{"op":"stats"}|} in
  let replayed =
    Option.bind (result_of_reply stats "durability") (fun d ->
        Option.bind (J.member "records_replayed" d) J.to_int_opt)
  in
  Testkit.check_true "snapshot recovery replays nothing" (replayed = Some 0)

(* place and flow are journalled mutations: a restart that replays the
   log alone must reconstruct the annealed placement and the guided
   layout byte-for-byte (the ops journal their resolved seeds, so replay
   reruns the exact same schedule). *)
let test_flow_replay () =
  with_dirs 1 @@ fun dirs ->
  let dir = List.hd dirs in
  let problem =
    Workload.Gen.macro ~macros:4 (prng 5) ~width:48 ~height:40 ~nets:9
  in
  let s1 = durable_server ~dir ~snapshot_every:100 () in
  Testkit.check_true "open"
    (ok_of_reply (one_reply s1 (open_line ~session:"f" problem)));
  Testkit.check_true "flow"
    (ok_of_reply (one_reply s1 {|{"id":2,"op":"flow","session":"f"}|}));
  let before = fingerprint s1 "f" in
  (* No finalize: the restart replays the WAL alone. *)
  let s2 = durable_server ~dir () in
  Testkit.check_true "flow state survives replay"
    (String.equal before (fingerprint s2 "f"))

let test_duplicate_resubmission () =
  with_dirs 1 @@ fun dirs ->
  let dir = List.hd dirs in
  let problem =
    Workload.Gen.routable_switchbox (prng 44) ~width:10 ~height:8
  in
  let s = durable_server ~dir () in
  ignore (one_reply s (open_line ~session:"d" problem));
  let r1 = one_reply s {|{"id":7,"op":"route","session":"d"}|} in
  Testkit.check_true "route committed" (ok_of_reply r1);
  Testkit.check_true "gen 1" (gen_of_reply r1 = Some 1);
  (* The client never saw r1 and resends: same id, no second apply. *)
  let r2 = one_reply s {|{"id":7,"op":"route","session":"d"}|} in
  Testkit.check_true "resubmission acked" (ok_of_reply r2);
  Testkit.check_true "marked duplicate"
    (Option.bind (result_of_reply r2 "duplicate") J.to_bool_opt = Some true);
  Testkit.check_true "generation unchanged" (gen_of_reply r2 = Some 1);
  (* A fresh id applies normally again. *)
  let r3 = one_reply s {|{"id":8,"op":"rip","session":"d","net":1}|} in
  Testkit.check_true "next mutation applies" (gen_of_reply r3 = Some 2)

(* --- idle eviction x durability (satellite) --- *)

let test_eviction_parks_and_reattaches () =
  with_dirs 1 @@ fun dirs ->
  let dir = List.hd dirs in
  let problem =
    Workload.Gen.routable_switchbox (prng 45) ~width:10 ~height:8
  in
  let s = durable_server ~dir ~idle_ticks:2 () in
  ignore (one_reply s (open_line ~session:"park" problem));
  let r = one_reply s {|{"id":2,"op":"route","session":"park"}|} in
  Testkit.check_true "routed before parking" (gen_of_reply r = Some 1);
  let before = fingerprint s "park" in
  (* Session-less requests advance the logical clock past idle_ticks. *)
  for _ = 1 to 4 do
    ignore (one_reply s {|{"op":"stats"}|})
  done;
  Testkit.check_int "parked out of memory" 0
    (Service.Registry.count (Service.Server.registry s));
  Testkit.check_true "snapshot on disk"
    (Sys.file_exists
       (Filename.concat dir (Service.Wal.file_key "park" ^ ".snap")));
  (* Any touch resurrects it from disk, history intact. *)
  Testkit.check_true "reattached state identical"
    (String.equal before (fingerprint s "park"));
  let r = one_reply s {|{"id":3,"op":"rip","session":"park","net":1}|} in
  Testkit.check_true "generation monotone across park/reattach"
    (gen_of_reply r = Some 2);
  let stats = one_reply s {|{"op":"stats"}|} in
  let recovered =
    Option.bind (result_of_reply stats "durability") (fun d ->
        Option.bind (J.member "sessions_recovered" d) J.to_int_opt)
  in
  Testkit.check_true "reattach counted as recovery"
    (match recovered with Some n -> n >= 1 | None -> false)

(* --- WAL replay provenance (satellite) --- *)

let test_replay_error_provenance () =
  with_dirs 1 @@ fun dirs ->
  let dir = List.hd dirs in
  let path = Filename.concat dir (Service.Wal.file_key "bad" ^ ".wal") in
  (* A well-formed record whose problem text does not parse. *)
  let line =
    Service.Wal.encode_record
      {
        Service.Wal.gen = 0;
        rid = 1;
        req =
          J.Obj
            [
              ("op", J.String "open");
              ("problem", J.String "problem oops nope\n");
            ];
      }
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (line ^ "\n"));
  let r =
    Service.Registry.create ~config:fast_config
      ~data:{ Service.Registry.dir; snapshot_every = 4; fsync = false }
      ()
  in
  Testkit.check_true "recovery refused" (Service.Registry.find r "bad" = None);
  let err =
    match Service.Registry.durability_json r with
    | J.Obj fields -> (
        match List.assoc_opt "last_error" fields with
        | Some (J.String m) -> m
        | _ -> "")
    | _ -> ""
  in
  Testkit.check_true
    (Printf.sprintf "error %S names the journal record" err)
    (Testkit.contains err ("wal:" ^ path ^ "#0"))

(* --- the flagship qcheck property: crash anywhere, recover, converge --- *)

(* Protocol per iteration:
   1. COUNT: run the trace on a durable server with a disarmed kill
      injector; record the never-crashed fingerprints and the number of
      kill points T the trace traverses.
   2. KILL: re-run on a fresh directory with the injector armed at
      K in [0, T): the server dies mid-request with [Killed].
   3. RECOVER: build a new server over the same directory (recovery =
      snapshot + WAL tail replay), resubmit the un-acked request (same
      id — the dedup layer must not double-apply), then the rest of the
      trace.
   4. The recovered run's fingerprints must equal the never-crashed
      run's, for every session. *)
let prop_crash_anywhere_recovers =
  Testkit.qcheck ~count:(count 12)
    "crash at any kill point, recover, state converges"
    QCheck2.Gen.(
      triple (int_range 0 100_000) (int_range 0 1_000_000)
        (list_size (int_range 2 12) (int_range 0 999)))
    (fun (seed, kill_choice, codes) ->
      let sessions = [ "a"; "b" ] in
      let problems =
        List.mapi
          (fun i name ->
            ( name,
              Workload.Gen.switchbox
                (prng (seed + i))
                ~width:10 ~height:8 ~nets:4 ))
          sessions
      in
      let lines =
        let rng = prng (seed lxor 0x7E57) in
        List.mapi
          (fun i name -> open_line ~rid:(i + 1000) ~session:name (List.assoc name problems))
          sessions
        @ List.mapi
            (fun i code ->
              trace_line rng i
                (List.nth sessions (code mod List.length sessions)))
            codes
      in
      let fingerprints server =
        List.map (fun name -> fingerprint server name) sessions
      in
      (* 1: count kill points and record the reference state. *)
      let reference, points =
        with_dirs 1 @@ fun dirs ->
        let chaos = Router.Chaos.create ~seed () in
        let s = durable_server ~chaos ~dir:(List.hd dirs) () in
        List.iter (fun line -> ignore (one_reply s line)) lines;
        (fingerprints s, Router.Chaos.kill_points chaos)
      in
      if points = 0 then Alcotest.fail "durable trace traversed no kill points";
      (* 2+3: die at kill point K, restart, resubmit, finish. *)
      let k = kill_choice mod points in
      with_dirs 1 @@ fun dirs ->
      let dir = List.hd dirs in
      let chaos = Router.Chaos.create ~seed () in
      Router.Chaos.arm_kill chaos ~after:k;
      let s = durable_server ~chaos ~dir () in
      let rec run s = function
        | [] -> s
        | line :: rest -> (
            match one_reply s line with
            | (_ : string) -> run s rest
            | exception Router.Chaos.Killed _ ->
                (* The process is gone: everything in memory is dropped,
                   a new server recovers from disk, and the client —
                   which never saw a reply for [line] — resends it. *)
                let s' = durable_server ~dir () in
                run s' (line :: rest))
      in
      let s = run s lines in
      List.for_all2 String.equal reference (fingerprints s))

let () =
  Alcotest.run "recovery"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip and torn tail" `Quick
            test_wal_roundtrip_and_torn_tail;
          Alcotest.test_case "crc rejects corruption" `Quick
            test_wal_crc_rejects_corruption;
          Alcotest.test_case "kill points" `Quick test_wal_kill_points;
          Alcotest.test_case "name encoding" `Quick test_wal_name_encoding;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "atomic under kill" `Quick
            test_snapshot_atomic_under_kill;
        ] );
      ( "restart",
        [
          Alcotest.test_case "replay recovers sessions" `Quick
            test_restart_recovers_sessions;
          Alcotest.test_case "graceful finalize compacts" `Quick
            test_graceful_finalize_compacts;
          Alcotest.test_case "duplicate resubmission" `Quick
            test_duplicate_resubmission;
          Alcotest.test_case "flow replay" `Quick test_flow_replay;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "eviction parks and reattaches" `Quick
            test_eviction_parks_and_reattaches;
          Alcotest.test_case "replay error provenance" `Quick
            test_replay_error_provenance;
        ] );
      ( "chaos", [ prop_crash_anywhere_recovers ] );
    ]
