(* Tests for the renderers: stable net characters, correct map dimensions,
   obstacle/pin/via markers and well-formed SVG. *)

let routed_example () =
  let prng = Util.Prng.create 6 in
  let p = Workload.Gen.switchbox prng ~width:10 ~height:8 ~nets:6 in
  let r = Router.Engine.route p in
  (p, r.Router.Engine.grid)

let test_net_char_stable_and_distinct () =
  Testkit.check_true "net 1" (Viz.Ascii.net_char 1 = '1');
  Testkit.check_true "net 10" (Viz.Ascii.net_char 10 = 'a');
  Testkit.check_true "stable" (Viz.Ascii.net_char 5 = Viz.Ascii.net_char 5);
  Testkit.check_true "distinct small ids"
    (Viz.Ascii.net_char 3 <> Viz.Ascii.net_char 4)

let test_render_layer_dimensions () =
  let g = Grid.create ~width:7 ~height:4 () in
  let s = Viz.Ascii.render_layer g ~layer:0 in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Testkit.check_int "rows" 4 (List.length lines);
  List.iter (fun l -> Testkit.check_int "cols" 7 (String.length l)) lines

let test_render_markers () =
  let g = Grid.create ~width:5 ~height:3 () in
  Grid.set_obstacle g ~layer:0 ~x:1 ~y:1;
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:0 ~y:0);
  let s = Viz.Ascii.render_layer g ~layer:0 in
  Testkit.check_true "obstacle marker" (String.contains s '#');
  Testkit.check_true "net marker" (String.contains s '1');
  Testkit.check_true "free marker" (String.contains s '.')

let test_render_orientation () =
  (* y increases upwards, so the cell at (0, 0) appears on the last line. *)
  let g = Grid.create ~width:3 ~height:2 () in
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:0 ~y:0);
  let lines =
    Viz.Ascii.render_layer g ~layer:0
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  (match lines with
  | [ top; bottom ] ->
      Testkit.check_true "top row empty" (not (String.contains top '1'));
      Testkit.check_true "bottom row has net" (String.contains bottom '1')
  | _ -> Alcotest.fail "unexpected line count")

let test_render_combined_with_vias () =
  let g = Grid.create ~width:4 ~height:3 () in
  Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:1 ~y:1);
  Grid.occupy g ~net:1 (Grid.node g ~layer:1 ~x:1 ~y:1);
  Grid.set_via g ~x:1 ~y:1;
  let s = Viz.Ascii.render g in
  Testkit.check_true "via map present" (String.contains s 'x');
  Testkit.check_true "titles present" (String.length s > 20)

let test_render_problem_shows_pins () =
  let p =
    Netlist.Build.switchbox ~width:6 ~height:5
      ~top:[| 1; 0; 0; 0; 0; 2 |]
      ()
  in
  let s = Viz.Ascii.render_problem p in
  Testkit.check_true "net 1 pin" (String.contains s '1');
  Testkit.check_true "net 2 pin" (String.contains s '2')

let test_heatmap_render () =
  let p =
    Workload.Gen.routable_chip ~macro_cols:2 ~macro_rows:2
      (Util.Prng.create 8) ~width:32 ~height:24
  in
  let s = Viz.Ascii.render_heatmap p in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Testkit.check_int "rows" 24 (List.length lines);
  Testkit.check_true "macros marked" (String.contains s '#')

let test_usage_render () =
  let _, g = routed_example () in
  let s = Viz.Ascii.render_usage g in
  Testkit.check_true "has used cells"
    (String.contains s '1' || String.contains s '2')

let test_svg_structure () =
  let p, g = routed_example () in
  let svg = Viz.Svg.render p g in
  let contains sub =
    let rec search i =
      i + String.length sub <= String.length svg
      && (String.sub svg i (String.length sub) = sub || search (i + 1))
    in
    search 0
  in
  Testkit.check_true "opens svg" (contains "<svg");
  Testkit.check_true "closes svg" (contains "</svg>");
  Testkit.check_true "has wiring lines" (contains "<line");
  Testkit.check_true "has pin circles" (contains "<circle");
  Testkit.check_true "has pin labels" (contains "<text")

let test_svg_escapes_net_names () =
  (* Net names are client-chosen free text (the service lets clients pick
     them); markup metacharacters must come out escaped or the SVG is not
     well-formed XML. *)
  let net name id pins = Netlist.Net.make ~id ~name pins in
  let p =
    Netlist.Problem.make ~kind:Netlist.Problem.Region ~name:"esc" ~width:6
      ~height:5
      [
        net "a<b" 1 [ Netlist.Net.pin 0 0; Netlist.Net.pin 5 0 ];
        net "x&\"y'\"" 2 [ Netlist.Net.pin 0 4; Netlist.Net.pin 5 4 ];
      ]
  in
  let svg = Viz.Svg.render p (Netlist.Problem.instantiate p) in
  let contains sub =
    let rec search i =
      i + String.length sub <= String.length svg
      && (String.sub svg i (String.length sub) = sub || search (i + 1))
    in
    search 0
  in
  Testkit.check_true "angle bracket escaped" (contains "a&lt;b");
  Testkit.check_true "ampersand and quotes escaped"
    (contains "x&amp;&quot;y&apos;&quot;");
  Testkit.check_true "raw name absent" (not (contains "a<b"));
  Testkit.check_true "raw ampersand name absent" (not (contains "x&\""));
  Testkit.check_true "names carried as tooltips" (contains "<title>")

let test_svg_save () =
  let p, g = routed_example () in
  let path = Filename.temp_file "router" ".svg" in
  Viz.Svg.save path p g;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Testkit.check_true "file written" (len > 100)

let test_svg_scales_with_cell () =
  let p, g = routed_example () in
  let small = Viz.Svg.render ~cell:8 p g in
  let large = Viz.Svg.render ~cell:24 p g in
  Testkit.check_true "different sizes" (small <> large)

let () =
  Alcotest.run "viz"
    [
      ( "ascii",
        [
          Alcotest.test_case "net chars" `Quick test_net_char_stable_and_distinct;
          Alcotest.test_case "layer dimensions" `Quick test_render_layer_dimensions;
          Alcotest.test_case "markers" `Quick test_render_markers;
          Alcotest.test_case "orientation" `Quick test_render_orientation;
          Alcotest.test_case "combined with vias" `Quick test_render_combined_with_vias;
          Alcotest.test_case "problem pins" `Quick test_render_problem_shows_pins;
          Alcotest.test_case "heatmap" `Quick test_heatmap_render;
          Alcotest.test_case "usage map" `Quick test_usage_render;
        ] );
      ( "svg",
        [
          Alcotest.test_case "structure" `Quick test_svg_structure;
          Alcotest.test_case "escapes net names" `Quick
            test_svg_escapes_net_names;
          Alcotest.test_case "save" `Quick test_svg_save;
          Alcotest.test_case "cell scaling" `Quick test_svg_scales_with_cell;
        ] );
    ]
