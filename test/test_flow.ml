(* The mini-flow (DESIGN.md §13): annealing placement, global-route
   guides, guide-windowed detailed routing.

   Pinned here:
   - the placer's incremental objective is exact: any applied move keeps
     the running cost equal to a from-scratch recompute, and undo
     restores it to the byte;
   - placement and class sections round-trip through the text format;
   - guides never change the answer: on every committed macro instance
     the flow's layout is byte-identical (Grid.equal) to the full-window
     route of the realized problem, and identical across --jobs;
   - the global router's capacity model is self-consistent and the class
     audit agrees with the overflow count. *)

let load name =
  (* cwd is test/ under [dune runtest], the project root under [dune exec] *)
  let file = name ^ ".problem" in
  let candidates =
    [ Filename.concat "../instances" file; Filename.concat "instances" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Netlist.Parse.load_exn path
  | None -> Alcotest.failf "instance %s not found" file

let macro_instances = [ "macro_48x40"; "macro_64x52"; "macro_128x104" ]

let gen_macro seed =
  Workload.Gen.macro ~macros:4 (Util.Prng.create seed) ~width:48 ~height:40
    ~nets:8

let placed_of seed =
  match Place.place ~seed:(seed lxor 0x9E37) (gen_macro seed) with
  | Ok (p, _) -> p
  | Error msg -> Alcotest.failf "placer failed on seed %d: %s" seed msg

(* --- placer: move/undo exactness --- *)

let prop_move_undo_exact =
  Testkit.qcheck ~count:60 "placer undo restores the objective exactly"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let st = Place.Internal.init (placed_of seed) in
      let prng = Util.Prng.create (seed + 1) in
      let ok = ref (Place.Internal.cost st = Place.Internal.recompute_cost st) in
      for i = 1 to 40 do
        let before = Place.Internal.cost st in
        let applied = Place.Internal.random_move st prng ~range:8 in
        (* Applied or not, the incremental cost must match a recompute. *)
        if Place.Internal.cost st <> Place.Internal.recompute_cost st then
          ok := false;
        if applied && i mod 2 = 0 then begin
          (* Undo half the applied moves: exact restoration. *)
          Place.Internal.undo st;
          if Place.Internal.cost st <> before then ok := false
        end
      done;
      !ok)

(* --- parse round-trip of placement + class sections --- *)

let prop_macro_roundtrip =
  Testkit.qcheck ~count:60 "macro problems round-trip through the format"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let p = gen_macro seed in
      let text = Netlist.Parse.to_string p in
      match Netlist.Parse.of_string text with
      | Error e -> QCheck2.Test.fail_report (Netlist.Parse.error_to_string e)
      | Ok p' -> String.equal text (Netlist.Parse.to_string p'))

let prop_placed_roundtrip =
  Testkit.qcheck ~count:30 "placed problems round-trip through the format"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let p = placed_of seed in
      let text = Netlist.Parse.to_string p in
      match Netlist.Parse.of_string text with
      | Error e -> QCheck2.Test.fail_report (Netlist.Parse.error_to_string e)
      | Ok p' ->
          Netlist.Problem.placed p'
          && String.equal text (Netlist.Parse.to_string p'))

(* --- placer determinism --- *)

let prop_place_deterministic =
  Testkit.qcheck ~count:20 "equal seeds give byte-equal placements"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let p = gen_macro seed in
      let txt q =
        match Place.place ~seed:7 q with
        | Ok (placed, _) -> Netlist.Parse.to_string placed
        | Error msg -> Alcotest.failf "placer failed: %s" msg
      in
      String.equal (txt p) (txt p))

(* --- groute: capacity model self-consistency --- *)

let check_groute_consistent name (gr : Groute.t) =
  let tiles = gr.Groute.tiles_x * gr.Groute.tiles_y in
  let overflow = ref 0 in
  for t = 0 to tiles - 1 do
    let by_class =
      Array.fold_left (fun a row -> a + row.(t)) 0 gr.Groute.class_usage
    in
    Alcotest.(check int)
      (Printf.sprintf "%s: tile %d class usage sums to total" name t)
      gr.Groute.usage.(t) by_class;
    if gr.Groute.usage.(t) > gr.Groute.capacity.(t) then incr overflow
  done;
  Alcotest.(check int)
    (Printf.sprintf "%s: overflow count matches usage" name)
    !overflow gr.Groute.overflow_tiles;
  (* The audit may reject share violations even without overflow, but an
     overflowing tile must never pass it. *)
  match Groute.audit gr with
  | Ok () ->
      Alcotest.(check int)
        (Printf.sprintf "%s: audit ok => no overflow" name)
        0 gr.Groute.overflow_tiles
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: audit error names a tile (%s)" name msg)
        true
        (Testkit.contains msg "tile")

(* The committed instances ship unplaced; pin the placement seed so the
   groute assertions see the same realization every run. *)
let realize_placed name =
  match Place.place ~seed:Router.Config.default.Router.Config.seed (load name) with
  | Ok (placed, _) -> Netlist.Problem.realize placed
  | Error msg -> Alcotest.failf "%s: placer failed: %s" name msg

let test_groute_instances () =
  List.iter
    (fun name -> check_groute_consistent name (Groute.run (realize_placed name)))
    macro_instances

let test_groute_audit_clean () =
  (* The two smaller committed instances have no overflow: the class
     capacity model must audit clean on them. *)
  List.iter
    (fun name ->
      match Groute.audit (Groute.run (realize_placed name)) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: audit failed: %s" name msg)
    [ "macro_48x40"; "macro_64x52" ]

(* --- flow: guided = full-window, identical across jobs --- *)

let flow_config jobs = { Router.Config.default with Router.Config.jobs }

let check_flow_instance name =
  let problem = load name in
  let f =
    match Flow.run ~config:(flow_config 1) problem with
    | Ok f -> f
    | Error msg -> Alcotest.failf "%s: flow failed: %s" name msg
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: flow completes" name)
    true f.Flow.result.Router.Engine.completed;
  let violations = Drc.Check.check f.Flow.realized f.Flow.result.Router.Engine.grid in
  if violations <> [] then
    Alcotest.failf "%s: DRC violations:\n%s" name (Drc.Check.explain violations);
  (* Same forced detailed-route config, no guides: byte-identical. *)
  let forced =
    {
      (flow_config 1) with
      Router.Config.kernel = Maze.Search.Buckets;
      window_margin = None;
      use_astar = true;
    }
  in
  let full = Router.Engine.route ~config:forced f.Flow.realized in
  Alcotest.(check bool)
    (Printf.sprintf "%s: guided layout = full-window layout" name)
    true
    (Grid.equal f.Flow.result.Router.Engine.grid full.Router.Engine.grid);
  (* And identical across jobs, guide telemetry included. *)
  let f4 =
    match Flow.run ~config:(flow_config 4) problem with
    | Ok f -> f
    | Error msg -> Alcotest.failf "%s: flow --jobs 4 failed: %s" name msg
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: layout identical across jobs" name)
    true
    (Grid.equal f.Flow.result.Router.Engine.grid
       f4.Flow.result.Router.Engine.grid);
  let g1 = f.Flow.result.Router.Engine.stats.Router.Engine.guide
  and g4 = f4.Flow.result.Router.Engine.stats.Router.Engine.guide in
  Alcotest.(check bool)
    (Printf.sprintf "%s: guide tallies identical across jobs" name)
    true (g1 = g4);
  Alcotest.(check bool)
    (Printf.sprintf "%s: placed problem text identical across jobs" name)
    true
    (String.equal
       (Netlist.Parse.to_string f.Flow.placed)
       (Netlist.Parse.to_string f4.Flow.placed))

let test_flow_small () = List.iter check_flow_instance [ "macro_48x40" ]

let test_flow_large () =
  List.iter check_flow_instance [ "macro_64x52"; "macro_128x104" ]

(* --- flow on unplaced generator output --- *)

let prop_flow_random_macro =
  Testkit.qcheck ~count:8 "flow routes random macro problems guided = full"
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      match Flow.run ~config:(flow_config 1) (gen_macro seed) with
      | Error _ -> true (* an unplaceable random instance is not a bug *)
      | Ok f ->
          let forced =
            {
              (flow_config 1) with
              Router.Config.kernel = Maze.Search.Buckets;
              window_margin = None;
              use_astar = true;
            }
          in
          let full = Router.Engine.route ~config:forced f.Flow.realized in
          Grid.equal f.Flow.result.Router.Engine.grid full.Router.Engine.grid)

let () =
  Alcotest.run "flow"
    [
      ( "place",
        [ prop_move_undo_exact; prop_place_deterministic ] );
      ("format", [ prop_macro_roundtrip; prop_placed_roundtrip ]);
      ( "groute",
        [
          Alcotest.test_case "capacity model self-consistent" `Quick
            test_groute_instances;
          Alcotest.test_case "class audit clean on committed instances" `Quick
            test_groute_audit_clean;
        ] );
      ( "flow",
        [
          Alcotest.test_case "committed instance (small)" `Quick
            test_flow_small;
          Alcotest.test_case "committed instances (large)" `Slow
            test_flow_large;
          prop_flow_random_macro;
        ] );
    ]
