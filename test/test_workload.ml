(* Tests for the workload generators: determinism, structural validity and
   calibration of the hard instances. *)

let text p = Netlist.Parse.to_string p

let test_channel_deterministic () =
  let make seed =
    Workload.Gen.channel (Util.Prng.create seed) ~columns:20 ~nets:8
  in
  Testkit.check_true "same seed, same problem" (text (make 4) = text (make 4));
  Testkit.check_true "different seed differs" (text (make 4) <> text (make 5))

let test_channel_structure () =
  let p = Workload.Gen.channel (Util.Prng.create 1) ~columns:20 ~nets:8 in
  Testkit.check_true "channel kind" (p.Netlist.Problem.kind = Netlist.Problem.Channel);
  Testkit.check_int "width" 20 p.Netlist.Problem.width;
  let d = Netlist.Analysis.channel_density p in
  (* default slack is 2 *)
  Testkit.check_int "tracks = density + slack" (d + 2 + 2) p.Netlist.Problem.height

let test_channel_at_density () =
  let p =
    Workload.Gen.channel_at_density (Util.Prng.create 2) ~columns:40 ~density:10
  in
  Testkit.check_true "density reached"
    (Netlist.Analysis.channel_density p >= 10)

let test_channel_pin_rows_only () =
  let p = Workload.Gen.channel (Util.Prng.create 3) ~columns:16 ~nets:6 in
  List.iter
    (fun (_, (pin : Netlist.Net.pin)) ->
      Testkit.check_true "pins on boundary rows"
        (pin.Netlist.Net.y = 0 || pin.Netlist.Net.y = p.Netlist.Problem.height - 1))
    (Netlist.Problem.pin_cells p)

let test_switchbox_deterministic () =
  let make seed =
    Workload.Gen.switchbox (Util.Prng.create seed) ~width:14 ~height:10 ~nets:9
  in
  Testkit.check_true "same seed" (text (make 7) = text (make 7))

let test_switchbox_pins_on_boundary () =
  let p =
    Workload.Gen.switchbox (Util.Prng.create 1) ~width:14 ~height:10 ~nets:9
  in
  List.iter
    (fun (_, (pin : Netlist.Net.pin)) ->
      let x = pin.Netlist.Net.x and y = pin.Netlist.Net.y in
      Testkit.check_true "on boundary"
        (x = 0 || x = 13 || y = 0 || y = 9))
    (Netlist.Problem.pin_cells p)

let test_dense_switchbox_fill () =
  let p =
    Workload.Gen.dense_switchbox ~fill:0.9 (Util.Prng.create 5) ~width:12
      ~height:10
  in
  let slots = (12 * 2) + (8 * 2) in
  Testkit.check_true "most slots pinned"
    (Netlist.Problem.total_pins p >= slots * 7 / 10)

let test_routable_switchbox_is_routable () =
  (* The defining property of the generator. *)
  List.iter
    (fun seed ->
      let p =
        Workload.Gen.routable_switchbox (Util.Prng.create seed) ~width:12
          ~height:10
      in
      let r =
        Router.Engine.route
          ~config:{ Router.Config.default with restarts = 4 }
          p
      in
      Testkit.check_true
        (Printf.sprintf "seed %d routable" seed)
        r.Router.Engine.completed)
    [ 1; 2; 3 ]

let test_routable_switchbox_deterministic () =
  let make () =
    Workload.Gen.routable_switchbox (Util.Prng.create 11) ~width:10 ~height:8
  in
  Testkit.check_true "deterministic" (text (make ()) = text (make ()))

let test_routable_chip_structure () =
  let p =
    Workload.Gen.routable_chip ~macro_cols:2 ~macro_rows:2
      (Util.Prng.create 8) ~width:32 ~height:24
  in
  Testkit.check_int "macro obstructions" 4
    (List.length p.Netlist.Problem.obstructions);
  Testkit.check_true "has nets" (Netlist.Problem.net_count p >= 5);
  (* pins hug macros or the boundary *)
  List.iter
    (fun (_, (pin : Netlist.Net.pin)) ->
      let x = pin.Netlist.Net.x and y = pin.Netlist.Net.y in
      let near_macro =
        List.exists
          (fun (o : Netlist.Problem.obstruction) ->
            Geom.Rect.mem (Geom.Rect.inflate o.Netlist.Problem.obs_rect 1) x y)
          p.Netlist.Problem.obstructions
      in
      let on_boundary = x = 0 || y = 0 || x = 31 || y = 23 in
      Testkit.check_true "pin near macro or boundary" (near_macro || on_boundary))
    (Netlist.Problem.pin_cells p)

let test_routable_chip_is_routable () =
  let p =
    Workload.Gen.routable_chip (Util.Prng.create 3) ~width:48 ~height:32
  in
  let r = Router.Engine.route p in
  Testkit.check_true "chip routes" r.Router.Engine.completed

let test_chip_rejects_tiny_region () =
  try
    ignore
      (Workload.Gen.routable_chip ~macro_cols:5 ~macro_rows:5
         (Util.Prng.create 1) ~width:12 ~height:12);
    Alcotest.fail "expected size rejection"
  with Invalid_argument _ -> ()

let test_demand_map_properties () =
  let p =
    Workload.Gen.routable_chip ~macro_cols:2 ~macro_rows:2
      (Util.Prng.create 8) ~width:32 ~height:24
  in
  let demand = Netlist.Analysis.demand_map p in
  Testkit.check_int "size" (32 * 24) (Array.length demand);
  (* macros are infinite, free corners near zero *)
  let o = List.hd p.Netlist.Problem.obstructions in
  let r = o.Netlist.Problem.obs_rect in
  Testkit.check_true "macro infinite"
    (Netlist.Analysis.demand_at p demand ~x:r.Geom.Rect.x0 ~y:r.Geom.Rect.y0
     = infinity);
  Testkit.check_true "finite elsewhere"
    (Netlist.Analysis.demand_at p demand ~x:0 ~y:0 <> infinity);
  Testkit.check_true "overflow estimate in [0,1]"
    (let v = Netlist.Analysis.overflow_estimate p in
     v >= 0.0 && v <= 1.0)

let test_region_respects_obstacles () =
  let p =
    Workload.Gen.region (Util.Prng.create 13) ~width:16 ~height:12 ~nets:6
  in
  (* Problem.make already validates pins-vs-obstructions; re-validate by
     instantiating. *)
  let g = Netlist.Problem.instantiate p in
  Testkit.check_true "instantiates" (Grid.width g = 16);
  Testkit.check_true "has obstructions"
    (List.length p.Netlist.Problem.obstructions > 0)

let test_hard_instances_stable () =
  (* The fixed-seed instances are part of the repo's benchmark contract:
     lock their shape so accidental generator changes are caught. *)
  let b = Workload.Hard.burstein_like () in
  Testkit.check_int "burstein-like width" 23 b.Netlist.Problem.width;
  Testkit.check_int "burstein-like height" 15 b.Netlist.Problem.height;
  Testkit.check_int "burstein-like nets" 24 (Netlist.Problem.net_count b);
  let t = Workload.Hard.tiny_blocked () in
  Testkit.check_int "tiny width" 8 t.Netlist.Problem.width;
  let d = Workload.Hard.deutsch_like () in
  Testkit.check_int "deutsch-like columns" 72 d.Netlist.Problem.width;
  Testkit.check_true "deutsch-like density >= 19"
    (Netlist.Analysis.channel_density d >= 19)

let test_staircase_properties () =
  let p = Workload.Hard.staircase_channel 6 in
  Testkit.check_int "nets" 6 (Netlist.Problem.net_count p);
  Testkit.check_int "density 2" 2 (Netlist.Analysis.channel_density p);
  let s = Channel.Model.spec_of_problem p in
  let g = Channel.Vcg.of_spec s in
  Testkit.check_false "acyclic" (Channel.Vcg.has_cycle g);
  Testkit.check_int "chain length" 6 (Channel.Vcg.longest_path g)

let test_suites_nonempty_and_named () =
  let channels = Workload.Hard.all_channels () in
  let switchboxes = Workload.Hard.all_switchboxes () in
  Testkit.check_true "channels" (List.length channels >= 5);
  Testkit.check_true "switchboxes" (List.length switchboxes >= 5);
  List.iter
    (fun (name, p) ->
      Testkit.check_true "named" (String.length name > 0);
      Testkit.check_true "has nets" (Netlist.Problem.net_count p > 0))
    (channels @ switchboxes)

let prop_generators_always_valid =
  Testkit.qcheck ~count:30 "generators produce validated problems"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 2))
    (fun (seed, which) ->
      let prng = Util.Prng.create seed in
      let p =
        match which with
        | 0 -> Workload.Gen.channel prng ~columns:15 ~nets:6
        | 1 -> Workload.Gen.switchbox prng ~width:10 ~height:8 ~nets:6
        | _ -> Workload.Gen.region prng ~width:12 ~height:10 ~nets:5
      in
      (* Problem.make validates on construction; instantiating proves the
         grid invariants hold too. *)
      ignore (Netlist.Problem.instantiate p);
      true)

let () =
  Alcotest.run "workload"
    [
      ( "gen",
        [
          Alcotest.test_case "channel deterministic" `Quick test_channel_deterministic;
          Alcotest.test_case "channel structure" `Quick test_channel_structure;
          Alcotest.test_case "channel at density" `Quick test_channel_at_density;
          Alcotest.test_case "channel pin rows" `Quick test_channel_pin_rows_only;
          Alcotest.test_case "switchbox deterministic" `Quick test_switchbox_deterministic;
          Alcotest.test_case "switchbox boundary pins" `Quick test_switchbox_pins_on_boundary;
          Alcotest.test_case "dense fill" `Quick test_dense_switchbox_fill;
          Alcotest.test_case "routable is routable" `Slow test_routable_switchbox_is_routable;
          Alcotest.test_case "routable deterministic" `Quick test_routable_switchbox_deterministic;
          Alcotest.test_case "region obstacles" `Quick test_region_respects_obstacles;
          Alcotest.test_case "chip structure" `Quick test_routable_chip_structure;
          Alcotest.test_case "chip routable" `Slow test_routable_chip_is_routable;
          Alcotest.test_case "chip size rejection" `Quick test_chip_rejects_tiny_region;
          Alcotest.test_case "demand map" `Quick test_demand_map_properties;
          prop_generators_always_valid;
        ] );
      ( "hard",
        [
          Alcotest.test_case "instances stable" `Quick test_hard_instances_stable;
          Alcotest.test_case "staircase" `Quick test_staircase_properties;
          Alcotest.test_case "suites populated" `Quick test_suites_nonempty_and_named;
        ] );
    ]
