(* Tests for the core rip-up-and-reroute engine: completion on the hard
   suites, correctness of shoving, strategy ordering, termination, restarts
   and the randomized end-to-end property. *)

let pin = Netlist.Net.pin

(* --- shove unit tests --- *)

let straight_segment_grid () =
  (* Net 9 runs straight along y=2, x=1..5 on layer 0; rows 1 and 3 free. *)
  let g = Grid.create ~width:8 ~height:6 () in
  for x = 1 to 5 do
    Grid.occupy g ~net:9 (Grid.node g ~layer:0 ~x ~y:2)
  done;
  g

let no_protection _ = false

let test_shove_moves_through_cell () =
  let g = straight_segment_grid () in
  let b = Grid.node g ~layer:0 ~x:3 ~y:2 in
  match Router.Shove.try_shove g ~protected:no_protection ~node:b with
  | None -> Alcotest.fail "expected shove to succeed"
  | Some m ->
      Testkit.check_int "moved net" 9 m.Router.Shove.moved_net;
      Testkit.check_true "cell vacated" (Grid.is_free g b);
      Testkit.check_int "net still one component" 1
        (Drc.Check.connected_components g ~net:9);
      Testkit.check_int "net grew by two" 7 (Grid.count_owned g ~net:9)

let test_shove_rejects_endpoint () =
  let g = straight_segment_grid () in
  let e = Grid.node g ~layer:0 ~x:1 ~y:2 in
  Testkit.check_true "endpoint not shovable"
    (Router.Shove.try_shove g ~protected:no_protection ~node:e = None)

let test_shove_rejects_corner () =
  let g = Grid.create ~width:8 ~height:6 () in
  List.iter
    (fun (x, y) -> Grid.occupy g ~net:9 (Grid.node g ~layer:0 ~x ~y))
    [ (1, 2); (2, 2); (2, 3); (2, 4) ];
  let corner = Grid.node g ~layer:0 ~x:2 ~y:2 in
  Testkit.check_true "corner not shovable"
    (Router.Shove.try_shove g ~protected:no_protection ~node:corner = None)

let test_shove_rejects_junction () =
  let g = Grid.create ~width:8 ~height:6 () in
  (* T junction at (3,2) *)
  List.iter
    (fun (x, y) -> Grid.occupy g ~net:9 (Grid.node g ~layer:0 ~x ~y))
    [ (2, 2); (3, 2); (4, 2); (3, 3) ];
  let t = Grid.node g ~layer:0 ~x:3 ~y:2 in
  Testkit.check_true "junction not shovable"
    (Router.Shove.try_shove g ~protected:no_protection ~node:t = None)

let test_shove_rejects_via_cell () =
  let g = straight_segment_grid () in
  Grid.occupy g ~net:9 (Grid.node g ~layer:1 ~x:3 ~y:2);
  Grid.set_via g ~x:3 ~y:2;
  let b = Grid.node g ~layer:0 ~x:3 ~y:2 in
  Testkit.check_true "via cell not shovable"
    (Router.Shove.try_shove g ~protected:no_protection ~node:b = None)

let test_shove_respects_protection () =
  let g = straight_segment_grid () in
  let b = Grid.node g ~layer:0 ~x:3 ~y:2 in
  Testkit.check_true "protected cell not shovable"
    (Router.Shove.try_shove g ~protected:(fun n -> n = b) ~node:b = None)

let test_shove_needs_free_track () =
  let g = straight_segment_grid () in
  (* Occupy both parallel tracks around x=2..4. *)
  for x = 2 to 4 do
    Grid.occupy g ~net:7 (Grid.node g ~layer:0 ~x ~y:1);
    Grid.occupy g ~net:8 (Grid.node g ~layer:0 ~x ~y:3)
  done;
  let b = Grid.node g ~layer:0 ~x:3 ~y:2 in
  Testkit.check_true "no room to shove"
    (Router.Shove.try_shove g ~protected:no_protection ~node:b = None)

let test_shove_tries_other_side () =
  let g = straight_segment_grid () in
  (* Block only the upper track; shove must go below. *)
  for x = 2 to 4 do
    Grid.occupy g ~net:7 (Grid.node g ~layer:0 ~x ~y:3)
  done;
  let b = Grid.node g ~layer:0 ~x:3 ~y:2 in
  match Router.Shove.try_shove g ~protected:no_protection ~node:b with
  | None -> Alcotest.fail "expected downward shove"
  | Some m ->
      Testkit.check_true "moved into row 1"
        (List.for_all (fun n -> Grid.node_y g n = 1) m.Router.Shove.added)

let test_shove_vertical_segment () =
  let g = Grid.create ~width:8 ~height:6 () in
  for y = 1 to 4 do
    Grid.occupy g ~net:9 (Grid.node g ~layer:1 ~x:4 ~y)
  done;
  let b = Grid.node g ~layer:1 ~x:4 ~y:2 in
  match Router.Shove.try_shove g ~protected:no_protection ~node:b with
  | None -> Alcotest.fail "vertical shove failed"
  | Some _ ->
      Testkit.check_int "still connected" 1
        (Drc.Check.connected_components g ~net:9)

(* --- net ordering --- *)

let order_problem () =
  Netlist.Problem.make ~name:"ord" ~width:20 ~height:20
    [
      Netlist.Net.make ~id:1 ~name:"short" [ pin 0 0; pin 1 1 ];
      Netlist.Net.make ~id:2 ~name:"long" [ pin 0 2; pin 19 19 ];
      Netlist.Net.make ~id:3 ~name:"multi"
        [ pin 5 5; pin 6 6; pin 7 7; pin 8 8 ];
    ]

let test_order_strategies () =
  let p = order_problem () in
  let ids = [ 1; 2; 3 ] in
  Testkit.check_true "as given"
    (Router.Order.arrange Router.Config.As_given ~seed:1 p ids = ids);
  Testkit.check_true "hpwl ascending puts short first"
    (List.hd (Router.Order.arrange Router.Config.Hpwl_ascending ~seed:1 p ids) = 1);
  Testkit.check_true "hpwl descending puts long first"
    (List.hd (Router.Order.arrange Router.Config.Hpwl_descending ~seed:1 p ids) = 2);
  Testkit.check_true "pins descending puts multi first"
    (List.hd (Router.Order.arrange Router.Config.Pins_descending ~seed:1 p ids) = 3);
  let r = Router.Order.arrange Router.Config.Random ~seed:1 p ids in
  Testkit.check_true "random is permutation" (List.sort Int.compare r = ids);
  let c = Router.Order.arrange Router.Config.Congestion_descending ~seed:1 p ids in
  Testkit.check_true "congestion is permutation" (List.sort Int.compare c = ids)

let test_order_restart_rotation () =
  let ids = List.init 10 (fun i -> i + 1) in
  Testkit.check_true "attempt 0 unchanged"
    (Router.Order.rotate_for_restart ~seed:5 ~attempt:0 ids = ids);
  let a1 = Router.Order.rotate_for_restart ~seed:5 ~attempt:1 ids in
  let a1' = Router.Order.rotate_for_restart ~seed:5 ~attempt:1 ids in
  Testkit.check_true "deterministic" (a1 = a1');
  Testkit.check_true "permutation" (List.sort Int.compare a1 = ids)

(* --- engine end-to-end --- *)

let test_engine_routes_empty_problem () =
  let p = Netlist.Problem.make ~name:"empty" ~width:5 ~height:5 [] in
  let r = Router.Engine.route p in
  Testkit.check_true "trivially complete" r.Router.Engine.completed

let test_engine_routes_trivial_nets () =
  let p =
    Netlist.Problem.make ~name:"triv" ~width:5 ~height:5
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 2 2 ] ]
  in
  let r = Router.Engine.route p in
  Testkit.check_true "complete" r.Router.Engine.completed;
  Testkit.check_int "no searches" 0 r.Router.Engine.stats.Router.Engine.searches

let test_engine_switchbox_suite () =
  List.iter
    (fun (_, p) -> ignore (Testkit.route_clean p))
    (Workload.Hard.all_switchboxes ())

let test_engine_channel_suite () =
  List.iter
    (fun (_, p) -> ignore (Testkit.route_clean p))
    (Workload.Hard.all_channels ())

let test_maze_only_fails_where_full_succeeds () =
  let p = Workload.Hard.tiny_blocked () in
  List.iter
    (fun order ->
      let cfg = { Router.Config.maze_only with order; seed = 3 } in
      let r = Router.Engine.route ~config:cfg p in
      Testkit.check_false "maze-only fails" r.Router.Engine.completed;
      (* ...but whatever it did route is still legal *)
      Testkit.check_true "partial result legal" (Testkit.drc_routed p r = []))
    Router.Config.
      [ As_given; Hpwl_ascending; Hpwl_descending; Pins_descending; Random ];
  let full = Testkit.route_clean p in
  Testkit.check_true "full used modification"
    (full.Router.Engine.stats.Router.Engine.rips > 0
    || full.Router.Engine.stats.Router.Engine.shoves > 0)

let test_engine_cyclic_channel () =
  (* The classic VC cycle: unroutable for dogleg-free channel routers at any
     width, routed by the engine at density. *)
  let p = Workload.Hard.cyclic_channel () in
  ignore (Testkit.route_clean p)

let test_engine_reports_unroutable () =
  (* Pin sealed in a box: no router can succeed; the engine must terminate
     and report the net rather than loop. *)
  let p =
    Netlist.Problem.make ~name:"sealed" ~width:10 ~height:10
      ~obstructions:
        [
          {
            Netlist.Problem.obs_layer = None;
            obs_rect = Geom.Rect.make 4 4 4 6;
          };
          {
            Netlist.Problem.obs_layer = None;
            obs_rect = Geom.Rect.make 6 4 6 6;
          };
          {
            Netlist.Problem.obs_layer = None;
            obs_rect = Geom.Rect.make 5 4 5 4;
          };
          {
            Netlist.Problem.obs_layer = None;
            obs_rect = Geom.Rect.make 5 6 5 6;
          };
        ]
      [
        Netlist.Net.make ~id:1 ~name:"boxed" [ pin 5 5; pin 0 0 ];
        Netlist.Net.make ~id:2 ~name:"free" [ pin 9 0; pin 9 9 ];
      ]
  in
  let r = Router.Engine.route p in
  Testkit.check_false "incomplete" r.Router.Engine.completed;
  Testkit.check_true "boxed net reported"
    (r.Router.Engine.stats.Router.Engine.failed_nets = [ 1 ]);
  Testkit.check_true "other net routed" (Testkit.drc_routed p r = [])

let test_engine_termination_budget () =
  (* Even with an absurdly over-constrained instance the engine halts and
     respects the rip budget. *)
  let prng = Util.Prng.create 99 in
  let p = Workload.Gen.dense_switchbox ~fill:1.0 prng ~width:10 ~height:8 in
  let config = { Router.Config.default with rip_budget_factor = 2 } in
  let r = Router.Engine.route ~config p in
  let budget = 2 * Netlist.Problem.net_count p in
  Testkit.check_true "rips bounded"
    (r.Router.Engine.stats.Router.Engine.rips <= budget + Netlist.Problem.net_count p);
  Testkit.check_true "partial result legal" (Testkit.drc_routed p r = [])

let test_engine_fast_kernels_complete_clean () =
  (* The bucket-queue kernel and the windowed A* search are drop-in
     replacements: the hard switchbox still completes, DRC-clean, and the
     effort counters stay populated. *)
  let p = Workload.Hard.burstein_like () in
  List.iter
    (fun config ->
      let r = Testkit.route_clean ~config p in
      let e = r.Router.Engine.stats.Router.Engine.effort in
      Testkit.check_true "expansions counted"
        (e.Router.Outcome.total_expanded > 0);
      Testkit.check_int "phase split sums to total" e.Router.Outcome.total_expanded
        (e.Router.Outcome.maze_expanded + e.Router.Outcome.weak_expanded
        + e.Router.Outcome.strong_expanded))
    [
      { Router.Config.default with kernel = Maze.Search.Buckets };
      {
        Router.Config.default with
        kernel = Maze.Search.Buckets;
        use_astar = true;
        window_margin = Some 4;
      };
    ]

let test_engine_weak_only_uses_shoves_not_rips () =
  let p = Workload.Hard.burstein_like () in
  let r = Router.Engine.route ~config:Router.Config.weak_only p in
  Testkit.check_int "no rips in weak-only" 0 r.Router.Engine.stats.Router.Engine.rips

let test_engine_maze_only_no_modification () =
  let p = Workload.Hard.burstein_like () in
  let r = Router.Engine.route ~config:Router.Config.maze_only p in
  Testkit.check_int "no rips" 0 r.Router.Engine.stats.Router.Engine.rips;
  Testkit.check_int "no shoves" 0 r.Router.Engine.stats.Router.Engine.shoves

let test_engine_strategy_monotonicity () =
  (* More capable configurations route at least as many nets on the suite. *)
  List.iter
    (fun (_, p) ->
      let failed config =
        List.length
          (Router.Engine.route ~config p).Router.Engine.stats
            .Router.Engine.failed_nets
      in
      let maze = failed Router.Config.maze_only in
      let weak = failed Router.Config.weak_only in
      let full = failed Router.Config.default in
      Testkit.check_true "weak <= maze" (weak <= maze);
      Testkit.check_true "full <= weak" (full <= weak))
    (Workload.Hard.all_switchboxes ())

let test_engine_restarts_help_or_match () =
  let p = Workload.Hard.tiny_blocked () in
  let one = Router.Engine.route ~config:Router.Config.maze_only p in
  let many =
    Router.Engine.route
      ~config:{ Router.Config.maze_only with restarts = 8 }
      p
  in
  Testkit.check_true "restarts no worse"
    (List.length many.Router.Engine.stats.Router.Engine.failed_nets
    <= List.length one.Router.Engine.stats.Router.Engine.failed_nets);
  Testkit.check_true "attempts recorded"
    (many.Router.Engine.stats.Router.Engine.attempts >= 1)

let test_engine_astar_same_completion () =
  let p = Workload.Hard.tiny_blocked () in
  let dij = Router.Engine.route p in
  let ast =
    Router.Engine.route ~config:{ Router.Config.default with use_astar = true } p
  in
  Testkit.check_true "both complete"
    (dij.Router.Engine.completed && ast.Router.Engine.completed);
  Testkit.check_true "astar expands no more"
    (ast.Router.Engine.stats.Router.Engine.expanded
    <= dij.Router.Engine.stats.Router.Engine.expanded)

let test_engine_fixed_prewire_untouched () =
  (* A fixed prewire wall: the engine must route around it, never through. *)
  let wall = List.init 6 (fun i -> (0, 4, i + 2)) in
  let p =
    Netlist.Problem.make ~name:"fixedwall" ~width:10 ~height:10
      ~prewires:
        [ { Netlist.Problem.pre_net = 2; pre_cells = wall; pre_fixed = true } ]
      [
        Netlist.Net.make ~id:1 ~name:"crosser" [ pin 0 5; pin 9 5 ];
        Netlist.Net.make ~id:2 ~name:"wall" [ pin 4 2; pin 4 7 ];
      ]
  in
  let r = Testkit.route_clean p in
  let g = r.Router.Engine.grid in
  List.iter
    (fun (layer, x, y) ->
      Testkit.check_true "wall cell still owned by net 2"
        (Grid.occ_at g ~layer ~x ~y = 2))
    wall

let test_engine_loose_prewire_rippable () =
  (* A loose prewire blocking the only corridor must be ripped and the net
     rerouted. *)
  let p =
    Netlist.Problem.make ~name:"loose" ~width:8 ~height:5
      ~obstructions:
        [
          {
            Netlist.Problem.obs_layer = None;
            obs_rect = Geom.Rect.make 3 0 3 2;
          };
          {
            Netlist.Problem.obs_layer = Some 1;
            obs_rect = Geom.Rect.make 3 3 3 4;
          };
        ]
      ~prewires:
        [
          {
            Netlist.Problem.pre_net = 2;
            pre_cells = [ (0, 3, 3); (0, 3, 4) ];
            pre_fixed = false;
          };
        ]
      [
        Netlist.Net.make ~id:1 ~name:"crosser" [ pin 0 3; pin 7 3 ];
        Netlist.Net.make ~id:2 ~name:"blocker" [ pin 2 4; pin 4 4 ];
      ]
  in
  ignore (Testkit.route_clean p)

let test_engine_edge_configs () =
  let p = Workload.Hard.tiny_blocked () in
  (* Zero weak passes behaves like weak disabled. *)
  let no_weak_passes =
    Router.Engine.route
      ~config:{ Router.Config.default with max_weak_passes = 0 }
      p
  in
  Testkit.check_int "no shoves at zero passes" 0
    no_weak_passes.Router.Engine.stats.Router.Engine.shoves;
  (* Zero rip budget disables strong modification. *)
  let no_budget =
    Router.Engine.route
      ~config:{ Router.Config.default with rip_budget_factor = 0 }
      p
  in
  Testkit.check_int "no rips at zero budget" 0
    no_budget.Router.Engine.stats.Router.Engine.rips;
  (* Both off must equal maze-only completion-wise. *)
  let both_off =
    Router.Engine.route
      ~config:
        {
          Router.Config.default with
          max_weak_passes = 0;
          rip_budget_factor = 0;
          enable_weak = false;
          enable_strong = false;
        }
      p
  in
  let maze = Router.Engine.route ~config:Router.Config.maze_only p in
  Testkit.check_true "equals maze-only"
    (both_off.Router.Engine.completed = maze.Router.Engine.completed)

let test_cost_cache_transparent () =
  (* The failure-replay cache may only skip work, never change the
     result: layouts and failure sets with and without it are identical,
     and on an overfull box whose failed nets get re-attempted against an
     unchanged grid it actually fires. *)
  let p =
    Workload.Gen.dense_switchbox ~fill:0.9 (Util.Prng.create 4242) ~width:12
      ~height:10
  in
  let on = Router.Engine.route ~config:Router.Config.maze_only p in
  let off =
    Router.Engine.route
      ~config:{ Router.Config.maze_only with Router.Config.cost_cache = false }
      p
  in
  Testkit.check_true "identical layout"
    (Grid.equal on.Router.Engine.grid off.Router.Engine.grid);
  Testkit.check_true "identical failures"
    (on.Router.Engine.stats.Router.Engine.failed_nets
    = off.Router.Engine.stats.Router.Engine.failed_nets);
  Testkit.check_int "cache off never hits" 0
    off.Router.Engine.stats.Router.Engine.par.Router.Outcome.cache_hits;
  Testkit.check_true "cache on replays failures"
    (on.Router.Engine.stats.Router.Engine.par.Router.Outcome.cache_hits > 0);
  (* skipped searches are exactly the hits: never more searches with the
     cache than without *)
  Testkit.check_true "cache only skips work"
    (on.Router.Engine.stats.Router.Engine.searches
    <= off.Router.Engine.stats.Router.Engine.searches)

let test_engine_deterministic () =
  let p = Workload.Hard.burstein_like () in
  let r1 = Router.Engine.route p and r2 = Router.Engine.route p in
  Testkit.check_true "same completion"
    (r1.Router.Engine.completed = r2.Router.Engine.completed);
  Testkit.check_true "same stats"
    (r1.Router.Engine.stats = r2.Router.Engine.stats);
  let same_wiring =
    List.for_all
      (fun net ->
        Grid.occupied_nodes r1.Router.Engine.grid ~net
        = Grid.occupied_nodes r2.Router.Engine.grid ~net)
      (List.init (Netlist.Problem.net_count p) (fun i -> i + 1))
  in
  Testkit.check_true "identical wiring" same_wiring

let prop_shove_preserves_invariants =
  Testkit.qcheck ~count:80 "shove preserves connectivity and cell count"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let g = Grid.create ~width:10 ~height:8 () in
      (* a random straight segment of net 9 *)
      let horizontal = Util.Prng.bool prng in
      let layer = Util.Prng.int prng 2 in
      let len = Util.Prng.int_in prng 3 6 in
      let fixed = Util.Prng.int_in prng 1 6 in
      let start = Util.Prng.int_in prng 0 (10 - len - 1) in
      let cells =
        List.init len (fun i ->
            if horizontal then (start + i, fixed) else (fixed mod 8, min 7 (start + i)))
      in
      let cells = List.sort_uniq compare cells in
      List.iter
        (fun (x, y) -> Grid.occupy g ~net:9 (Grid.node g ~layer ~x ~y))
        cells;
      (* random clutter of another net *)
      for _ = 1 to Util.Prng.int prng 12 do
        let x = Util.Prng.int prng 10 and y = Util.Prng.int prng 8 in
        let n = Grid.node g ~layer:(Util.Prng.int prng 2) ~x ~y in
        if Grid.is_free g n then Grid.occupy g ~net:3 n
      done;
      let before9 = Grid.count_owned g ~net:9 in
      let before3 = Grid.count_owned g ~net:3 in
      let components_before = Drc.Check.connected_components g ~net:9 in
      (* try to shove a random cell of net 9 *)
      let target =
        let owned = Grid.occupied_nodes g ~net:9 in
        List.nth owned (Util.Prng.int prng (List.length owned))
      in
      match Router.Shove.try_shove g ~protected:(fun _ -> false) ~node:target with
      | None ->
          (* grid unchanged *)
          Grid.count_owned g ~net:9 = before9
          && Grid.count_owned g ~net:3 = before3
          && Drc.Check.connected_components g ~net:9 = components_before
      | Some _ ->
          Grid.count_owned g ~net:9 = before9 + 2
          && Grid.count_owned g ~net:3 = before3
          && Drc.Check.connected_components g ~net:9 = components_before
          && Grid.is_free g target)

(* --- refinement --- *)

let test_refine_monotone_and_clean () =
  List.iter
    (fun (_, p) ->
      let r = Router.Engine.route p in
      if r.Router.Engine.completed then begin
        let g = r.Router.Engine.grid in
        let s = Router.Improve.refine p g in
        Testkit.check_true "wirelength monotone"
          (s.Router.Improve.wirelength_after <= s.Router.Improve.wirelength_before);
        Testkit.check_true "still clean" (Drc.Check.is_clean p g)
      end)
    (Workload.Hard.all_switchboxes ())

let test_refine_restores_when_no_gain () =
  (* A single straight net is already optimal: refine must not change it. *)
  let p =
    Netlist.Problem.make ~name:"straight" ~width:10 ~height:5
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 0 2; pin 9 2 ] ]
  in
  let r = Router.Engine.route p in
  let wl_before = Router.Outcome.total_wirelength r.Router.Engine.grid p in
  let s = Router.Improve.refine p r.Router.Engine.grid in
  Testkit.check_int "unchanged" wl_before s.Router.Improve.wirelength_after;
  Testkit.check_int "nothing improved" 0 s.Router.Improve.improved_nets;
  Testkit.check_true "clean" (Drc.Check.is_clean p r.Router.Engine.grid)

let test_refine_skips_fixed_prewire_nets () =
  (* Net 1 has a deliberately wasteful fixed route; refine must not touch
     it. *)
  let detour = [ (0, 1, 1); (0, 1, 2); (0, 2, 2); (0, 3, 2); (0, 3, 1) ] in
  let p =
    Netlist.Problem.make ~name:"fixed-detour" ~width:6 ~height:4
      ~prewires:
        [ { Netlist.Problem.pre_net = 1; pre_cells = detour; pre_fixed = true } ]
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 0 1; pin 4 1 ] ]
  in
  let r = Router.Engine.route p in
  Testkit.check_true "routed" r.Router.Engine.completed;
  ignore (Router.Improve.refine p r.Router.Engine.grid);
  List.iter
    (fun (layer, x, y) ->
      Testkit.check_true "fixed cell kept"
        (Grid.occ_at r.Router.Engine.grid ~layer ~x ~y = 1))
    detour

let test_refine_improves_known_detour () =
  (* Loose prewire takes a detour; refinement straightens it. *)
  let detour =
    [ (0, 1, 0); (0, 1, 1); (0, 1, 2); (0, 2, 2); (0, 3, 2); (0, 3, 1);
      (0, 3, 0) ]
  in
  let p =
    Netlist.Problem.make ~name:"detour" ~width:6 ~height:4
      ~prewires:
        [ { Netlist.Problem.pre_net = 1; pre_cells = detour; pre_fixed = false } ]
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 4 0 ] ]
  in
  let g = Netlist.Problem.instantiate p in
  Testkit.check_true "prewired net connected"
    (Drc.Check.connected_components g ~net:1 = 1);
  let before = Router.Outcome.total_wirelength g p in
  let s = Router.Improve.refine p g in
  Testkit.check_true "improved" (s.Router.Improve.wirelength_after < before);
  Testkit.check_true "clean" (Drc.Check.is_clean p g)

let test_engine_routes_l_shaped_region () =
  let outline = Geom.Outline.l_shape ~width:14 ~height:10 ~notch_w:6 ~notch_h:4 in
  let p =
    Netlist.Build.of_pins_in_outline ~name:"l-region" ~outline
      [
        (1, pin 0 0); (1, pin 13 5);
        (2, pin 0 9); (2, pin 13 0);
        (3, pin 3 9); (3, pin 7 9); (3, pin 7 0);
      ]
  in
  let r = Testkit.route_clean p in
  (* no wiring inside the notch *)
  let g = r.Router.Engine.grid in
  Grid.iter_planar g (fun ~x ~y ->
      if not (Geom.Outline.mem outline x y) then begin
        Testkit.check_true "notch unwired L0" (Grid.occ_at g ~layer:0 ~x ~y <= 0);
        Testkit.check_true "notch unwired L1" (Grid.occ_at g ~layer:1 ~x ~y <= 0)
      end)

let test_engine_prunes_orphan_prewire () =
  (* A loose prewire with a dead-end stub off to the side: whatever the
     router does with the main run, no floating fragment may survive. *)
  let p =
    Netlist.Problem.make ~name:"orphan" ~width:10 ~height:6
      ~prewires:
        [
          {
            Netlist.Problem.pre_net = 1;
            (* a stub far from the straight pin-to-pin line *)
            pre_cells = [ (0, 4, 4); (0, 5, 4); (0, 6, 4) ];
            pre_fixed = false;
          };
        ]
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 9 0 ] ]
  in
  let r = Testkit.route_clean p in
  (* route_clean already implies single-component connectivity, i.e. the
     stub was either integrated or released. *)
  Testkit.check_int "one component" 1
    (Drc.Check.connected_components r.Router.Engine.grid ~net:1)

let test_config_describe () =
  Testkit.check_true "full"
    (Router.Config.describe Router.Config.default = "weak+strong, order=hpwl-desc");
  Testkit.check_true "maze"
    (Router.Config.describe Router.Config.maze_only = "maze-only, order=hpwl-desc");
  let cfg = { Router.Config.weak_only with use_astar = true; restarts = 3 } in
  let s = Router.Config.describe cfg in
  Testkit.check_true "mentions astar"
    (String.length s > 0
    && (let has sub =
          let rec search i =
            i + String.length sub <= String.length s
            && (String.sub s i (String.length sub) = sub || search (i + 1))
          in
          search 0
        in
        has "astar" && has "restarts=3" && has "weak-only"))

let test_outcome_measure () =
  let p =
    Netlist.Problem.make ~name:"m" ~width:6 ~height:4
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 5 0 ] ]
  in
  let g = Netlist.Problem.instantiate p in
  for x = 1 to 4 do
    Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x ~y:0)
  done;
  let m = Router.Outcome.measure_net g ~net:1 in
  Testkit.check_int "cells" 6 m.Router.Outcome.cells;
  Testkit.check_int "wirelength" 5 m.Router.Outcome.wirelength;
  Testkit.check_int "vias" 0 m.Router.Outcome.vias;
  Testkit.check_int "total wl" 5 (Router.Outcome.total_wirelength g p);
  Testkit.check_int "measure list" 1 (List.length (Router.Outcome.measure p g))

(* --- sessions --- *)

let session_problem () =
  Netlist.Problem.make ~name:"sess" ~width:14 ~height:10
    [
      Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 13 9 ];
      Netlist.Net.make ~id:2 ~name:"b" [ pin 0 9; pin 13 0 ];
      Netlist.Net.make ~id:3 ~name:"c" [ pin 0 5; pin 13 5 ];
    ]

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "session op failed: %s" e

let test_session_route_and_verify () =
  let s = Router.Session.create (session_problem ()) in
  Testkit.check_false "initially unrouted" (Router.Session.is_routed s ~net:1);
  let stats = Router.Session.route s in
  Testkit.check_int "all routed" 3 stats.Router.Engine.routed_nets;
  Testkit.check_true "routed flag" (Router.Session.is_routed s ~net:1);
  Testkit.check_true "verify clean" (Router.Session.verify s = [])

let test_session_route_is_incremental () =
  let s = Router.Session.create (session_problem ()) in
  ignore (Router.Session.route s);
  let wiring_before = Grid.occupied_nodes (Router.Session.grid s) ~net:1 in
  (* A second route call must keep the existing wiring (everything is
     already routed, nothing to do). *)
  ignore (Router.Session.route s);
  Testkit.check_true "net 1 wiring preserved"
    (Grid.occupied_nodes (Router.Session.grid s) ~net:1 = wiring_before)

let test_session_add_net () =
  let s = Router.Session.create (session_problem ()) in
  ignore (Router.Session.route s);
  (* Find two free cells for the new pins. *)
  let g = Router.Session.grid s in
  let free = ref [] in
  Grid.iter_nodes g (fun n -> if Grid.is_free g n then free := n :: !free);
  (match !free with
  | p1 :: rest ->
      let p2 = List.nth rest (List.length rest - 1) in
      let mk n =
        Netlist.Net.pin ~layer:(Grid.node_layer g n) (Grid.node_x g n)
          (Grid.node_y g n)
      in
      let id = ok_or_fail (Router.Session.add_net s ~name:"fresh" [ mk p1; mk p2 ]) in
      Testkit.check_int "new id" 4 id;
      Testkit.check_false "not yet routed" (Router.Session.is_routed s ~net:id)
  | [] -> Alcotest.fail "no free cells");
  ignore (Router.Session.route s);
  Testkit.check_true "verify clean" (Router.Session.verify s = [])

let test_session_add_net_validation () =
  let s = Router.Session.create (session_problem ()) in
  (match Router.Session.add_net s ~name:"a" [ pin 1 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate name accepted");
  match Router.Session.add_net s ~name:"clash" [ pin 0 0 ] with
  | Error _ -> () (* (0,0) holds net a's pin *)
  | Ok _ -> Alcotest.fail "occupied pin accepted"

let test_session_rip_and_reroute () =
  let s = Router.Session.create (session_problem ()) in
  ignore (Router.Session.route s);
  ok_or_fail (Router.Session.rip s ~net:2);
  Testkit.check_false "ripped" (Router.Session.is_routed s ~net:2);
  Testkit.check_true "others intact" (Router.Session.is_routed s ~net:1);
  ignore (Router.Session.route s);
  Testkit.check_true "rerouted" (Router.Session.is_routed s ~net:2)

let test_session_freeze_protects_wiring () =
  let s = Router.Session.create (session_problem ()) in
  ignore (Router.Session.route s);
  ok_or_fail (Router.Session.freeze s ~net:1);
  Testkit.check_true "frozen" (Router.Session.is_frozen s ~net:1);
  (match Router.Session.rip s ~net:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "ripped a frozen net");
  (match Router.Session.remove_net s ~net:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "removed a frozen net");
  let wiring = Grid.occupied_nodes (Router.Session.grid s) ~net:1 in
  ok_or_fail (Router.Session.rip s ~net:2);
  ignore (Router.Session.route s);
  Testkit.check_true "frozen wiring unchanged"
    (Grid.occupied_nodes (Router.Session.grid s) ~net:1 = wiring);
  ok_or_fail (Router.Session.thaw s ~net:1);
  ok_or_fail (Router.Session.rip s ~net:1)

let test_session_freeze_requires_routed () =
  let s = Router.Session.create (session_problem ()) in
  match Router.Session.freeze s ~net:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "froze an unrouted net"

let test_session_remove_renumbers () =
  let s = Router.Session.create (session_problem ()) in
  ignore (Router.Session.route s);
  ok_or_fail (Router.Session.remove_net s ~net:2);
  Testkit.check_int "two nets left"
    2
    (Netlist.Problem.net_count (Router.Session.problem s));
  (* "c" is now id 2 and kept its wiring *)
  (match Router.Session.net_id s "c" with
  | Some id ->
      Testkit.check_int "renumbered" 2 id;
      Testkit.check_true "still routed" (Router.Session.is_routed s ~net:id)
  | None -> Alcotest.fail "net c lost");
  Testkit.check_true "b gone" (Router.Session.net_id s "b" = None);
  Testkit.check_true "verify clean" (Router.Session.verify s = [])

let test_session_refine () =
  let s = Router.Session.create (session_problem ()) in
  ignore (Router.Session.route s);
  let r = Router.Session.refine s in
  Testkit.check_true "monotone"
    (r.Router.Improve.wirelength_after <= r.Router.Improve.wirelength_before);
  Testkit.check_true "still clean" (Router.Session.verify s = [])

let test_refine_idempotent () =
  let p = Workload.Hard.burstein_like () in
  let r = Router.Engine.route p in
  let _first = Router.Improve.refine p r.Router.Engine.grid in
  let second = Router.Improve.refine p r.Router.Engine.grid in
  Testkit.check_int "second refine finds nothing" 0
    second.Router.Improve.improved_nets;
  Testkit.check_int "single pass" 1 second.Router.Improve.passes

let prop_engine_random_switchboxes =
  Testkit.qcheck ~count:25 "engine random switchboxes: complete => DRC clean"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let p =
        Workload.Gen.switchbox prng ~width:12 ~height:10
          ~nets:(Util.Prng.int_in prng 4 10)
      in
      let r = Router.Engine.route p in
      Testkit.drc_routed p r = [])

let prop_engine_routable_always_complete =
  Testkit.qcheck ~count:10 "engine completes routable-by-construction boxes"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let p = Workload.Gen.routable_switchbox prng ~width:12 ~height:10 in
      let r = Router.Engine.route ~config:{ Router.Config.default with restarts = 4 } p in
      (* Not guaranteed in theory (the engine is heuristic), but expected on
         this size; treat an incomplete result as acceptable only if legal. *)
      Testkit.drc_routed p r = [])

let prop_engine_regions_with_obstacles =
  Testkit.qcheck ~count:20 "engine regions: routed subset is legal"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let p =
        Workload.Gen.region prng ~width:14 ~height:12
          ~nets:(Util.Prng.int_in prng 3 8)
      in
      let r = Router.Engine.route p in
      Testkit.drc_routed p r = [])

let () =
  Alcotest.run "router"
    [
      ( "shove",
        [
          Alcotest.test_case "moves through cell" `Quick test_shove_moves_through_cell;
          Alcotest.test_case "rejects endpoint" `Quick test_shove_rejects_endpoint;
          Alcotest.test_case "rejects corner" `Quick test_shove_rejects_corner;
          Alcotest.test_case "rejects junction" `Quick test_shove_rejects_junction;
          Alcotest.test_case "rejects via cell" `Quick test_shove_rejects_via_cell;
          Alcotest.test_case "respects protection" `Quick test_shove_respects_protection;
          Alcotest.test_case "needs free track" `Quick test_shove_needs_free_track;
          Alcotest.test_case "tries other side" `Quick test_shove_tries_other_side;
          Alcotest.test_case "vertical segment" `Quick test_shove_vertical_segment;
        ] );
      ( "order",
        [
          Alcotest.test_case "strategies" `Quick test_order_strategies;
          Alcotest.test_case "restart rotation" `Quick test_order_restart_rotation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "empty problem" `Quick test_engine_routes_empty_problem;
          Alcotest.test_case "trivial nets" `Quick test_engine_routes_trivial_nets;
          Alcotest.test_case "switchbox suite" `Slow test_engine_switchbox_suite;
          Alcotest.test_case "channel suite" `Slow test_engine_channel_suite;
          Alcotest.test_case "beats maze-only" `Slow test_maze_only_fails_where_full_succeeds;
          Alcotest.test_case "cyclic channel" `Quick test_engine_cyclic_channel;
          Alcotest.test_case "unroutable reported" `Quick test_engine_reports_unroutable;
          Alcotest.test_case "termination budget" `Quick test_engine_termination_budget;
          Alcotest.test_case "fast kernels clean" `Quick test_engine_fast_kernels_complete_clean;
          Alcotest.test_case "weak-only no rips" `Quick test_engine_weak_only_uses_shoves_not_rips;
          Alcotest.test_case "maze-only no mods" `Quick test_engine_maze_only_no_modification;
          Alcotest.test_case "strategy monotonicity" `Slow test_engine_strategy_monotonicity;
          Alcotest.test_case "restarts" `Quick test_engine_restarts_help_or_match;
          Alcotest.test_case "astar agreement" `Quick test_engine_astar_same_completion;
          Alcotest.test_case "fixed prewire" `Quick test_engine_fixed_prewire_untouched;
          Alcotest.test_case "loose prewire" `Quick test_engine_loose_prewire_rippable;
          Alcotest.test_case "orphan prewire pruned" `Quick test_engine_prunes_orphan_prewire;
          Alcotest.test_case "L-shaped region" `Quick test_engine_routes_l_shaped_region;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "cost cache transparent" `Quick
            test_cost_cache_transparent;
          Alcotest.test_case "edge configs" `Quick test_engine_edge_configs;
          prop_shove_preserves_invariants;
          prop_engine_random_switchboxes;
          prop_engine_routable_always_complete;
          prop_engine_regions_with_obstacles;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "config describe" `Quick test_config_describe;
          Alcotest.test_case "measure" `Quick test_outcome_measure;
        ] );
      ( "report",
        [
          Alcotest.test_case "render" `Quick (fun () ->
              let p = Workload.Hard.tiny_blocked () in
              let r = Router.Engine.route p in
              let text = Router.Report.render p r in
              Testkit.check_true "mentions completion"
                (String.length text > 100);
              let lines = String.split_on_char '\n' text in
              (* one row per net plus header/sep/summary *)
              Testkit.check_true "row per net"
                (List.length lines
                >= Netlist.Problem.net_count p + 8));
          Alcotest.test_case "marks failures" `Quick (fun () ->
              let p = Workload.Hard.tiny_blocked () in
              let r =
                Router.Engine.route ~config:Router.Config.maze_only p
              in
              let table = Router.Report.per_net_table p r in
              let text = Util.Table.render table in
              Testkit.check_true "has FAILED row"
                (let has sub =
                   let rec search i =
                     i + String.length sub <= String.length text
                     && (String.sub text i (String.length sub) = sub
                        || search (i + 1))
                   in
                   search 0
                 in
                 has "FAILED"));
        ] );
      ( "session",
        [
          Alcotest.test_case "route and verify" `Quick test_session_route_and_verify;
          Alcotest.test_case "incremental route" `Quick test_session_route_is_incremental;
          Alcotest.test_case "add net" `Quick test_session_add_net;
          Alcotest.test_case "add validation" `Quick test_session_add_net_validation;
          Alcotest.test_case "rip and reroute" `Quick test_session_rip_and_reroute;
          Alcotest.test_case "freeze protects" `Quick test_session_freeze_protects_wiring;
          Alcotest.test_case "freeze needs routed" `Quick test_session_freeze_requires_routed;
          Alcotest.test_case "remove renumbers" `Quick test_session_remove_renumbers;
          Alcotest.test_case "refine" `Quick test_session_refine;
        ] );
      ( "improve",
        [
          Alcotest.test_case "monotone and clean" `Slow test_refine_monotone_and_clean;
          Alcotest.test_case "no-gain restore" `Quick test_refine_restores_when_no_gain;
          Alcotest.test_case "skips fixed prewires" `Quick test_refine_skips_fixed_prewire_nets;
          Alcotest.test_case "improves known detour" `Quick test_refine_improves_known_detour;
          Alcotest.test_case "idempotent" `Quick test_refine_idempotent;
        ] );
    ]
